//! Request-scoped tracing acceptance tests: trace-id propagation from a
//! submit through every layer it touches (evaluation, migrations, WAL
//! append/sync), fresh ids for rebalance passes and batch-submitted
//! queries, orphaned-end accounting when the ring overwrites a span's
//! begin, the slow-query flight recorder's retention guarantee, and the
//! books-balance property — per-phase nanos never exceed the root
//! span's wall nanos.

use proptest::prelude::*;
use social_coordination::core::engine::{Placement, RebalanceConfig, SharedEngine};
use social_coordination::core::persist::DurableSharedEngine;
use social_coordination::gen::workloads::{fig4_queries, partner_query, pool_db};
use social_coordination::obs::{Registry, TraceAnalyzer, TraceEvent, TracePhase};
use social_coordination::store::temp::TempDir;
use social_coordination::store::{DurabilityOptions, SyncPolicy};
use std::collections::BTreeSet;

fn begin_ids(events: &[TraceEvent], kind: &str) -> Vec<u64> {
    events
        .iter()
        .filter(|e| e.kind == kind && e.phase == TracePhase::Begin)
        .map(|e| e.trace_id)
        .collect()
}

/// Tentpole: one durable submit is one trace. Every evaluate span, WAL
/// append, and fsync the submit causes carries the submit's trace id —
/// none leak to id 0, none borrow another submit's id.
#[test]
fn durable_submit_attributes_every_layer_to_one_trace() {
    let db = pool_db(2_000);
    let dir = TempDir::new("tracing-propagation");
    let options = DurabilityOptions {
        sync: SyncPolicy::EveryRecord,
        snapshot_every: None,
    };
    let obs = Registry::new();
    let engine =
        DurableSharedEngine::open_with_obs(&db, dir.path(), 4, options, obs.clone()).unwrap();
    let n = 10;
    for q in fig4_queries(n) {
        engine.submit(q).unwrap();
    }

    let (events, dropped) = obs.tracer().events();
    assert_eq!(dropped, 0);
    // The durable entry point roots one trace per submit; the sharded
    // engine's nested submit span reuses it, so distinct ids == n.
    let submit_ids: BTreeSet<u64> = begin_ids(&events, "submit").into_iter().collect();
    assert!(!submit_ids.contains(&0), "a submit span lost its trace id");
    assert_eq!(submit_ids.len(), n, "one trace id per submitted request");

    for kind in ["evaluate", "wal_append", "wal_sync"] {
        let of_kind: Vec<&TraceEvent> = events.iter().filter(|e| e.kind == kind).collect();
        assert!(!of_kind.is_empty(), "no {kind} events recorded");
        for e in of_kind {
            assert!(
                submit_ids.contains(&e.trace_id),
                "{kind} event carries id {} which no submit allocated",
                e.trace_id
            );
        }
    }
}

/// A submit that merges components across shards migrates under the
/// submitting request's trace id — the migration is that request's
/// latency, not anonymous background work.
#[test]
fn submit_migrations_carry_the_submitting_request_id() {
    let db = pool_db(2_000);
    let obs = Registry::new();
    let engine = SharedEngine::with_obs(
        &db,
        2,
        Placement::RoundRobin,
        RebalanceConfig::default(),
        obs.clone(),
    );
    // Two unrelated pending components land on distinct shards under
    // round-robin placement…
    engine.submit(partner_query(0, &[1])).unwrap();
    engine.submit(partner_query(10, &[11])).unwrap();
    // …then one bridge query relates both (provides for user 1, wants
    // user 10), forcing a cross-shard merge during its submit.
    engine.submit(partner_query(1, &[10])).unwrap();

    let (events, dropped) = obs.tracer().events();
    assert_eq!(dropped, 0);
    let submits = begin_ids(&events, "submit");
    assert_eq!(submits.len(), 3);
    let bridge_id = submits[2];
    let migrates: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| e.kind == "migrate" && e.phase == TracePhase::Begin)
        .collect();
    assert!(
        !migrates.is_empty(),
        "the bridge query must merge the two components across shards"
    );
    for m in migrates {
        assert_eq!(
            m.trace_id, bridge_id,
            "the merge migration belongs to the bridge submit's trace"
        );
    }
}

/// A rebalance pass is not a submit: it allocates its own fresh trace
/// id, and the group moves it performs carry that id.
#[test]
fn rebalance_pass_and_its_migrations_share_one_fresh_id() {
    let db = pool_db(2_000);
    let obs = Registry::new();
    let engine = SharedEngine::with_obs(
        &db,
        2,
        Placement::RoundRobin,
        RebalanceConfig {
            skew_threshold: 0.7,
            min_window_load: 8,
            max_moves: 4,
        },
        obs.clone(),
    );
    // Four waiting chains alternate onto the two shards; growing the
    // shard-0 chains long re-evaluates their whole component on every
    // link, skewing shard 0's observed load.
    for g in 0..4 {
        let base = 100 * g;
        engine.submit(partner_query(base, &[base + 1])).unwrap();
    }
    for g in [0usize, 2] {
        let base = 100 * g;
        for i in 1..8 {
            engine
                .submit(partner_query(base + i, &[base + i + 1]))
                .unwrap();
        }
    }
    let report = engine.rebalance();
    assert!(report.triggered, "{report:?}");
    assert!(report.groups_moved >= 1, "{report:?}");

    let (events, _) = obs.tracer().events();
    let submit_ids: BTreeSet<u64> = begin_ids(&events, "submit").into_iter().collect();
    let rebalance_ids = begin_ids(&events, "rebalance");
    assert_eq!(rebalance_ids.len(), 1);
    let pass_id = rebalance_ids[0];
    assert_ne!(pass_id, 0, "rebalance pass must allocate a trace id");
    assert!(
        !submit_ids.contains(&pass_id),
        "rebalance pass reused a submit's id"
    );
    let moved_under_pass = events
        .iter()
        .filter(|e| e.kind == "migrate" && e.trace_id == pass_id)
        .count();
    assert!(
        moved_under_pass > 0,
        "the pass's migrations must carry the pass's trace id"
    );
}

/// The batch fast path holds each shard's lock once for the whole
/// wave — but each query in the wave is still its own request, with
/// its own trace id.
#[test]
fn batch_fast_path_gives_each_query_its_own_id() {
    let db = pool_db(2_000);
    let obs = Registry::new();
    let engine = SharedEngine::with_obs(
        &db,
        4,
        Placement::default(),
        RebalanceConfig::default(),
        obs.clone(),
    );
    const WAVE: usize = 8;
    let wave: Vec<_> = (0..WAVE)
        .map(|i| partner_query(10 * i, &[10 * i + 1]))
        .collect();
    for r in engine.submit_batch(wave) {
        assert!(!r.unwrap().coordinated());
    }
    assert!(engine.metrics().batches >= 1, "fast path was not taken");

    let (events, dropped) = obs.tracer().events();
    assert_eq!(dropped, 0);
    let ids = begin_ids(&events, "submit");
    assert_eq!(ids.len(), WAVE, "one submit span per batched query");
    assert!(!ids.contains(&0));
    let distinct: BTreeSet<u64> = ids.iter().copied().collect();
    assert_eq!(distinct.len(), WAVE, "batched queries must not share ids");
}

/// Ring-overflow regression: when a long span's begin is overwritten,
/// its end is counted as orphaned — in the dump meta line and by the
/// analyzer — rather than silently skewing the breakdown.
#[test]
fn overflowed_ring_counts_orphaned_ends() {
    let registry = Registry::with_trace_capacity(8);
    let tracer = registry.tracer();
    let ctx = tracer.alloc_ctx();
    let span = tracer.begin_in(ctx, "submit");
    for i in 0..32 {
        // Eight instants evict the begin; the rest keep the ring
        // churning the way a busy engine would.
        tracer.instant_in(ctx, "db_probe", i);
    }
    drop(span);

    let (events, dropped) = tracer.events();
    assert!(dropped > 0, "the 8-slot ring must have overflowed");
    let meta = tracer.dump_json_lines();
    assert!(
        meta.lines().next().unwrap().contains("\"orphaned_ends\":1"),
        "meta line must report the orphan: {}",
        meta.lines().next().unwrap()
    );
    let analyzer = TraceAnalyzer::from_events(&events, dropped);
    assert_eq!(analyzer.orphaned_ends, 1);
    let t = analyzer.trace(ctx.0).expect("the trace was reconstructed");
    assert_eq!(t.orphaned_ends, 1);
    assert!(
        !t.complete,
        "a trace whose root begin was overwritten is not complete"
    );
}

/// Acceptance: every trace whose root span tops the threshold survives
/// a run that overflows the ring many times over — the flight recorder
/// copies the trace out at root-span end, before overwrite can reach it.
#[test]
fn slow_query_log_retains_every_slow_trace_across_ring_overflow() {
    let db = pool_db(2_000);
    let obs = Registry::with_trace_capacity(64);
    // Threshold 1ns: every submit qualifies as slow, so retention is
    // exact and assertable.
    obs.set_slow_query_log(1, 256);
    let dir = TempDir::new("tracing-slowlog");
    let options = DurabilityOptions {
        sync: SyncPolicy::EveryRecord,
        snapshot_every: Some(16),
    };
    let engine =
        DurableSharedEngine::open_with_obs(&db, dir.path(), 4, options, obs.clone()).unwrap();
    let n = 40u64;
    for q in fig4_queries(n as usize) {
        engine.submit(q).unwrap();
    }

    let (_, ring_dropped) = obs.tracer().events();
    assert!(ring_dropped > 0, "the 64-event ring must overflow");
    let (recorded, discarded) = obs.tracer().slow_trace_counts();
    assert_eq!(recorded, n, "every slow trace must be retained");
    assert_eq!(discarded, 0, "capacity 256 must not evict any of them");
    let slow = obs.tracer().slow_traces();
    assert_eq!(slow.len(), n as usize);
    let ids: BTreeSet<u64> = slow.iter().map(|s| s.trace_id).collect();
    assert_eq!(ids.len(), n as usize, "one entry per trace, no duplicates");
    for s in &slow {
        assert_eq!(s.root_kind, "submit");
        assert!(s.root_nanos >= 1);
        assert!(!s.events.is_empty(), "captured trace carries its events");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Books-balance property: across random chain workloads, no
    /// reconstructed trace attributes more phase time than its root
    /// span's measured wall nanos — and complete traces balance
    /// exactly (`other` absorbs the residual).
    #[test]
    fn phase_sums_never_exceed_root_span_wall_nanos(
        chains in prop::collection::vec(2usize..=5, 1..=4),
        shards in 1usize..=4,
    ) {
        let db = pool_db(2_000);
        let obs = Registry::new();
        let engine = SharedEngine::with_obs(
            &db,
            shards,
            Placement::default(),
            RebalanceConfig::default(),
            obs.clone(),
        );
        let mut submitted = 0usize;
        for (c, len) in chains.iter().enumerate() {
            let base = 100 * c;
            for i in 0..*len {
                let partners: Vec<usize> =
                    if i + 1 < *len { vec![base + i + 1] } else { vec![] };
                engine.submit(partner_query(base + i, &partners)).unwrap();
                submitted += 1;
            }
        }

        let analyzer = TraceAnalyzer::from_tracer(&obs.tracer());
        prop_assert_eq!(analyzer.traces().len(), submitted);
        for t in analyzer.traces() {
            prop_assert!(t.complete, "default ring must hold the whole run");
            prop_assert_eq!(
                t.breakdown.phase_sum(),
                t.breakdown.critical_path_nanos,
                "trace {} does not balance",
                t.trace_id
            );
            for (name, nanos) in t.breakdown.phases() {
                prop_assert!(
                    nanos <= t.breakdown.critical_path_nanos,
                    "phase {} exceeds the root span on trace {}",
                    name,
                    t.trace_id
                );
            }
        }
    }
}
