//! Property-based cross-validation of the practical algorithms against
//! exhaustive search on randomly generated small instances.

use proptest::prelude::*;
use social_coordination::core::bruteforce;
use social_coordination::core::consistent::{
    ConsistentConfig, ConsistentCoordinator, ConsistentQuery,
};
use social_coordination::core::engine::{
    CoordinationEngine, Placement, QueryAnswer, RebalanceConfig, SharedEngine,
};
use social_coordination::core::graphs::{is_safe, is_unique};
use social_coordination::core::gupta::gupta_coordinate;
use social_coordination::core::persist::{DurabilityOptions, DurableSharedEngine};
use social_coordination::core::scc::SccCoordinator;
use social_coordination::core::{check_coordinating_set, EntangledQuery, QueryBuilder};
use social_coordination::db::{Database, Value};
use social_coordination::gen::workloads::{interleave_arrivals, partner_query, pool_db};
use social_coordination::store::temp::TempDir;

// ---------------------------------------------------------------------
// Random *safe* instances for the SCC algorithm.
// ---------------------------------------------------------------------

/// Specification of one random safe query: a body tag index (some of
/// which are unsatisfiable) and the set of coordination partners.
#[derive(Clone, Debug)]
struct SafeSpec {
    body_tag: usize,
    partners: Vec<usize>,
}

/// Database with tags t0..t3 present; t4, t5 generate unsatisfiable
/// bodies.
fn safe_db() -> Database {
    let mut db = Database::new();
    db.create_table("S", &["id", "tag"]).unwrap();
    for i in 0..8i64 {
        db.insert("S", vec![Value::int(i), Value::str(format!("t{}", i % 4))])
            .unwrap();
    }
    db
}

/// Build a safe query set: user `i` has the unique head `R(u_i, x)`, so
/// any postcondition `R(u_j, ·)` unifies with exactly one head.
fn build_safe_queries(specs: &[SafeSpec]) -> Vec<EntangledQuery> {
    specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let mut b = QueryBuilder::new(format!("q{i}"));
            for &p in &spec.partners {
                if p != i && p < specs.len() {
                    let y = format!("y{p}");
                    b = b.postcondition("R", |a| a.constant(format!("u{p}")).var(&y));
                }
            }
            b.head("R", |a| a.constant(format!("u{i}")).var("x"))
                .body("S", |a| a.var("x").constant(format!("t{}", spec.body_tag)))
                .build()
                .unwrap()
        })
        .collect()
}

fn safe_spec_strategy(n: usize) -> impl Strategy<Value = Vec<SafeSpec>> {
    prop::collection::vec(
        (0usize..6, prop::collection::vec(0usize..n, 0..3))
            .prop_map(|(body_tag, partners)| SafeSpec { body_tag, partners }),
        n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On safe instances: (a) the SCC algorithm's answer always verifies
    /// against Definition 1; (b) it finds a coordinating set iff one
    /// exists (checked exhaustively); (c) its best size never exceeds the
    /// true maximum.
    #[test]
    fn scc_agrees_with_bruteforce(specs in (2usize..6).prop_flat_map(safe_spec_strategy)) {
        let db = safe_db();
        let queries = build_safe_queries(&specs);
        prop_assume!(is_safe(&social_coordination::core::QuerySet::new(queries.clone())));

        let scc = SccCoordinator::new(&db).run(&queries).unwrap();
        let bf = bruteforce::max_coordinating_set(&db, &queries).unwrap();

        prop_assert_eq!(scc.best().is_some(), bf.best.is_some());
        if let Some(best) = scc.best() {
            check_coordinating_set(&db, &scc.qs, &best.queries, &best.grounding)
                .map_err(|v| TestCaseError::fail(format!("invalid set: {v}")))?;
            let max = bf.best.as_ref().unwrap().len();
            prop_assert!(best.len() <= max);
        }
        // Every *candidate* the algorithm reports must also verify.
        for f in &scc.found {
            check_coordinating_set(&db, &scc.qs, &f.queries, &f.grounding)
                .map_err(|v| TestCaseError::fail(format!("invalid candidate: {v}")))?;
        }
        // DB-query bound from the running-time analysis.
        prop_assert!(scc.stats.db_queries <= queries.len());
    }

    /// The wavefront-parallel condensation sweep is *indistinguishable*
    /// from the sequential one on random safe instances: identical
    /// candidate sets (same order, same groundings) and identical stats,
    /// at several thread counts.
    #[test]
    fn scc_parallel_equals_sequential(specs in (2usize..7).prop_flat_map(safe_spec_strategy)) {
        let db = safe_db();
        let queries = build_safe_queries(&specs);
        prop_assume!(is_safe(&social_coordination::core::QuerySet::new(queries.clone())));

        let coordinator = SccCoordinator::new(&db);
        let seq = coordinator.run(&queries).unwrap();
        for threads in [2usize, 4] {
            let par = coordinator.run_parallel(&queries, threads).unwrap();
            prop_assert_eq!(&seq.found, &par.found, "threads = {}", threads);
            prop_assert_eq!(seq.stats, par.stats, "threads = {}", threads);
            prop_assert_eq!(seq.best_names(), par.best_names(), "threads = {}", threads);
        }
    }

    /// On safe+unique instances the Gupta baseline and the SCC algorithm
    /// agree exactly.
    #[test]
    fn gupta_matches_scc_on_unique_instances(specs in (2usize..5).prop_flat_map(safe_spec_strategy)) {
        let db = safe_db();
        let queries = build_safe_queries(&specs);
        let qs = social_coordination::core::QuerySet::new(queries.clone());
        prop_assume!(is_safe(&qs) && is_unique(&qs));

        let gupta = gupta_coordinate(&db, &queries).unwrap();
        let scc = SccCoordinator::new(&db).run(&queries).unwrap();
        match (gupta, scc.best()) {
            (Some(g), Some(s)) => {
                prop_assert_eq!(&g.queries, &s.queries);
            }
            (None, None) => {}
            (g, s) => {
                return Err(TestCaseError::fail(format!(
                    "gupta={:?} scc={:?}",
                    g.map(|f| f.queries),
                    s.map(|f| f.queries.clone())
                )));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Random consistent instances vs the entangled encoding.
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
struct ConsistentSpec {
    /// Subset of the 12 possible (place, item) rows present in the table.
    rows_mask: u16,
    /// Directed friendship pairs (u, v), u ≠ v, over `n_users`.
    friendships: Vec<(usize, usize)>,
    /// Per user: partner kind (0 = none, 1 = any friend, 2.. = named user
    /// offset), coordination constant, personal constant.
    users: Vec<(usize, Option<usize>, Option<usize>)>,
}

fn consistent_strategy() -> impl Strategy<Value = ConsistentSpec> {
    (2usize..5).prop_flat_map(|n| {
        (
            any::<u16>(),
            prop::collection::vec((0usize..n, 0usize..n), 0..5),
            prop::collection::vec(
                (
                    0usize..(2 + n),
                    prop::option::of(0usize..4),
                    prop::option::of(0usize..3),
                ),
                n,
            ),
        )
            .prop_map(|(rows_mask, friendships, users)| ConsistentSpec {
                rows_mask,
                friendships: friendships.into_iter().filter(|(u, v)| u != v).collect(),
                users,
            })
    })
}

fn build_consistent_instance(
    spec: &ConsistentSpec,
) -> (Database, ConsistentConfig, Vec<ConsistentQuery>) {
    let mut db = Database::new();
    db.create_table("S", &["key", "place", "item"]).unwrap();
    let mut key = 0i64;
    for place in 0..4 {
        for item in 0..3 {
            if spec.rows_mask & (1 << (place * 3 + item)) != 0 {
                db.insert(
                    "S",
                    vec![
                        Value::int(key),
                        Value::str(format!("p{place}")),
                        Value::str(format!("i{item}")),
                    ],
                )
                .unwrap();
                key += 1;
            }
        }
    }
    db.create_table("F", &["user", "friend"]).unwrap();
    for &(u, v) in &spec.friendships {
        db.insert(
            "F",
            vec![Value::str(format!("u{u}")), Value::str(format!("u{v}"))],
        )
        .unwrap();
    }

    let config = ConsistentConfig::new("S", "key", &["place"], &["item"], "F");
    let n = spec.users.len();
    let queries = spec
        .users
        .iter()
        .enumerate()
        .map(|(i, &(partner_kind, coord, personal))| {
            let mut q = ConsistentQuery::for_user(format!("u{i}"), 1, 1);
            match partner_kind {
                0 => {}
                1 => q = q.with_any_friend(),
                k => {
                    // Named partner: another user, never self.
                    let target = (i + (k - 1)) % n;
                    if target != i {
                        q = q.with_named_partner(format!("u{target}"));
                    }
                }
            }
            if let Some(c) = coord {
                q = q.coord_const(0, format!("p{c}"));
            }
            if let Some(p) = personal {
                q = q.personal_const(0, format!("i{p}"));
            }
            q
        })
        .collect();
    (db, config, queries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Proposition 1 in action: the Consistent Coordination Algorithm
    /// finds a coordinating set iff exhaustive search over the general
    /// entangled encoding does. (Sizes may differ: brute force may merge
    /// groups that coordinate at *different* option values, which the
    /// same-value guarantee deliberately excludes.)
    #[test]
    fn consistent_existence_matches_bruteforce(spec in consistent_strategy()) {
        let (db, config, queries) = build_consistent_instance(&spec);
        let coordinator = ConsistentCoordinator::new(&db, config.clone()).unwrap();
        let out = coordinator.run(&queries).unwrap();

        let entangled: Vec<_> = queries
            .iter()
            .map(|q| q.to_entangled(&config, &db).unwrap())
            .collect();
        let bf = bruteforce::any_coordinating_set(&db, &entangled).unwrap();

        prop_assert_eq!(
            out.best.is_some(),
            bf.best.is_some(),
            "consistent={:?} vs bruteforce={:?} on {:?}",
            out.best.as_ref().map(|b| &b.members),
            bf.best.as_ref().map(|b| &b.queries),
            spec
        );
    }

    /// The parallel sweep gives exactly the sequential answer.
    #[test]
    fn consistent_parallel_equals_sequential(spec in consistent_strategy()) {
        let (db, config, queries) = build_consistent_instance(&spec);
        let coordinator = ConsistentCoordinator::new(&db, config).unwrap();
        let seq = coordinator.run(&queries).unwrap();
        let par = coordinator.run_parallel(&queries, 3).unwrap();
        prop_assert_eq!(seq.per_value, par.per_value);
        prop_assert_eq!(
            seq.best.map(|b| (b.value, b.members)),
            par.best.map(|b| (b.value, b.members))
        );
    }

    /// Definitions 7–9 as code: `to_entangled` always produces a query the
    /// classifier recognizes, and classification recovers the original
    /// structured form exactly.
    #[test]
    fn classify_inverts_to_entangled(spec in consistent_strategy()) {
        let (db, config, queries) = build_consistent_instance(&spec);
        for q in &queries {
            let ent = q.to_entangled(&config, &db).unwrap();
            let back = social_coordination::core::classify::classify(&ent, &config, &db)
                .map_err(|e| TestCaseError::fail(format!("classify rejected {q:?}: {e}")))?;
            prop_assert_eq!(&back, q);
        }
    }
}

// ---------------------------------------------------------------------
// The sharded engine with the rebalancer vs the sequential engine, on
// random skewed submit/retire interleavings.
// ---------------------------------------------------------------------

/// Pool rows: must cover every user id the workloads below mint.
const POOL: usize = 4096;

/// One closed chain of `size` partner queries starting at `offset`:
/// member `i` requires member `i + 1`, the last member is free — so the
/// whole group retires once complete, whenever its free tail happens to
/// arrive in the interleaving.
fn chain_group(offset: usize, size: usize) -> Vec<EntangledQuery> {
    (0..size)
        .map(|i| {
            let partners: Vec<usize> = if i + 1 < size {
                vec![offset + i + 1]
            } else {
                vec![]
            };
            partner_query(offset + i, &partners)
        })
        .collect()
}

/// One hot group plus a tail of small ones — the skew shape the
/// rebalancer exists for.
fn skewed_groups(hot_size: usize, tail_sizes: &[usize]) -> Vec<Vec<EntangledQuery>> {
    let mut groups = vec![chain_group(0, hot_size)];
    for (g, &size) in tail_sizes.iter().enumerate() {
        groups.push(chain_group(100 * (g + 1), size));
    }
    groups
}

fn sorted_answers(mut answers: Vec<QueryAnswer>) -> Vec<QueryAnswer> {
    answers.sort_by(|a, b| a.query.cmp(&b.query));
    answers
}

fn sorted_query_names<'a>(queries: impl IntoIterator<Item = &'a EntangledQuery>) -> Vec<String> {
    let mut names: Vec<String> = queries.into_iter().map(|q| q.name().to_string()).collect();
    names.sort_unstable();
    names
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Rebalancing is invisible to coordination semantics: a sharded
    /// engine whose components are periodically moved by the rebalancer
    /// delivers, submit by submit, exactly the sequential engine's
    /// answers on random skewed interleavings — and ends with the same
    /// pending set.
    #[test]
    fn sharded_with_rebalancer_equals_sequential_engine(
        hot_size in 6usize..=12,
        tail_sizes in prop::collection::vec(1usize..=4, 2..=5),
        seed in prop::arbitrary::any::<u64>(),
        rebalance_every in 3usize..=9,
    ) {
        let db = pool_db(POOL);
        let arrivals = interleave_arrivals(skewed_groups(hot_size, &tail_sizes), seed);
        // Aggressive tuning so small property-sized windows still
        // trigger real moves; round-robin placement so the hot group
        // actually co-locates with tail groups.
        let sharded = SharedEngine::with_config(
            &db,
            3,
            Placement::RoundRobin,
            RebalanceConfig { skew_threshold: 0.34, min_window_load: 8, max_moves: 8 },
        );
        let mut sequential = CoordinationEngine::new(&db);
        for (i, q) in arrivals.iter().enumerate() {
            let a = sharded.submit(q.clone()).unwrap();
            let b = sequential.submit(q.clone()).unwrap();
            prop_assert_eq!(
                sorted_answers(a.answers),
                sorted_answers(b.answers),
                "answers diverged at submit {} (seed {})", i, seed
            );
            if (i + 1) % rebalance_every == 0 {
                sharded.rebalance();
            }
        }
        let pending = sharded.pending();
        prop_assert_eq!(
            sorted_query_names(pending.iter()),
            sorted_query_names(sequential.pending().iter().copied())
        );
        prop_assert_eq!(sharded.delivered(), sequential.delivered());
    }

    /// The durable variant: crash right after a rebalance (the worst
    /// point — moves are in-memory only, so the log knows nothing of
    /// them), recover, and the replayed engine continues exactly like
    /// an engine that never crashed or rebalanced.
    #[test]
    fn durable_rebalance_crash_recovery_equals_live(
        hot_size in 6usize..=10,
        tail_sizes in prop::collection::vec(1usize..=3, 2..=4),
        seed in prop::arbitrary::any::<u64>(),
        crash_at in 0usize..=100,
        rebalance_every in 2usize..=6,
    ) {
        let db = pool_db(POOL);
        let arrivals = interleave_arrivals(skewed_groups(hot_size, &tail_sizes), seed);
        let crash_at = crash_at % (arrivals.len() + 1);
        let dir = TempDir::new("rebalance-crash");
        let opts = DurabilityOptions::default();

        // Aggressive tuning (as in the non-durable twin property): the
        // default window/threshold would rarely trigger on
        // property-sized workloads, leaving the crash-after-rebalance
        // scenario vacuous.
        let tuning = RebalanceConfig { skew_threshold: 0.34, min_window_load: 8, max_moves: 8 };

        let mut live = CoordinationEngine::new(&db);
        {
            let durable =
                DurableSharedEngine::open_with(&db, dir.path(), 3, opts).unwrap();
            durable.set_rebalance_config(tuning);
            for (i, q) in arrivals[..crash_at].iter().enumerate() {
                durable.submit(q.clone()).unwrap();
                live.submit(q.clone()).unwrap();
                if (i + 1) % rebalance_every == 0 {
                    durable.rebalance();
                }
            }
            // The last thing before the crash is a rebalance pass.
            durable.rebalance();
        } // crash

        let recovered = DurableSharedEngine::open_with(&db, dir.path(), 3, opts).unwrap();
        recovered.set_rebalance_config(tuning);
        prop_assert_eq!(
            sorted_query_names(recovered.pending().iter()),
            sorted_query_names(live.pending().iter().copied()),
            "recovered pending set diverged at crash point {}", crash_at
        );
        // The rest of the workload — rebalancing as it goes — delivers
        // identical answers.
        for (i, q) in arrivals[crash_at..].iter().enumerate() {
            let a = recovered.submit(q.clone()).unwrap();
            let b = live.submit(q.clone()).unwrap();
            prop_assert_eq!(
                sorted_answers(a.answers),
                sorted_answers(b.answers),
                "post-recovery answers diverged at submit {}", i
            );
            if (i + 1) % rebalance_every == 0 {
                recovered.rebalance();
            }
        }
        prop_assert_eq!(
            sorted_query_names(recovered.pending().iter()),
            sorted_query_names(live.pending().iter().copied())
        );
    }
}
