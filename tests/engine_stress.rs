//! Stress and concurrency tests for the online coordination engine.

use social_coordination::core::engine::{CoordinationEngine, SharedEngine};
use social_coordination::core::QueryBuilder;
use social_coordination::db::{Database, Value};
use social_coordination::gen::social::user_name;

fn pool(rows: usize) -> Database {
    let mut db = Database::new();
    db.create_table("S", &["id", "tag"]).unwrap();
    for i in 0..rows {
        db.insert(
            "S",
            vec![Value::int(i as i64), Value::str(format!("t{}", i % 7))],
        )
        .unwrap();
    }
    db
}

fn chain_query(i: usize, partner: Option<usize>) -> social_coordination::core::EntangledQuery {
    let mut b = QueryBuilder::new(format!("user{i}"));
    if let Some(p) = partner {
        b = b.postcondition("R", |a| a.constant(user_name(p)).var("y"));
    }
    b.head("R", |a| a.constant(user_name(i)).var("x"))
        .body("S", |a| a.var("x").constant(format!("t{}", i % 7)))
        .build()
        .unwrap()
}

/// A long chain arriving head-first only coordinates when the free tail
/// arrives; everyone is answered at once.
#[test]
fn chain_resolves_only_on_final_arrival() {
    let db = pool(100);
    let mut engine = CoordinationEngine::new(&db);
    let n = 40;
    for i in 0..n - 1 {
        let r = engine.submit(chain_query(i, Some(i + 1))).unwrap();
        assert!(!r.coordinated(), "query {i} must wait for its successor");
    }
    assert_eq!(engine.pending().len(), n - 1);
    let r = engine.submit(chain_query(n - 1, None)).unwrap();
    assert_eq!(r.answers.len(), n);
    assert_eq!(engine.pending().len(), 0);
    assert_eq!(engine.delivered(), n);
}

/// A chain arriving tail-first coordinates pairwise: each arrival
/// completes exactly one waiting predecessor... actually the tail is
/// answered as a singleton immediately, and each later arrival is
/// answered immediately too (its successor has already left the buffer,
/// so its postcondition can never be satisfied — preprocessing removes
/// the stale requirement and fails the query). This pins the engine's
/// delete-after-answer semantics from the paper's system description.
#[test]
fn tail_first_arrivals_strand_predecessors() {
    let db = pool(100);
    let mut engine = CoordinationEngine::new(&db);
    // Tail (free) arrives first and is answered alone.
    let r = engine.submit(chain_query(9, None)).unwrap();
    assert_eq!(r.answers.len(), 1);
    // Its predecessor now waits forever: the partner is gone.
    let r = engine.submit(chain_query(8, Some(9))).unwrap();
    assert!(!r.coordinated());
    assert_eq!(engine.pending().len(), 1);
}

/// Many independent pairs over a shared engine from multiple threads:
/// every pair eventually coordinates, nothing is lost.
#[test]
fn shared_engine_parallel_pairs() {
    let db = pool(100);
    let engine = SharedEngine::new(&db);
    let n_pairs = 16;
    std::thread::scope(|s| {
        for p in 0..n_pairs {
            let engine = &engine;
            s.spawn(move || {
                let a = 2 * p;
                let b = 2 * p + 1;
                // a waits for b; order of the two submissions within a
                // pair is fixed, pairs race freely.
                engine.submit(chain_query(a, Some(b))).unwrap();
                let r = engine.submit(chain_query(b, None)).unwrap();
                assert!(r.coordinated());
                assert_eq!(r.answers.len(), 2);
            });
        }
    });
    assert_eq!(engine.pending_count(), 0);
    assert_eq!(engine.delivered(), 2 * n_pairs);
}

/// Mixed workload: cycles, chains and singletons interleaved.
#[test]
fn interleaved_components_do_not_interfere() {
    let db = pool(100);
    let mut engine = CoordinationEngine::new(&db);

    // Cycle pair (mutual requirements).
    let a = QueryBuilder::new("a")
        .postcondition("R", |x| x.constant("B").var("p"))
        .head("R", |x| x.constant("A").var("p"))
        .body("S", |x| x.var("p").constant("t1"))
        .build()
        .unwrap();
    // Note the same tag as `a`: unification forces both queries onto one
    // tuple (their variables merge through the R-atoms), so the bodies
    // must be co-satisfiable by a single row.
    let b = QueryBuilder::new("b")
        .postcondition("R", |x| x.constant("A").var("q"))
        .head("R", |x| x.constant("B").var("q"))
        .body("S", |x| x.var("q").constant("t1"))
        .build()
        .unwrap();

    assert!(!engine.submit(a).unwrap().coordinated());
    // Unrelated singleton coordinates without disturbing the cycle half.
    let free = chain_query(30, None);
    assert!(engine.submit(free).unwrap().coordinated());
    assert_eq!(engine.pending().len(), 1);
    // The cycle completes.
    let r = engine.submit(b).unwrap();
    assert_eq!(r.answers.len(), 2);
    assert_eq!(engine.pending().len(), 0);
}
