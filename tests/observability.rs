//! Acceptance and stress tests for the unified observability layer: one
//! live durable run reported from a single registry snapshot, the trace
//! ring replaying a submit's full span path, multi-threaded snapshot
//! monotonicity, the submit-histogram/counter agreement, and ring-buffer
//! overflow accounting.

use social_coordination::core::engine::{Placement, RebalanceConfig, SharedEngine};
use social_coordination::core::persist::DurableSharedEngine;
use social_coordination::gen::workloads::{
    fig4_queries, partner_query, pool_db, unsat_cycle_with_spokes,
};
use social_coordination::obs::{Registry, TracePhase};
use social_coordination::store::temp::TempDir;
use social_coordination::store::{DurabilityOptions, SyncPolicy};

/// The tentpole acceptance check: one `Registry::snapshot()` from one
/// live `DurableSharedEngine` run reports the submit-latency histogram,
/// WAL append/sync timings, snapshot rotations, and the closure cache's
/// memo hit rate.
#[test]
fn one_snapshot_covers_the_whole_durable_stack() {
    let db = pool_db(2_000);
    let dir = TempDir::new("obs-acceptance");
    let options = DurabilityOptions {
        sync: SyncPolicy::EveryRecord,
        snapshot_every: Some(16),
    };
    let engine = DurableSharedEngine::open_with(&db, dir.path(), 4, options).unwrap();
    let n = 40;
    for q in fig4_queries(n) {
        engine.submit(q).unwrap();
    }
    let (cycle, spokes) = unsat_cycle_with_spokes(8, 6);
    let extra = (cycle.len() + spokes.len()) as u64;
    for q in cycle.into_iter().chain(spokes) {
        engine.submit(q).unwrap();
    }

    let snap = engine.obs().snapshot();

    // Submit latency: every submit recorded, quantiles ordered.
    let submit = snap.histogram("engine_submit_nanos").unwrap();
    assert_eq!(submit.count, n as u64 + extra);
    assert!(submit.p50() <= submit.p99());
    assert!(submit.p99() <= submit.max);
    assert!(submit.sum > 0);

    // WAL timings: one append per accepted submit, and the EveryRecord
    // policy syncs each of them.
    let append = snap.histogram("wal_append_nanos").unwrap();
    assert_eq!(append.count, n as u64 + extra);
    let sync = snap.histogram("wal_sync_nanos").unwrap();
    assert_eq!(sync.count, n as u64 + extra);

    // Snapshot rotations happened (snapshot_every = 16 over 54 commits)
    // and were timed.
    let rotations = snap.counter("store_snapshots_taken").unwrap();
    assert!(rotations >= 2);
    let rotation = snap.histogram("snapshot_rotation_nanos").unwrap();
    assert_eq!(rotation.count, rotations);

    // The memo counters carry real traffic: the failed cycle closure is
    // cached once, each spoke arrival hits it.
    assert!(snap.counter("memo_hits").unwrap() > 0);
    assert!(snap.counter("memo_misses").unwrap() > 0);
    let rate = snap.hit_rate("memo_hits", "memo_misses").unwrap();
    assert!(rate > 0.0 && rate < 1.0);

    // Engine counters flowed into the same registry.
    assert_eq!(snap.counter("engine_submits").unwrap(), n as u64 + extra);
    assert_eq!(snap.counter("engine_delivered").unwrap(), n as u64);
    assert_eq!(snap.gauge("store_epoch").unwrap(), rotations);
}

/// The trace ring replays one submit's full span path through the
/// stack: submit begin → evaluate begin/end → submit end, then the
/// durable layer's wal_append begin/end before the next arrival.
#[test]
fn trace_ring_replays_a_submit_span_path() {
    let db = pool_db(500);
    let dir = TempDir::new("obs-trace");
    let engine =
        DurableSharedEngine::open_with(&db, dir.path(), 2, DurabilityOptions::default()).unwrap();
    for q in fig4_queries(5) {
        engine.submit(q).unwrap();
    }

    let (events, dropped) = engine.obs().tracer().events();
    assert_eq!(dropped, 0);
    // Sequence numbers are contiguous from zero.
    for (i, e) in events.iter().enumerate() {
        assert_eq!(e.seq, i as u64);
    }

    // Find a submit span and check the nested path inside it.
    let begin = events
        .iter()
        .position(|e| e.kind == "submit" && e.phase == TracePhase::Begin)
        .expect("a submit span begins");
    let end = events[begin..]
        .iter()
        .position(|e| e.kind == "submit" && e.phase == TracePhase::End)
        .map(|off| begin + off)
        .expect("the submit span ends");
    // Evaluation is nested inside the submit span…
    let inside = &events[begin..=end];
    let pos = |slice: &[social_coordination::obs::TraceEvent], kind: &str, phase: TracePhase| {
        slice
            .iter()
            .position(|e| e.kind == kind && e.phase == phase)
    };
    let eval_begin = pos(inside, "evaluate", TracePhase::Begin).expect("evaluate inside submit");
    let eval_end = pos(inside, "evaluate", TracePhase::End).expect("evaluate ends inside submit");
    assert!(eval_begin < eval_end);
    // …and the durable layer's WAL commit follows the span, before the
    // next arrival starts.
    let after = &events[end + 1..];
    let next_submit = pos(after, "submit", TracePhase::Begin).unwrap_or(after.len());
    let append_begin =
        pos(after, "wal_append", TracePhase::Begin).expect("wal_append follows the submit");
    let append_end =
        pos(after, "wal_append", TracePhase::End).expect("wal_append ends after the submit");
    assert!(append_begin < append_end);
    assert!(
        append_end < next_submit,
        "the WAL commit lands before the next submit begins"
    );

    // The same path renders as JSON lines with a meta header.
    let dump = engine.obs().tracer().dump_json_lines();
    let mut lines = dump.lines();
    let meta = lines.next().unwrap();
    assert!(meta.contains("\"dropped\":0"));
    assert!(dump.contains("\"kind\":\"submit\",\"phase\":\"begin\""));
    assert!(dump.contains("\"kind\":\"wal_append\""));
}

/// Satellite stress test: concurrent submitters and a snapshot reader.
/// Snapshots must be monotone (counters and histogram counts never go
/// backwards), the histogram count never overtakes the submit counter,
/// and at the end the two agree exactly.
#[test]
fn concurrent_snapshots_are_monotone_and_histogram_matches_submits() {
    const THREADS: usize = 4;
    const CHAINS_PER_THREAD: usize = 8;
    const CHAIN: usize = 6;

    let db = pool_db(2_000);
    let engine = SharedEngine::with_obs(
        &db,
        4,
        Placement::default(),
        RebalanceConfig::default(),
        Registry::new(),
    );
    let total = (THREADS * CHAINS_PER_THREAD * CHAIN) as u64;

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let engine = &engine;
            s.spawn(move || {
                for c in 0..CHAINS_PER_THREAD {
                    // Disjoint user ranges per thread keep components local.
                    let base = (t * CHAINS_PER_THREAD + c) * CHAIN;
                    for i in 0..CHAIN {
                        let partners: Vec<usize> = if i + 1 < CHAIN {
                            vec![base + i + 1]
                        } else {
                            vec![]
                        };
                        engine.submit(partner_query(base + i, &partners)).unwrap();
                    }
                }
            });
        }
        // Reader: counters and histogram totals move forward only.
        let engine = &engine;
        s.spawn(move || {
            let mut last_submits = 0u64;
            let mut last_hist = 0u64;
            for _ in 0..200 {
                let snap = engine.obs().snapshot();
                let submits = snap.counter("engine_submits").unwrap_or(0);
                let hist = snap.histogram("engine_submit_nanos").map_or(0, |h| h.count);
                assert!(submits >= last_submits, "submit counter went backwards");
                assert!(hist >= last_hist, "histogram count went backwards");
                assert!(
                    hist <= submits,
                    "histogram recorded a submit the counter has not seen"
                );
                last_submits = submits;
                last_hist = hist;
                std::thread::yield_now();
            }
        });
    });

    let snap = engine.obs().snapshot();
    assert_eq!(snap.counter("engine_submits").unwrap(), total);
    assert_eq!(
        snap.histogram("engine_submit_nanos").unwrap().count,
        total,
        "every submit must be recorded exactly once"
    );
    // Every chain coordinates when its tail arrives.
    assert_eq!(
        snap.counter("engine_delivered").unwrap(),
        total,
        "all chains coordinate"
    );
}

/// Satellite stress test: a ring smaller than the event stream counts
/// every drop and keeps the newest events with contiguous sequence
/// numbers.
#[test]
fn trace_ring_overflow_counts_drops_and_keeps_the_tail() {
    const CAPACITY: usize = 32;
    const EMITTED: u64 = 1000;
    let registry = Registry::with_trace_capacity(CAPACITY);
    let tracer = registry.tracer();
    for i in 0..EMITTED {
        tracer.instant("tick", i);
    }
    let (events, dropped) = tracer.events();
    assert_eq!(events.len(), CAPACITY);
    assert_eq!(dropped, EMITTED - CAPACITY as u64);
    // The survivors are exactly the newest events, in order.
    for (i, e) in events.iter().enumerate() {
        assert_eq!(e.seq, EMITTED - CAPACITY as u64 + i as u64);
        assert_eq!(e.arg, e.seq);
    }
    let dump = tracer.dump_json_lines();
    assert!(dump
        .lines()
        .next()
        .unwrap()
        .contains(&format!("\"dropped\":{}", EMITTED - CAPACITY as u64)));
}

/// Satellite: the per-shard `shard_pending_<i>` gauges and the
/// `engine_inflight` gauge are registered by construction, track live
/// state, and show up in both exporters.
#[test]
fn shard_pending_and_inflight_gauges_track_live_state() {
    let db = pool_db(2_000);
    let shards = 4;
    let engine = SharedEngine::with_obs(
        &db,
        shards,
        Placement::default(),
        RebalanceConfig::default(),
        Registry::new(),
    );
    // A full chain coordinates, retires, and leaves nothing behind…
    for q in fig4_queries(10) {
        engine.submit(q).unwrap();
    }
    // …while an unsatisfiable cycle plus spokes stays pending forever.
    let (cycle, spokes) = unsat_cycle_with_spokes(8, 6);
    for q in cycle.into_iter().chain(spokes) {
        engine.submit(q).unwrap();
    }

    let snap = engine.obs().snapshot();
    let pending_total: u64 = (0..shards)
        .map(|i| {
            snap.gauge(&format!("shard_pending_{i}"))
                .expect("per-shard gauge registered at construction")
        })
        .sum();
    assert_eq!(
        pending_total as usize,
        engine.pending_count(),
        "shard_pending gauges must sum to the live pending count"
    );
    assert!(pending_total > 0, "the unsat cycle stays pending");
    assert_eq!(
        snap.gauge("engine_inflight").unwrap(),
        0,
        "no submit is in flight after all submits returned"
    );

    // Both exporters carry the gauges.
    let json = snap.to_json();
    let prom = snap.to_prometheus();
    for name in ["shard_pending_0", "engine_inflight"] {
        assert!(json.contains(name), "JSON exporter missing {name}");
        assert!(prom.contains(name), "Prometheus exporter missing {name}");
    }
}

/// A disabled registry records nothing and exports nothing, and the
/// engine runs fine on top of it.
#[test]
fn disabled_registry_records_nothing() {
    let db = pool_db(500);
    let engine = SharedEngine::with_obs(
        &db,
        2,
        Placement::default(),
        RebalanceConfig::default(),
        Registry::disabled(),
    );
    for q in fig4_queries(8) {
        engine.submit(q).unwrap();
    }
    assert_eq!(engine.delivered(), 8);
    let snap = engine.obs().snapshot();
    assert!(snap.counter("engine_submits").is_none());
    assert!(snap.histogram("engine_submit_nanos").is_none());
    let (events, dropped) = engine.obs().tracer().events();
    assert!(events.is_empty());
    assert_eq!(dropped, 0);
    // The always-live metrics accessors still work.
    assert_eq!(engine.metrics().submits, 8);
}
