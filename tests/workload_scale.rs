//! Medium-scale workload tests: the experiment generators driven end to
//! end, with every reported coordinating set re-verified against
//! Definition 1 and the paper's resource bounds asserted.

use rand::prelude::*;
use social_coordination::core::check_coordinating_set;
use social_coordination::core::consistent::ConsistentCoordinator;
use social_coordination::core::scc::{preprocess, SccCoordinator};
use social_coordination::core::EntangledQuery;
use social_coordination::gen::workloads::{
    fig4_instance, fig4_queries, fig5_instance, fig5_queries, fig7_instance, fig8_instance,
    partner_query, pool_db,
};

#[test]
fn fig4_workload_all_candidates_verify() {
    let (db, queries) = fig4_instance(60, 2_000);
    db.stats().reset();
    let out = SccCoordinator::new(&db).run(&queries).unwrap();
    // One candidate per suffix; every one is a real coordinating set.
    assert_eq!(out.found.len(), 60);
    for f in &out.found {
        check_coordinating_set(&db, &out.qs, &f.queries, &f.grounding).unwrap();
    }
    // Bound from Section 4: at most |Q| database queries.
    assert!(db.stats().find_one_count() <= 60);
    assert_eq!(out.stats.components, 60);
    assert_eq!(out.stats.graph_edges, 59);
}

#[test]
fn fig5_workload_verifies_across_seeds() {
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (db, queries) = fig5_instance(80, 3, 1_000, &mut rng);
        let out = SccCoordinator::new(&db).run(&queries).unwrap();
        let best = out.best().expect("all bodies satisfiable");
        check_coordinating_set(&db, &out.qs, &best.queries, &best.grounding).unwrap();
        assert!(out.stats.db_queries <= queries.len());
    }
}

#[test]
fn fig6_preprocessing_scales_and_is_sound() {
    let mut rng = StdRng::seed_from_u64(3);
    let (db, queries) = fig5_instance(500, 2, 1_000, &mut rng);
    let pre = preprocess(&db, &queries).unwrap();
    assert!(pre.removed.is_empty(), "all postconditions are matchable");
    // Every query sits in exactly one component.
    let total: usize = (0..pre.cond.len()).map(|c| pre.cond.members(c).len()).sum();
    assert_eq!(total, 500);
}

#[test]
fn fig7_worst_case_keeps_everyone() {
    let (db, config, queries) = fig7_instance(30, 200);
    db.stats().reset();
    let coordinator = ConsistentCoordinator::new(&db, config).unwrap();
    let out = coordinator.run(&queries).unwrap();
    assert_eq!(out.stats.values_considered, 200);
    assert!(out.per_value.iter().all(|(_, size)| *size == 30));
    // DB queries linear in n (options + friends + groundings), never per
    // value.
    assert!(db.stats().total() as usize <= 2 * 30 + 30 + 1);
}

#[test]
fn fig8_groundings_map_every_member_to_a_real_flight() {
    let (db, config, queries) = fig8_instance(25, 100);
    let coordinator = ConsistentCoordinator::new(&db, config.clone()).unwrap();
    let out = coordinator.run(&queries).unwrap();
    let best = out.best.unwrap();
    assert_eq!(best.members.len(), 25);
    // Each assigned flight must actually have the agreed (dest, day).
    let fl = db.table_named("Fl").unwrap();
    for (_user, key) in &best.assignment {
        let rows = fl.distinct_project(&[1, 2], &[(0, key.clone())]);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0], best.value);
    }
}

#[test]
fn parallel_sweep_agrees_at_scale() {
    let (db, config, queries) = fig7_instance(20, 300);
    let coordinator = ConsistentCoordinator::new(&db, config).unwrap();
    let seq = coordinator.run(&queries).unwrap();
    for threads in [2, 3, 8] {
        let par = coordinator.run_parallel(&queries, threads).unwrap();
        assert_eq!(seq.per_value, par.per_value);
    }
}

/// A unique cycle: query i coordinates with query (i+1) mod n — one SCC.
fn cycle_queries(n: usize) -> Vec<EntangledQuery> {
    (0..n).map(|i| partner_query(i, &[(i + 1) % n])).collect()
}

/// Regression gate for the ROADMAP superlinearity item: on the list
/// workload the candidate-enumeration unify-call counter must grow
/// ≤ c·n·k from n = 20 to n = 100 — near-linear thanks to the shared
/// (relation, first-arg constant) index — where the all-pairs sweep
/// would grow ~n² (25× over this 5× size step).
#[test]
fn list_workload_unify_calls_grow_linearly_not_quadratically() {
    let db = pool_db(1_000);
    let calls_at = |n: usize| {
        let pre = preprocess(&db, &fig4_queries(n)).unwrap();
        assert!(pre.removed.is_empty());
        pre.unify_calls
    };
    let small = calls_at(20);
    let large = calls_at(100);
    // Linear growth would be exactly 5×; leave headroom for constant
    // bucket width k, but stay far below the quadratic 25×.
    assert!(
        large <= 8 * small,
        "unify calls grew {small} → {large} (> 8×) on a 5× size step: superlinear regression"
    );
    // Absolute near-linearity: the all-pairs baseline is posts × heads
    // = (n−1)·n per sweep; the indexed pipeline must sit ≥ 10× below it.
    let all_pairs = (100u64 - 1) * 100;
    assert!(
        large * 10 <= all_pairs,
        "unify calls {large} not ≥ 10× below the all-pairs baseline {all_pairs}"
    );
}

/// Differential-evaluation gate for the ROADMAP "quadratic closure
/// wall clock" item: on the list workload, closure `i` (counting from
/// the free tail) contains i + 1 queries, so from-scratch evaluation
/// pays Σ|closure| ≈ n²/2 grounding work, while delta joins against the
/// successor's memo pay O(Δ) = O(1) per component — ~2n − 1 total.
/// Assert the differential counter grows ≤ c·n·Δ over a 5× size step
/// (quadratic growth would be 25×), and that it sits ≥ 10× below the
/// from-scratch baseline on the same instance.
#[test]
fn list_workload_grounding_work_grows_with_n_delta_not_n_squared() {
    let db = pool_db(1_000);
    let work_at = |n: usize| {
        let out = SccCoordinator::new(&db).run(&fig4_queries(n)).unwrap();
        assert_eq!(out.found.len(), n, "every suffix must still coordinate");
        out.stats.ground_work
    };
    let small = work_at(20);
    let large = work_at(100);
    assert!(small > 0, "the SCC path must account its closure work");
    // n·Δ growth is exactly 5× here (Δ = 1 per component); allow
    // constant-factor headroom but stay far below the quadratic 25×.
    assert!(
        large <= 8 * small,
        "grounding work grew {small} → {large} (> 8×) on a 5× size step: \
         differential evaluation regressed toward from-scratch"
    );
    // The from-scratch baseline on the same instance: Σ|closure| work.
    let scratch = SccCoordinator::new(&db)
        .with_from_scratch_evaluation()
        .run(&fig4_queries(100))
        .unwrap()
        .stats
        .ground_work;
    assert!(
        large * 10 <= scratch,
        "differential grounding work {large} not ≥ 10× below the \
         from-scratch baseline {scratch}"
    );
}

/// `SccCoordinator::run_parallel` must return results *identical* to the
/// sequential sweep — same candidate sets in the same order, same
/// groundings, same stats — on the cycle, list and random scale-free
/// safe workloads, at every thread count.
#[test]
fn scc_parallel_equals_sequential_on_all_workloads() {
    let db = pool_db(1_000);
    let mut workloads: Vec<(&str, Vec<EntangledQuery>)> =
        vec![("cycle", cycle_queries(40)), ("list", fig4_queries(40))];
    for seed in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        workloads.push(("scale-free", fig5_queries(48, 2, &mut rng)));
    }
    for (name, queries) in &workloads {
        let coordinator = SccCoordinator::new(&db);
        let seq = coordinator.run(queries).unwrap();
        for threads in [1, 2, 4, 8] {
            let par = coordinator.run_parallel(queries, threads).unwrap();
            assert_eq!(
                seq.found, par.found,
                "{name}/{threads}: candidate sets diverged"
            );
            assert_eq!(seq.stats, par.stats, "{name}/{threads}: stats diverged");
            assert_eq!(
                seq.best_names(),
                par.best_names(),
                "{name}/{threads}: selection diverged"
            );
        }
    }
}

/// The parallel sweep composes with preprocessing reuse and the
/// bruteforce cutoff exactly like the sequential path.
#[test]
fn scc_parallel_respects_preprocessed_and_cutoff_paths() {
    let db = pool_db(200);
    let queries = fig4_queries(30);

    let seq = SccCoordinator::new(&db)
        .run_preprocessed(preprocess(&db, &queries).unwrap())
        .unwrap();
    let par = SccCoordinator::new(&db)
        .run_preprocessed_parallel(preprocess(&db, &queries).unwrap(), 4)
        .unwrap();
    assert_eq!(seq.found, par.found);
    assert_eq!(seq.stats, par.stats);

    // Below the cutoff both delegate to the same exhaustive search.
    let small = fig4_queries(5);
    let fast_seq = SccCoordinator::new(&db)
        .with_bruteforce_cutoff(6)
        .run(&small)
        .unwrap();
    let fast_par = SccCoordinator::new(&db)
        .with_bruteforce_cutoff(6)
        .run_parallel(&small, 4)
        .unwrap();
    assert_eq!(fast_seq.best_names(), fast_par.best_names());
    assert_eq!(fast_seq.stats, fast_par.stats);
}
