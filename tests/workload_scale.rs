//! Medium-scale workload tests: the experiment generators driven end to
//! end, with every reported coordinating set re-verified against
//! Definition 1 and the paper's resource bounds asserted.

use rand::prelude::*;
use social_coordination::core::check_coordinating_set;
use social_coordination::core::consistent::ConsistentCoordinator;
use social_coordination::core::scc::{preprocess, SccCoordinator};
use social_coordination::gen::workloads::{
    fig4_instance, fig5_instance, fig7_instance, fig8_instance,
};

#[test]
fn fig4_workload_all_candidates_verify() {
    let (db, queries) = fig4_instance(60, 2_000);
    db.stats().reset();
    let out = SccCoordinator::new(&db).run(&queries).unwrap();
    // One candidate per suffix; every one is a real coordinating set.
    assert_eq!(out.found.len(), 60);
    for f in &out.found {
        check_coordinating_set(&db, &out.qs, &f.queries, &f.grounding).unwrap();
    }
    // Bound from Section 4: at most |Q| database queries.
    assert!(db.stats().find_one_count() <= 60);
    assert_eq!(out.stats.components, 60);
    assert_eq!(out.stats.graph_edges, 59);
}

#[test]
fn fig5_workload_verifies_across_seeds() {
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (db, queries) = fig5_instance(80, 3, 1_000, &mut rng);
        let out = SccCoordinator::new(&db).run(&queries).unwrap();
        let best = out.best().expect("all bodies satisfiable");
        check_coordinating_set(&db, &out.qs, &best.queries, &best.grounding).unwrap();
        assert!(out.stats.db_queries <= queries.len());
    }
}

#[test]
fn fig6_preprocessing_scales_and_is_sound() {
    let mut rng = StdRng::seed_from_u64(3);
    let (db, queries) = fig5_instance(500, 2, 1_000, &mut rng);
    let pre = preprocess(&db, &queries).unwrap();
    assert!(pre.removed.is_empty(), "all postconditions are matchable");
    // Every query sits in exactly one component.
    let total: usize = (0..pre.cond.len()).map(|c| pre.cond.members(c).len()).sum();
    assert_eq!(total, 500);
}

#[test]
fn fig7_worst_case_keeps_everyone() {
    let (db, config, queries) = fig7_instance(30, 200);
    db.stats().reset();
    let coordinator = ConsistentCoordinator::new(&db, config).unwrap();
    let out = coordinator.run(&queries).unwrap();
    assert_eq!(out.stats.values_considered, 200);
    assert!(out.per_value.iter().all(|(_, size)| *size == 30));
    // DB queries linear in n (options + friends + groundings), never per
    // value.
    assert!(db.stats().total() as usize <= 2 * 30 + 30 + 1);
}

#[test]
fn fig8_groundings_map_every_member_to_a_real_flight() {
    let (db, config, queries) = fig8_instance(25, 100);
    let coordinator = ConsistentCoordinator::new(&db, config.clone()).unwrap();
    let out = coordinator.run(&queries).unwrap();
    let best = out.best.unwrap();
    assert_eq!(best.members.len(), 25);
    // Each assigned flight must actually have the agreed (dest, day).
    let fl = db.table_named("Fl").unwrap();
    for (_user, key) in &best.assignment {
        let rows = fl.distinct_project(&[1, 2], &[(0, key.clone())]);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0], best.value);
    }
}

#[test]
fn parallel_sweep_agrees_at_scale() {
    let (db, config, queries) = fig7_instance(20, 300);
    let coordinator = ConsistentCoordinator::new(&db, config).unwrap();
    let seq = coordinator.run(&queries).unwrap();
    for threads in [2, 3, 8] {
        let par = coordinator.run_parallel(&queries, threads).unwrap();
        assert_eq!(seq.per_value, par.per_value);
    }
}
