//! Property-based validation of the differential closure-evaluation
//! layer: memoized evaluation must be **byte-identical** to from-scratch
//! evaluation — same candidate sets, same groundings, same best set —
//! on random batch workloads, online submit/retire interleavings, and
//! under cache-hostile interleavings of migration, rollback and
//! rebalancing.

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use social_coordination::core::engine::{
    CoordinationEngine, Placement, QueryAnswer, RebalanceConfig, RebuildEngine, SharedEngine,
};
use social_coordination::core::graphs::is_safe;
use social_coordination::core::scc::SccCoordinator;
use social_coordination::core::{ClosureCache, EntangledQuery, QueryBuilder, QuerySet};
use social_coordination::gen::workloads::{
    fig4_queries, fig5_queries, interleave_arrivals, partner_query, pool_db,
    unsat_cycle_with_spokes,
};

/// Pool rows: must cover every user id the workloads below mint.
const POOL: usize = 4096;

// ---------------------------------------------------------------------
// Batch: the memoized coordinator vs the from-scratch baseline.
// ---------------------------------------------------------------------

/// The three workload shapes named by the differential work: a chain
/// (Figure 4's list), a single cycle, and a scale-free preferential-
/// attachment graph.
fn shaped_workload(shape: usize, n: usize, seed: u64) -> Vec<EntangledQuery> {
    match shape % 3 {
        0 => fig4_queries(n),
        1 => (0..n).map(|i| partner_query(i, &[(i + 1) % n])).collect(),
        _ => {
            let mut rng = StdRng::seed_from_u64(seed);
            fig5_queries(n, 2, &mut rng)
        }
    }
}

/// Compare two batch outcomes byte-for-byte, ignoring only the
/// `ground_work` counter (the one statistic the two evaluation modes are
/// *supposed* to disagree on).
fn assert_outcomes_equal(
    diff: &social_coordination::core::scc::SccOutcome,
    scratch: &social_coordination::core::scc::SccOutcome,
    label: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        &diff.found,
        &scratch.found,
        "candidates diverged: {}",
        label
    );
    prop_assert_eq!(
        diff.best_names(),
        scratch.best_names(),
        "best set diverged: {}",
        label
    );
    let mut ds = diff.stats;
    let mut ss = scratch.stats;
    ds.ground_work = 0;
    ss.ground_work = 0;
    prop_assert_eq!(ds, ss, "stats diverged: {}", label);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Memoized batch evaluation ≡ from-scratch evaluation on random
    /// chain / cycle / scale-free workloads, across the sequential and
    /// both parallel sweeps, with and without a cross-run cache — and a
    /// second cache-warmed run (all closure verdicts served from the
    /// cache) still reproduces the from-scratch answers byte-for-byte.
    #[test]
    fn memoized_batch_equals_from_scratch(
        shape in 0usize..3,
        n in 7usize..28,
        seed in any::<u64>(),
    ) {
        let db = pool_db(POOL);
        let queries = shaped_workload(shape, n, seed);
        prop_assume!(is_safe(&QuerySet::new(queries.clone())));

        let scratch = SccCoordinator::new(&db)
            .with_from_scratch_evaluation()
            .run(&queries)
            .unwrap();

        // Default differential evaluation, no cross-run cache.
        let diff = SccCoordinator::new(&db).run(&queries).unwrap();
        assert_outcomes_equal(&diff, &scratch, "differential/sequential")?;

        // From-scratch does no closure-delta work; differential must do
        // no more than it (and strictly less once any closure has >1
        // member — covered deterministically by the scaling tests).
        prop_assert!(scratch.stats.ground_work >= diff.stats.ground_work);

        // Parallel sweeps share the same memo table.
        let par = SccCoordinator::new(&db).run_parallel(&queries, 3).unwrap();
        assert_outcomes_equal(&par, &scratch, "differential/parallel")?;

        // Cross-run cache: a cold run fills it, a warm run answers from
        // it. Warm runs skip grounding probes, so compare answers only.
        let cache = Arc::new(ClosureCache::new());
        let cached = SccCoordinator::new(&db).with_closure_cache(Arc::clone(&cache));
        let cold = cached.run(&queries).unwrap();
        assert_outcomes_equal(&cold, &scratch, "cached/cold")?;
        let warm = cached.run(&queries).unwrap();
        prop_assert_eq!(&warm.found, &scratch.found, "cached/warm candidates");
        prop_assert_eq!(warm.best_names(), scratch.best_names(), "cached/warm best");
        let warm_par = cached.run_parallel(&queries, 3).unwrap();
        prop_assert_eq!(&warm_par.found, &scratch.found, "cached/warm parallel");
    }
}

// ---------------------------------------------------------------------
// Online: delta re-evaluation vs full re-evaluation.
// ---------------------------------------------------------------------

/// One closed chain of `size` partner queries starting at `offset`;
/// the free tail retires the whole group once it arrives.
fn chain_group(offset: usize, size: usize) -> Vec<EntangledQuery> {
    (0..size)
        .map(|i| {
            let partners: Vec<usize> = if i + 1 < size {
                vec![offset + i + 1]
            } else {
                vec![]
            };
            partner_query(offset + i, &partners)
        })
        .collect()
}

fn groups(sizes: &[usize]) -> Vec<Vec<EntangledQuery>> {
    sizes
        .iter()
        .enumerate()
        .map(|(g, &size)| chain_group(100 * g, size))
        .collect()
}

/// A query that is unsafe *on its own*: its postcondition `R(u, z)`
/// unifies with both of its heads `R(u, x)` and `R(u, y)` (Definition 2
/// counts a query's own heads). Submitting it is always rejected — and
/// because the postcondition also unifies with user `u`'s pending head,
/// the sharded engine first merges `u`'s component, then must roll the
/// merge back when evaluation fails.
fn unsafe_poison(user: usize) -> EntangledQuery {
    QueryBuilder::new(format!("poison{user}"))
        .postcondition("R", |a| a.constant(format!("u{user}")).var("z"))
        .head("R", |a| a.constant(format!("u{user}")).var("x"))
        .head("R", |a| a.constant(format!("u{user}")).var("y"))
        .body("S", |a| a.var("x").constant(format!("t{user}")))
        .body("S", |a| a.var("y").constant(format!("t{user}")))
        .build()
        .unwrap()
}

fn sorted_answers(mut answers: Vec<QueryAnswer>) -> Vec<QueryAnswer> {
    answers.sort_by(|a, b| a.query.cmp(&b.query));
    answers
}

fn sorted_query_names<'a>(queries: impl IntoIterator<Item = &'a EntangledQuery>) -> Vec<String> {
    let mut names: Vec<String> = queries.into_iter().map(|q| q.name().to_string()).collect();
    names.sort_unstable();
    names
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A memoized online engine delivers, submit by submit, exactly the
    /// answers of (a) a memo-free engine and (b) the from-scratch
    /// `RebuildEngine`, over random submit/retire interleavings — and
    /// all three end with the same pending set.
    #[test]
    fn online_delta_reevaluation_equals_full(
        sizes in prop::collection::vec(1usize..=9, 2..=5),
        seed in any::<u64>(),
    ) {
        let db = pool_db(POOL);
        let arrivals = interleave_arrivals(groups(&sizes), seed);

        let mut memoized = CoordinationEngine::new(&db);
        let mut memo_free = CoordinationEngine::memo_free(&db);
        let mut rebuild = RebuildEngine::new(&db);

        for (i, q) in arrivals.iter().enumerate() {
            let a = memoized.submit(q.clone()).unwrap();
            let b = memo_free.submit(q.clone()).unwrap();
            let c = rebuild.submit(q.clone()).unwrap();
            let a = sorted_answers(a.answers);
            prop_assert_eq!(
                &a,
                &sorted_answers(b.answers),
                "memoized vs memo-free diverged at submit {} (seed {})", i, seed
            );
            prop_assert_eq!(
                &a,
                &sorted_answers(c.answers),
                "memoized vs rebuild diverged at submit {} (seed {})", i, seed
            );
        }
        let pending = sorted_query_names(memoized.pending().iter().copied());
        prop_assert_eq!(
            &pending,
            &sorted_query_names(memo_free.pending().iter().copied())
        );
        prop_assert_eq!(&pending, &sorted_query_names(rebuild.pending().iter()));
        prop_assert_eq!(memoized.delivered(), memo_free.delivered());
        prop_assert_eq!(memoized.delivered(), rebuild.delivered());
    }

    /// Cache-invalidation fuzz: a memoized sharded engine under random
    /// migrations (rebalance passes), rejected-submit rollbacks (unsafe
    /// duplicate heads) and retires stays byte-identical to a memo-free
    /// sequential engine.
    #[test]
    fn cache_survives_migration_rollback_and_rebalance(
        sizes in prop::collection::vec(2usize..=8, 2..=4),
        seed in any::<u64>(),
        rebalance_every in 2usize..=7,
        poison_every in 3usize..=8,
    ) {
        // The vendored proptest shim shrinks below the strategy bounds;
        // keep the body total on degenerate inputs so shrunk cases stay
        // interpretable.
        let rebalance_every = rebalance_every.max(1);
        let poison_every = poison_every.max(1);
        prop_assume!(!sizes.is_empty());

        let db = pool_db(POOL);
        let arrivals = interleave_arrivals(groups(&sizes), seed);
        let sharded = SharedEngine::with_config(
            &db,
            3,
            Placement::RoundRobin,
            RebalanceConfig { skew_threshold: 0.34, min_window_load: 8, max_moves: 8 },
        );
        let mut sequential = CoordinationEngine::memo_free(&db);

        for (i, q) in arrivals.iter().enumerate() {
            let a = sharded.submit(q.clone()).unwrap();
            let b = sequential.submit(q.clone()).unwrap();
            prop_assert_eq!(
                sorted_answers(a.answers),
                sorted_answers(b.answers),
                "answers diverged at submit {} (seed {})", i, seed
            );
            if (i + 1) % poison_every == 0 {
                // An intrinsically unsafe submit: both engines must
                // refuse it, and the sharded engine must roll back the
                // component merge it performed on the way in — without
                // poisoning any cached closure verdict.
                let group = (i + 1) % sizes.len();
                let poison = unsafe_poison(100 * group);
                prop_assert!(sharded.submit(poison.clone()).is_err());
                prop_assert!(sequential.submit(poison).is_err());
            }
            if (i + 1) % rebalance_every == 0 {
                sharded.rebalance();
            }
        }
        prop_assert_eq!(
            sorted_query_names(sharded.pending().iter()),
            sorted_query_names(sequential.pending().iter().copied())
        );
        prop_assert_eq!(sharded.delivered(), sequential.delivered());
    }
}

// ---------------------------------------------------------------------
// Deterministic cross-run cache behaviour on an unsatisfiable core.
// ---------------------------------------------------------------------

/// A failed cycle's verdict is cached: every spoke submit re-confronts
/// the engine with the same unsatisfiable 7-member cycle, and the
/// memoized engine answers from the verdict cache without re-probing the
/// database, while a memo-free twin pays one grounding probe per spoke.
#[test]
fn failed_cycle_verdict_is_served_from_cache() {
    const SPOKES: usize = 5;
    let (cycle, spokes) = unsat_cycle_with_spokes(7, SPOKES);

    // Twin databases: probe statistics are per-database, and the two
    // engines must not pollute each other's counters.
    let memo_db = pool_db(64);
    let plain_db = pool_db(64);
    let mut memoized = CoordinationEngine::new(&memo_db);
    let mut memo_free = CoordinationEngine::memo_free(&plain_db);
    assert!(memoized.memo_stats().is_some());
    assert!(memo_free.memo_stats().is_none());

    for q in cycle.iter().chain(spokes.iter()) {
        let a = memoized.submit(q.clone()).unwrap();
        let b = memo_free.submit(q.clone()).unwrap();
        assert_eq!(sorted_answers(a.answers), sorted_answers(b.answers));
    }
    // Nothing coordinates: the cycle is unsatisfiable and the spokes
    // depend on it.
    assert_eq!(memoized.delivered(), 0);
    assert_eq!(memoized.pending().len(), 7 + SPOKES);

    // The memoized engine probed the cycle once and then served every
    // spoke's re-evaluation from the cached Failed verdict.
    let stats = memoized.memo_stats().unwrap();
    assert!(
        stats.hits >= SPOKES as u64,
        "expected ≥{SPOKES} cache hits, got {stats:?}"
    );
    let memo_probes = memo_db.stats().find_one_count();
    let plain_probes = plain_db.stats().find_one_count();
    assert!(
        plain_probes >= memo_probes + SPOKES as u64,
        "memo-free twin should pay ≥1 extra probe per spoke: memoized {memo_probes}, memo-free {plain_probes}"
    );
}
