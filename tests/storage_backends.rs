//! Engine-level backend equivalence: the online coordination engine and
//! the batch SCC coordinator must deliver identical outcomes —
//! submit-by-submit answers included — no matter which storage backend
//! the database uses.

use social_coordination::core::engine::CoordinationEngine;
use social_coordination::core::scc::SccCoordinator;
use social_coordination::db::{BackendKind, Symbol};
use social_coordination::gen::workloads::{
    activity_chain_queries, activity_db, fig4_queries, pool_db,
};

/// Submit the Figure 4 chain query-by-query on every backend and
/// compare each submit's full answer set.
#[test]
fn online_chain_outcomes_identical_per_submit() {
    let n = 25;
    let queries = fig4_queries(n);
    let mut per_backend = Vec::new();
    for kind in BackendKind::ALL {
        let db = rebuild_with_backend(&pool_db(200), kind);
        let mut engine = CoordinationEngine::new(&db);
        let mut transcript = Vec::new();
        for q in queries.clone() {
            let r = engine.submit(q).unwrap();
            transcript.push(r.answers);
        }
        assert_eq!(engine.pending().len(), 0, "{}", kind.name());
        per_backend.push(transcript);
    }
    for w in per_backend.windows(2) {
        assert_eq!(w[0], w[1]);
    }
}

/// `pool_db` builds on the default backend; copy its rows into a fresh
/// database using `kind` for every table.
fn rebuild_with_backend(
    src: &social_coordination::db::Database,
    kind: BackendKind,
) -> social_coordination::db::Database {
    let mut db = social_coordination::db::Database::with_backend(kind);
    for rel in src.relations() {
        let t = src.table(rel).unwrap();
        let attrs: Vec<&str> = t.schema().attrs().iter().map(Symbol::as_str).collect();
        db.create_table(rel.as_str(), &attrs).unwrap();
        for row in t.iter_rows() {
            db.insert(rel.as_str(), row).unwrap();
        }
    }
    db
}

/// The activity-table chain (two body constants per query — the
/// composite-index stress shape) coordinates identically online on
/// every backend, submit by submit.
#[test]
fn online_activity_chain_outcomes_identical_per_submit() {
    let rows = 2_500; // k = 50
    let n = 20;
    let queries = activity_chain_queries(n, rows);
    let mut per_backend = Vec::new();
    for kind in BackendKind::ALL {
        let db = activity_db(rows, kind);
        let mut engine = CoordinationEngine::new(&db);
        let mut transcript = Vec::new();
        for q in queries.clone() {
            transcript.push(engine.submit(q).unwrap().answers);
        }
        assert_eq!(engine.delivered(), n, "{}", kind.name());
        per_backend.push(transcript);
    }
    for w in per_backend.windows(2) {
        assert_eq!(w[0], w[1]);
    }
}

/// Batch coordination over the activity chain: identical coordinating
/// sets and identical per-query answers on every backend.
#[test]
fn batch_activity_outcomes_identical() {
    let rows = 2_500;
    let n = 15;
    let queries = activity_chain_queries(n, rows);
    let mut outcomes = Vec::new();
    for kind in BackendKind::ALL {
        let db = activity_db(rows, kind);
        let out = SccCoordinator::new(&db).run(&queries).unwrap();
        assert_eq!(out.found.len(), n, "{}", kind.name());
        let best: Vec<String> = out.best_names().iter().map(ToString::to_string).collect();
        assert_eq!(best.len(), n, "{}", kind.name());
        outcomes.push(best);
    }
    for w in outcomes.windows(2) {
        assert_eq!(w[0], w[1]);
    }
}
