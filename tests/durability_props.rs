//! Recovery determinism for the durable online engines:
//! `replay(snapshot + wal) ≡ live engine` over random submit/retire
//! interleavings, crash-point truncation fuzz against the acknowledged
//! prefix, and sharded recovery with concurrent submitters.

use proptest::prelude::*;
use social_coordination::core::engine::CoordinationEngine;
use social_coordination::core::persist::{
    DurabilityOptions, DurableCoordinationEngine, DurableSharedEngine, EntangledQueryCodec,
};
use social_coordination::core::scc::SccCoordinator;
use social_coordination::core::EntangledQuery;
use social_coordination::gen::workloads::{interleave_arrivals, partner_query, pool_db};
use social_coordination::store::temp::TempDir;
use social_coordination::store::wal::read_wal;
use social_coordination::store::{CommitRecord, QueryCodec};

/// Pool rows: must cover every user id the workloads mint (each
/// `partner_query(i, …)` body selects pool row `i`).
const POOL: usize = 4096;

/// One group: `size` queries in a chain (last member free, so the group
/// retires when complete) or a cycle.
fn group(offset: usize, size: usize, cycle: bool) -> Vec<EntangledQuery> {
    (0..size)
        .map(|i| {
            let partners: Vec<usize> = if i + 1 < size {
                vec![offset + i + 1]
            } else if cycle && size > 1 {
                vec![offset]
            } else {
                vec![]
            };
            partner_query(offset + i, &partners)
        })
        .collect()
}

fn sorted_names<'a>(queries: impl IntoIterator<Item = &'a EntangledQuery>) -> Vec<String> {
    let mut names: Vec<String> = queries.into_iter().map(|q| q.name().to_string()).collect();
    names.sort_unstable();
    names
}

fn opts(snapshot_every: Option<u64>) -> DurabilityOptions {
    DurabilityOptions {
        snapshot_every,
        ..DurabilityOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole property: crash after a random prefix of a random
    /// submit/retire interleaving (snapshots on or off), recover, and
    /// the restored engine's pending set, component structure, and
    /// every subsequent coordination match an engine that never
    /// crashed. At the end, nothing coordinatable is left pending.
    #[test]
    fn replay_of_snapshot_plus_wal_equals_live_engine(
        shapes in prop::collection::vec((prop::arbitrary::any::<bool>(), 1usize..=5), 1..=4),
        seed in prop::arbitrary::any::<u64>(),
        crash_at in 0usize..=100,
        snapshot_every in prop::option::of(1u64..=6),
    ) {
        let db = pool_db(POOL);
        let groups: Vec<Vec<EntangledQuery>> = shapes
            .iter()
            .enumerate()
            .map(|(g, &(cycle, size))| group(100 * g, size, cycle))
            .collect();
        let arrivals = interleave_arrivals(groups, seed);
        let crash_at = crash_at % (arrivals.len() + 1);
        let dir = TempDir::new("durability-props");

        // Uninterrupted twin.
        let mut live = CoordinationEngine::new(&db);
        // Durable engine: submit a prefix, then "crash" (drop).
        {
            let mut durable =
                DurableCoordinationEngine::open_with(&db, dir.path(), opts(snapshot_every))
                    .unwrap();
            for q in &arrivals[..crash_at] {
                durable.submit(q.clone()).unwrap();
                live.submit(q.clone()).unwrap();
            }
        }

        let delivered_before_crash = live.delivered();
        let mut recovered =
            DurableCoordinationEngine::open_with(&db, dir.path(), opts(snapshot_every)).unwrap();
        if snapshot_every.is_some() && crash_at as u64 >= snapshot_every.unwrap() {
            prop_assert!(recovered.recovery_report().had_snapshot);
        }
        prop_assert_eq!(
            sorted_names(recovered.pending()),
            sorted_names(live.pending().iter().copied()),
            "recovered pending set diverged at crash point {}", crash_at
        );
        prop_assert_eq!(recovered.component_count(), live.component_count());
        recovered.validate_invariants();

        // Subsequent coordination results must be identical, step by
        // step, through the rest of the workload.
        for q in &arrivals[crash_at..] {
            let a = recovered.submit(q.clone()).unwrap();
            let b = live.submit(q.clone()).unwrap();
            let mut a_sorted = a.answers.clone();
            let mut b_sorted = b.answers.clone();
            a_sorted.sort_by(|x, y| x.query.cmp(&y.query));
            b_sorted.sort_by(|x, y| x.query.cmp(&y.query));
            prop_assert_eq!(a_sorted, b_sorted, "post-recovery answers diverged");
        }
        // `delivered` counts an engine's own lifetime; the recovered
        // engine restarts at zero, so compare post-crash deltas.
        prop_assert_eq!(
            recovered.delivered(),
            live.delivered() - delivered_before_crash
        );
        prop_assert_eq!(
            sorted_names(recovered.pending()),
            sorted_names(live.pending().iter().copied())
        );

        // Fresh batch cross-check: recovery left nothing coordinatable.
        let pending: Vec<EntangledQuery> =
            recovered.pending().into_iter().cloned().collect();
        let batch = SccCoordinator::new(&db).run(&pending).unwrap();
        prop_assert!(batch.best().is_none());
    }

    /// Crash-point fuzz at the byte level: truncating the WAL anywhere —
    /// including mid-record — recovers exactly the state after the
    /// longest fully-logged prefix of acknowledged submits.
    #[test]
    fn truncated_wal_recovers_the_acknowledged_prefix(
        shapes in prop::collection::vec((prop::arbitrary::any::<bool>(), 1usize..=4), 1..=3),
        seed in prop::arbitrary::any::<u64>(),
        cut_per_mille in 0usize..=1000,
    ) {
        let db = pool_db(POOL);
        let groups: Vec<Vec<EntangledQuery>> = shapes
            .iter()
            .enumerate()
            .map(|(g, &(cycle, size))| group(100 * g, size, cycle))
            .collect();
        let arrivals = interleave_arrivals(groups, seed);
        let dir = TempDir::new("durability-cut");

        // Drive, recording (wal end, pending set) after every ack.
        let mut timeline: Vec<(u64, Vec<String>)> = vec![(0, Vec::new())];
        {
            let mut durable =
                DurableCoordinationEngine::open_with(&db, dir.path(), opts(None)).unwrap();
            timeline.push((durable.wal_len(), Vec::new()));
            for q in &arrivals {
                durable.submit(q.clone()).unwrap();
                timeline.push((
                    durable.wal_len(),
                    sorted_names(durable.pending().iter().copied()),
                ));
            }
        }
        let wal = std::fs::read_dir(dir.path())
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("wal-"))
            })
            .unwrap();
        let full = std::fs::read(&wal).unwrap();
        let cut = full.len() * cut_per_mille / 1000;

        let crash_dir = TempDir::new("durability-cut-case");
        std::fs::write(crash_dir.path().join(wal.file_name().unwrap()), &full[..cut]).unwrap();
        let mut recovered =
            DurableCoordinationEngine::open_with(&db, crash_dir.path(), opts(None)).unwrap();
        let expected = &timeline
            .iter()
            .rev()
            .find(|(len, _)| *len <= cut as u64)
            .unwrap()
            .1;
        prop_assert_eq!(
            &sorted_names(recovered.pending().iter().copied()),
            expected,
            "cut at byte {} of {}", cut, full.len()
        );
        recovered.validate_invariants();
        // The truncated store remains appendable and durable.
        recovered.submit(partner_query(999, &[998])).unwrap();
        drop(recovered);
        let reopened =
            DurableCoordinationEngine::open_with(&db, crash_dir.path(), opts(None)).unwrap();
        prop_assert!(sorted_names(reopened.pending().iter().copied())
            .contains(&"q999".to_string()));
    }

    /// The memo/WAL crash window: the keystone submit coordinates the
    /// chain, which invalidates the evaluator's cached closure verdicts
    /// (`note_departed`) *before* the crash destroys the commit record.
    /// Recovery must not depend on the lost memo state: the replayed
    /// engine starts from a fresh cache, reaches the same pending set,
    /// and re-coordinating the keystone yields answers byte-identical
    /// both to the original acknowledgment and to a memo-free twin.
    #[test]
    fn crash_between_memo_invalidation_and_wal_commit_replays_identically(
        size in 7usize..=10,
        probe in 0usize..=2,
    ) {
        // The vendored proptest shim shrinks below strategy bounds; keep
        // the body total (and above the bruteforce cutoff) regardless.
        let size = size.max(7);
        let db = pool_db(POOL);
        let chain = group(0, size, false);
        let keystone = chain[size - 1].clone();
        let dir = TempDir::new("memo-crash-window");

        let (wal_before, original) = {
            let mut durable =
                DurableCoordinationEngine::open_with(&db, dir.path(), opts(None)).unwrap();
            for q in &chain[..size - 1] {
                prop_assert!(!durable.submit(q.clone()).unwrap().coordinated());
            }
            // A few unrelated still-pending probes (their partners never
            // arrive) so the recovered state holds more than the chain.
            for p in 0..probe {
                durable.submit(partner_query(500 + p, &[600 + p])).unwrap();
            }
            let wal_before = durable.wal_len();
            let r = durable.submit(keystone.clone()).unwrap();
            prop_assert!(r.coordinated());
            let mut answers = r.answers;
            answers.sort_by(|x, y| x.query.cmp(&y.query));
            (wal_before, answers)
        }; // crash — after the ack, after memo invalidation

        // Destroy the keystone's commit record: truncate the WAL back to
        // its pre-submit length.
        let wal = std::fs::read_dir(dir.path())
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("wal-"))
            })
            .unwrap();
        let full = std::fs::read(&wal).unwrap();
        prop_assert!((wal_before as usize) < full.len());
        std::fs::write(&wal, &full[..wal_before as usize]).unwrap();

        // Recover (fresh engine, fresh memo state): the whole chain is
        // pending again, as if the keystone had never arrived.
        let mut recovered =
            DurableCoordinationEngine::open_with(&db, dir.path(), opts(None)).unwrap();
        recovered.validate_invariants();
        let mut expected: Vec<String> = sorted_names(chain[..size - 1].iter());
        for p in 0..probe {
            expected.push(format!("q{}", 500 + p));
        }
        expected.sort_unstable();
        prop_assert_eq!(
            sorted_names(recovered.pending().iter().copied()),
            expected,
            "recovery must replay exactly the pre-keystone pending set"
        );

        // A memo-free twin that never crashed and never cached anything.
        let mut twin = CoordinationEngine::memo_free(&db);
        for q in &chain[..size - 1] {
            twin.submit(q.clone()).unwrap();
        }
        let replayed = recovered.submit(keystone.clone()).unwrap();
        let scratch = twin.submit(keystone).unwrap();
        let mut replayed = replayed.answers;
        replayed.sort_by(|x, y| x.query.cmp(&y.query));
        let mut scratch = scratch.answers;
        scratch.sort_by(|x, y| x.query.cmp(&y.query));
        prop_assert_eq!(&replayed, &original, "replay diverged from the lost ack");
        prop_assert_eq!(&replayed, &scratch, "replay diverged from memo-free evaluation");
    }
}

/// Sharded durability: concurrent submitters, per-shard logs, snapshot
/// rotation mid-stream; the recovered service completes every chain.
#[test]
fn sharded_durable_engine_recovers_concurrent_workload() {
    const THREADS: usize = 4;
    const CHAINS_PER_THREAD: usize = 3;
    const CHAIN: usize = 4;

    let db = pool_db(POOL);
    let dir = TempDir::new("durable-sharded-stress");
    {
        let engine =
            DurableSharedEngine::open_with(&db, dir.path(), THREADS, opts(Some(16))).unwrap();
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let engine = &engine;
                s.spawn(move || {
                    for c in 0..CHAINS_PER_THREAD {
                        let offset = 1_000 * t + 100 * c;
                        // Submit all but the chain-closing member.
                        for q in group(offset, CHAIN, false).into_iter().take(CHAIN - 1) {
                            let r = engine.submit(q).unwrap();
                            assert!(!r.coordinated());
                        }
                    }
                });
            }
        });
        assert_eq!(
            engine.pending_count(),
            THREADS * CHAINS_PER_THREAD * (CHAIN - 1)
        );
    } // crash

    let engine = DurableSharedEngine::open_with(&db, dir.path(), THREADS, opts(Some(16))).unwrap();
    assert_eq!(
        engine.pending_count(),
        THREADS * CHAINS_PER_THREAD * (CHAIN - 1)
    );
    assert_eq!(engine.component_count(), THREADS * CHAINS_PER_THREAD);
    // Every recovered chain completes when its free tail arrives.
    for t in 0..THREADS {
        for c in 0..CHAINS_PER_THREAD {
            let offset = 1_000 * t + 100 * c;
            let tail = partner_query(offset + CHAIN - 1, &[]);
            let r = engine.submit(tail).unwrap();
            assert!(r.coordinated(), "chain at offset {offset} lost");
            assert_eq!(r.answers.len(), CHAIN);
        }
    }
    assert_eq!(engine.pending_count(), 0);
}

/// The sharded acknowledgment-window invariant, fuzzed across shard
/// streams under concurrent coordinating submitters: at the moment a
/// coordination is acknowledged, the commit record of **every** partner
/// it retired is already appended to its stream. Each coordinated ack
/// samples the clean end offset of every stream (each sample is a
/// record boundary — appends hold the stream lock); truncating every
/// stream at those offsets is the worst crash that can follow the ack,
/// and the delivering record plus all its partners must survive it.
/// Before the flush barrier, a partner's record could still be in
/// flight on another stream at ack time, and this test's cut would
/// drop it while keeping the record that names it.
#[test]
fn delivered_coordination_names_only_logged_partners() {
    const THREADS: usize = 4;
    const CHAINS_PER_THREAD: usize = 6;
    const CHAIN: usize = 3;

    let db = pool_db(POOL);
    let dir = TempDir::new("durable-ack-window");
    // (keystone name, per-stream clean lengths sampled right after the
    // coordinated ack)
    let samples: std::sync::Mutex<Vec<(String, Vec<u64>)>> = std::sync::Mutex::new(Vec::new());
    {
        let engine = DurableSharedEngine::open_with(&db, dir.path(), THREADS, opts(None)).unwrap();
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let engine = &engine;
                let samples = &samples;
                s.spawn(move || {
                    for c in 0..CHAINS_PER_THREAD {
                        let offset = 1_000 * t + 100 * c;
                        for q in group(offset, CHAIN, false).into_iter().take(CHAIN - 1) {
                            assert!(!engine.submit(q).unwrap().coordinated());
                        }
                        // The free tail coordinates and retires the
                        // chain: sample the crash cut at the ack.
                        let tail = partner_query(offset + CHAIN - 1, &[]);
                        let r = engine.submit(tail).unwrap();
                        assert!(r.coordinated());
                        let lens = engine.wal_stream_lens();
                        samples
                            .lock()
                            .unwrap()
                            .push((format!("q{}", offset + CHAIN - 1), lens));
                    }
                });
            }
        });
        assert_eq!(engine.pending_count(), 0);
    } // crash

    // Decode every stream's records with their end offsets.
    let mut streams: Vec<Vec<(u64, CommitRecord)>> = Vec::new();
    for s in 0..THREADS {
        let path = dir.path().join(format!("wal-{:020}-{:04}.log", 0, s));
        let contents = read_wal(&path).unwrap();
        assert!(!contents.torn, "stream {s} torn without a crash");
        streams.push(
            contents
                .records
                .iter()
                .zip(&contents.record_ends)
                .map(|(payload, &end)| (end, CommitRecord::decode(payload).unwrap()))
                .collect(),
        );
    }
    let keystone_of = |record: &CommitRecord| {
        EntangledQueryCodec
            .decode(&record.query)
            .expect("logged query decodes")
            .name()
            .to_string()
    };

    let samples = samples.into_inner().unwrap();
    assert_eq!(samples.len(), THREADS * CHAINS_PER_THREAD);
    for (keystone, lens) in &samples {
        // The records surviving a crash at this ack's sampled offsets.
        let visible: Vec<&CommitRecord> = streams
            .iter()
            .zip(lens)
            .flat_map(|(records, &cut)| {
                records
                    .iter()
                    .filter(move |(end, _)| *end <= cut)
                    .map(|(_, r)| r)
            })
            .collect();
        let visible_seqs: std::collections::HashSet<u64> = visible.iter().map(|r| r.seq).collect();
        // The acknowledged coordination's own record survived the cut…
        let delivered = visible
            .iter()
            .find(|r| !r.retired.is_empty() && keystone_of(r) == *keystone)
            .unwrap_or_else(|| panic!("{keystone}'s delivered record lost by its own ack cut"));
        // …and so did every partner it named.
        assert_eq!(delivered.retired.len(), CHAIN);
        for seq in &delivered.retired {
            assert!(
                visible_seqs.contains(seq),
                "{keystone}'s delivery names partner seq {seq} whose commit record \
                 was not yet appended at ack time"
            );
        }
    }

    // Quiescent full-file check: every record's retired seqs are logged
    // somewhere — nothing in the final log names a phantom.
    let all_seqs: std::collections::HashSet<u64> =
        streams.iter().flatten().map(|(_, r)| r.seq).collect();
    for (_, record) in streams.iter().flatten() {
        for seq in &record.retired {
            assert!(all_seqs.contains(seq), "retire of never-logged seq {seq}");
        }
    }
}

/// A crash mid-rotation (snapshot renamed, WALs of the new epoch never
/// created) still recovers the full pending set.
#[test]
fn crash_between_snapshot_and_new_wals_recovers() {
    let db = pool_db(POOL);
    let dir = TempDir::new("durable-rotation-crash");
    {
        let mut engine = DurableCoordinationEngine::open_with(&db, dir.path(), opts(None)).unwrap();
        for q in group(0, 4, false).into_iter().take(3) {
            engine.submit(q).unwrap();
        }
        engine.snapshot().unwrap();
    }
    // Simulate the crash window: delete the fresh epoch's WAL files.
    for entry in std::fs::read_dir(dir.path()).unwrap() {
        let p = entry.unwrap().path();
        if p.file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with("wal-"))
        {
            std::fs::remove_file(p).unwrap();
        }
    }
    let engine = DurableCoordinationEngine::open_with(&db, dir.path(), opts(None)).unwrap();
    assert!(engine.recovery_report().had_snapshot);
    assert_eq!(engine.pending().len(), 3);
}
