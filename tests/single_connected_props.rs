//! Property-based validation of the single-connected solver (Theorem 3)
//! against exhaustive search.

use proptest::prelude::*;
use social_coordination::core::graphs::check_single_connected;
use social_coordination::core::single_connected::single_connected_coordinate;
use social_coordination::core::{
    bruteforce, check_coordinating_set, EntangledQuery, QueryBuilder, QuerySet,
};
use social_coordination::db::{Database, Value};

/// Random single-postcondition instances: node `i > 0` requires the head
/// *label* of its parent in a random forest; labels may repeat, which
/// creates the alternative branches (unsafe sets) that single-connected
/// solving is about.
#[derive(Clone, Debug)]
struct Spec {
    /// parent[i] < i, or usize::MAX for roots; parent[0] is a root.
    parents: Vec<usize>,
    /// Head label of each node (repeats allowed).
    labels: Vec<usize>,
    /// Body tag of each node (tags ≥ 4 are unsatisfiable).
    body_tags: Vec<usize>,
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    (2usize..7).prop_flat_map(|n| {
        (
            // parent[i] uniform in 0..i (converted to a real forest below).
            prop::collection::vec(0usize..6, n),
            prop::collection::vec(0usize..4, n),
            prop::collection::vec(0usize..6, n),
        )
            .prop_map(move |(rawp, labels, body_tags)| {
                let parents = (0..n)
                    .map(|i| {
                        if i == 0 || rawp[i] % 3 == 0 {
                            usize::MAX // root
                        } else {
                            rawp[i] % i
                        }
                    })
                    .collect();
                Spec {
                    parents,
                    labels,
                    body_tags,
                }
            })
    })
}

fn build(spec: &Spec) -> (Database, Vec<EntangledQuery>) {
    let mut db = Database::new();
    db.create_table("S", &["id", "tag"]).unwrap();
    for i in 0..8i64 {
        db.insert("S", vec![Value::int(i), Value::str(format!("t{}", i % 4))])
            .unwrap();
    }
    let n = spec.parents.len();
    let queries = (0..n)
        .map(|i| {
            let mut b = QueryBuilder::new(format!("q{i}"));
            if spec.parents[i] != usize::MAX {
                let lbl = spec.labels[spec.parents[i]];
                b = b.postcondition("R", |a| a.constant(format!("L{lbl}")).var("y"));
            }
            b.head("R", |a| a.constant(format!("L{}", spec.labels[i])).var("x"))
                .body("S", |a| {
                    a.var("x").constant(format!("t{}", spec.body_tags[i]))
                })
                .build()
                .unwrap()
        })
        .collect();
    (db, queries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// On single-connected instances the dedicated solver matches
    /// exhaustive search on existence, and its output always verifies.
    #[test]
    fn single_connected_matches_bruteforce(spec in spec_strategy()) {
        let (db, queries) = build(&spec);
        // Repeated labels can break path-uniqueness; only keep instances
        // inside the fragment.
        prop_assume!(check_single_connected(&QuerySet::new(queries.clone())).is_ok());

        let sc = single_connected_coordinate(&db, &queries).unwrap();
        let bf = bruteforce::any_coordinating_set(&db, &queries).unwrap();
        prop_assert_eq!(sc.best().is_some(), bf.best.is_some(), "spec: {:?}", spec);

        for f in &sc.found {
            check_coordinating_set(&db, &sc.qs, &f.queries, &f.grounding)
                .map_err(|v| TestCaseError::fail(format!("invalid set: {v}")))?;
        }
    }
}
