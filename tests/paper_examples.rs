//! End-to-end regression tests pinning the paper's worked examples.

use social_coordination::core::consistent::{
    ConsistentConfig, ConsistentCoordinator, ConsistentQuery,
};
use social_coordination::core::engine::CoordinationEngine;
use social_coordination::core::graphs::{is_safe, is_unique};
use social_coordination::core::gupta::gupta_coordinate;
use social_coordination::core::scc::SccCoordinator;
use social_coordination::core::{check_coordinating_set, QueryBuilder, QuerySet};
use social_coordination::db::{Database, Value};
use social_coordination::gen::tables;

/// Section 2.1: Gwyneth & Chris to Zurich.
#[test]
fn gwyneth_and_chris_fly_together() {
    let mut db = Database::new();
    tables::flights_simple(&mut db, &[(101, "Zurich"), (102, "Paris")]).unwrap();

    let q1 = QueryBuilder::new("q1")
        .postcondition("R", |a| a.constant("Chris").var("x"))
        .head("R", |a| a.constant("Gwyneth").var("x"))
        .body("Flights", |a| a.var("x").constant("Zurich"))
        .build()
        .unwrap();
    let q2 = QueryBuilder::new("q2")
        .head("R", |a| a.constant("Chris").var("y"))
        .body("Flights", |a| a.var("y").constant("Zurich"))
        .build()
        .unwrap();

    let out = SccCoordinator::new(&db)
        .run(&[q1.clone(), q2.clone()])
        .unwrap();
    let best = out.best().unwrap();
    assert_eq!(best.queries.len(), 2);
    // Both get flight 101 — the choose-1 semantics picks one flight even
    // if several exist.
    let qs = QuerySet::new(vec![q1, q2]);
    check_coordinating_set(&db, &qs, &best.queries, &best.grounding).unwrap();
    let g0 = out
        .qs
        .global_var(best.queries[0], social_coordination::db::Var(0));
    let g1 = out
        .qs
        .global_var(best.queries[1], social_coordination::db::Var(0));
    assert_eq!(best.grounding.get(g0), best.grounding.get(g1));
}

/// Example 1: the Coldplay band's queries are safe+unique; Gwyneth's
/// arrival preserves safety but destroys uniqueness, moving the instance
/// out of the Gupta et al. fragment — and the SCC algorithm still solves
/// it.
#[test]
fn example_1_gwyneth_breaks_uniqueness_but_scc_copes() {
    let mut db = Database::new();
    tables::flights_simple(&mut db, &[(7, "Zurich")]).unwrap();

    let band: Vec<_> = [("chris", "guy"), ("guy", "chris")]
        .iter()
        .map(|(me, partner)| {
            QueryBuilder::new(*me)
                .postcondition("R", |a| a.constant(*partner).var("x"))
                .head("R", |a| a.constant(*me).var("x"))
                .body("Flights", |a| a.var("x").constant("Zurich"))
                .build()
                .unwrap()
        })
        .collect();

    let qs = QuerySet::new(band.clone());
    assert!(is_safe(&qs) && is_unique(&qs));
    assert!(gupta_coordinate(&db, &band).unwrap().is_some());

    let mut with_gwyneth = band.clone();
    with_gwyneth.push(
        QueryBuilder::new("gwyneth")
            .postcondition("R", |a| a.constant("chris").var("z"))
            .head("R", |a| a.constant("gwyneth").var("z"))
            .body("Flights", |a| a.var("z").constant("Zurich"))
            .build()
            .unwrap(),
    );
    let qs3 = QuerySet::new(with_gwyneth.clone());
    assert!(is_safe(&qs3));
    assert!(!is_unique(&qs3));
    // Baseline refuses; SCC algorithm finds everyone a flight.
    assert!(gupta_coordinate(&db, &with_gwyneth).is_err());
    let out = SccCoordinator::new(&db).run(&with_gwyneth).unwrap();
    assert_eq!(out.best().unwrap().queries.len(), 3);
}

/// Section 2.2/4: the flight-hotel example. The best coordinating set is
/// {qC, qG} (Paris has both flight and hotel; Jonny/Will's demands clash).
#[test]
fn flight_hotel_example_resolves_to_chris_and_guy() {
    let mut db = Database::new();
    db.create_table("F", &["id", "dest"]).unwrap();
    db.create_table("H", &["id", "loc"]).unwrap();
    for (id, d) in [(1, "Paris"), (2, "Athens"), (3, "Madrid")] {
        db.insert("F", vec![Value::int(id), Value::str(d)]).unwrap();
    }
    for (id, l) in [(10, "Paris"), (11, "Athens")] {
        db.insert("H", vec![Value::int(id), Value::str(l)]).unwrap();
    }

    let qc = QueryBuilder::new("qC")
        .postcondition("R", |a| a.constant("G").var("x1"))
        .head("R", |a| a.constant("C").var("x1"))
        .head("Q", |a| a.constant("C").var("x2"))
        .body("F", |a| a.var("x1").var("x"))
        .body("H", |a| a.var("x2").var("x"))
        .build()
        .unwrap();
    let qg = QueryBuilder::new("qG")
        .postcondition("R", |a| a.constant("C").var("y1"))
        .postcondition("Q", |a| a.constant("C").var("y2"))
        .head("R", |a| a.constant("G").var("y1"))
        .head("Q", |a| a.constant("G").var("y2"))
        .body("F", |a| a.var("y1").constant("Paris"))
        .body("H", |a| a.var("y2").constant("Paris"))
        .build()
        .unwrap();
    let qj = QueryBuilder::new("qJ")
        .postcondition("R", |a| a.constant("C").var("z1"))
        .postcondition("R", |a| a.constant("G").var("z1"))
        .head("R", |a| a.constant("J").var("z1"))
        .head("Q", |a| a.constant("J").var("z2"))
        .body("F", |a| a.var("z1").constant("Athens"))
        .body("H", |a| a.var("z2").constant("Athens"))
        .build()
        .unwrap();
    let qw = QueryBuilder::new("qW")
        .postcondition("R", |a| a.constant("C").var("w1"))
        .postcondition("Q", |a| a.constant("J").var("w2"))
        .head("R", |a| a.constant("W").var("w1"))
        .head("Q", |a| a.constant("W").var("w2"))
        .body("F", |a| a.var("w1").constant("Madrid"))
        .body("H", |a| a.var("w2").constant("Madrid"))
        .build()
        .unwrap();

    let queries = vec![qc, qg, qj, qw];
    let out = SccCoordinator::new(&db).run(&queries).unwrap();
    assert_eq!(out.best_names(), vec!["qC", "qG"]);
    // Chris and Guy share flight 1 and hotel 10.
    let best = out.best().unwrap();
    check_coordinating_set(&db, &out.qs, &best.queries, &best.grounding).unwrap();

    // Cross-check against exhaustive search: {qC, qG} is also the true
    // maximum coordinating set of this instance.
    let bf = social_coordination::core::bruteforce::max_coordinating_set(&db, &queries).unwrap();
    assert_eq!(bf.best.unwrap().len(), 2);
}

/// Section 5: the movies example — Cinemark cleans to nothing, Regal and
/// AMC both sustain three members.
#[test]
fn movies_example_cleaning_walkthrough() {
    let mut db = Database::new();
    tables::cinemas_example(&mut db).unwrap();
    db.create_table("C", &["user", "friend"]).unwrap();
    for (u, f) in [
        ("Chris", "Jonny"),
        ("Chris", "Guy"),
        ("Guy", "Chris"),
        ("Guy", "Jonny"),
        ("Jonny", "Chris"),
        ("Jonny", "Will"),
        ("Will", "Chris"),
        ("Will", "Guy"),
    ] {
        db.insert("C", vec![Value::str(u), Value::str(f)]).unwrap();
    }
    let config = ConsistentConfig::new("M", "movie_id", &["cinema"], &["movie"], "C");
    let queries = vec![
        ConsistentQuery::for_user("Chris", 1, 1)
            .with_named_partner("Will")
            .coord_const(0, "Regal")
            .personal_const(0, "Contagion"),
        ConsistentQuery::for_user("Guy", 1, 1)
            .with_any_friend()
            .coord_const(0, "AMC")
            .personal_const(0, "Project X"),
        ConsistentQuery::for_user("Jonny", 1, 1)
            .with_any_friend()
            .personal_const(0, "Hugo"),
        ConsistentQuery::for_user("Will", 1, 1)
            .with_any_friend()
            .personal_const(0, "Hugo"),
    ];
    let coordinator = ConsistentCoordinator::new(&db, config).unwrap();
    let out = coordinator.run(&queries).unwrap();

    let size = |name: &str| {
        out.per_value
            .iter()
            .find(|(v, _)| v[0].as_str() == Some(name))
            .map(|(_, s)| *s)
            .unwrap()
    };
    assert_eq!(size("Cinemark"), 0);
    assert_eq!(size("Regal"), 3);
    assert_eq!(size("AMC"), 3);
    assert_eq!(out.best.unwrap().members.len(), 3);
}

/// The consistent-query entangled encoding round-trips through the
/// general machinery: running brute force on `to_entangled()` versions
/// agrees with the Consistent Coordination Algorithm on existence.
#[test]
fn movies_example_agrees_with_entangled_encoding() {
    let mut db = Database::new();
    tables::cinemas_example(&mut db).unwrap();
    db.create_table("C", &["user", "friend"]).unwrap();
    for (u, f) in [("Jonny", "Will"), ("Will", "Jonny")] {
        db.insert("C", vec![Value::str(u), Value::str(f)]).unwrap();
    }
    let config = ConsistentConfig::new("M", "movie_id", &["cinema"], &["movie"], "C");
    let queries = vec![
        ConsistentQuery::for_user("Jonny", 1, 1)
            .with_any_friend()
            .personal_const(0, "Hugo"),
        ConsistentQuery::for_user("Will", 1, 1)
            .with_any_friend()
            .personal_const(0, "Hugo"),
    ];

    let coordinator = ConsistentCoordinator::new(&db, config.clone()).unwrap();
    let out = coordinator.run(&queries).unwrap();
    assert!(out.best.is_some());

    let entangled: Vec<_> = queries
        .iter()
        .map(|q| q.to_entangled(&config, &db).unwrap())
        .collect();
    let bf = social_coordination::core::bruteforce::any_coordinating_set(&db, &entangled).unwrap();
    assert!(bf.best.is_some());
}

/// The engine replays the Gwyneth/Chris story in arrival order.
#[test]
fn online_engine_coordinates_on_arrival() {
    let mut db = Database::new();
    tables::flights_simple(&mut db, &[(101, "Zurich")]).unwrap();
    let mut engine = CoordinationEngine::new(&db);

    let gwyneth = QueryBuilder::new("gwyneth")
        .postcondition("R", |a| a.constant("Chris").var("x"))
        .head("R", |a| a.constant("Gwyneth").var("x"))
        .body("Flights", |a| a.var("x").constant("Zurich"))
        .build()
        .unwrap();
    let chris = QueryBuilder::new("chris")
        .head("R", |a| a.constant("Chris").var("y"))
        .body("Flights", |a| a.var("y").constant("Zurich"))
        .build()
        .unwrap();

    assert!(!engine.submit(gwyneth).unwrap().coordinated());
    let r = engine.submit(chris).unwrap();
    assert_eq!(r.answers.len(), 2);
    assert!(engine.pending().is_empty());
}
