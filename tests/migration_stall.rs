//! The migration-stall bound: a cross-shard migration that is stuck
//! waiting for a shard lock (held by a long component evaluation) must
//! not stall unrelated submitters.
//!
//! Before the marker-based protocol, a migration held the router write
//! lock while waiting for source/target shard locks, so *every*
//! submitter — even ones touching completely unrelated keys — queued
//! behind it for the duration of the evaluation. Now the migration only
//! marks the affected keys (brief router writes) and waits with no
//! router lock held: submitters with unrelated keys route and evaluate
//! freely, and only submitters whose keys are mid-migration back off.

use coord_engine::index::{keys_related, KeyPattern};
use coord_engine::{ComponentEvaluator, CoordinationQuery, ShardedEngine};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Clone, Debug, PartialEq, Eq)]
struct Query {
    name: String,
    provides: Vec<KeyPattern<&'static str, i64>>,
    requires: Vec<KeyPattern<&'static str, i64>>,
}

impl CoordinationQuery for Query {
    type Rel = &'static str;
    type Cst = i64;
    fn provides(&self) -> Vec<KeyPattern<&'static str, i64>> {
        self.provides.clone()
    }
    fn requires(&self) -> Vec<KeyPattern<&'static str, i64>> {
        self.requires.clone()
    }
}

fn q(
    name: &str,
    provides: Vec<KeyPattern<&'static str, i64>>,
    requires: Vec<KeyPattern<&'static str, i64>>,
) -> Query {
    Query {
        name: name.into(),
        provides,
        requires,
    }
}

/// Saturation semantics, except that a component containing the query
/// named `slow` blocks until the release flag is set — simulating a
/// long-running evaluation that pins its shard's lock.
#[derive(Clone)]
struct GatedEvaluator {
    started: Arc<AtomicBool>,
    release: Arc<AtomicBool>,
}

impl ComponentEvaluator<Query> for GatedEvaluator {
    type Delivery = Vec<String>;
    type Error = String;

    fn evaluate(&self, queries: &[Query]) -> Result<Option<(Vec<usize>, Vec<String>)>, String> {
        if queries.iter().any(|x| x.name == "slow") && !self.release.load(Ordering::SeqCst) {
            self.started.store(true, Ordering::SeqCst);
            let deadline = Instant::now() + Duration::from_secs(30);
            while !self.release.load(Ordering::SeqCst) {
                if Instant::now() > deadline {
                    return Err("gate never released".into());
                }
                std::thread::yield_now();
            }
        }
        let provided: Vec<_> = queries.iter().flat_map(|x| x.provides.clone()).collect();
        let ok = queries.iter().all(|x| {
            x.requires
                .iter()
                .all(|r| provided.iter().any(|p| keys_related(p, r)))
        });
        if ok {
            Ok(Some((
                (0..queries.len()).collect(),
                queries.iter().map(|x| x.name.clone()).collect(),
            )))
        } else {
            Ok(None)
        }
    }
}

#[test]
fn unrelated_submitters_proceed_while_a_migration_waits() {
    let started = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    let engine = Arc::new(ShardedEngine::new(
        GatedEvaluator {
            started: Arc::clone(&started),
            release: Arc::clone(&release),
        },
        4,
    ));

    // Round-robin placement: three disjoint waiters on shards 0, 1, 2.
    engine
        .submit(q("a", vec![("R", Some(0))], vec![("R", Some(1))]))
        .unwrap(); // shard 0
    engine
        .submit(q("b", vec![("R", Some(10))], vec![("R", Some(11))]))
        .unwrap(); // shard 1
    engine
        .submit(q("c", vec![("Y", Some(0))], vec![("Y", Some(999))]))
        .unwrap(); // shard 2

    std::thread::scope(|s| {
        // A slow evaluation pins shard 0's lock: `slow` joins a's
        // component (provides R(1)) and blocks inside the evaluator.
        let slow_engine = Arc::clone(&engine);
        let slow = s.spawn(move || {
            slow_engine
                .submit(q("slow", vec![("R", Some(1))], vec![("R", Some(2))]))
                .unwrap()
        });
        let spin_deadline = Instant::now() + Duration::from_secs(30);
        while !started.load(Ordering::SeqCst) {
            assert!(
                Instant::now() < spin_deadline,
                "slow evaluation never started"
            );
            std::thread::yield_now();
        }

        // A bridge between shard 0's and shard 1's components forces a
        // migration that must wait for shard 0 — held by `slow`.
        let bridge_engine = Arc::clone(&engine);
        let bridge = s.spawn(move || {
            bridge_engine
                .submit(q("bridge", vec![("R", Some(2)), ("R", Some(11))], vec![]))
                .unwrap()
        });
        while engine.metrics().snapshot().migrations < 1 {
            assert!(
                Instant::now() < spin_deadline,
                "bridge never started its migration"
            );
            std::thread::yield_now();
        }
        // Give the migrator a moment to reach its blocking shard
        // acquisition (it has already marked its keys).
        std::thread::sleep(Duration::from_millis(50));

        // Unrelated submitters — different keys, different shard — must
        // make progress while both `slow` and the migration are stuck.
        let done = Arc::new(AtomicBool::new(false));
        let unrelated_engine = Arc::clone(&engine);
        let done_flag = Arc::clone(&done);
        s.spawn(move || {
            for i in 0..8 {
                let r = unrelated_engine
                    .submit(q("u", vec![("Y", Some(100 + i))], vec![("Y", Some(0))]))
                    .unwrap();
                assert!(!r.coordinated());
            }
            done_flag.store(true, Ordering::SeqCst);
        });
        let unrelated_deadline = Instant::now() + Duration::from_secs(10);
        while !done.load(Ordering::SeqCst) {
            if Instant::now() > unrelated_deadline {
                // Unblock everything so the harness reports the failure
                // instead of hanging.
                release.store(true, Ordering::SeqCst);
                panic!("unrelated submitters stalled behind a waiting migration");
            }
            std::thread::yield_now();
        }
        // The migration is still in flight (the gate is still closed):
        // progress happened *during* it, not after.
        assert!(!release.load(Ordering::SeqCst));

        // Release the gate: slow finishes, the migration completes, and
        // the bridge coordinates the merged component.
        release.store(true, Ordering::SeqCst);
        let slow_result = slow.join().unwrap();
        assert!(!slow_result.coordinated());
        let bridge_result = bridge.join().unwrap();
        assert!(bridge_result.coordinated(), "migrated component lost");
        let mut names: Vec<String> = bridge_result
            .retired
            .iter()
            .map(|x| x.name.clone())
            .collect();
        names.sort_unstable();
        assert_eq!(names, vec!["a", "b", "bridge", "slow"]);
    });

    // The unrelated waiters (and c) are still pending; nothing leaked.
    assert_eq!(engine.pending_count(), 9);
    assert_eq!(engine.metrics().snapshot().migrations, 1);
}
