//! The migration-stall bound: a cross-shard migration that is stuck
//! waiting for a shard lock (held by a long component evaluation) must
//! not stall unrelated submitters.
//!
//! Before the marker-based protocol, a migration held the router write
//! lock while waiting for source/target shard locks, so *every*
//! submitter — even ones touching completely unrelated keys — queued
//! behind it for the duration of the evaluation. Now the migration only
//! marks the affected keys (brief router writes) and waits with no
//! router lock held: submitters with unrelated keys route and evaluate
//! freely, and only submitters whose keys are mid-migration back off.

use coord_engine::index::{keys_related, KeyPattern};
use coord_engine::{ComponentEvaluator, CoordinationQuery, Placement, ShardedEngine};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Clone, Debug, PartialEq, Eq)]
struct Query {
    name: String,
    provides: Vec<KeyPattern<&'static str, i64>>,
    requires: Vec<KeyPattern<&'static str, i64>>,
}

impl CoordinationQuery for Query {
    type Rel = &'static str;
    type Cst = i64;
    fn provides(&self) -> Vec<KeyPattern<&'static str, i64>> {
        self.provides.clone()
    }
    fn requires(&self) -> Vec<KeyPattern<&'static str, i64>> {
        self.requires.clone()
    }
}

fn q(
    name: &str,
    provides: Vec<KeyPattern<&'static str, i64>>,
    requires: Vec<KeyPattern<&'static str, i64>>,
) -> Query {
    Query {
        name: name.into(),
        provides,
        requires,
    }
}

/// Saturation semantics, except that a component containing the query
/// named `slow` blocks until the release flag is set — simulating a
/// long-running evaluation that pins its shard's lock.
#[derive(Clone)]
struct GatedEvaluator {
    started: Arc<AtomicBool>,
    release: Arc<AtomicBool>,
}

impl ComponentEvaluator<Query> for GatedEvaluator {
    type Delivery = Vec<String>;
    type Error = String;

    fn evaluate(&self, queries: &[Query]) -> Result<Option<(Vec<usize>, Vec<String>)>, String> {
        if queries.iter().any(|x| x.name == "slow") && !self.release.load(Ordering::SeqCst) {
            self.started.store(true, Ordering::SeqCst);
            let deadline = Instant::now() + Duration::from_secs(30);
            while !self.release.load(Ordering::SeqCst) {
                if Instant::now() > deadline {
                    return Err("gate never released".into());
                }
                std::thread::yield_now();
            }
        }
        let provided: Vec<_> = queries.iter().flat_map(|x| x.provides.clone()).collect();
        let ok = queries.iter().all(|x| {
            x.requires
                .iter()
                .all(|r| provided.iter().any(|p| keys_related(p, r)))
        });
        if ok {
            Ok(Some((
                (0..queries.len()).collect(),
                queries.iter().map(|x| x.name.clone()).collect(),
            )))
        } else {
            Ok(None)
        }
    }
}

#[test]
fn unrelated_submitters_proceed_while_a_migration_waits() {
    let started = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    let engine = Arc::new(ShardedEngine::new(
        GatedEvaluator {
            started: Arc::clone(&started),
            release: Arc::clone(&release),
        },
        4,
    ));

    // Round-robin placement: three disjoint waiters on shards 0, 1, 2.
    engine
        .submit(q("a", vec![("R", Some(0))], vec![("R", Some(1))]))
        .unwrap(); // shard 0
    engine
        .submit(q("b", vec![("R", Some(10))], vec![("R", Some(11))]))
        .unwrap(); // shard 1
    engine
        .submit(q("c", vec![("Y", Some(0))], vec![("Y", Some(999))]))
        .unwrap(); // shard 2

    std::thread::scope(|s| {
        // A slow evaluation pins shard 0's lock: `slow` joins a's
        // component (provides R(1)) and blocks inside the evaluator.
        let slow_engine = Arc::clone(&engine);
        let slow = s.spawn(move || {
            slow_engine
                .submit(q("slow", vec![("R", Some(1))], vec![("R", Some(2))]))
                .unwrap()
        });
        let spin_deadline = Instant::now() + Duration::from_secs(30);
        while !started.load(Ordering::SeqCst) {
            assert!(
                Instant::now() < spin_deadline,
                "slow evaluation never started"
            );
            std::thread::yield_now();
        }

        // A bridge between shard 0's and shard 1's components forces a
        // migration that must wait for shard 0 — held by `slow`.
        let bridge_engine = Arc::clone(&engine);
        let bridge = s.spawn(move || {
            bridge_engine
                .submit(q("bridge", vec![("R", Some(2)), ("R", Some(11))], vec![]))
                .unwrap()
        });
        while engine.metrics().snapshot().migrations < 1 {
            assert!(
                Instant::now() < spin_deadline,
                "bridge never started its migration"
            );
            std::thread::yield_now();
        }
        // Give the migrator a moment to reach its blocking shard
        // acquisition (it has already marked its keys).
        std::thread::sleep(Duration::from_millis(50));

        // Unrelated submitters — different keys, different shard — must
        // make progress while both `slow` and the migration are stuck.
        let done = Arc::new(AtomicBool::new(false));
        let unrelated_engine = Arc::clone(&engine);
        let done_flag = Arc::clone(&done);
        s.spawn(move || {
            for i in 0..8 {
                let r = unrelated_engine
                    .submit(q("u", vec![("Y", Some(100 + i))], vec![("Y", Some(0))]))
                    .unwrap();
                assert!(!r.coordinated());
            }
            done_flag.store(true, Ordering::SeqCst);
        });
        let unrelated_deadline = Instant::now() + Duration::from_secs(10);
        while !done.load(Ordering::SeqCst) {
            if Instant::now() > unrelated_deadline {
                // Unblock everything so the harness reports the failure
                // instead of hanging.
                release.store(true, Ordering::SeqCst);
                panic!("unrelated submitters stalled behind a waiting migration");
            }
            std::thread::yield_now();
        }
        // The migration is still in flight (the gate is still closed):
        // progress happened *during* it, not after.
        assert!(!release.load(Ordering::SeqCst));

        // Release the gate: slow finishes, the migration completes, and
        // the bridge coordinates the merged component.
        release.store(true, Ordering::SeqCst);
        let slow_result = slow.join().unwrap();
        assert!(!slow_result.coordinated());
        let bridge_result = bridge.join().unwrap();
        assert!(bridge_result.coordinated(), "migrated component lost");
        let mut names: Vec<String> = bridge_result
            .retired
            .iter()
            .map(|x| x.name.clone())
            .collect();
        names.sort_unstable();
        assert_eq!(names, vec!["a", "b", "bridge", "slow"]);
    });

    // The unrelated waiters (and c) are still pending; nothing leaked.
    assert_eq!(engine.pending_count(), 9);
    assert_eq!(engine.metrics().snapshot().migrations, 1);
}

/// Saturation semantics with two gates: a query named `bridge` blocks
/// until released and is then rejected; a component containing `wake`
/// blocks until released (pinning its shard's lock).
#[derive(Clone)]
struct RollbackEvaluator {
    bridge_entered: Arc<AtomicBool>,
    release_bridge: Arc<AtomicBool>,
    wake_entered: Arc<AtomicBool>,
    release_wake: Arc<AtomicBool>,
}

impl ComponentEvaluator<Query> for RollbackEvaluator {
    type Delivery = Vec<String>;
    type Error = String;

    fn evaluate(&self, queries: &[Query]) -> Result<Option<(Vec<usize>, Vec<String>)>, String> {
        let deadline = Instant::now() + Duration::from_secs(30);
        if queries.iter().any(|x| x.name == "bridge") {
            self.bridge_entered.store(true, Ordering::SeqCst);
            while !self.release_bridge.load(Ordering::SeqCst) {
                if Instant::now() > deadline {
                    return Err("bridge gate never released".into());
                }
                std::thread::yield_now();
            }
            return Err("bridge poisons the component".into());
        }
        if queries.iter().any(|x| x.name == "wake") {
            self.wake_entered.store(true, Ordering::SeqCst);
            while !self.release_wake.load(Ordering::SeqCst) {
                if Instant::now() > deadline {
                    return Err("wake gate never released".into());
                }
                std::thread::yield_now();
            }
        }
        Ok(None)
    }
}

/// Regression for the residual PR 4 bug: the rejected-bridge rollback
/// used to move components back *while holding the router write lock*,
/// so a rollback blocked on a busy source shard stalled every submitter
/// in the service. The rollback now goes through the marker-based move
/// path (mark → freeze/move under shard locks → publish), so unrelated
/// traffic keeps routing while the rollback waits.
#[test]
fn unrelated_submitters_proceed_while_a_rollback_waits() {
    let bridge_entered = Arc::new(AtomicBool::new(false));
    let release_bridge = Arc::new(AtomicBool::new(false));
    let wake_entered = Arc::new(AtomicBool::new(false));
    let release_wake = Arc::new(AtomicBool::new(false));
    let engine = Arc::new(ShardedEngine::with_placement(
        RollbackEvaluator {
            bridge_entered: Arc::clone(&bridge_entered),
            release_bridge: Arc::clone(&release_bridge),
            wake_entered: Arc::clone(&wake_entered),
            release_wake: Arc::clone(&release_wake),
        },
        4,
        Placement::RoundRobin,
    ));

    // Round-robin placement: a → shard 0, b → shard 1, three fillers →
    // shards 2, 3, 0, and v (the rollback's roadblock) → shard 1,
    // co-resident with b.
    engine
        .submit(q("a", vec![("R", Some(0))], vec![("R", Some(1))]))
        .unwrap();
    engine
        .submit(q("b", vec![("R", Some(10))], vec![("R", Some(11))]))
        .unwrap();
    engine
        .submit(q("f2", vec![("Z", Some(2))], vec![("Z", Some(99))]))
        .unwrap(); // shard 2 — the unrelated submitters' anchor
    engine
        .submit(q("f3", vec![("Z", Some(3))], vec![("Z", Some(98))]))
        .unwrap(); // shard 3
    engine
        .submit(q("f0", vec![("Z", Some(4))], vec![("Z", Some(97))]))
        .unwrap(); // shard 0
    engine
        .submit(q("v", vec![("V", Some(0))], vec![("V", Some(99))]))
        .unwrap(); // shard 1

    std::thread::scope(|s| {
        // The bridge merges a's and b's groups (migrating b's from
        // shard 1 to shard 0) and then blocks inside its evaluation.
        let bridge_engine = Arc::clone(&engine);
        let bridge = s.spawn(move || {
            bridge_engine
                .submit(q("bridge", vec![("R", Some(1)), ("R", Some(11))], vec![]))
                .unwrap_err()
        });
        let spin_deadline = Instant::now() + Duration::from_secs(30);
        while !bridge_entered.load(Ordering::SeqCst) {
            assert!(Instant::now() < spin_deadline, "bridge never evaluated");
            std::thread::yield_now();
        }
        assert_eq!(engine.metrics().snapshot().migrations, 1);

        // Pin shard 1 (the rollback's destination) with a long
        // evaluation on v's — unrelated — component.
        let wake_engine = Arc::clone(&engine);
        let wake = s.spawn(move || {
            wake_engine
                .submit(q("wake", vec![("V", Some(99))], vec![("V", Some(0))]))
                .unwrap()
        });
        while !wake_entered.load(Ordering::SeqCst) {
            assert!(Instant::now() < spin_deadline, "wake never evaluated");
            std::thread::yield_now();
        }

        // Reject the bridge: its rollback wants to move b's group from
        // shard 0 back to shard 1 — whose lock `wake` holds.
        release_bridge.store(true, Ordering::SeqCst);
        // Wait until the rollback is demonstrably in flight (it marks
        // b's keys before touching any shard lock), then give it a
        // moment to reach the blocking shard-1 acquisition.
        std::thread::sleep(Duration::from_millis(50));

        // Unrelated submitters — keys anchored to shard 2 — must make
        // progress while the rollback waits. Before the fix, the
        // rollback held the router write lock here and every one of
        // these stalled for the duration of the wake evaluation.
        let done = Arc::new(AtomicBool::new(false));
        let unrelated_engine = Arc::clone(&engine);
        let done_flag = Arc::clone(&done);
        s.spawn(move || {
            for i in 0..8 {
                let r = unrelated_engine
                    .submit(q("u", vec![("Z", Some(200 + i))], vec![("Z", Some(2))]))
                    .unwrap();
                assert!(!r.coordinated());
            }
            done_flag.store(true, Ordering::SeqCst);
        });
        let unrelated_deadline = Instant::now() + Duration::from_secs(10);
        while !done.load(Ordering::SeqCst) {
            if Instant::now() > unrelated_deadline {
                release_wake.store(true, Ordering::SeqCst);
                panic!("unrelated submitters stalled behind a waiting rollback");
            }
            std::thread::yield_now();
        }
        // The rollback is still blocked (the wake gate is closed):
        // progress happened *during* it.
        assert!(!release_wake.load(Ordering::SeqCst));

        // Release the roadblock: the rollback completes and the
        // rejected bridge returns its error.
        release_wake.store(true, Ordering::SeqCst);
        let err = bridge.join().unwrap();
        assert!(err.contains("poisons"));
        assert!(!wake.join().unwrap().coordinated());
    });

    // Everything is still pending (a, b, f2, f3, f0, v, wake, u×8 =
    // 15 queries — the rejected bridge is not), and the merge was
    // undone: one query migrated out for the merge, one moved back by
    // the rollback.
    assert_eq!(engine.pending_count(), 15);
    assert_eq!(engine.metrics().snapshot().migrations, 1);
    let stats = engine.shard_stats();
    let moved_out: u64 = stats.iter().map(|s| s.migrated_out).sum();
    let moved_in: u64 = stats.iter().map(|s| s.migrated_in).sum();
    assert_eq!(
        (moved_out, moved_in),
        (2, 2),
        "rollback did not move the group back: {stats:?}"
    );
    // Reaching b's group afterwards needs no migration: its routing
    // was restored along with the move.
    let before = engine.metrics().snapshot().migrations;
    engine
        .submit(q("w", vec![("R", Some(11))], vec![("R", Some(10))]))
        .unwrap();
    assert_eq!(engine.metrics().snapshot().migrations, before);
}
