//! Integration tests: selection criteria plugged into the SCC algorithm,
//! and the practical algorithms exercised on the hardness-reduction
//! instances (which are valid — if adversarial — inputs).

use social_coordination::core::scc::SccCoordinator;
use social_coordination::core::selector::{PreferQuery, Weighted};
use social_coordination::core::FoundSet;
use social_coordination::core::{bruteforce, check_coordinating_set, QueryBuilder, QueryId};
use social_coordination::db::{Database, Value};
use social_coordination::sat::{reduction2, Clause, Cnf, Lit};

/// The Section 4 components-graph example: q3+q4 → q1+q2 ← q5+q6, giving
/// candidates {q1,q2}, {q1..q4} and {q1,q2,q5,q6}.
fn section4_example() -> (Database, Vec<social_coordination::core::EntangledQuery>) {
    let mut db = Database::new();
    db.create_table("T", &["id"]).unwrap();
    db.insert("T", vec![Value::int(1)]).unwrap();
    let pair = |i: usize, j: usize, dep: Option<usize>| {
        let mut a = QueryBuilder::new(format!("q{i}"))
            .postcondition("R", |x| x.constant(format!("u{j}")).var("v"))
            .head("R", |x| x.constant(format!("u{i}")).var("v"))
            .body("T", |x| x.var("v"));
        if let Some(d) = dep {
            a = a.postcondition("R", |x| x.constant(format!("u{d}")).var("v"));
        }
        let b = QueryBuilder::new(format!("q{j}"))
            .postcondition("R", |x| x.constant(format!("u{i}")).var("w"))
            .head("R", |x| x.constant(format!("u{j}")).var("w"))
            .body("T", |x| x.var("w"))
            .build()
            .unwrap();
        (a.build().unwrap(), b)
    };
    let (q1, q2) = pair(1, 2, None);
    let (q3, q4) = pair(3, 4, Some(1));
    let (q5, q6) = pair(5, 6, Some(1));
    (db, vec![q1, q2, q3, q4, q5, q6])
}

#[test]
fn vip_selector_steers_the_choice() {
    let (db, queries) = section4_example();
    // Default: one of the size-4 candidates.
    let max = SccCoordinator::new(&db).run(&queries).unwrap();
    assert_eq!(max.best().unwrap().len(), 4);

    // VIP q5 (index 4): the {q1,q2,q5,q6} candidate must win.
    let vip = SccCoordinator::with_selector(&db, PreferQuery { vip: QueryId(4) })
        .run(&queries)
        .unwrap();
    let best = vip.best().unwrap();
    assert!(best.contains(QueryId(4)));
    assert_eq!(best.len(), 4);

    // VIP q1 is in every candidate; the selector then maximizes size.
    let vip1 = SccCoordinator::with_selector(&db, PreferQuery { vip: QueryId(0) })
        .run(&queries)
        .unwrap();
    assert_eq!(vip1.best().unwrap().len(), 4);
}

#[test]
fn weighted_selector_can_prefer_smaller_sets() {
    let (db, queries) = section4_example();
    // Heavy weight on q3 (index 2): {q1..q4} must win over {q1,q2,q5,q6}.
    let sel = Weighted::new([(QueryId(2), 100)]);
    let out = SccCoordinator::with_selector(&db, sel)
        .run(&queries)
        .unwrap();
    assert!(out.best().unwrap().contains(QueryId(2)));
}

#[test]
fn scc_algorithm_on_theorem2_instances_is_sound_but_not_maximal() {
    // Theorem 2 instances are safe, so the SCC algorithm accepts them; it
    // guarantees a maximum among closures R(q), not a global maximum —
    // exactly the gap Theorem 2 proves unavoidable for efficient
    // algorithms.
    // Two unit clauses over distinct variables: the global maximum needs
    // one witness per clause plus both variable queries (size 4), but no
    // single closure R(q) spans more than one clause gadget (max size 2).
    let f = Cnf::new(
        2,
        vec![Clause(vec![Lit::pos(0)]), Clause(vec![Lit::pos(1)])],
    );
    let r = reduction2::reduce(&f);
    let out = SccCoordinator::new(&r.db).run(&r.queries).unwrap();
    let best = out.best().expect("variable queries always coordinate");
    check_coordinating_set(&r.db, &out.qs, &best.queries, &best.grounding).unwrap();

    let bf = bruteforce::max_coordinating_set(&r.db, &r.queries).unwrap();
    let true_max = bf.best.unwrap().len();
    assert_eq!(true_max, r.target_size, "the formula is satisfiable");
    assert!(best.len() <= true_max);
    // The largest closure here is a clause query + its variable query
    // (plus nothing else): strictly below the global maximum.
    assert!(best.len() < true_max);
}

#[test]
fn scc_closures_on_theorem2_match_structure() {
    // Closure of a constrained literal query covers the literal's
    // variable queries; each closure that unifies consistently grounds
    // (the database D = {0,1} always satisfies D(x)).
    let f = Cnf::new(3, vec![Clause(vec![Lit::pos(0), Lit::neg(1), Lit::pos(2)])]);
    let r = reduction2::reduce(&f);
    let out = SccCoordinator::new(&r.db).run(&r.queries).unwrap();
    for found in &out.found {
        check_coordinating_set(&r.db, &out.qs, &found.queries, &found.grounding).unwrap();
    }
    // 3 variable-query singletons + 3 literal-query closures (sizes 2, 3, 4).
    let mut sizes: Vec<usize> = out.found.iter().map(FoundSet::len).collect();
    sizes.sort_unstable();
    assert_eq!(sizes, vec![1, 1, 1, 2, 3, 4]);
}
