//! # social-coordination
//!
//! A from-scratch Rust reproduction of *"The Complexity of Social
//! Coordination"* (Mamouras, Oren, Seeman, Kot, Gehrke — PVLDB 5(11),
//! 2012): **entangled queries** for declarative, data-driven coordination,
//! with the paper's two practical algorithms, its hardness reductions, and
//! its full experimental evaluation.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`db`] — in-memory relational database with conjunctive-query
//!   evaluation (the MySQL substitute).
//! * [`graph`] — directed-graph algorithms: Tarjan SCC, condensation,
//!   topological order (the JGraphT substitute).
//! * [`core`] — entangled-query syntax, unification, coordination graphs,
//!   safety/uniqueness, the SCC Coordination Algorithm, the Consistent
//!   Coordination Algorithm, the Gupta et al. baseline, a brute-force exact
//!   solver, and an online coordination engine.
//! * [`engine`] — the sharded, incremental online coordination service
//!   (atom index, union-find components, per-component shards) that
//!   `core::engine` builds on.
//! * [`store`] — durable persistence for the online engine: checksummed
//!   write-ahead log, epoch snapshots, and crash recovery
//!   (`core::persist` exposes the entangled-query wiring).
//! * [`obs`] — zero-dependency observability: a metrics registry with
//!   lock-free counters/gauges/latency histograms, a span-style event
//!   tracer with a fixed-capacity ring, and JSON/Prometheus exporters.
//!   One registry threads through engine, store, and closure cache.
//! * [`sat`] — 3SAT, DPLL, and the paper's hardness reductions.
//! * [`gen`] — social-network and workload generators for the experiments.
//!
//! ## Quickstart
//!
//! ```
//! use social_coordination::db::{Database, Value};
//! use social_coordination::core::{EntangledQuery, QueryBuilder, scc::SccCoordinator};
//!
//! // Gwyneth wants to fly with Chris to Zurich (Section 2.1 of the paper).
//! let mut db = Database::new();
//! db.create_table("Flights", &["flightId", "destination"]).unwrap();
//! db.insert("Flights", vec![Value::int(101), Value::str("Zurich")]).unwrap();
//!
//! // q1 = {R(Chris, x)} R(Gwyneth, x) :- Flights(x, Zurich)
//! let q1 = QueryBuilder::new("q1")
//!     .postcondition("R", |a| a.constant("Chris").var("x"))
//!     .head("R", |a| a.constant("Gwyneth").var("x"))
//!     .body("Flights", |a| a.var("x").constant("Zurich"))
//!     .build()
//!     .unwrap();
//! // q2 = {} R(Chris, y) :- Flights(y, Zurich)
//! let q2 = QueryBuilder::new("q2")
//!     .head("R", |a| a.constant("Chris").var("y"))
//!     .body("Flights", |a| a.var("y").constant("Zurich"))
//!     .build()
//!     .unwrap();
//!
//! let outcome = SccCoordinator::new(&db).run(&[q1, q2]).unwrap();
//! let set = outcome.best().expect("a coordinating set exists");
//! assert_eq!(set.queries.len(), 2); // both fly on flight 101
//! ```

#![forbid(unsafe_code)]

pub use coord_core as core;
pub use coord_db as db;
pub use coord_engine as engine;
pub use coord_gen as gen;
pub use coord_graph as graph;
pub use coord_obs as obs;
pub use coord_sat as sat;
pub use coord_store as store;
