//! Quickstart: the paper's Section 2.1 example.
//!
//! Gwyneth wants to fly with Chris to Zurich. She submits an entangled
//! query whose *postcondition* requires Chris to be booked on the same
//! flight; Chris submits a plain query for any Zurich flight. The SCC
//! Coordination Algorithm finds the coordinating set and a witnessing
//! flight.
//!
//! Run with: `cargo run --example quickstart`

use social_coordination::core::scc::SccCoordinator;
use social_coordination::core::QueryBuilder;
use social_coordination::db::{Database, Value};

fn main() {
    // A flights database: F(flightId, destination).
    let mut db = Database::new();
    db.create_table("Flights", &["flightId", "destination"])
        .unwrap();
    for (id, dest) in [(101, "Zurich"), (102, "Paris"), (103, "Zurich")] {
        db.insert("Flights", vec![Value::int(id), Value::str(dest)])
            .unwrap();
    }

    // q1 = {R(Chris, x)} R(Gwyneth, x) :- Flights(x, Zurich)
    let gwyneth = QueryBuilder::new("gwyneth")
        .postcondition("R", |a| a.constant("Chris").var("x"))
        .head("R", |a| a.constant("Gwyneth").var("x"))
        .body("Flights", |a| a.var("x").constant("Zurich"))
        .build()
        .unwrap();

    // q2 = {} R(Chris, y) :- Flights(y, Zurich)
    let chris = QueryBuilder::new("chris")
        .head("R", |a| a.constant("Chris").var("y"))
        .body("Flights", |a| a.var("y").constant("Zurich"))
        .build()
        .unwrap();

    println!("Queries:");
    println!("  {gwyneth}");
    println!("  {chris}");

    let outcome = SccCoordinator::new(&db).run(&[gwyneth, chris]).unwrap();
    let best = outcome
        .best()
        .expect("a Zurich flight exists, so they coordinate");

    println!("\nCoordinating set: {:?}", outcome.best_names());
    println!("Chosen bindings:");
    for &q in &best.queries {
        let query = outcome.qs.query(q);
        for local in 0..query.var_count() {
            let v = social_coordination::db::Var(local);
            let g = outcome.qs.global_var(q, v);
            if let Some(value) = best.grounding.get(g) {
                println!("  {}.{} = {}", query.name(), query.var_name(v), value);
            }
        }
    }
    println!(
        "\nDatabase queries issued: {} (≤ {} components)",
        outcome.stats.db_queries, outcome.stats.components
    );
}
