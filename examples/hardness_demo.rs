//! The Section 3 hardness story, made executable.
//!
//! Encodes a small 3SAT formula through all three of the paper's
//! reductions (Theorem 1, Theorem 2, Appendix B), solves the entangled
//! instances by exhaustive search and the formula by DPLL, and shows they
//! agree — plus the Figure 9 coordination graph of the Theorem 2 gadget.
//!
//! Run with: `cargo run --example hardness_demo`

use social_coordination::core::graphs::{coordination_graph, is_safe};
use social_coordination::core::{bruteforce, FoundSet, QuerySet};
use social_coordination::graph::dot::to_dot;
use social_coordination::sat::{dpll_solve, reduction1, reduction2, reduction_b, Clause, Cnf, Lit};

fn main() {
    // The paper's Figure 9 formula: C1 = x1 ∨ ¬x2 ∨ x3, C2 = x2 ∨ ¬x3 ∨ ¬x4.
    let f = Cnf::new(
        4,
        vec![
            Clause(vec![Lit::pos(0), Lit::neg(1), Lit::pos(2)]),
            Clause(vec![Lit::pos(1), Lit::neg(2), Lit::neg(3)]),
        ],
    );
    println!("Formula: {f}");
    let model = dpll_solve(&f);
    println!(
        "DPLL: {}",
        match &model {
            Some(m) => format!("satisfiable, e.g. {m:?}"),
            None => "unsatisfiable".to_string(),
        }
    );

    // ---- Theorem 1: Entangled(Q_all) over a {0,1} database. -------------
    let r1 = reduction1::reduce(&f);
    println!(
        "\nTheorem 1 instance: {} queries over a database of {} tuples",
        r1.queries.len(),
        r1.db.tuple_count()
    );
    let res1 = bruteforce::any_coordinating_set(&r1.db, &r1.queries).unwrap();
    println!(
        "  exhaustive search: coordinating set {} (checked {} subsets, {} matchings)",
        if res1.best.is_some() {
            "EXISTS"
        } else {
            "does not exist"
        },
        res1.subsets_checked,
        res1.matchings_tried
    );
    if let Some(best) = &res1.best {
        let members: Vec<usize> = best.queries.iter().map(|q| q.index()).collect();
        let assignment = reduction1::decode_assignment(&r1, &f, &members);
        println!("  decoded assignment: {assignment:?}");
        assert!(f.satisfied_by(&assignment));
    }

    // ---- Theorem 2: EntangledMax(Q_safe) and the Figure 9 gadget. -------
    let r2 = reduction2::reduce(&f);
    let qs2 = QuerySet::new(r2.queries.clone());
    println!(
        "\nTheorem 2 instance: {} queries (safe: {}), target size k+m = {}",
        r2.queries.len(),
        is_safe(&qs2),
        r2.target_size
    );
    println!(
        "Figure 9 coordination graph (DOT):\n{}",
        to_dot(
            &coordination_graph(&qs2),
            "figure9",
            |q| qs2.query(*q).name().to_string(),
            |()| None,
        )
    );
    let res2 = bruteforce::max_coordinating_set(&r2.db, &r2.queries).unwrap();
    let max_size = res2.best.as_ref().map_or(0, FoundSet::len);
    println!(
        "  maximum coordinating set: {max_size} (= target ⇔ satisfiable: {})",
        max_size == r2.target_size
    );

    // ---- Appendix B: the limit of consistent coordination. --------------
    // Use a smaller formula to keep the exhaustive search quick: the
    // Appendix B instances are deliberately unsafe, so matching choices
    // multiply.
    let g = Cnf::new(
        2,
        vec![
            Clause(vec![Lit::pos(0), Lit::pos(1)]),
            Clause(vec![Lit::neg(0)]),
        ],
    );
    println!("\nAppendix B formula: {g}");
    let rb = reduction_b::reduce(&g);
    let qsb = QuerySet::new(rb.queries.clone());
    println!(
        "Appendix B instance: {} queries (safe: {})",
        rb.queries.len(),
        is_safe(&qsb)
    );
    let resb = bruteforce::any_coordinating_set(&rb.db, &rb.queries).unwrap();
    match &resb.best {
        Some(best) => {
            let names: Vec<&str> = best.queries.iter().map(|&q| qsb.query(q).name()).collect();
            println!("  coordinating set exists: {names:?}");
        }
        None => println!("  no coordinating set (formula unsatisfiable)"),
    }
    assert_eq!(resb.best.is_some(), dpll_solve(&g).is_some());

    println!("\nAll three reductions agree with DPLL. ✔");
}
