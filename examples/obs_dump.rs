//! Observability tour: run a small live durable workload and dump every
//! export surface of the `obs` registry — the JSON snapshot, the
//! Prometheus text rendering, and the span-trace ring as JSON lines.
//!
//! One registry is threaded through the whole stack
//! ([`DurableSharedEngine`] → WAL/snapshot store → sharded engine →
//! closure cache), so a single `snapshot()` covers submit latency, WAL
//! append/sync timings, snapshot rotations, migrations, and memo
//! hit/miss counters.
//!
//! Run with: `cargo run --example obs_dump`

use social_coordination::core::persist::DurableSharedEngine;
use social_coordination::gen::workloads::{fig4_queries, pool_db, unsat_cycle_with_spokes};
use social_coordination::store::temp::TempDir;
use social_coordination::store::{DurabilityOptions, SyncPolicy};

fn main() {
    let db = pool_db(2_000);
    let dir = TempDir::new("obs-dump");
    let options = DurabilityOptions {
        sync: SyncPolicy::EveryRecord,
        snapshot_every: Some(16),
    };
    let engine = DurableSharedEngine::open_with(&db, dir.path(), 4, options).unwrap();

    // A list chain that coordinates in full on its last submit…
    for q in fig4_queries(40) {
        engine.submit(q).unwrap();
    }
    // …and an unsatisfiable contending cycle plus spokes, whose cached
    // failed closure gives the memo counters real hit traffic.
    let (cycle, spokes) = unsat_cycle_with_spokes(8, 6);
    for q in cycle.into_iter().chain(spokes) {
        engine.submit(q).unwrap();
    }

    println!("=== registry snapshot as JSON ===");
    println!("{}", engine.obs().snapshot().to_json());

    println!();
    println!("=== registry snapshot as Prometheus text ===");
    print!("{}", engine.obs().snapshot().to_prometheus());

    println!();
    println!("=== trace ring as JSON lines (last 20) ===");
    let dump = engine.obs().tracer().dump_json_lines();
    let lines: Vec<&str> = dump.lines().collect();
    // The first line is the meta record (event count + drops); keep it.
    println!("{}", lines[0]);
    for line in lines.iter().skip(1).rev().take(20).rev() {
        println!("{line}");
    }
}
