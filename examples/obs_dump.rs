//! Observability tour: run a small live durable workload and dump every
//! export surface of the `obs` registry — the JSON snapshot, the
//! Prometheus text rendering, the span-trace ring as JSON lines, the
//! per-trace latency breakdown report, and the slow-query flight
//! recorder.
//!
//! One registry is threaded through the whole stack
//! ([`DurableSharedEngine`] → WAL/snapshot store → sharded engine →
//! closure cache), so a single `snapshot()` covers submit latency, WAL
//! append/sync timings, snapshot rotations, migrations, and memo
//! hit/miss counters — and every submit opens a request-scoped trace
//! ticket, so the ring attributes each event to the submit that caused
//! it.
//!
//! Run with: `cargo run --example obs_dump`

use social_coordination::core::persist::DurableSharedEngine;
use social_coordination::gen::workloads::{fig4_queries, pool_db, unsat_cycle_with_spokes};
use social_coordination::obs::{Registry, TraceAnalyzer};
use social_coordination::store::temp::TempDir;
use social_coordination::store::{DurabilityOptions, SyncPolicy};

fn main() {
    let db = pool_db(2_000);
    let dir = TempDir::new("obs-dump");
    let options = DurabilityOptions {
        sync: SyncPolicy::EveryRecord,
        snapshot_every: Some(16),
    };
    let obs = Registry::new();
    // Arm the flight recorder before the workload: any submit whose
    // root span tops 200µs is copied to the side buffer, surviving
    // later ring overwrites.
    obs.set_slow_query_log(200_000, 16);
    let engine = DurableSharedEngine::open_with_obs(&db, dir.path(), 4, options, obs).unwrap();

    // A list chain that coordinates in full on its last submit…
    for q in fig4_queries(40) {
        engine.submit(q).unwrap();
    }
    // …and an unsatisfiable contending cycle plus spokes, whose cached
    // failed closure gives the memo counters real hit traffic.
    let (cycle, spokes) = unsat_cycle_with_spokes(8, 6);
    for q in cycle.into_iter().chain(spokes) {
        engine.submit(q).unwrap();
    }

    println!("=== registry snapshot as JSON ===");
    println!("{}", engine.obs().snapshot().to_json());

    println!();
    println!("=== registry snapshot as Prometheus text ===");
    print!("{}", engine.obs().snapshot().to_prometheus());

    println!();
    println!("=== trace ring as JSON lines (last 20) ===");
    let dump = engine.obs().tracer().dump_json_lines();
    let lines: Vec<&str> = dump.lines().collect();
    // The first line is the meta record (event count + drops); keep it.
    println!("{}", lines[0]);
    for line in lines.iter().skip(1).rev().take(20).rev() {
        println!("{line}");
    }

    println!();
    println!("=== per-trace latency attribution (top 3 slowest) ===");
    let tracer = engine.obs().tracer();
    let analyzer = TraceAnalyzer::from_tracer(&tracer);
    println!("{}", analyzer.to_json(3));
    for t in analyzer.slowest(3) {
        let b = &t.breakdown;
        println!(
            "trace {}: {} ns critical path — evaluate {} ns, wal_sync {} ns, other {} ns",
            t.trace_id, b.critical_path_nanos, b.evaluate, b.wal_sync, b.other
        );
    }

    println!();
    println!("=== slow-query flight recorder (root span > 200µs) ===");
    let (recorded, discarded) = tracer.slow_trace_counts();
    println!("recorded {recorded} slow traces ({discarded} discarded past capacity)");
    for slow in tracer.slow_traces() {
        println!(
            "trace {}: root {} took {} ns, {} events retained",
            slow.trace_id,
            slow.root_kind,
            slow.root_nanos,
            slow.events.len()
        );
    }
}
