//! The introduction's Example 2: Coldplay fans coordinating flights to a
//! concert.
//!
//! Each fan wants to attend a concert with at least one friend: same
//! destination and date (the coordination attributes), while flying from
//! their own city with their own airline preferences (personal
//! attributes) — and a Coldplay concert must take place at the
//! destination. Fans live in different cities, so they cannot share a
//! flight; the coordination is on *where and when*, not on the tuple.
//!
//! Run with: `cargo run --example concert_trip`

use social_coordination::core::consistent::{
    ConsistentConfig, ConsistentCoordinator, ConsistentQuery,
};
use social_coordination::db::{Database, Value};

fn main() {
    let mut db = Database::new();

    // Flights(flightId, destination, day, source, airline).
    db.create_table(
        "Fl",
        &["flightId", "destination", "day", "source", "airline"],
    )
    .unwrap();
    let flights = [
        (1, "Zurich", 10, "NYC", "Swiss"),
        (2, "Zurich", 10, "London", "BA"),
        (3, "Zurich", 10, "Tokyo", "ANA"),
        (4, "Paris", 12, "NYC", "AF"),
        (5, "Paris", 12, "London", "AF"),
        (6, "Madrid", 15, "NYC", "Iberia"),
        (7, "Madrid", 15, "Tokyo", "JAL"),
    ];
    for (id, dest, day, src, air) in flights {
        db.insert(
            "Fl",
            vec![
                Value::int(id),
                Value::str(dest),
                Value::int(day),
                Value::str(src),
                Value::str(air),
            ],
        )
        .unwrap();
    }

    // Friendships.
    db.create_table("Fr", &["user", "friend"]).unwrap();
    for (u, f) in [
        ("alice", "bob"),
        ("bob", "alice"),
        ("bob", "carol"),
        ("carol", "bob"),
        ("dave", "alice"),
    ] {
        db.insert("Fr", vec![Value::str(u), Value::str(f)]).unwrap();
    }

    // Coordinate on (destination, day); (source, airline) are personal.
    let config = ConsistentConfig::new(
        "Fl",
        "flightId",
        &["destination", "day"],
        &["source", "airline"],
        "Fr",
    );

    // Alice flies from NYC; Bob from London; Carol from Tokyo (she also
    // insists on a Zurich concert); Dave (from NYC, friends with Alice
    // only) wants any concert with a friend.
    let queries = vec![
        ConsistentQuery::for_user("alice", 2, 2)
            .with_any_friend()
            .personal_const(0, "NYC"),
        ConsistentQuery::for_user("bob", 2, 2)
            .with_any_friend()
            .personal_const(0, "London"),
        ConsistentQuery::for_user("carol", 2, 2)
            .with_any_friend()
            .coord_const(0, "Zurich")
            .personal_const(0, "Tokyo"),
        ConsistentQuery::for_user("dave", 2, 2)
            .with_any_friend()
            .personal_const(0, "NYC"),
    ];

    let coordinator = ConsistentCoordinator::new(&db, config).unwrap();
    let outcome = coordinator.run(&queries).unwrap();

    println!("Fans and their flight options (destination, day):");
    let names = ["alice", "bob", "carol", "dave"];
    for (i, list) in outcome.option_lists.iter().enumerate() {
        let opts: Vec<String> = list
            .iter()
            .map(|v| format!("({}, day {})", v[0], v[1]))
            .collect();
        println!("  {:<6} {}", names[i], opts.join(", "));
    }

    println!("\nSurviving group size per (destination, day):");
    for (v, size) in &outcome.per_value {
        println!("  ({}, day {}) → {}", v[0], v[1], size);
    }

    match &outcome.best {
        Some(best) => {
            println!(
                "\nThe group meets in {} on day {}:",
                best.value[0], best.value[1]
            );
            for (user, flight) in &best.assignment {
                println!("  {user} takes flight {flight}");
            }
        }
        None => println!("\nNo coordinating set exists."),
    }
}
