//! Streaming coordination: the Youtopia-style online evaluation loop
//! (Section 6.1's system context; the on-line setting of Section 7).
//!
//! Queries arrive one at a time. Each arrival updates the *incrementally
//! maintained* coordination state (atom index + union-find components)
//! and evaluates only the affected component; as soon as a coordinating
//! set forms, its members are answered and retired. The final section
//! drives the sharded service from concurrent submitter threads and
//! prints the engine metrics.
//!
//! Run with: `cargo run --example online_engine`

use social_coordination::core::engine::{CoordinationEngine, SharedEngine};
use social_coordination::core::QueryBuilder;
use social_coordination::db::{Database, Value};
use social_coordination::gen::social::user_name;

fn main() {
    // A pool of bookable resources: S(id, tag).
    let mut db = Database::new();
    db.create_table("S", &["id", "tag"]).unwrap();
    for i in 0..50 {
        db.insert("S", vec![Value::int(i), Value::str(format!("t{}", i % 5))])
            .unwrap();
    }

    let mut engine = CoordinationEngine::new(&db);

    // A wave of users: u0 waits for u1, u1 waits for u2, u2 is free;
    // independently, u3 waits for u4 and vice versa (a cycle).
    let chain_query = |i: usize, partner: Option<usize>| {
        let mut b = QueryBuilder::new(format!("user{i}"));
        if let Some(p) = partner {
            let y = format!("y{p}");
            b = b.postcondition("R", move |a| a.constant(user_name(p)).var(&y));
        }
        b.head("R", |a| a.constant(user_name(i)).var("x"))
            .body("S", |a| a.var("x").constant(format!("t{}", i % 5)))
            .build()
            .unwrap()
    };

    println!("--- chain arrivals: u0 → u1 → u2 ---");
    for (i, partner) in [(0, Some(1)), (1, Some(2)), (2, None)] {
        let result = engine.submit(chain_query(i, partner)).unwrap();
        println!(
            "submit user{i}: {} (pending: {})",
            if result.coordinated() {
                format!(
                    "coordinated {:?}",
                    result
                        .answers
                        .iter()
                        .map(|a| a.query.as_str())
                        .collect::<Vec<_>>()
                )
            } else {
                "waiting".to_string()
            },
            engine.pending().len()
        );
        for a in &result.answers {
            let bindings: Vec<String> =
                a.bindings.iter().map(|(n, v)| format!("{n}={v}")).collect();
            println!("    {} ⇒ {}", a.query, bindings.join(", "));
        }
    }

    println!("\n--- mutual arrivals: u3 ↔ u4 ---");
    let u3 = QueryBuilder::new("user3")
        .postcondition("R", |a| a.constant(user_name(4)).var("y"))
        .head("R", |a| a.constant(user_name(3)).var("x"))
        .body("S", |a| a.var("x").constant("t3"))
        .build()
        .unwrap();
    let u4 = QueryBuilder::new("user4")
        .postcondition("R", |a| a.constant(user_name(3)).var("y"))
        .head("R", |a| a.constant(user_name(4)).var("x"))
        .body("S", |a| a.var("x").constant("t4"))
        .build()
        .unwrap();
    let r3 = engine.submit(u3).unwrap();
    println!("submit user3: coordinated = {}", r3.coordinated());
    let r4 = engine.submit(u4).unwrap();
    println!(
        "submit user4: coordinated = {} ({} answers)",
        r4.coordinated(),
        r4.answers.len()
    );

    println!(
        "\ntotal delivered: {}, still pending: {}",
        engine.delivered(),
        engine.pending().len()
    );
    let snap = engine.metrics();
    println!(
        "engine metrics: {} submits, {:.1} queries evaluated/submit, {} pending re-scans avoided",
        snap.submits,
        snap.evaluated_per_submit(),
        snap.rebuild_avoided
    );

    // --- the sharded service: concurrent submitters, disjoint waves ----
    //
    // Four threads each drive their own wave of mutually-coordinating
    // pairs. Disjoint components live in different shards, so the
    // submitters proceed in parallel instead of serializing behind one
    // engine mutex.
    println!("\n--- sharded engine: 4 concurrent submitter threads ---");
    let shared = SharedEngine::with_shards(&db, 4);
    std::thread::scope(|s| {
        for t in 0..4usize {
            let shared = &shared;
            s.spawn(move || {
                for pair in 0..5usize {
                    let a = 100 * (t + 1) + 2 * pair;
                    let b = a + 1;
                    let mutual = |me: usize, partner: usize| {
                        QueryBuilder::new(format!("user{me}"))
                            .postcondition("R", |x| x.constant(user_name(partner)).var("y"))
                            .head("R", |x| x.constant(user_name(me)).var("x"))
                            .body("S", |x| x.var("x").constant(format!("t{}", me % 5)))
                            .build()
                            .unwrap()
                    };
                    shared.submit(mutual(a, b)).unwrap();
                    let r = shared.submit(mutual(b, a)).unwrap();
                    assert!(r.coordinated());
                }
            });
        }
    });
    println!(
        "delivered {} answers across {} shards (pending: {})",
        shared.delivered(),
        shared.shard_count(),
        shared.pending_count()
    );
    for (i, stats) in shared.shard_stats().iter().enumerate() {
        println!(
            "  shard {i}: {} submits, {} contended, {} migrated out",
            stats.submits, stats.contended, stats.migrated_out
        );
    }
}
