//! The flight-hotel coordination example of Section 2.2 / Figure 1, run
//! through the SCC Coordination Algorithm of Section 4.
//!
//! Chris wants to fly with Guy; Guy wants Paris plus Chris's flight and
//! hotel; Jonny wants Athens on Chris and Guy's flight; Will wants Madrid
//! on Chris's flight and Jonny's hotel. The requirements are safe but not
//! unique — the Gupta et al. baseline cannot evaluate them, while the SCC
//! algorithm finds the largest satisfiable subgroup.
//!
//! Also prints the coordination graph in Graphviz DOT form (the paper's
//! Figure 2/3 shapes).
//!
//! Run with: `cargo run --example flight_hotel`

use social_coordination::core::graphs::{coordination_graph, is_safe, is_unique};
use social_coordination::core::scc::{preprocess, SccCoordinator};
use social_coordination::core::{QueryBuilder, QuerySet};
use social_coordination::db::{Database, Value};
use social_coordination::graph::dot::to_dot;

fn main() {
    // Flights F(id, dest) and hotels H(id, loc). Paris and Athens have
    // both a flight and a hotel; Madrid only a flight.
    let mut db = Database::new();
    db.create_table("F", &["flightId", "destination"]).unwrap();
    db.create_table("H", &["hotelId", "location"]).unwrap();
    for (id, d) in [(1, "Paris"), (2, "Athens"), (3, "Madrid")] {
        db.insert("F", vec![Value::int(id), Value::str(d)]).unwrap();
    }
    for (id, l) in [(10, "Paris"), (11, "Athens")] {
        db.insert("H", vec![Value::int(id), Value::str(l)]).unwrap();
    }

    // The four queries of Figure 1.
    let qc = QueryBuilder::new("qC")
        .postcondition("R", |a| a.constant("G").var("x1"))
        .head("R", |a| a.constant("C").var("x1"))
        .head("Q", |a| a.constant("C").var("x2"))
        .body("F", |a| a.var("x1").var("x"))
        .body("H", |a| a.var("x2").var("x"))
        .build()
        .unwrap();
    let qg = QueryBuilder::new("qG")
        .postcondition("R", |a| a.constant("C").var("y1"))
        .postcondition("Q", |a| a.constant("C").var("y2"))
        .head("R", |a| a.constant("G").var("y1"))
        .head("Q", |a| a.constant("G").var("y2"))
        .body("F", |a| a.var("y1").constant("Paris"))
        .body("H", |a| a.var("y2").constant("Paris"))
        .build()
        .unwrap();
    let qj = QueryBuilder::new("qJ")
        .postcondition("R", |a| a.constant("C").var("z1"))
        .postcondition("R", |a| a.constant("G").var("z1"))
        .head("R", |a| a.constant("J").var("z1"))
        .head("Q", |a| a.constant("J").var("z2"))
        .body("F", |a| a.var("z1").constant("Athens"))
        .body("H", |a| a.var("z2").constant("Athens"))
        .build()
        .unwrap();
    let qw = QueryBuilder::new("qW")
        .postcondition("R", |a| a.constant("C").var("w1"))
        .postcondition("Q", |a| a.constant("J").var("w2"))
        .head("R", |a| a.constant("W").var("w1"))
        .head("Q", |a| a.constant("W").var("w2"))
        .body("F", |a| a.var("w1").constant("Madrid"))
        .body("H", |a| a.var("w2").constant("Madrid"))
        .build()
        .unwrap();

    let queries = vec![qc, qg, qj, qw];
    for q in &queries {
        println!("{q}");
    }

    let qs = QuerySet::new(queries.clone());
    println!("\nsafe: {}, unique: {}", is_safe(&qs), is_unique(&qs));

    // The coordination graph (Figure 2, collapsed form).
    let graph = coordination_graph(&qs);
    println!(
        "\nCoordination graph (DOT):\n{}",
        to_dot(
            &graph,
            "coordination",
            |q| qs.query(*q).name().to_string(),
            |()| None
        )
    );

    // SCCs and components.
    let pre = preprocess(&db, &queries).unwrap();
    println!("Strongly connected components:");
    for c in 0..pre.cond.len() {
        let names: Vec<&str> = pre
            .cond
            .members(c)
            .iter()
            .map(|n| {
                pre.qs
                    .query(social_coordination::core::QueryId(n.index()))
                    .name()
            })
            .collect();
        println!("  component {c}: {names:?}");
    }

    // Run the SCC Coordination Algorithm.
    let outcome = SccCoordinator::new(&db).run(&queries).unwrap();
    println!("\nCandidate coordinating sets (closures R(q) that ground):");
    for f in &outcome.found {
        let names: Vec<&str> = f
            .queries
            .iter()
            .map(|&q| outcome.qs.query(q).name())
            .collect();
        println!("  {names:?}");
    }
    println!("Best: {:?}", outcome.best_names());
    println!(
        "({} DB queries over {} components; {} candidates)",
        outcome.stats.db_queries, outcome.stats.components, outcome.stats.candidates
    );
}
