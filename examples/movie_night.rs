//! The movies example of Section 5, run through the Consistent
//! Coordination Algorithm.
//!
//! The Coldplay members each want to go to a cinema with at least one
//! other band member (same cinema, not necessarily the same movie). Chris
//! additionally *names* Will — who is not his friend — as a partner. The
//! query set is **unsafe** (any-friend postconditions unify with several
//! heads), so the SCC algorithm does not apply; but everyone coordinates
//! on the same attribute (the cinema), so the Consistent Coordination
//! Algorithm solves it with a linear number of database queries.
//!
//! Reproduces the paper's V(q) table and the G_Cinemark / G_Regal
//! cleaning walkthrough.
//!
//! Run with: `cargo run --example movie_night`

use social_coordination::core::consistent::{
    ConsistentConfig, ConsistentCoordinator, ConsistentQuery,
};
use social_coordination::db::Database;
use social_coordination::db::Value;
use social_coordination::gen::tables::cinemas_example;

fn main() {
    let mut db = Database::new();
    cinemas_example(&mut db).unwrap();
    db.create_table("C", &["user", "friend"]).unwrap();
    for (u, f) in [
        ("Chris", "Jonny"),
        ("Chris", "Guy"),
        ("Guy", "Chris"),
        ("Guy", "Jonny"),
        ("Jonny", "Chris"),
        ("Jonny", "Will"),
        ("Will", "Chris"),
        ("Will", "Guy"),
    ] {
        db.insert("C", vec![Value::str(u), Value::str(f)]).unwrap();
    }

    // Coordinate on the cinema; the movie is a personal attribute.
    let config = ConsistentConfig::new("M", "movie_id", &["cinema"], &["movie"], "C");

    let queries = vec![
        ConsistentQuery::for_user("Chris", 1, 1)
            .with_named_partner("Will")
            .coord_const(0, "Regal")
            .personal_const(0, "Contagion"),
        ConsistentQuery::for_user("Guy", 1, 1)
            .with_any_friend()
            .coord_const(0, "AMC")
            .personal_const(0, "Project X"),
        ConsistentQuery::for_user("Jonny", 1, 1)
            .with_any_friend()
            .personal_const(0, "Hugo"),
        ConsistentQuery::for_user("Will", 1, 1)
            .with_any_friend()
            .personal_const(0, "Hugo"),
    ];

    let names = ["Chris", "Guy", "Jonny", "Will"];
    println!("Queries:");
    println!("  Chris: Contagion at Regal, together with Will (named, not a friend)");
    println!("  Guy:   Project X at AMC, with any friend");
    println!("  Jonny: Hugo at any cinema, with any friend");
    println!("  Will:  Hugo at any cinema, with any friend");

    let coordinator = ConsistentCoordinator::new(&db, config).unwrap();
    let outcome = coordinator.run(&queries).unwrap();

    // The paper's options table.
    println!("\nOption lists V(q):");
    for (i, list) in outcome.option_lists.iter().enumerate() {
        let cinemas: Vec<&str> = list.iter().filter_map(|v| v[0].as_str()).collect();
        println!("  {:<6} {:?}", names[i], cinemas);
    }

    // Per-value surviving sets after the cleaning phase.
    println!("\nCleaning results per option value:");
    for (v, size) in &outcome.per_value {
        println!("  G_{:<9} → {} member(s)", v[0].to_string(), size);
    }

    let best = outcome.best.as_ref().expect("a coordinating set exists");
    println!(
        "\nChosen cinema: {} with members {:?}",
        best.value[0],
        best.members.iter().map(|&m| names[m]).collect::<Vec<_>>()
    );
    println!("Ticket assignment (user → movie id):");
    for (user, key) in &best.assignment {
        println!("  {user} → movie {key}");
    }
    println!(
        "\nDatabase queries issued: {} (linear in the {} queries)",
        outcome.stats.db_queries,
        queries.len()
    );
}
