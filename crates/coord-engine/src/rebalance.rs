//! Adaptive shard rebalancing under skew.
//!
//! `ShardedEngine` co-shards every pair of queries that could ever
//! coordinate, so a hot relation (Zipf-distributed keys, as in any
//! realistic keyword or entity workload) concentrates expensive
//! components on whichever shards happened to receive them. Least-loaded
//! placement only steers *fresh* components; components that grow hot
//! after placement still pin their shard. The [`Rebalancer`] closes that
//! gap:
//!
//! 1. **Detect** — per-shard load windows (deltas of
//!    [`crate::metrics::ShardStatsSnapshot::load`] since the last run).
//!    When the hottest shard's share of the window exceeds
//!    [`RebalanceConfig::skew_threshold`], the pass triggers.
//! 2. **Select** — scan the resident component groups of every shard
//!    (each under its own shard lock only) and greedily move the
//!    costliest groups off the hot shard onto the coldest one, but only
//!    while a move strictly shrinks the spread (a group costlier than
//!    the hot/cold gap would just relocate the hot spot).
//! 3. **Move** — each victim goes through
//!    `ShardedEngine::rebalance_group`, i.e. the same marker-based
//!    migration protocol bridging queries use: related traffic backs
//!    off briefly, unrelated traffic never blocks, and the router write
//!    lock is never held across a slab scan.
//!
//! Correctness is placement-independent — the routing table stays the
//! single source of truth and moved groups stay whole — so a rebalance
//! can run at any point without changing any coordination result
//! (property-tested against the sequential engine in
//! `tests/equivalence_props.rs`, measured by the `shard_skew` bench).

use crate::engine::{ComponentEvaluator, CoordinationQuery};
use crate::sharded::ShardedEngine;

/// Tuning for [`Rebalancer`].
#[derive(Clone, Copy, Debug)]
pub struct RebalanceConfig {
    /// Trigger when the hottest shard's share of the window load
    /// exceeds this (must be above `1 / shards` to be meaningful).
    pub skew_threshold: f64,
    /// Skip the pass entirely when the window saw less total load than
    /// this — tiny windows make share estimates meaningless.
    pub min_window_load: u64,
    /// Upper bound on component groups moved per pass.
    pub max_moves: usize,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            skew_threshold: 0.4,
            min_window_load: 32,
            max_moves: 8,
        }
    }
}

/// What one [`Rebalancer::run`] pass observed and did.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RebalanceReport {
    /// Whether skew detection fired (enough load, share over threshold).
    pub triggered: bool,
    /// The shard detected as hottest.
    pub hot_shard: usize,
    /// The hottest shard's share of the window load.
    pub hot_share: f64,
    /// Component groups moved off the hot shard.
    pub groups_moved: usize,
    /// Pending queries those groups contained.
    pub queries_moved: usize,
}

/// Skew detector + victim mover over a [`ShardedEngine`]. Holds the
/// load watermarks of the previous pass, so each `run` judges the
/// *window* since the last one rather than all-time totals.
pub struct Rebalancer {
    config: RebalanceConfig,
    /// Cumulative per-shard load at the end of the last window.
    watermarks: Vec<u64>,
}

impl Rebalancer {
    /// A rebalancer with explicit tuning.
    pub fn new(config: RebalanceConfig) -> Self {
        Rebalancer {
            config,
            watermarks: Vec::new(),
        }
    }

    /// The active tuning.
    pub fn config(&self) -> &RebalanceConfig {
        &self.config
    }

    /// One detection + (if triggered) move pass. Cheap when balanced:
    /// a lock-free stats scan and nothing else.
    // lint: acquires(migration_lock, router, shard.engine)
    pub fn run<Q, V>(&mut self, engine: &ShardedEngine<Q, V>) -> RebalanceReport
    where
        Q: CoordinationQuery,
        V: ComponentEvaluator<Q>,
    {
        // A rebalance pass is its own request: the ticket allocates a
        // fresh trace id (no submit ctx is current on this thread), so
        // the migrations it triggers are attributed to the pass rather
        // than blending into unattributed background noise.
        let obs = engine.obs_handles();
        let _span = obs.tracer.ticket("rebalance");
        let _timer = obs.rebalance_hist.start();
        let stats = engine.shard_stats();
        let cumulative: Vec<u64> = stats
            .iter()
            .map(super::metrics::ShardStatsSnapshot::load)
            .collect();
        if self.watermarks.len() != cumulative.len() {
            self.watermarks = vec![0; cumulative.len()];
        }
        let window: Vec<u64> = cumulative
            .iter()
            .zip(&self.watermarks)
            .map(|(c, w)| c.saturating_sub(*w))
            .collect();
        let total: u64 = window.iter().sum();
        let mut report = RebalanceReport::default();
        if total < self.config.min_window_load.max(1) || window.len() < 2 {
            return report;
        }
        let hot = window
            .iter()
            .enumerate()
            .max_by_key(|(_, w)| **w)
            .map(|(i, _)| i)
            .expect("at least two shards");
        report.hot_shard = hot;
        report.hot_share = window[hot] as f64 / total as f64;
        if report.hot_share <= self.config.skew_threshold {
            return report;
        }
        report.triggered = true;
        // Consume the window only when acting, so repeated quiet passes
        // keep accumulating evidence.
        self.watermarks = cumulative;

        // Victim selection by observed cost: the hot shard's window
        // load is attributed across its resident component groups in
        // proportion to their accumulated evaluation cost — the groups
        // that made the shard hot keep receiving the traffic that did
        // it, and their routing keys follow them to the new shard. The
        // projection then works entirely in window-load units: moving a
        // group shifts its attributed load onto the coldest shard, and
        // a move happens only while it strictly shrinks the hot/cold
        // spread (a group hotter than the gap would just relocate the
        // hot spot). Known approximation: cost is accumulated over a
        // group's residence, not the window, so a formerly-hot
        // now-idle group can outrank the one causing the current skew
        // — the mis-aimed move still resets its cost (migration
        // re-inserts), so subsequent passes re-attribute correctly and
        // the system converges instead of oscillating.
        let mut victims = engine.shard_component_groups(hot);
        // Stable sort over the (root-ordered) scan: costliest first,
        // deterministic among ties.
        victims.sort_by_key(|g| std::cmp::Reverse(g.cost));
        let total_cost: u64 = victims.iter().map(|g| g.cost).sum();
        if total_cost == 0 {
            return report;
        }
        let mut projected = window.clone();
        for group in victims {
            if report.groups_moved >= self.config.max_moves {
                break;
            }
            let load = window[hot] * group.cost / total_cost;
            let cold = projected
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| **w)
                .map(|(i, _)| i)
                .expect("at least two shards");
            if cold == hot || load == 0 || load >= projected[hot].saturating_sub(projected[cold]) {
                continue;
            }
            let moved = engine.rebalance_group(&group.keys, cold);
            if moved == 0 {
                continue; // retired or merged since the scan
            }
            report.groups_moved += 1;
            report.queries_moved += moved;
            projected[hot] = projected[hot].saturating_sub(load);
            projected[cold] += load;
        }
        report
    }
}
