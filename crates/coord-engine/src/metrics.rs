//! Engine observability: cheap atomic counters shared by every shard,
//! registry-backed so one [`coord_obs::Registry::snapshot`] exports
//! them next to the latency histograms.
//!
//! The counters double as the *assert-while-measuring* hooks of the
//! `online_throughput` bench: `queries_evaluated` is exactly the
//! per-submit work the paper's online setting cares about, and
//! `rebuild_avoided` is the work the pre-incremental engine (a full
//! coordination-graph rebuild over all pending queries per submit) would
//! have done on top.
//!
//! Each counter is a [`coord_obs::Counter`] — the same relaxed atomic
//! the pre-registry ad-hoc fields were, so the counters stay live (and
//! every existing accessor keeps working) whether or not a registry is
//! attached; [`EngineMetrics::register`] only makes them visible to
//! registry snapshots and the JSON/Prometheus exporters.

use coord_obs::{Counter, Registry};

/// Shared counters for one engine (or one sharded engine — all shards
/// update the same metrics).
#[derive(Debug, Default)]
pub struct EngineMetrics {
    /// Queries submitted (accepted or rejected).
    pub submits: Counter,
    /// Queries answered and retired.
    pub delivered: Counter,
    /// Candidate partner pairs examined through the atom index.
    pub pairings_checked: Counter,
    /// Total queries handed to the component evaluator across submits.
    pub queries_evaluated: Counter,
    /// Pending queries *not* re-examined compared to a full per-submit
    /// rebuild: Σ (pending − component size) over submits.
    pub rebuild_avoided: Counter,
    /// Component evaluations performed.
    pub evaluations: Counter,
    /// Retirement-triggered local component re-partitions.
    pub repartitions: Counter,
    /// Cross-shard component migrations.
    pub migrations: Counter,
    /// Routing attempts that backed off because a key was mid-migration.
    pub migration_backoffs: Counter,
    /// Batch submissions (each covering many queries under one routing
    /// acquisition).
    pub batches: Counter,
    /// Component groups moved off a hot shard by the rebalancer.
    pub rebalance_moves: Counter,
}

impl EngineMetrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn add(counter: &Counter, n: u64) {
        counter.add(n);
    }

    /// Register every counter with `obs` under its `engine_*` name, so
    /// registry snapshots and exporters see the live values. No-op when
    /// the registry is disabled; the counters count either way.
    pub fn register(&self, obs: &Registry) {
        obs.register_counter("engine_submits", &self.submits);
        obs.register_counter("engine_delivered", &self.delivered);
        obs.register_counter("engine_pairings_checked", &self.pairings_checked);
        obs.register_counter("engine_queries_evaluated", &self.queries_evaluated);
        obs.register_counter("engine_rebuild_avoided", &self.rebuild_avoided);
        obs.register_counter("engine_evaluations", &self.evaluations);
        obs.register_counter("engine_repartitions", &self.repartitions);
        obs.register_counter("engine_migrations", &self.migrations);
        obs.register_counter("engine_migration_backoffs", &self.migration_backoffs);
        obs.register_counter("engine_batches", &self.batches);
        obs.register_counter("engine_rebalance_moves", &self.rebalance_moves);
    }

    /// A consistent-enough point-in-time copy (counters are read with
    /// relaxed ordering; exact cross-counter consistency is not needed
    /// for monitoring).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            submits: self.submits.get(),
            delivered: self.delivered.get(),
            pairings_checked: self.pairings_checked.get(),
            queries_evaluated: self.queries_evaluated.get(),
            rebuild_avoided: self.rebuild_avoided.get(),
            evaluations: self.evaluations.get(),
            repartitions: self.repartitions.get(),
            migrations: self.migrations.get(),
            migration_backoffs: self.migration_backoffs.get(),
            batches: self.batches.get(),
            rebalance_moves: self.rebalance_moves.get(),
        }
    }
}

/// Plain-data copy of [`EngineMetrics`] at one instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub submits: u64,
    pub delivered: u64,
    pub pairings_checked: u64,
    pub queries_evaluated: u64,
    pub rebuild_avoided: u64,
    pub evaluations: u64,
    pub repartitions: u64,
    pub migrations: u64,
    pub migration_backoffs: u64,
    pub batches: u64,
    pub rebalance_moves: u64,
}

impl MetricsSnapshot {
    /// Mean queries evaluated per submit — the per-submit work figure the
    /// bench asserts stays sub-linear in the pending-set size.
    pub fn evaluated_per_submit(&self) -> f64 {
        if self.submits == 0 {
            0.0
        } else {
            self.queries_evaluated as f64 / self.submits as f64
        }
    }
}

/// Per-shard load and contention statistics for the sharded engine.
///
/// The three load signals the rebalancer reads are `submits` (routing
/// pressure), `eval_queries` (evaluation work actually performed under
/// this shard's lock), and `lock_wait_nanos` (time submitters spent
/// blocked on the shard lock). [`ShardStats::load_score`] combines the
/// first two into the scalar used for skew detection and least-loaded
/// placement; lock-wait stays a separate signal because its unit
/// (nanoseconds) is incommensurable with query counts.
#[derive(Debug, Default)]
pub struct ShardStats {
    /// Submits routed to this shard.
    pub submits: Counter,
    /// Submits that found the shard lock already held (acquired it only
    /// after blocking).
    pub contended: Counter,
    /// Total nanoseconds submitters spent blocked on this shard's lock.
    pub lock_wait_nanos: Counter,
    /// Queries handed to the component evaluator under this shard's
    /// lock (the per-shard slice of `EngineMetrics::queries_evaluated`).
    pub eval_queries: Counter,
    /// Queries migrated into this shard by a merge or rebalance.
    pub migrated_in: Counter,
    /// Queries migrated out of this shard by a cross-shard merge or
    /// rebalance.
    pub migrated_out: Counter,
}

impl ShardStats {
    /// The scalar load figure used for least-loaded placement and skew
    /// detection. Delegates to [`ShardStatsSnapshot::load`] — one
    /// formula, two access paths, so the live and snapshot views can
    /// never drift.
    pub fn load_score(&self) -> u64 {
        self.snapshot().load()
    }

    /// Plain-data copy.
    pub fn snapshot(&self) -> ShardStatsSnapshot {
        ShardStatsSnapshot {
            submits: self.submits.get(),
            contended: self.contended.get(),
            lock_wait_nanos: self.lock_wait_nanos.get(),
            eval_queries: self.eval_queries.get(),
            migrated_in: self.migrated_in.get(),
            migrated_out: self.migrated_out.get(),
        }
    }
}

/// Plain-data copy of [`ShardStats`] at one instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStatsSnapshot {
    pub submits: u64,
    pub contended: u64,
    pub lock_wait_nanos: u64,
    pub eval_queries: u64,
    pub migrated_in: u64,
    pub migrated_out: u64,
}

impl ShardStatsSnapshot {
    /// The scalar load figure: routing pressure plus evaluation work.
    /// The **single** definition of the load formula —
    /// [`ShardStats::load_score`] delegates here.
    pub fn load(&self) -> u64 {
        self.submits + self.eval_queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_counters() {
        let m = EngineMetrics::new();
        EngineMetrics::add(&m.submits, 3);
        EngineMetrics::add(&m.queries_evaluated, 12);
        let s = m.snapshot();
        assert_eq!(s.submits, 3);
        assert_eq!(s.queries_evaluated, 12);
        assert!((s.evaluated_per_submit() - 4.0).abs() < 1e-12);
    }

    #[test]
    // Exact zero: the zero-submit guard returns literal 0.0.
    #[allow(clippy::float_cmp)]
    fn evaluated_per_submit_handles_zero() {
        assert_eq!(MetricsSnapshot::default().evaluated_per_submit(), 0.0);
    }

    #[test]
    fn shard_load_score_combines_submits_and_eval_work() {
        let s = ShardStats::default();
        EngineMetrics::add(&s.submits, 4);
        EngineMetrics::add(&s.eval_queries, 10);
        EngineMetrics::add(&s.lock_wait_nanos, 1_000_000);
        assert_eq!(s.load_score(), 14);
        let snap = s.snapshot();
        assert_eq!(snap.load(), 14);
        assert_eq!(snap.lock_wait_nanos, 1_000_000);
    }

    /// Pin the live and snapshot load formulas to each other on the
    /// same inputs — the two used to be written out twice and could
    /// drift; now `load_score` delegates and this test keeps it so.
    #[test]
    fn load_score_and_snapshot_load_agree_on_same_inputs() {
        for (submits, evals, wait) in [(0, 0, 0), (1, 0, 7), (0, 9, 3), (17, 4, 99), (1000, 1, 0)] {
            let s = ShardStats::default();
            EngineMetrics::add(&s.submits, submits);
            EngineMetrics::add(&s.eval_queries, evals);
            EngineMetrics::add(&s.lock_wait_nanos, wait);
            assert_eq!(
                s.load_score(),
                s.snapshot().load(),
                "live and snapshot load diverged at submits={submits} evals={evals}"
            );
            assert_eq!(s.load_score(), submits + evals);
        }
    }

    #[test]
    fn register_exports_counters_into_a_registry() {
        let m = EngineMetrics::new();
        let obs = coord_obs::Registry::new();
        m.register(&obs);
        EngineMetrics::add(&m.submits, 2);
        EngineMetrics::add(&m.delivered, 1);
        let snap = obs.snapshot();
        assert_eq!(snap.counter("engine_submits"), Some(2));
        assert_eq!(snap.counter("engine_delivered"), Some(1));
        // Registration shares the counter, not a copy.
        EngineMetrics::add(&m.submits, 1);
        assert_eq!(obs.snapshot().counter("engine_submits"), Some(3));
    }
}
