//! Engine observability: cheap atomic counters shared by every shard.
//!
//! The counters double as the *assert-while-measuring* hooks of the
//! `online_throughput` bench: `queries_evaluated` is exactly the
//! per-submit work the paper's online setting cares about, and
//! `rebuild_avoided` is the work the pre-incremental engine (a full
//! coordination-graph rebuild over all pending queries per submit) would
//! have done on top.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared counters for one engine (or one sharded engine — all shards
/// update the same metrics).
#[derive(Debug, Default)]
pub struct EngineMetrics {
    /// Queries submitted (accepted or rejected).
    pub submits: AtomicU64,
    /// Queries answered and retired.
    pub delivered: AtomicU64,
    /// Candidate partner pairs examined through the atom index.
    pub pairings_checked: AtomicU64,
    /// Total queries handed to the component evaluator across submits.
    pub queries_evaluated: AtomicU64,
    /// Pending queries *not* re-examined compared to a full per-submit
    /// rebuild: Σ (pending − component size) over submits.
    pub rebuild_avoided: AtomicU64,
    /// Component evaluations performed.
    pub evaluations: AtomicU64,
    /// Retirement-triggered local component re-partitions.
    pub repartitions: AtomicU64,
    /// Cross-shard component migrations.
    pub migrations: AtomicU64,
    /// Routing attempts that backed off because a key was mid-migration.
    pub migration_backoffs: AtomicU64,
    /// Batch submissions (each covering many queries under one routing
    /// acquisition).
    pub batches: AtomicU64,
    /// Component groups moved off a hot shard by the rebalancer.
    pub rebalance_moves: AtomicU64,
}

impl EngineMetrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time copy (counters are read with
    /// relaxed ordering; exact cross-counter consistency is not needed
    /// for monitoring).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            submits: self.submits.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            pairings_checked: self.pairings_checked.load(Ordering::Relaxed),
            queries_evaluated: self.queries_evaluated.load(Ordering::Relaxed),
            rebuild_avoided: self.rebuild_avoided.load(Ordering::Relaxed),
            evaluations: self.evaluations.load(Ordering::Relaxed),
            repartitions: self.repartitions.load(Ordering::Relaxed),
            migrations: self.migrations.load(Ordering::Relaxed),
            migration_backoffs: self.migration_backoffs.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            rebalance_moves: self.rebalance_moves.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of [`EngineMetrics`] at one instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub submits: u64,
    pub delivered: u64,
    pub pairings_checked: u64,
    pub queries_evaluated: u64,
    pub rebuild_avoided: u64,
    pub evaluations: u64,
    pub repartitions: u64,
    pub migrations: u64,
    pub migration_backoffs: u64,
    pub batches: u64,
    pub rebalance_moves: u64,
}

impl MetricsSnapshot {
    /// Mean queries evaluated per submit — the per-submit work figure the
    /// bench asserts stays sub-linear in the pending-set size.
    pub fn evaluated_per_submit(&self) -> f64 {
        if self.submits == 0 {
            0.0
        } else {
            self.queries_evaluated as f64 / self.submits as f64
        }
    }
}

/// Per-shard load and contention statistics for the sharded engine.
///
/// The three load signals the rebalancer reads are `submits` (routing
/// pressure), `eval_queries` (evaluation work actually performed under
/// this shard's lock), and `lock_wait_nanos` (time submitters spent
/// blocked on the shard lock). [`ShardStats::load_score`] combines the
/// first two into the scalar used for skew detection and least-loaded
/// placement; lock-wait stays a separate signal because its unit
/// (nanoseconds) is incommensurable with query counts.
#[derive(Debug, Default)]
pub struct ShardStats {
    /// Submits routed to this shard.
    pub submits: AtomicU64,
    /// Submits that found the shard lock already held (acquired it only
    /// after blocking).
    pub contended: AtomicU64,
    /// Total nanoseconds submitters spent blocked on this shard's lock.
    pub lock_wait_nanos: AtomicU64,
    /// Queries handed to the component evaluator under this shard's
    /// lock (the per-shard slice of `EngineMetrics::queries_evaluated`).
    pub eval_queries: AtomicU64,
    /// Queries migrated into this shard by a merge or rebalance.
    pub migrated_in: AtomicU64,
    /// Queries migrated out of this shard by a cross-shard merge or
    /// rebalance.
    pub migrated_out: AtomicU64,
}

impl ShardStats {
    /// The scalar load figure used for least-loaded placement and skew
    /// detection: routing pressure plus evaluation work.
    pub fn load_score(&self) -> u64 {
        self.submits.load(Ordering::Relaxed) + self.eval_queries.load(Ordering::Relaxed)
    }

    /// Plain-data copy.
    pub fn snapshot(&self) -> ShardStatsSnapshot {
        ShardStatsSnapshot {
            submits: self.submits.load(Ordering::Relaxed),
            contended: self.contended.load(Ordering::Relaxed),
            lock_wait_nanos: self.lock_wait_nanos.load(Ordering::Relaxed),
            eval_queries: self.eval_queries.load(Ordering::Relaxed),
            migrated_in: self.migrated_in.load(Ordering::Relaxed),
            migrated_out: self.migrated_out.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of [`ShardStats`] at one instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStatsSnapshot {
    pub submits: u64,
    pub contended: u64,
    pub lock_wait_nanos: u64,
    pub eval_queries: u64,
    pub migrated_in: u64,
    pub migrated_out: u64,
}

impl ShardStatsSnapshot {
    /// The scalar load figure (same formula as [`ShardStats::load_score`]).
    pub fn load(&self) -> u64 {
        self.submits + self.eval_queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_counters() {
        let m = EngineMetrics::new();
        EngineMetrics::add(&m.submits, 3);
        EngineMetrics::add(&m.queries_evaluated, 12);
        let s = m.snapshot();
        assert_eq!(s.submits, 3);
        assert_eq!(s.queries_evaluated, 12);
        assert!((s.evaluated_per_submit() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn evaluated_per_submit_handles_zero() {
        assert_eq!(MetricsSnapshot::default().evaluated_per_submit(), 0.0);
    }

    #[test]
    fn shard_load_score_combines_submits_and_eval_work() {
        let s = ShardStats::default();
        EngineMetrics::add(&s.submits, 4);
        EngineMetrics::add(&s.eval_queries, 10);
        EngineMetrics::add(&s.lock_wait_nanos, 1_000_000);
        assert_eq!(s.load_score(), 14);
        let snap = s.snapshot();
        assert_eq!(snap.load(), 14);
        assert_eq!(snap.lock_wait_nanos, 1_000_000);
    }
}
