//! The persistent atom index: heads and postconditions bucketed by
//! (relation, coordination-attribute constant).
//!
//! The data structure itself lives in [`coord_graph::index`] — it is the
//! same (relation, first-arg constant) bucketing the batch algorithms use
//! for graph construction, safety checking and preprocessing — and this
//! module re-exports it under the crate's historical paths. What is
//! *online-specific* is the usage pattern: the batch side rebuilds a
//! head index per run, while the service keeps the two-sided
//! [`AtomIndex`] *alive* across submits, so a new query unifies only
//! against candidate partners — the queries sharing a bucket — instead
//! of being paired with every pending query.
//!
//! Candidate discovery is conservative: it may propose partners whose
//! atoms do not actually unify position-by-position, which only makes
//! components *larger* (never splits a true component), so correctness
//! of the evaluation is preserved.

pub use coord_graph::index::{keys_related, AtomIndex, KeyPattern, PatternIndex, Polarity};
