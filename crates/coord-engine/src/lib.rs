//! # coord-engine — sharded, incremental online coordination service
//!
//! The paper's Section 7 raises the on-line setting (and its Youtopia
//! prototype lives it): queries arrive one at a time, the system updates
//! the coordination graph and evaluates only the affected connected
//! component. This crate is that loop as a *service*, replacing the
//! per-submit full rebuild with incrementally maintained state:
//!
//! * [`index::AtomIndex`] — a persistent index of pending heads and
//!   postconditions keyed by (relation, coordination-attribute constant),
//!   so a new query unifies only against candidate partners instead of
//!   all pairs (the index structure is the shared
//!   [`coord_graph::index`] layer, which the batch algorithms also use),
//! * [`engine::IncrementalEngine`] — union-find component maintenance on
//!   submit/retire around a pluggable [`engine::ComponentEvaluator`],
//! * [`sharded::ShardedEngine`] — per-component shards, each behind its
//!   own lock, with a read-mostly routing table, least-loaded placement
//!   of fresh components, and cross-shard component migration, so
//!   submitters touching disjoint components proceed concurrently,
//! * [`rebalance::Rebalancer`] — adaptive skew correction: detects a
//!   hot shard from the per-shard load windows and moves its costliest
//!   component groups to colder shards through the marker-based
//!   migration protocol,
//! * [`metrics::EngineMetrics`] — submit/pairing/evaluation counters
//!   (including the rebuild-avoided figure benchmarked by
//!   `online_throughput`) and per-shard load/contention stats
//!   (submits, evaluation work, lock-wait).
//!
//! The crate is generic over the query type ([`engine::
//! CoordinationQuery`]) and the evaluation algorithm, which keeps it
//! *below* `coord-core` in the workspace DAG: `coord_core::engine` wires
//! the SCC Coordination Algorithm in as the evaluator and re-exports the
//! familiar `CoordinationEngine` / `SharedEngine` API on top.

#![forbid(unsafe_code)]

pub mod engine;
pub mod index;
pub mod lockrank;
pub mod metrics;
pub mod rebalance;
pub mod sharded;

pub use engine::{
    ComponentEvaluator, ComponentGroup, CoordinationQuery, EvalVerdict, IncrementalEngine,
    SubmitOutcome,
};
pub use index::{AtomIndex, KeyPattern, Polarity};
pub use metrics::{EngineMetrics, MetricsSnapshot, ShardStats, ShardStatsSnapshot};
pub use rebalance::{RebalanceConfig, RebalanceReport, Rebalancer};
pub use sharded::{Placement, ShardedEngine};
