//! Per-component sharding: concurrent submitters touching disjoint
//! components proceed in parallel instead of serializing behind one
//! engine mutex.
//!
//! ## Design
//!
//! Each shard owns an [`IncrementalEngine`] behind its own mutex. A
//! read-mostly **routing table** ([`parking_lot::RwLock`]) maps every key
//! pattern held by a pending query to the shard that owns it, with the
//! invariant that *all holders of related keys are co-sharded* — so any
//! two queries that could ever coordinate always meet inside one shard.
//!
//! * A query whose keys are unclaimed is **placed**: on the least-loaded
//!   shard by default ([`Placement::LeastLoaded`], ties broken
//!   round-robin so an idle engine degenerates to round-robin), or
//!   strictly round-robin ([`Placement::RoundRobin`]). The routing table
//!   stays the single source of truth either way — placement only picks
//!   where a *fresh* component lands; lookups remain exact.
//! * A query whose keys hit one shard is routed there.
//! * A query bridging several shards triggers a **migration**: the
//!   bridged components are moved to one target shard before the query
//!   lands.
//!
//! Skewed workloads (a hot relation with Zipf-distributed keys) can
//! still pile expensive components onto one shard; the
//! [`crate::rebalance::Rebalancer`] detects that from the per-shard
//! load stats and moves victim components — picked by observed cost via
//! [`ShardedEngine::shard_component_groups`] — to colder shards through
//! [`ShardedEngine::rebalance_group`], which reuses the same
//! marker-based migration protocol as bridging queries.
//!
//! ## Migration protocol (marker-based)
//!
//! A migration must not hold the router write lock while it waits for
//! shard locks or scans shard slabs — that would stall every unrelated
//! submitter for the duration of a possibly long component evaluation.
//! Instead the router keeps a set of **migrating key markers**:
//!
//! 1. *Mark* (router write, brief): every registered key related to the
//!    bridging query's keys is marked. Routing and shard-side validation
//!    treat marked keys as "in flux": submitters touching them back off
//!    and retry, submitters touching anything else proceed.
//! 2. *Freeze* (no router lock): each source shard's slab is scanned —
//!    under that shard's lock alone — for the transitive key closure of
//!    the marked set; newly found keys are marked too (brief router
//!    writes) until a fixed point. Once the whole closure is marked, no
//!    new query can join the components being moved, and no in-flight
//!    claimant can slip in: a claimant validates its keys against the
//!    marker set *after* taking its shard lock, so it either landed
//!    before the freeze (and is seen by the scan) or backs off.
//! 3. *Move* (no router lock): extract the closure from each source
//!    shard and insert it into the target, taking one shard lock at a
//!    time.
//! 4. *Publish* (router write, brief): point every closure key at the
//!    target and lift the marks.
//!
//! ## Lock discipline
//!
//! The router write lock is only ever held for in-memory table work —
//! never while blocking on a shard lock or scanning a slab. That
//! includes the rejected-bridge rollback, which goes back through the
//! same marker-based move path as a forward migration (mark → freeze →
//! move under shard locks → publish) instead of holding the router
//! write lock across the whole undo. Threads
//! holding a shard lock only ever poll the router with non-blocking
//! `try_read` and back off on failure, so the two lock levels cannot
//! deadlock. Migrations (bridge-driven, rollback, and rebalancer moves
//! alike) take shard locks one at a time with no router lock held, and
//! are **serialized** on a dedicated migration lock (acquired with no
//! other lock held): seeds that look disjoint can still grow colliding
//! transitive closures, and one-at-a-time execution keeps the marker
//! set owned by exactly one migration. Unrelated submitters never touch
//! that lock.
//!
//! ## Lock ordering
//!
//! The prose above is *checked*, not just documented. Every lock in the
//! workspace carries a numeric rank in the shared table
//! [`coord_lint::ranks`] (re-exported as [`crate::lockrank`]), and a
//! thread may only block on a lock whose rank is **≤ the minimum rank
//! it already holds** (equal rank is allowed — source and target shard
//! engines during a migration, serialized by the higher-ranked
//! migration lock). For this module:
//!
//! ```text
//! rebalancer (70) > migration_lock (60) > router (50) > shard.engine (40)
//! ```
//!
//! Non-blocking `try_*` acquisitions are exempt: a thread that backs
//! off on failure cannot close a deadlock cycle, which is exactly why
//! shard-lock holders poll the router with `try_read` only. Two oracles
//! enforce the DAG from the same table: the `coord-lint` static
//! analyzer (rules L1–L4, run in CI with `--deny`) proves the ordering
//! lexically, and the [`crate::lockrank`] runtime validator (compiled
//! in under `debug-assertions`) asserts it on every ranked acquisition
//! while the test suite runs — guard sites here are wrapped in
//! [`crate::lockrank::ranked`].
//!
//! Submitters whose keys *are* mid-migration park on a condvar-backed
//! mark gate that the migration notifies when it lifts its marks —
//! so a wait bounded by a long component evaluation costs wake-up
//! latency, not blind-sleep latency (the `migration_backoffs` metric
//! still counts every wait round).

use crate::engine::{
    ComponentEvaluator, ComponentGroup, CoordinationQuery, IncrementalEngine, SubmitOutcome,
};
use crate::index::{keys_related, KeyPattern};
use crate::lockrank::{self, LockRank};
use crate::metrics::{EngineMetrics, ShardStats, ShardStatsSnapshot};
use coord_obs::{Gauge, Histogram, Registry, TraceCtx, Tracer};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a query whose keys are unclaimed picks its shard.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Placement {
    /// Cycle through shards regardless of load.
    RoundRobin,
    /// Place on the shard with the least observed load
    /// ([`ShardStats::load_score`]: submits + evaluation work), ties
    /// broken round-robin — an idle engine behaves exactly like
    /// [`Placement::RoundRobin`].
    #[default]
    LeastLoaded,
}

/// A condvar-backed generation counter: submitters blocked on migration
/// marks park here instead of sleeping blind, and every migration bumps
/// the generation (waking all waiters) when it lifts its marks.
struct MarkGate {
    generation: std::sync::Mutex<u64>,
    lifted: std::sync::Condvar,
}

impl MarkGate {
    fn new() -> Self {
        MarkGate {
            generation: std::sync::Mutex::new(0),
            lifted: std::sync::Condvar::new(),
        }
    }

    fn generation(&self) -> u64 {
        *self
            .generation
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Marks were lifted: wake every parked submitter.
    fn bump(&self) {
        *self
            .generation
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) += 1;
        self.lifted.notify_all();
    }

    /// Park until the generation moves past `seen` (some migration
    /// lifted marks after the caller sampled it) or `timeout` elapses —
    /// the timeout is only a safety net; the normal exit is a wake-up.
    fn wait_past(&self, seen: u64, timeout: Duration) {
        let guard = self
            .generation
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if *guard != seen {
            return;
        }
        let _ = self
            .lifted
            .wait_timeout_while(guard, timeout, |generation| *generation == seen);
    }
}

/// One key pattern's routing entry.
struct KeySlot {
    shard: usize,
    /// How many pending queries hold this key.
    refs: usize,
}

/// The routing table: key pattern → owning shard, plus the keys
/// currently frozen by the in-flight migration.
struct Router<R, C> {
    keys: HashMap<KeyPattern<R, C>, KeySlot>,
    /// relation → shard → number of distinct keys (for wildcard lookups).
    by_rel: HashMap<R, HashMap<usize, usize>>,
    /// Keys mid-migration, bucketed by relation so the `blocked` probe
    /// run by every route/validation stays proportional to the query's
    /// own keys, not to the (possibly large) frozen closure. Routing
    /// related keys backs off until the migration publishes and lifts
    /// these.
    migrating: HashMap<R, Vec<Option<C>>>,
}

impl<R: Clone + Eq + std::hash::Hash, C: Clone + Eq + std::hash::Hash> Router<R, C> {
    fn new() -> Self {
        Router {
            keys: HashMap::new(),
            by_rel: HashMap::new(),
            migrating: HashMap::new(),
        }
    }

    /// Whether any of `keys` is related to a key frozen by the
    /// in-flight migration.
    fn blocked(&self, keys: &[KeyPattern<R, C>]) -> bool {
        !self.migrating.is_empty()
            && keys.iter().any(|(rel, c)| {
                self.migrating
                    .get(rel)
                    .is_some_and(|marks| marks.iter().any(|m| m.is_none() || c.is_none() || m == c))
            })
    }

    /// Add keys to the migrating set. Migrations are serialized and
    /// dedup their closure growth, so the keys are guaranteed fresh —
    /// no membership scan is needed.
    fn mark(&mut self, keys: &[KeyPattern<R, C>]) {
        for (rel, c) in keys {
            self.migrating
                .entry(rel.clone())
                .or_default()
                .push(c.clone());
        }
    }

    fn unmark(&mut self, keys: &std::collections::HashSet<KeyPattern<R, C>>) {
        for (rel, c) in keys {
            if let Some(marks) = self.migrating.get_mut(rel) {
                if let Some(pos) = marks.iter().position(|m| m == c) {
                    marks.swap_remove(pos);
                }
                if marks.is_empty() {
                    self.migrating.remove(rel);
                }
            }
        }
    }

    /// Shards owning any key related to one of `keys`.
    fn owners_related(&self, keys: &[KeyPattern<R, C>]) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        for key in keys {
            match &key.1 {
                Some(_) => {
                    for k in [key.clone(), (key.0.clone(), None)] {
                        if let Some(slot) = self.keys.get(&k) {
                            out.insert(slot.shard);
                        }
                    }
                }
                None => {
                    // Wildcard: every shard holding any key of the
                    // relation.
                    if let Some(shards) = self.by_rel.get(&key.0) {
                        out.extend(shards.keys().copied());
                    }
                }
            }
        }
        out
    }

    fn register(&mut self, key: &KeyPattern<R, C>, shard: usize) {
        match self.keys.get_mut(key) {
            Some(slot) => {
                debug_assert_eq!(slot.shard, shard, "key registered on two shards");
                slot.refs += 1;
            }
            None => {
                self.keys.insert(key.clone(), KeySlot { shard, refs: 1 });
                *self
                    .by_rel
                    .entry(key.0.clone())
                    .or_default()
                    .entry(shard)
                    .or_insert(0) += 1;
            }
        }
    }

    fn unregister(&mut self, key: &KeyPattern<R, C>) {
        let Some(slot) = self.keys.get_mut(key) else {
            return;
        };
        slot.refs -= 1;
        if slot.refs == 0 {
            let shard = slot.shard;
            self.keys.remove(key);
            if let Some(shards) = self.by_rel.get_mut(&key.0) {
                if let Some(n) = shards.get_mut(&shard) {
                    *n -= 1;
                    if *n == 0 {
                        shards.remove(&shard);
                    }
                }
                if shards.is_empty() {
                    self.by_rel.remove(&key.0);
                }
            }
        }
    }

    /// Point an existing key at a new shard (during migration).
    fn reassign(&mut self, key: &KeyPattern<R, C>, to: usize) {
        let Some(slot) = self.keys.get_mut(key) else {
            return;
        };
        let from = slot.shard;
        if from == to {
            return;
        }
        slot.shard = to;
        if let Some(shards) = self.by_rel.get_mut(&key.0) {
            if let Some(n) = shards.get_mut(&from) {
                *n -= 1;
                if *n == 0 {
                    shards.remove(&from);
                }
            }
            *shards.entry(to).or_insert(0) += 1;
        }
    }
}

struct Shard<Q: CoordinationQuery, V> {
    engine: Mutex<IncrementalEngine<Q, V>>,
    /// Shared with the shard's engine (which records its evaluation
    /// work here) and read lock-free by placement and the rebalancer.
    stats: Arc<ShardStats>,
    /// Queue-depth gauge (`shard_pending_<i>`): the shard's pending-set
    /// size, refreshed after every mutation under the shard lock.
    pending_gauge: Gauge,
}

/// Key groups moved by migrations performed for one submission:
/// `(source shard, moved queries' keys)` — enough to undo the merges if
/// the submission is rejected.
type MigrationRecord<Q> = Vec<(
    usize,
    Vec<KeyPattern<<Q as CoordinationQuery>::Rel, <Q as CoordinationQuery>::Cst>>,
)>;

/// A located migration seed: the keys to move plus the shard they
/// currently live on (see `ShardedEngine::seed_on_one_shard`).
type SeedPlan<Q> = (
    Vec<KeyPattern<<Q as CoordinationQuery>::Rel, <Q as CoordinationQuery>::Cst>>,
    usize,
);

/// Per-query outcomes of [`ShardedEngine::submit_batch`], in input
/// order.
pub type BatchResults<Q, V> = Vec<
    Result<
        SubmitOutcome<Q, <V as ComponentEvaluator<Q>>::Delivery>,
        <V as ComponentEvaluator<Q>>::Error,
    >,
>;

/// Outcome of [`ShardedEngine::submit_with_shard`]: the shard that ran
/// the evaluation plus the submit result.
pub type ShardedSubmit<Q, V> = (
    usize,
    Result<
        SubmitOutcome<Q, <V as ComponentEvaluator<Q>>::Delivery>,
        <V as ComponentEvaluator<Q>>::Error,
    >,
);

/// A planned migration: the marked seed keys, the shards to drain, and
/// the shard everything lands on.
struct MigrationPlan<R, C> {
    seed: Vec<KeyPattern<R, C>>,
    sources: Vec<usize>,
    target: usize,
}

/// The engine's observability handles: one registry plus the latency
/// histograms and tracer every shard records into. Histograms and
/// tracer are inert (a branch per call, no clock reads) when the
/// registry is disabled; the [`EngineMetrics`] counters count either
/// way.
pub(crate) struct EngineObs {
    registry: Registry,
    /// End-to-end submit latency (routing + lock + evaluate + commit).
    pub(crate) submit_hist: Histogram,
    /// Nanoseconds submitters spent blocked on a contended shard lock.
    pub(crate) lock_wait_hist: Histogram,
    /// Duration of one marker-based migration (freeze + move + publish).
    pub(crate) migration_hist: Histogram,
    /// Duration of one rebalancer detection + move pass.
    pub(crate) rebalance_hist: Histogram,
    /// Submits currently inside the engine (`engine_inflight` gauge) —
    /// the admission-control signal the ROADMAP's async front-end
    /// consumes alongside the per-shard queue depths.
    pub(crate) inflight: Gauge,
    pub(crate) tracer: Tracer,
}

impl EngineObs {
    fn new(registry: Registry) -> Self {
        EngineObs {
            submit_hist: registry.histogram("engine_submit_nanos"),
            lock_wait_hist: registry.histogram("engine_lock_wait_nanos"),
            migration_hist: registry.histogram("engine_migration_nanos"),
            rebalance_hist: registry.histogram("engine_rebalance_nanos"),
            inflight: registry.gauge("engine_inflight"),
            tracer: registry.tracer(),
            registry,
        }
    }
}

/// Guard holding the `engine_inflight` gauge up by one for the duration
/// of one submit.
struct InflightGuard<'a>(&'a Gauge);

impl<'a> InflightGuard<'a> {
    fn enter(gauge: &'a Gauge) -> Self {
        gauge.incr();
        InflightGuard(gauge)
    }
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.decr();
    }
}

/// The sharded online coordination service: replaces the pre-incremental
/// `SharedEngine`'s single global mutex with per-component shards.
pub struct ShardedEngine<Q: CoordinationQuery, V> {
    shards: Vec<Shard<Q, V>>,
    router: RwLock<Router<Q::Rel, Q::Cst>>,
    metrics: Arc<EngineMetrics>,
    placement: Placement,
    next_shard: AtomicUsize,
    /// Serializes migrations. Two migrations whose *seeds* look
    /// unrelated can still grow colliding transitive closures; running
    /// them one at a time means the marker set always belongs to
    /// exactly one in-flight migration — which is what lets `mark`
    /// skip dedup and `unmark` clear wholesale. Migrations are rare;
    /// unrelated submitters never touch this lock.
    migration_lock: Mutex<()>,
    /// Wakes submitters parked on migration marks when a migration
    /// publishes and lifts them.
    mark_gate: MarkGate,
    /// Registry-backed histograms and tracer (see [`EngineObs`]).
    obs: EngineObs,
}

impl<Q: CoordinationQuery, V: ComponentEvaluator<Q> + Clone> ShardedEngine<Q, V> {
    /// A service with `shards` shards, each evaluating components with a
    /// clone of `evaluator`, placing fresh components least-loaded.
    pub fn new(evaluator: V, shards: usize) -> Self {
        Self::with_placement(evaluator, shards, Placement::default())
    }

    /// A service with an explicit placement policy for fresh components
    /// and its own enabled observability registry.
    pub fn with_placement(evaluator: V, shards: usize, placement: Placement) -> Self {
        Self::with_obs(evaluator, shards, placement, Registry::new())
    }

    /// A service recording into an explicit observability registry —
    /// shared with other layers (the durable store threads one registry
    /// through engine, WAL and cache), or [`Registry::disabled`] to
    /// compile the histograms and tracer down to a branch per call.
    pub fn with_obs(evaluator: V, shards: usize, placement: Placement, registry: Registry) -> Self {
        assert!(shards > 0, "at least one shard required");
        let obs = EngineObs::new(registry);
        let metrics = Arc::new(EngineMetrics::new());
        metrics.register(&obs.registry);
        let shards = (0..shards)
            .map(|i| {
                let stats = Arc::new(ShardStats::default());
                let mut engine =
                    IncrementalEngine::with_metrics(evaluator.clone(), Arc::clone(&metrics));
                engine.set_shard_stats(Arc::clone(&stats));
                engine.set_tracer(obs.tracer.clone());
                Shard {
                    engine: Mutex::new(engine),
                    stats,
                    pending_gauge: obs.registry.gauge(&format!("shard_pending_{i}")),
                }
            })
            .collect();
        ShardedEngine {
            shards,
            router: RwLock::new(Router::new()),
            metrics,
            placement,
            next_shard: AtomicUsize::new(0),
            migration_lock: Mutex::new(()),
            mark_gate: MarkGate::new(),
            obs,
        }
    }
}

impl<Q: CoordinationQuery, V: ComponentEvaluator<Q>> ShardedEngine<Q, V> {
    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Aggregated metrics across all shards.
    pub fn metrics(&self) -> &Arc<EngineMetrics> {
        &self.metrics
    }

    /// The observability registry this engine records into: counters,
    /// submit-latency / lock-wait / migration / rebalance histograms,
    /// and the trace ring.
    pub fn obs(&self) -> &Registry {
        &self.obs.registry
    }

    /// The engine's recording handles (crate-internal: the rebalancer
    /// times its passes through these).
    pub(crate) fn obs_handles(&self) -> &EngineObs {
        &self.obs
    }

    /// Per-shard load and contention statistics.
    pub fn shard_stats(&self) -> Vec<ShardStatsSnapshot> {
        self.shards.iter().map(|s| s.stats.snapshot()).collect()
    }

    /// The placement policy for fresh components.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// Component groups (keys, size, observed cost) currently resident
    /// on `shard`, scanned under that shard's lock only — the
    /// rebalancer's victim-selection input.
    // lint: acquires(shard.engine)
    pub fn shard_component_groups(&self, shard: usize) -> Vec<ComponentGroup<Q::Rel, Q::Cst>> {
        lockrank::ranked(LockRank::ShardEngine, self.shards[shard].engine.lock()).component_groups()
    }

    /// Pick the shard a fresh component lands on.
    fn place(&self) -> usize {
        match self.placement {
            Placement::RoundRobin => {
                self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len()
            }
            Placement::LeastLoaded => {
                let mut min = u64::MAX;
                let mut coldest: Vec<usize> = Vec::with_capacity(self.shards.len());
                for (i, shard) in self.shards.iter().enumerate() {
                    let load = shard.stats.load_score();
                    match load.cmp(&min) {
                        std::cmp::Ordering::Less => {
                            min = load;
                            coldest.clear();
                            coldest.push(i);
                        }
                        std::cmp::Ordering::Equal => coldest.push(i),
                        std::cmp::Ordering::Greater => {}
                    }
                }
                coldest[self.next_shard.fetch_add(1, Ordering::Relaxed) % coldest.len()]
            }
        }
    }

    /// Take a shard's engine lock, recording contention and lock-wait
    /// time when it is already held.
    // lint: acquires(shard.engine) returns-guard
    fn lock_shard<'a>(
        &'a self,
        shard: &'a Shard<Q, V>,
    ) -> lockrank::Ranked<parking_lot::MutexGuard<'a, IncrementalEngine<Q, V>>> {
        // lint: backoff — uncontended fast path only; a miss falls
        // through to the blocking lock below after recording contention
        match shard.engine.try_lock() {
            Some(guard) => lockrank::ranked(LockRank::ShardEngine, guard),
            None => {
                EngineMetrics::add(&shard.stats.contended, 1);
                let start = Instant::now();
                let guard = lockrank::ranked(LockRank::ShardEngine, shard.engine.lock());
                let waited = start.elapsed().as_nanos() as u64;
                EngineMetrics::add(&shard.stats.lock_wait_nanos, waited);
                self.obs.lock_wait_hist.record(waited);
                self.obs
                    .tracer
                    .instant_in(TraceCtx::current(), "lock_wait", waited);
                guard
            }
        }
    }

    /// Total pending queries across shards.
    pub fn pending_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lockrank::ranked(LockRank::ShardEngine, s.engine.lock()).pending_count())
            .sum()
    }

    /// Total maintained components across shards.
    pub fn component_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lockrank::ranked(LockRank::ShardEngine, s.engine.lock()).component_count())
            .sum()
    }

    /// Total queries answered and retired.
    pub fn delivered(&self) -> u64 {
        self.metrics.delivered.get()
    }

    /// Clones of all pending queries (shard by shard; a moving snapshot
    /// under concurrent submits).
    pub fn pending(&self) -> Vec<Q> {
        let mut out = Vec::new();
        for s in &self.shards {
            out.extend(
                lockrank::ranked(LockRank::ShardEngine, s.engine.lock())
                    .pending()
                    .cloned(),
            );
        }
        out
    }

    /// Submit a query: route it to the shard owning its keys (migrating
    /// bridged components first if it spans shards), then run the
    /// incremental submit under that shard's lock only.
    pub fn submit(&self, query: Q) -> Result<SubmitOutcome<Q, V::Delivery>, V::Error> {
        self.submit_with_shard(query).1
    }

    /// Like [`Self::submit`], additionally reporting which shard ran
    /// the evaluation. The durable layer routes the accepted submit's
    /// commit record to that shard's WAL stream, so the per-shard
    /// stream mapping stays correct as components move between shards.
    pub fn submit_with_shard(&self, query: Q) -> ShardedSubmit<Q, V> {
        // One TraceCtx per submit: allocated here unless an enclosing
        // layer (the durable engine) already installed the request's
        // context on this thread, in which case the ticket nests.
        let _ticket = self.obs.tracer.ticket("submit");
        let _inflight = InflightGuard::enter(&self.obs.inflight);
        let _timer = self.obs.submit_hist.start();
        let qkeys = route_keys(&query);
        let mut migrated: MigrationRecord<Q> = Vec::new();
        let target = self.claim(&qkeys, &mut migrated, true);
        let (shard, outcome) =
            self.with_owned_shard(&qkeys, target, &mut migrated, true, |e| e.submit(query));
        (shard, self.finish(&qkeys, migrated, outcome))
    }

    /// Insert a query that is known to be stable-pending — recovered
    /// from the durable store's log, where it demonstrably did not
    /// coordinate — routing it like a submit but skipping evaluation.
    pub fn insert_pending(&self, query: Q) {
        let qkeys = route_keys(&query);
        let mut migrated: MigrationRecord<Q> = Vec::new();
        let target = self.claim(&qkeys, &mut migrated, true);
        self.with_owned_shard(&qkeys, target, &mut migrated, false, |e| {
            e.insert_pending(query);
        });
    }

    /// Submit a batch of queries, acquiring the routing table **once**
    /// for the whole batch (one claim pass, one release pass) instead of
    /// twice per query. Queries that need a migration — or whose route
    /// is invalidated by a concurrent one — fall back to the one-query
    /// path *after* the directly routable ones. Results are in input
    /// order, and directly routable queries of one component keep their
    /// relative order — so a batch behaves exactly like submitting its
    /// members sequentially when its components are disjoint or already
    /// co-sharded (a deferred in-batch bridge runs late, and may
    /// therefore observe same-component batch members that sequential
    /// order would have placed after it).
    pub fn submit_batch(&self, queries: Vec<Q>) -> BatchResults<Q, V> {
        EngineMetrics::add(&self.metrics.batches, 1);
        let n = queries.len();
        let keysets: Vec<Vec<KeyPattern<Q::Rel, Q::Cst>>> =
            queries.iter().map(route_keys).collect();

        // Phase 1 (one exclusive acquisition): route and claim every
        // directly routable query. Bridging or migration-blocked
        // queries stay unclaimed and take the slow path below.
        let mut targets: Vec<Option<usize>> = vec![None; n];
        {
            let mut router = lockrank::ranked(LockRank::Router, self.router.write());
            for i in 0..n {
                let qkeys = &keysets[i];
                if router.blocked(qkeys) {
                    continue;
                }
                let owners = router.owners_related(qkeys);
                let t = match owners.len() {
                    0 => self.place(),
                    1 => *owners.iter().next().unwrap(),
                    _ => continue,
                };
                for k in qkeys {
                    router.register(k, t);
                }
                targets[i] = Some(t);
            }
        }

        // Phase 2: per target shard, take the shard lock once and run
        // the claimed queries in input order.
        let mut slots: Vec<Option<Q>> = queries.into_iter().map(Some).collect();
        let mut results: Vec<Option<_>> = (0..n).map(|_| None).collect();
        let mut by_shard: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, t) in targets.iter().enumerate() {
            if let Some(t) = *t {
                by_shard.entry(t).or_default().push(i);
            }
        }
        for (&t, idxs) in &by_shard {
            let shard = &self.shards[t];
            let mut engine = self.lock_shard(shard);
            for &i in idxs {
                let qkeys = &keysets[i];
                // Same post-lock validation as the one-query path; an
                // invalidated claim falls through to the slow path with
                // its keys still registered.
                let valid = qkeys.is_empty()
                    // lint: backoff — never blocks on the router while
                    // holding the shard lock; a miss (writer active)
                    // routes the query to the one-query slow path below
                    || match self.router.try_read() {
                        Some(router) => {
                            qkeys.iter().all(|k| router.keys[k].shard == t)
                                && !router.blocked(qkeys)
                        }
                        None => false,
                    };
                if !valid {
                    continue;
                }
                EngineMetrics::add(&shard.stats.submits, 1);
                // The batch fast path still gets one TraceCtx per query
                // — ids must not collapse just because the routing was
                // amortized.
                let _ticket = self.obs.tracer.ticket("submit");
                let _inflight = InflightGuard::enter(&self.obs.inflight);
                let _timer = self.obs.submit_hist.start();
                results[i] = Some(engine.submit(slots[i].take().expect("query unconsumed")));
            }
            shard.pending_gauge.set(engine.pending_count() as u64);
        }

        // Slow path: unclaimed queries run the full one-query protocol;
        // claimed-but-invalidated ones rejoin it after re-routing.
        for i in 0..n {
            if results[i].is_some() {
                continue;
            }
            let query = slots[i].take().expect("query unconsumed");
            match targets[i] {
                None => results[i] = Some(self.submit(query)),
                Some(t0) => {
                    let _ticket = self.obs.tracer.ticket("submit");
                    let _inflight = InflightGuard::enter(&self.obs.inflight);
                    let _timer = self.obs.submit_hist.start();
                    let mut migrated: MigrationRecord<Q> = Vec::new();
                    let (_, outcome) =
                        self.with_owned_shard(&keysets[i], t0, &mut migrated, true, |e| {
                            e.submit(query)
                        });
                    results[i] = Some(self.finish(&keysets[i], migrated, outcome));
                    targets[i] = None; // released by `finish`, skip below
                }
            }
        }

        // Phase 3 (one exclusive acquisition): release everything the
        // fast-path queries retired or failed to submit.
        {
            let mut router = lockrank::ranked(LockRank::Router, self.router.write());
            for i in 0..n {
                if targets[i].is_none() {
                    continue;
                }
                match results[i].as_ref().expect("result recorded") {
                    Err(_) => {
                        for k in &keysets[i] {
                            router.unregister(k);
                        }
                    }
                    Ok(out) => {
                        for q in &out.retired {
                            for k in route_keys(q) {
                                router.unregister(&k);
                            }
                        }
                    }
                }
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("result recorded"))
            .collect()
    }

    /// Route `qkeys` to one shard and (optionally) claim them there,
    /// performing marker-based migrations first when the keys bridge
    /// shards. Never holds the router lock while migrating.
    // lint: acquires(migration_lock, router, shard.engine)
    fn claim(
        &self,
        qkeys: &[KeyPattern<Q::Rel, Q::Cst>],
        migrated: &mut MigrationRecord<Q>,
        register: bool,
    ) -> usize {
        if qkeys.is_empty() {
            return self.place();
        }
        let mut backoffs = 0u32;
        loop {
            // Sample the gate's generation *before* probing the marks:
            // a migration that publishes between the probe and the wait
            // has already bumped past the sample, so the wait returns
            // immediately (no lost wake-up).
            let mark_generation = self.mark_gate.generation();
            let plan = {
                let mut router = lockrank::ranked(LockRank::Router, self.router.write());
                if router.blocked(qkeys) {
                    None
                } else {
                    let owners = router.owners_related(qkeys);
                    match owners.len() {
                        0 => {
                            let t = self.place();
                            if register {
                                for k in qkeys {
                                    router.register(k, t);
                                }
                            }
                            return t;
                        }
                        1 => {
                            let t = *owners.iter().next().unwrap();
                            if register {
                                for k in qkeys {
                                    router.register(k, t);
                                }
                            }
                            return t;
                        }
                        _ => {
                            // Bridging keys: migrate first (planned and
                            // marked under the serializing migration
                            // lock, outside this router acquisition).
                            Some(())
                        }
                    }
                }
            };
            match plan {
                None => {
                    // The in-flight migration owns (some of) our keys:
                    // wait it out without holding any lock. Migrations
                    // can span a long component evaluation, so after a
                    // few optimistic yields the waiter parks on the
                    // mark gate and is woken the instant the marks lift
                    // — a blind sleep here used to add milliseconds of
                    // idle latency on a single-CPU host after a long
                    // gate. The timeout is a safety net only.
                    EngineMetrics::add(&self.metrics.migration_backoffs, 1);
                    if backoffs < 4 {
                        std::thread::yield_now();
                    } else {
                        // Generous timeout: the condvar bump is the
                        // normal wake path, and every timeout wake
                        // re-probes the marks under the router *write*
                        // lock — a short timeout would have long-gated
                        // waiters hammering exactly the lock the
                        // marker protocol keeps free.
                        self.mark_gate
                            .wait_past(mark_generation, Duration::from_millis(50));
                    }
                    backoffs += 1;
                }
                Some(()) => self.perform_migration(qkeys, migrated),
            }
        }
    }

    /// Merge the components bridged by `qkeys` onto one shard. Runs
    /// under the serializing migration lock: the routing decision is
    /// re-made there (an earlier migration may have merged or retired
    /// everything already), the related registered keys are marked, the
    /// transitive key closure is frozen and moved, and the new routes
    /// published. Shard locks are taken one at a time; the router write
    /// lock is only held for brief table work.
    // lint: acquires(migration_lock, router, shard.engine)
    fn perform_migration(
        &self,
        qkeys: &[KeyPattern<Q::Rel, Q::Cst>],
        migrated: &mut MigrationRecord<Q>,
    ) {
        let _one_at_a_time = lockrank::ranked(LockRank::Migration, self.migration_lock.lock());
        // Re-plan under the lock with fresh routing state.
        let plan = {
            let mut router = lockrank::ranked(LockRank::Router, self.router.write());
            let owners = router.owners_related(qkeys);
            if owners.len() <= 1 {
                return;
            }
            let target = *owners.iter().next().unwrap();
            let seed: Vec<KeyPattern<Q::Rel, Q::Cst>> = router
                .keys
                .keys()
                .filter(|k| qkeys.iter().any(|q| keys_related(q, k)))
                .cloned()
                .collect();
            router.mark(&seed);
            EngineMetrics::add(&self.metrics.migrations, 1);
            MigrationPlan {
                seed,
                sources: owners.iter().copied().filter(|&s| s != target).collect(),
                target,
            }
        };
        let (moved, _) = self.execute_migration(plan.seed, &plan.sources, plan.target);
        migrated.extend(moved);
    }

    /// Freeze, move, and publish already-marked `seed` keys from
    /// `sources` onto `target`. The caller holds the migration lock and
    /// has marked `seed` under a (brief) router write; this routine
    /// never holds the router write lock while blocking on a shard lock
    /// or scanning a slab. Returns `(source, moved keys)` per drained
    /// shard — enough to undo the move — plus the number of queries
    /// moved.
    // lint: acquires(router, shard.engine)
    fn execute_migration(
        &self,
        mut seed: Vec<KeyPattern<Q::Rel, Q::Cst>>,
        sources: &[usize],
        target: usize,
    ) -> (MigrationRecord<Q>, usize) {
        // A migration performed on behalf of a bridging submit carries
        // that submit's trace id; rebalancer-driven moves run with no
        // current context and stay unattributed (id 0).
        let _span = self.obs.tracer.begin_in(TraceCtx::current(), "migrate");
        let _timer = self.obs.migration_hist.start();
        // Freeze: grow the marked set to the transitive key closure of
        // the components being moved. Marked keys block related routing,
        // so once a scan finds nothing new the closure can no longer
        // change. Each pass scans only the *frontier* (keys found by
        // the previous pass): components related solely to older keys
        // were already collected, and marks stop new arrivals from
        // re-relating to them — so the fixed point stays linear in the
        // closure instead of rescanning the full seed every round.
        let mut seen: HashSet<KeyPattern<Q::Rel, Q::Cst>> = seed.iter().cloned().collect();
        let mut frontier: Vec<KeyPattern<Q::Rel, Q::Cst>> = seed.clone();
        loop {
            let mut extra: Vec<KeyPattern<Q::Rel, Q::Cst>> = Vec::new();
            for &src in sources {
                // Plain lock(): a migration waiting out a long
                // evaluation is expected, and must not pollute the
                // submitter-facing contended / lock-wait signals.
                let found = lockrank::ranked(LockRank::ShardEngine, self.shards[src].engine.lock())
                    .related_keys(&frontier);
                for k in found {
                    if seen.insert(k.clone()) {
                        extra.push(k);
                    }
                }
            }
            if extra.is_empty() {
                break;
            }
            lockrank::ranked(LockRank::Router, self.router.write()).mark(&extra);
            seed.extend(extra.iter().cloned());
            frontier = extra;
        }

        // Move: drain each source shard and refill the target, one
        // shard lock at a time, with no router lock held.
        let mut migrated: MigrationRecord<Q> = Vec::new();
        let mut queries_moved = 0usize;
        for &src in sources {
            let moved = {
                let mut engine =
                    lockrank::ranked(LockRank::ShardEngine, self.shards[src].engine.lock());
                let moved = engine.extract_related(&seed);
                self.shards[src]
                    .pending_gauge
                    .set(engine.pending_count() as u64);
                moved
            };
            if moved.is_empty() {
                continue;
            }
            queries_moved += moved.len();
            EngineMetrics::add(&self.shards[src].stats.migrated_out, moved.len() as u64);
            EngineMetrics::add(&self.shards[target].stats.migrated_in, moved.len() as u64);
            let mut moved_keys: Vec<KeyPattern<Q::Rel, Q::Cst>> = Vec::new();
            {
                let mut tgt =
                    lockrank::ranked(LockRank::ShardEngine, self.shards[target].engine.lock());
                for q in moved {
                    for k in route_keys(&q) {
                        if !moved_keys.contains(&k) {
                            moved_keys.push(k);
                        }
                    }
                    tgt.insert_pending(q);
                }
                self.shards[target]
                    .pending_gauge
                    .set(tgt.pending_count() as u64);
            }
            migrated.push((src, moved_keys));
        }

        // Publish: point every closure key at the target — including
        // keys claimed by in-flight submitters whose query is not
        // inserted anywhere yet; their post-lock validation sees the
        // move (or the marks) and follows — then lift the marks and
        // wake everyone parked on them.
        {
            let mut router = lockrank::ranked(LockRank::Router, self.router.write());
            for k in &seed {
                router.reassign(k, target);
            }
            router.unmark(&seen);
        }
        self.mark_gate.bump();
        (migrated, queries_moved)
    }

    /// Move the component group holding `seed_keys` (and, transitively,
    /// everything key-related to it) onto `target` through the
    /// marker-based migration protocol. Used by the
    /// [`crate::rebalance::Rebalancer`]; the group is located through
    /// the routing table, so a group that retired, merged, or already
    /// moved since the caller scanned it is skipped. Returns the number
    /// of queries moved.
    // lint: acquires(migration_lock, router, shard.engine)
    pub fn rebalance_group(
        &self,
        seed_keys: &[KeyPattern<Q::Rel, Q::Cst>],
        target: usize,
    ) -> usize {
        assert!(target < self.shards.len(), "target shard out of range");
        let _one_at_a_time = lockrank::ranked(LockRank::Migration, self.migration_lock.lock());
        let plan = {
            let mut router = lockrank::ranked(LockRank::Router, self.router.write());
            let Some((seed, source)) = Self::seed_on_one_shard(&router, seed_keys) else {
                return 0;
            };
            if source == target {
                return 0;
            }
            router.mark(&seed);
            (seed, source)
        };
        let (seed, source) = plan;
        let moved = self.execute_migration(seed, &[source], target).1;
        if moved > 0 {
            EngineMetrics::add(&self.metrics.rebalance_moves, 1);
        }
        moved
    }

    /// The subset of `candidate` keys still registered **on one shard**
    /// — the shard of the first surviving key — plus that shard. The
    /// caller recorded the keys when their holders were co-sharded, but
    /// the group may have retired since and its key *patterns* been
    /// re-registered by unrelated fresh queries on several shards;
    /// moving (or republishing) a key that lives elsewhere would point
    /// the router away from that key's actual holder, so such keys are
    /// dropped from the seed rather than dragged along.
    fn seed_on_one_shard(
        router: &Router<Q::Rel, Q::Cst>,
        candidate: &[KeyPattern<Q::Rel, Q::Cst>],
    ) -> Option<SeedPlan<Q>> {
        let source = candidate
            .iter()
            .find_map(|k| router.keys.get(k).map(|slot| slot.shard))?;
        let seed: Vec<KeyPattern<Q::Rel, Q::Cst>> = candidate
            .iter()
            .filter(|k| router.keys.get(*k).is_some_and(|slot| slot.shard == source))
            .cloned()
            .collect();
        Some((seed, source))
    }

    /// Run `op` on the shard that owns `qkeys`, re-validating the claim
    /// after acquiring the shard lock: every key must still point at the
    /// target and none may be frozen by a migration (see the module docs
    /// for why this cannot deadlock or lose the query). Returns the
    /// shard `op` finally ran on alongside its result.
    // lint: acquires(migration_lock, router, shard.engine)
    fn with_owned_shard<T>(
        &self,
        qkeys: &[KeyPattern<Q::Rel, Q::Cst>],
        mut target: usize,
        migrated: &mut MigrationRecord<Q>,
        record_submit: bool,
        op: impl FnOnce(&mut IncrementalEngine<Q, V>) -> T,
    ) -> (usize, T) {
        let mut op = Some(op);
        loop {
            let shard = &self.shards[target];
            let mut engine = self.lock_shard(shard);
            if !qkeys.is_empty() {
                // lint: backoff — a thread holding a shard lock never
                // blocks on the router (deadlock-freedom argument in
                // the module docs); on a miss both locks are released
                match self.router.try_read() {
                    Some(router) => {
                        let consistent = qkeys.iter().all(|k| router.keys[k].shard == target)
                            && !router.blocked(qkeys);
                        if !consistent {
                            // A migration raced our claim: follow the
                            // keys (or wait out the marks) and retry.
                            drop(router);
                            drop(engine);
                            target = self.claim(qkeys, migrated, false);
                            continue;
                        }
                    }
                    None => {
                        // A writer is active — possibly a migrator about
                        // to publish a move of our keys. Back off and
                        // retry without holding the shard lock.
                        drop(engine);
                        target = lockrank::ranked(LockRank::Router, self.router.read()).keys
                            [&qkeys[0]]
                            .shard;
                        continue;
                    }
                }
            }
            if record_submit {
                EngineMetrics::add(&shard.stats.submits, 1);
            }
            let result = (op.take().expect("op runs once"))(&mut engine);
            shard.pending_gauge.set(engine.pending_count() as u64);
            break (target, result);
        }
    }

    /// Release the routing claims of whatever left the pending set — the
    /// rejected query, or the retired set — and undo a rejected bridge's
    /// migrations.
    // lint: acquires(migration_lock, router, shard.engine)
    fn finish(
        &self,
        qkeys: &[KeyPattern<Q::Rel, Q::Cst>],
        migrated: MigrationRecord<Q>,
        outcome: Result<SubmitOutcome<Q, V::Delivery>, V::Error>,
    ) -> Result<SubmitOutcome<Q, V::Delivery>, V::Error> {
        match outcome {
            Err(e) => {
                {
                    let mut router = lockrank::ranked(LockRank::Router, self.router.write());
                    for k in qkeys {
                        router.unregister(k);
                    }
                }
                // Undo the merges performed for this submission: they
                // were justified only by the now-rejected bridging
                // query. Without this, repeated rejected bridges would
                // progressively collapse unrelated components onto one
                // shard with no way to re-split before retirement. The
                // undo is an ordinary marker-based migration back to
                // the source shard — mark under a brief router write,
                // freeze and move under shard locks only, publish —
                // NEVER a slab scan under the router write lock, so
                // unrelated submitters keep routing while a rollback
                // waits on a busy shard.
                for (src, keys) in &migrated {
                    let _one_at_a_time =
                        lockrank::ranked(LockRank::Migration, self.migration_lock.lock());
                    let plan = {
                        let mut router = lockrank::ranked(LockRank::Router, self.router.write());
                        // The group may have (partially) retired
                        // meanwhile — follow the surviving keys to
                        // wherever they live now, dropping any key
                        // pattern that unrelated fresh queries have
                        // since re-registered on another shard (see
                        // `seed_on_one_shard`).
                        let Some((seed, cur)) = Self::seed_on_one_shard(&router, keys) else {
                            continue;
                        };
                        if cur == *src {
                            continue;
                        }
                        router.mark(&seed);
                        (seed, cur)
                    };
                    self.execute_migration(plan.0, &[plan.1], *src);
                }
                Err(e)
            }
            Ok(out) => {
                if !out.retired.is_empty() {
                    let mut router = lockrank::ranked(LockRank::Router, self.router.write());
                    for q in &out.retired {
                        for k in route_keys(q) {
                            router.unregister(&k);
                        }
                    }
                }
                Ok(out)
            }
        }
    }
}

/// A query's deduplicated routing keys: every provided and required key
/// pattern.
fn route_keys<Q: CoordinationQuery>(q: &Q) -> Vec<KeyPattern<Q::Rel, Q::Cst>> {
    let mut keys = q.provides();
    for k in q.requires() {
        if !keys.contains(&k) {
            keys.push(k);
        }
    }
    // Dedup the provides side too (keys are Hash+Eq, not Ord).
    let mut out: Vec<KeyPattern<Q::Rel, Q::Cst>> = Vec::with_capacity(keys.len());
    for k in keys {
        if !out.contains(&k) {
            out.push(k);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::tests::{SaturationEvaluator, TestQuery};
    use std::sync::atomic::AtomicU64;
    use std::time::{Duration, Instant};

    fn chain_query(i: i64, next: Option<i64>) -> TestQuery {
        let requires = next.map(|n| ("R", Some(n))).into_iter().collect();
        TestQuery::new(format!("q{i}"), vec![("R", Some(i))], requires)
    }

    #[test]
    fn disjoint_chains_land_on_distinct_shards() {
        let engine = ShardedEngine::new(SaturationEvaluator, 4);
        // Four disjoint waiting pairs → round-robin over all shards.
        for g in 0..4 {
            engine
                .submit(chain_query(100 * g, Some(100 * g + 1)))
                .unwrap();
        }
        assert_eq!(engine.pending_count(), 4);
        let stats = engine.shard_stats();
        assert!(stats.iter().all(|s| s.submits == 1), "{stats:?}");
        // Completing each chain coordinates within its shard.
        for g in 0..4 {
            let r = engine.submit(chain_query(100 * g + 1, None)).unwrap();
            assert!(r.coordinated());
        }
        assert_eq!(engine.pending_count(), 0);
        assert_eq!(engine.delivered(), 8);
    }

    #[test]
    fn bridging_query_migrates_components_to_one_shard() {
        let engine = ShardedEngine::new(SaturationEvaluator, 2);
        // Two disjoint waiters on different shards…
        engine.submit(chain_query(0, Some(1))).unwrap();
        engine.submit(chain_query(10, Some(11))).unwrap();
        assert_eq!(engine.pending_count(), 2);
        // …bridged by a query that requires both: it provides R(1)
        // (wanted by q0) and requires R(11) (provided by nobody yet) plus
        // R(10)'s chain — make it provide 11's need and need 10.
        let bridge = TestQuery::new(
            "bridge",
            vec![("R", Some(1)), ("R", Some(11))],
            vec![("R", Some(10))],
        );
        let r = engine.submit(bridge).unwrap();
        // Everything is now mutually satisfied: q0 needs R(1) ✓ (bridge),
        // q10 needs R(11) ✓ (bridge), bridge needs R(10) ✓ (q10).
        assert!(r.coordinated());
        assert_eq!(r.retired.len(), 3);
        assert_eq!(engine.pending_count(), 0);
        assert_eq!(engine.metrics().snapshot().migrations, 1);
        // All routing state was released, no marks linger.
        assert!(engine.router.read().keys.is_empty());
        assert!(engine.router.read().migrating.is_empty());
    }

    #[test]
    fn router_refcounts_shared_keys() {
        let engine = ShardedEngine::new(SaturationEvaluator, 2);
        // Two queries requiring the same (unprovided) key share a route
        // key and must co-shard.
        engine
            .submit(TestQuery::new(
                "a",
                vec![("A", Some(1))],
                vec![("X", Some(9))],
            ))
            .unwrap();
        engine
            .submit(TestQuery::new(
                "b",
                vec![("B", Some(1))],
                vec![("X", Some(9))],
            ))
            .unwrap();
        {
            let router = engine.router.read();
            let slot = &router.keys[&("X", Some(9))];
            assert_eq!(slot.refs, 2);
        }
        let stats = engine.shard_stats();
        assert_eq!(stats.iter().filter(|s| s.submits > 0).count(), 1);
    }

    /// The concurrency proof: two submitters to disjoint components must
    /// both be *inside* component evaluation at the same time. A
    /// single-mutex engine would serialize them and time out.
    #[test]
    fn disjoint_submitters_evaluate_concurrently() {
        #[derive(Clone)]
        struct Rendezvous(Arc<AtomicU64>);
        impl ComponentEvaluator<TestQuery> for Rendezvous {
            type Delivery = ();
            type Error = String;
            fn evaluate(&self, _queries: &[TestQuery]) -> Result<Option<(Vec<usize>, ())>, String> {
                self.0.fetch_add(1, Ordering::SeqCst);
                let deadline = Instant::now() + Duration::from_secs(10);
                while self.0.load(Ordering::SeqCst) < 2 {
                    if Instant::now() > deadline {
                        return Err("no concurrent evaluation within 10s".into());
                    }
                    std::thread::yield_now();
                }
                Ok(None)
            }
        }

        let inside = Arc::new(AtomicU64::new(0));
        let engine = ShardedEngine::new(Rendezvous(Arc::clone(&inside)), 2);
        std::thread::scope(|s| {
            let e1 = &engine;
            let e2 = &engine;
            let t1 = s.spawn(move || e1.submit(chain_query(0, Some(1))));
            let t2 = s.spawn(move || e2.submit(chain_query(100, Some(101))));
            t1.join().unwrap().expect("first submitter");
            t2.join().unwrap().expect("second submitter");
        });
        assert_eq!(inside.load(Ordering::SeqCst), 2);
        assert_eq!(engine.pending_count(), 2);
    }

    #[test]
    fn rejected_bridge_rolls_back_its_migration() {
        #[derive(Clone)]
        struct RejectBridge;
        impl ComponentEvaluator<TestQuery> for RejectBridge {
            type Delivery = ();
            type Error = String;
            fn evaluate(&self, queries: &[TestQuery]) -> Result<Option<(Vec<usize>, ())>, String> {
                if queries.iter().any(|q| q.name == "bridge") {
                    Err("bridge poisons the component".into())
                } else {
                    Ok(None)
                }
            }
        }
        let engine = ShardedEngine::new(RejectBridge, 2);
        engine.submit(chain_query(0, Some(1))).unwrap(); // shard 0
        engine.submit(chain_query(10, Some(11))).unwrap(); // shard 1
                                                           // A bridge touching both groups, rejected by the evaluator: the
                                                           // phase-1 merge it forced must be undone.
        let bridge = TestQuery::new("bridge", vec![("R", Some(1)), ("R", Some(11))], vec![]);
        engine.submit(bridge).unwrap_err();
        assert_eq!(engine.pending_count(), 2);
        assert_eq!(engine.metrics().snapshot().migrations, 1);
        let per_shard: Vec<usize> = engine
            .shards
            .iter()
            .map(|s| s.engine.lock().pending_count())
            .collect();
        assert_eq!(
            per_shard.iter().filter(|&&n| n == 1).count(),
            2,
            "merge not rolled back: {per_shard:?}"
        );
        // Routing reflects the split: reaching group 0 afterwards needs
        // no further migration.
        let stats_before = engine.metrics().snapshot().migrations;
        engine
            .submit(TestQuery::new(
                "w0",
                vec![("R", Some(99))],
                vec![("R", Some(0))],
            ))
            .unwrap();
        assert_eq!(
            engine.metrics().snapshot().migrations,
            stats_before,
            "no further migration needed to reach group 0"
        );
    }

    #[test]
    fn rejected_query_releases_its_keys() {
        #[derive(Clone)]
        struct AlwaysFail;
        impl ComponentEvaluator<TestQuery> for AlwaysFail {
            type Delivery = ();
            type Error = String;
            fn evaluate(&self, _queries: &[TestQuery]) -> Result<Option<(Vec<usize>, ())>, String> {
                Err("nope".into())
            }
        }
        let engine = ShardedEngine::new(AlwaysFail, 2);
        engine.submit(chain_query(0, Some(1))).unwrap_err();
        assert_eq!(engine.pending_count(), 0);
        assert!(engine.router.read().keys.is_empty());
    }

    #[test]
    fn insert_pending_routes_without_evaluating() {
        let engine = ShardedEngine::new(SaturationEvaluator, 2);
        // A free query inserted as already-pending must NOT coordinate on
        // insertion (the recovery contract)…
        engine.insert_pending(chain_query(1, None));
        engine.insert_pending(chain_query(100, Some(101)));
        assert_eq!(engine.pending_count(), 2);
        assert_eq!(engine.delivered(), 0);
        // …but a later submit touching its component evaluates it.
        let r = engine.submit(chain_query(0, Some(1))).unwrap();
        assert!(r.coordinated());
        assert_eq!(r.retired.len(), 2);
        assert_eq!(engine.pending_count(), 1);
    }

    #[test]
    fn insert_pending_colocates_related_keys() {
        let engine = ShardedEngine::new(SaturationEvaluator, 4);
        // Recovery inserts chain members one by one; all must co-shard.
        for i in 0..5 {
            engine.insert_pending(chain_query(i, Some(i + 1)));
        }
        let active: Vec<usize> = engine
            .shards
            .iter()
            .map(|s| s.engine.lock().pending_count())
            .filter(|&n| n > 0)
            .collect();
        assert_eq!(active, vec![5], "chain split across shards");
        let r = engine.submit(chain_query(5, None)).unwrap();
        assert!(r.coordinated());
        assert_eq!(r.retired.len(), 6);
    }

    #[test]
    fn submit_batch_matches_sequential_results() {
        let db_seq = ShardedEngine::new(SaturationEvaluator, 3);
        let db_batch = ShardedEngine::new(SaturationEvaluator, 3);
        // Three chains interleaved; the keystones close them mid-batch.
        let mut order = Vec::new();
        for g in 0..3i64 {
            order.push(chain_query(100 * g, Some(100 * g + 1)));
        }
        for g in 0..3i64 {
            order.push(chain_query(100 * g + 1, Some(100 * g + 2)));
        }
        for g in 0..3i64 {
            order.push(chain_query(100 * g + 2, None));
        }
        let seq_results: Vec<_> = order
            .iter()
            .cloned()
            .map(|q| db_seq.submit(q).unwrap())
            .collect();
        let batch_results = db_batch.submit_batch(order);
        assert_eq!(batch_results.len(), seq_results.len());
        for (i, (b, s)) in batch_results.iter().zip(&seq_results).enumerate() {
            let b = b.as_ref().unwrap();
            assert_eq!(b.coordinated(), s.coordinated(), "submission {i}");
            let mut bn: Vec<&str> = b.retired.iter().map(|q| q.name.as_str()).collect();
            let mut sn: Vec<&str> = s.retired.iter().map(|q| q.name.as_str()).collect();
            bn.sort_unstable();
            sn.sort_unstable();
            assert_eq!(bn, sn, "submission {i}");
        }
        assert_eq!(db_batch.pending_count(), db_seq.pending_count());
        assert_eq!(db_batch.delivered(), db_seq.delivered());
        assert_eq!(db_batch.metrics().snapshot().batches, 1);
        // All routing state was released along with the retirements.
        assert!(db_batch.router.read().keys.is_empty());
    }

    #[test]
    fn submit_batch_releases_keys_of_rejected_queries() {
        #[derive(Clone)]
        struct RejectNamed(&'static str);
        impl ComponentEvaluator<TestQuery> for RejectNamed {
            type Delivery = ();
            type Error = String;
            fn evaluate(&self, queries: &[TestQuery]) -> Result<Option<(Vec<usize>, ())>, String> {
                if queries.iter().any(|q| q.name == self.0) {
                    Err("rejected".into())
                } else {
                    Ok(None)
                }
            }
        }
        let engine = ShardedEngine::new(RejectNamed("q7"), 2);
        let results = engine.submit_batch(vec![
            chain_query(0, Some(1)),
            chain_query(7, None),
            chain_query(100, Some(101)),
        ]);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
        assert_eq!(engine.pending_count(), 2);
        // q7's keys were released; a fresh submit of the same keys works.
        assert_eq!(engine.router.read().keys.len(), 4);
    }

    #[test]
    fn least_loaded_placement_avoids_the_hot_shard() {
        let engine = ShardedEngine::new(SaturationEvaluator, 2);
        // Build a heavy component on one shard: a chain that every new
        // member re-evaluates.
        for i in 0..6 {
            engine.submit(chain_query(i, Some(i + 1))).unwrap();
        }
        let loads: Vec<u64> = engine
            .shard_stats()
            .iter()
            .map(super::super::metrics::ShardStatsSnapshot::load)
            .collect();
        let hot = usize::from(loads[0] <= loads[1]);
        // Fresh unrelated components must land on the colder shard.
        for g in 0..3 {
            engine
                .submit(chain_query(1000 + 10 * g, Some(1000 + 10 * g + 1)))
                .unwrap();
        }
        let stats = engine.shard_stats();
        assert_eq!(
            stats[1 - hot].submits,
            3,
            "fresh components did not avoid the hot shard: {stats:?}"
        );
    }

    #[test]
    fn rebalancer_moves_costly_groups_off_the_hot_shard() {
        use crate::rebalance::{RebalanceConfig, Rebalancer};
        // Round-robin placement over 2 shards: groups alternate, so
        // pinning extra traffic on shard 0's groups creates real skew.
        let engine = ShardedEngine::with_placement(SaturationEvaluator, 2, Placement::RoundRobin);
        // Four waiting groups: 0 and 2 land on shard 0, 1 and 3 on 1.
        for g in 0..4i64 {
            engine
                .submit(chain_query(100 * g, Some(100 * g + 1)))
                .unwrap();
        }
        // Grow the shard-0 groups into long chains: every submit
        // re-evaluates the whole component, so shard 0's load and the
        // groups' observed cost climb together.
        for g in [0i64, 2] {
            for i in 1..8 {
                engine
                    .submit(chain_query(100 * g + i, Some(100 * g + i + 1)))
                    .unwrap();
            }
        }
        let mut rebalancer = Rebalancer::new(RebalanceConfig {
            skew_threshold: 0.7,
            min_window_load: 8,
            max_moves: 4,
        });
        let loads: Vec<u64> = engine
            .shard_stats()
            .iter()
            .map(super::super::metrics::ShardStatsSnapshot::load)
            .collect();
        assert!(loads[0] > loads[1], "setup did not skew shard 0: {loads:?}");

        let report = rebalancer.run(&engine);
        assert!(report.triggered, "{report:?}");
        assert_eq!(report.hot_shard, 0);
        assert!(report.hot_share > 0.7, "{report:?}");
        assert!(report.groups_moved >= 1, "{report:?}");
        assert!(report.queries_moved >= 8, "{report:?}");
        assert_eq!(
            engine.metrics().snapshot().rebalance_moves,
            report.groups_moved as u64
        );
        // The moved group left shard 0 whole…
        let per_shard: Vec<usize> = engine
            .shards
            .iter()
            .map(|s| s.engine.lock().pending_count())
            .collect();
        assert_eq!(per_shard.iter().sum::<usize>(), 18);
        assert!(
            per_shard[0] < 16 && per_shard[1] > 2,
            "nothing actually moved: {per_shard:?}"
        );
        assert!(engine.router.read().migrating.is_empty(), "marks leaked");
        // …and every group still coordinates exactly as before: the
        // routing table followed the move.
        for (g, len) in [(0i64, 8i64), (1, 1), (2, 8), (3, 1)] {
            let r = engine.submit(chain_query(100 * g + len, None)).unwrap();
            assert!(r.coordinated(), "group {g} lost by the rebalance");
            assert_eq!(r.retired.len() as i64, len + 1, "group {g}");
        }
        assert_eq!(engine.pending_count(), 0);

        // A balanced engine does not trigger another pass.
        let quiet = rebalancer.run(&engine);
        assert!(!quiet.triggered, "{quiet:?}");
    }

    /// Regression: a rebalance seeded with a *stale* key list — the
    /// group retired and unrelated fresh queries re-registered its key
    /// patterns on different shards — must only move (and republish)
    /// the keys resident on the chosen source shard. Reassigning the
    /// foreign key would point the router away from its actual holder
    /// and silently lose the coordination.
    #[test]
    fn rebalance_group_ignores_seed_keys_owned_elsewhere() {
        let engine = ShardedEngine::with_placement(SaturationEvaluator, 3, Placement::RoundRobin);
        // Two unrelated queries holding (R,10) and (R,11) on distinct
        // shards — the same key patterns a retired group once held.
        engine
            .submit(TestQuery::new(
                "a",
                vec![("R", Some(10))],
                vec![("A", Some(0))],
            ))
            .unwrap(); // shard 0
        engine
            .submit(TestQuery::new(
                "b",
                vec![("R", Some(11))],
                vec![("B", Some(0))],
            ))
            .unwrap(); // shard 1
        let stale_seed = vec![("R", Some(10)), ("R", Some(11))];
        // The move relocates only shard 0's resident (a); b's key must
        // keep pointing at b's shard.
        assert_eq!(engine.rebalance_group(&stale_seed, 2), 1);
        {
            let router = engine.router.read();
            assert_eq!(router.keys[&("R", Some(10))].shard, 2);
            assert_eq!(router.keys[&("R", Some(11))].shard, 1);
        }
        // b is still reachable through its key: a partner requiring
        // R(11) routes to it and coordinates.
        let r = engine
            .submit(TestQuery::new(
                "c",
                vec![("B", Some(0))],
                vec![("R", Some(11))],
            ))
            .unwrap();
        assert!(r.coordinated(), "b lost by the stale-seed rebalance");
        assert_eq!(r.retired.len(), 2);
    }

    #[test]
    fn rebalance_group_follows_stale_keys_and_skips_gone_groups() {
        let engine = ShardedEngine::with_placement(SaturationEvaluator, 2, Placement::RoundRobin);
        engine.submit(chain_query(0, Some(1))).unwrap(); // shard 0
        let keys = vec![("R", Some(0)), ("R", Some(1))];
        // Moving to its own shard is a no-op.
        assert_eq!(engine.rebalance_group(&keys, 0), 0);
        // A real move relocates the whole group.
        assert_eq!(engine.rebalance_group(&keys, 1), 1);
        let r = engine.submit(chain_query(1, None)).unwrap();
        assert!(r.coordinated());
        // Keys of a retired group are gone: skipped, not panicked.
        assert_eq!(engine.rebalance_group(&keys, 0), 0);
    }

    /// A submitter parked on migration marks must wake when the
    /// migration publishes — promptly via the gate, not via a blind
    /// sleep schedule (the behavior is asserted, the latency is
    /// measured by the `shard_skew` bench's backoff figures).
    #[test]
    fn parked_submitter_wakes_when_marks_lift() {
        use std::sync::atomic::AtomicBool;

        #[derive(Clone)]
        struct Gate {
            started: Arc<AtomicBool>,
            release: Arc<AtomicBool>,
        }
        impl ComponentEvaluator<TestQuery> for Gate {
            type Delivery = ();
            type Error = String;
            fn evaluate(&self, queries: &[TestQuery]) -> Result<Option<(Vec<usize>, ())>, String> {
                if queries.iter().any(|q| q.name == "slow") {
                    self.started.store(true, Ordering::SeqCst);
                    let deadline = Instant::now() + Duration::from_secs(30);
                    while !self.release.load(Ordering::SeqCst) {
                        assert!(Instant::now() < deadline, "gate never released");
                        std::thread::yield_now();
                    }
                }
                Ok(None)
            }
        }

        let started = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));
        let engine = ShardedEngine::with_placement(
            Gate {
                started: Arc::clone(&started),
                release: Arc::clone(&release),
            },
            2,
            Placement::RoundRobin,
        );
        engine.submit(chain_query(0, Some(1))).unwrap(); // shard 0
        engine.submit(chain_query(10, Some(11))).unwrap(); // shard 1
        std::thread::scope(|s| {
            // Pin shard 0 with a long evaluation…
            let e = &engine;
            let slow = s.spawn(move || {
                e.submit(TestQuery::new(
                    "slow",
                    vec![("R", Some(1))],
                    vec![("R", Some(2))],
                ))
            });
            while !started.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            // …so the bridge's migration marks both groups' keys and
            // then blocks waiting for shard 0.
            let bridge = s.spawn(move || {
                e.submit(TestQuery::new(
                    "bridge",
                    vec![("R", Some(2)), ("R", Some(11))],
                    vec![],
                ))
            });
            while e.metrics().snapshot().migrations < 1 {
                std::thread::yield_now();
            }
            std::thread::sleep(Duration::from_millis(20));
            // A submitter whose keys are marked parks on the gate.
            // R(10) belongs to the frozen closure, so this submitter
            // backs off on the marks and parks on the gate.
            let parked = s.spawn(move || {
                e.submit(TestQuery::new(
                    "parked",
                    vec![("R", Some(99))],
                    vec![("R", Some(10))],
                ))
            });
            while e.metrics().snapshot().migration_backoffs == 0 {
                std::thread::yield_now();
            }
            // Lift the gate: everything must drain.
            release.store(true, Ordering::SeqCst);
            slow.join().unwrap().unwrap();
            bridge.join().unwrap().unwrap();
            parked.join().unwrap().unwrap();
        });
        assert!(engine.metrics().snapshot().migration_backoffs > 0);
        assert_eq!(engine.pending_count(), 5);
    }

    #[test]
    fn submit_batch_handles_in_batch_bridges_via_slow_path() {
        let engine = ShardedEngine::new(SaturationEvaluator, 2);
        // Pre-place two disjoint waiters on separate shards.
        engine.submit(chain_query(0, Some(1))).unwrap();
        engine.submit(chain_query(10, Some(11))).unwrap();
        // The batch's bridge needs a migration: it defers to the slow
        // path but still coordinates everything.
        let bridge = TestQuery::new(
            "bridge",
            vec![("R", Some(1)), ("R", Some(11))],
            vec![("R", Some(10))],
        );
        let results = engine.submit_batch(vec![bridge, chain_query(50, Some(51))]);
        assert!(results[0].as_ref().unwrap().coordinated());
        assert_eq!(results[0].as_ref().unwrap().retired.len(), 3);
        assert!(!results[1].as_ref().unwrap().coordinated());
        assert_eq!(engine.pending_count(), 1);
        assert_eq!(engine.metrics().snapshot().migrations, 1);
    }
}
