//! Per-component sharding: concurrent submitters touching disjoint
//! components proceed in parallel instead of serializing behind one
//! engine mutex.
//!
//! ## Design
//!
//! Each shard owns an [`IncrementalEngine`] behind its own mutex. A
//! read-mostly **routing table** ([`parking_lot::RwLock`]) maps every key
//! pattern held by a pending query to the shard that owns it, with the
//! invariant that *all holders of related keys are co-sharded* — so any
//! two queries that could ever coordinate always meet inside one shard.
//!
//! * A query whose keys are unclaimed is routed round-robin.
//! * A query whose keys hit one shard is routed there.
//! * A query bridging several shards triggers a **migration**: under the
//!   exclusive router lock, the bridged components are extracted from the
//!   losing shards (transitively over shared keys, preserving the
//!   invariant) and re-inserted into the target before the query lands.
//!
//! ## Lock discipline
//!
//! A submitter takes the router write lock only *briefly* — to route and
//! claim its keys, and to release keys afterwards — then submits under
//! its shard lock alone, so disjoint submitters run truly in parallel.
//! Because a migration can re-route keys between those two steps, the
//! submitter re-validates *after* acquiring the shard lock that every
//! one of its keys still points at the target (re-merging their owners
//! if a racing migration split them), using a non-blocking `try_read`:
//! if a writer is active (possibly a migrator waiting for this very
//! shard), the submitter backs off — releases the shard lock, re-reads
//! the route, retries. No thread ever
//! blocks on the router while holding a shard lock, so the two lock
//! levels cannot deadlock; and once a query is inserted under its shard
//! lock, any concurrent migration that re-routed its keys is still
//! waiting for that same shard lock and will extract the query when it
//! gets it.

use crate::engine::{ComponentEvaluator, CoordinationQuery, IncrementalEngine, SubmitOutcome};
use crate::index::{keys_related, KeyPattern};
use crate::metrics::{EngineMetrics, ShardStats, ShardStatsSnapshot};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// One key pattern's routing entry.
struct KeySlot {
    shard: usize,
    /// How many pending queries hold this key.
    refs: usize,
}

/// The routing table: key pattern → owning shard.
struct Router<R, C> {
    keys: HashMap<KeyPattern<R, C>, KeySlot>,
    /// relation → shard → number of distinct keys (for wildcard lookups).
    by_rel: HashMap<R, HashMap<usize, usize>>,
}

impl<R: Clone + Eq + std::hash::Hash, C: Clone + Eq + std::hash::Hash> Router<R, C> {
    fn new() -> Self {
        Router {
            keys: HashMap::new(),
            by_rel: HashMap::new(),
        }
    }

    /// Shards owning any key related to one of `keys`.
    fn owners_related(&self, keys: &[KeyPattern<R, C>]) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        for key in keys {
            match &key.1 {
                Some(_) => {
                    for k in [key.clone(), (key.0.clone(), None)] {
                        if let Some(slot) = self.keys.get(&k) {
                            out.insert(slot.shard);
                        }
                    }
                }
                None => {
                    // Wildcard: every shard holding any key of the
                    // relation.
                    if let Some(shards) = self.by_rel.get(&key.0) {
                        out.extend(shards.keys().copied());
                    }
                }
            }
        }
        out
    }

    fn register(&mut self, key: &KeyPattern<R, C>, shard: usize) {
        match self.keys.get_mut(key) {
            Some(slot) => {
                debug_assert_eq!(slot.shard, shard, "key registered on two shards");
                slot.refs += 1;
            }
            None => {
                self.keys.insert(key.clone(), KeySlot { shard, refs: 1 });
                *self
                    .by_rel
                    .entry(key.0.clone())
                    .or_default()
                    .entry(shard)
                    .or_insert(0) += 1;
            }
        }
    }

    fn unregister(&mut self, key: &KeyPattern<R, C>) {
        let Some(slot) = self.keys.get_mut(key) else {
            return;
        };
        slot.refs -= 1;
        if slot.refs == 0 {
            let shard = slot.shard;
            self.keys.remove(key);
            if let Some(shards) = self.by_rel.get_mut(&key.0) {
                if let Some(n) = shards.get_mut(&shard) {
                    *n -= 1;
                    if *n == 0 {
                        shards.remove(&shard);
                    }
                }
                if shards.is_empty() {
                    self.by_rel.remove(&key.0);
                }
            }
        }
    }

    /// Point an existing key at a new shard (during migration).
    fn reassign(&mut self, key: &KeyPattern<R, C>, to: usize) {
        let Some(slot) = self.keys.get_mut(key) else {
            return;
        };
        let from = slot.shard;
        if from == to {
            return;
        }
        slot.shard = to;
        if let Some(shards) = self.by_rel.get_mut(&key.0) {
            if let Some(n) = shards.get_mut(&from) {
                *n -= 1;
                if *n == 0 {
                    shards.remove(&from);
                }
            }
            *shards.entry(to).or_insert(0) += 1;
        }
    }
}

struct Shard<Q: CoordinationQuery, V> {
    engine: Mutex<IncrementalEngine<Q, V>>,
    stats: ShardStats,
}

/// Key groups moved by migrations performed for one submission:
/// `(source shard, moved queries' keys)` — enough to undo the merges if
/// the submission is rejected.
type MigrationRecord<Q> = Vec<(
    usize,
    Vec<KeyPattern<<Q as CoordinationQuery>::Rel, <Q as CoordinationQuery>::Cst>>,
)>;

/// The sharded online coordination service: replaces the pre-incremental
/// `SharedEngine`'s single global mutex with per-component shards.
pub struct ShardedEngine<Q: CoordinationQuery, V> {
    shards: Vec<Shard<Q, V>>,
    router: RwLock<Router<Q::Rel, Q::Cst>>,
    metrics: Arc<EngineMetrics>,
    next_shard: AtomicUsize,
}

impl<Q: CoordinationQuery, V: ComponentEvaluator<Q> + Clone> ShardedEngine<Q, V> {
    /// A service with `shards` shards, each evaluating components with a
    /// clone of `evaluator`.
    pub fn new(evaluator: V, shards: usize) -> Self {
        assert!(shards > 0, "at least one shard required");
        let metrics = Arc::new(EngineMetrics::new());
        let shards = (0..shards)
            .map(|_| Shard {
                engine: Mutex::new(IncrementalEngine::with_metrics(
                    evaluator.clone(),
                    Arc::clone(&metrics),
                )),
                stats: ShardStats::default(),
            })
            .collect();
        ShardedEngine {
            shards,
            router: RwLock::new(Router::new()),
            metrics,
            next_shard: AtomicUsize::new(0),
        }
    }
}

impl<Q: CoordinationQuery, V: ComponentEvaluator<Q>> ShardedEngine<Q, V> {
    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Aggregated metrics across all shards.
    pub fn metrics(&self) -> &Arc<EngineMetrics> {
        &self.metrics
    }

    /// Per-shard contention statistics.
    pub fn shard_stats(&self) -> Vec<ShardStatsSnapshot> {
        self.shards.iter().map(|s| s.stats.snapshot()).collect()
    }

    /// Total pending queries across shards.
    pub fn pending_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.engine.lock().pending_count())
            .sum()
    }

    /// Total maintained components across shards.
    pub fn component_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.engine.lock().component_count())
            .sum()
    }

    /// Total queries answered and retired.
    pub fn delivered(&self) -> u64 {
        self.metrics.delivered.load(Ordering::Relaxed)
    }

    /// Clones of all pending queries (shard by shard; a moving snapshot
    /// under concurrent submits).
    pub fn pending(&self) -> Vec<Q> {
        let mut out = Vec::new();
        for s in &self.shards {
            out.extend(s.engine.lock().pending().cloned());
        }
        out
    }

    /// Submit a query: route it to the shard owning its keys (migrating
    /// bridged components first if it spans shards), then run the
    /// incremental submit under that shard's lock only.
    pub fn submit(&self, query: Q) -> Result<SubmitOutcome<Q, V::Delivery>, V::Error> {
        let qkeys = route_keys(&query);

        // Migrations performed for this submission, kept so a rejected
        // submission can undo its merges.
        let mut migrated: MigrationRecord<Q> = Vec::new();

        // Phase 1 (exclusive, brief): route and claim the keys.
        let mut target = {
            let mut router = self.router.write();
            let target = self.route(&mut router, &qkeys, &mut migrated);
            for k in &qkeys {
                router.register(k, target);
            }
            target
        };

        // Phase 2: submit under the shard lock alone. A migration may
        // have re-routed some of the claimed keys between phases, so
        // re-validate — *every* key must still point at the target —
        // after acquiring the shard lock (see the module docs for why
        // this cannot deadlock or lose the query).
        let outcome = loop {
            let shard = &self.shards[target];
            let mut engine = match shard.engine.try_lock() {
                Some(guard) => guard,
                None => {
                    EngineMetrics::add(&shard.stats.contended, 1);
                    shard.engine.lock()
                }
            };
            if !qkeys.is_empty() {
                match self.router.try_read() {
                    Some(router) => {
                        let consistent = qkeys.iter().all(|k| router.keys[k].shard == target);
                        if !consistent {
                            // A migration raced our claim and moved some
                            // (or all) of our keys: merge the owners of
                            // our key set again and follow.
                            drop(router);
                            drop(engine);
                            let mut router = self.router.write();
                            target = self.route(&mut router, &qkeys, &mut migrated);
                            continue;
                        }
                    }
                    None => {
                        // A writer is active — possibly a migrator
                        // waiting for this very shard. Back off and
                        // retry without holding the shard lock.
                        drop(engine);
                        target = self.router.read().keys[&qkeys[0]].shard;
                        continue;
                    }
                }
            }
            EngineMetrics::add(&shard.stats.submits, 1);
            break engine.submit(query);
        };

        // Phase 3 (exclusive, brief): release the keys of whatever left
        // the pending set — the rejected query, or the retired set.
        match outcome {
            Err(e) => {
                let mut router = self.router.write();
                for k in &qkeys {
                    router.unregister(k);
                }
                // Undo the merges performed for this submission: they
                // were justified only by the now-rejected bridging
                // query. Without this, repeated rejected bridges would
                // progressively collapse unrelated components onto one
                // shard with no way to re-split before retirement.
                for (src, keys) in &migrated {
                    // The group may have retired or moved meanwhile —
                    // follow its keys to wherever they live now.
                    let Some(cur) = keys
                        .iter()
                        .find_map(|k| router.keys.get(k).map(|slot| slot.shard))
                    else {
                        continue;
                    };
                    if cur == *src {
                        continue;
                    }
                    let moved_back = self.shards[cur].engine.lock().extract_related(keys);
                    EngineMetrics::add(
                        &self.shards[cur].stats.migrated_out,
                        moved_back.len() as u64,
                    );
                    let mut src_engine = self.shards[*src].engine.lock();
                    for q in moved_back {
                        for k in route_keys(&q) {
                            router.reassign(&k, *src);
                        }
                        src_engine.insert_pending(q);
                    }
                }
                Err(e)
            }
            Ok(out) => {
                if !out.retired.is_empty() {
                    let mut router = self.router.write();
                    for q in &out.retired {
                        for k in route_keys(q) {
                            router.unregister(&k);
                        }
                    }
                }
                Ok(out)
            }
        }
    }

    /// Route a key set to one shard: unclaimed keys go round-robin, a
    /// single owner wins directly, and multiple owners are merged by a
    /// migration first (recorded in `migrated` for possible rollback).
    /// Requires the exclusive router lock.
    fn route(
        &self,
        router: &mut Router<Q::Rel, Q::Cst>,
        qkeys: &[KeyPattern<Q::Rel, Q::Cst>],
        migrated: &mut MigrationRecord<Q>,
    ) -> usize {
        let owners = router.owners_related(qkeys);
        match owners.len() {
            0 => self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len(),
            1 => *owners.iter().next().unwrap(),
            _ => {
                let target = *owners.iter().next().unwrap();
                self.migrate(router, &owners, target, qkeys, migrated);
                target
            }
        }
    }

    /// Merge the components bridged by a new query into `target`. Runs
    /// under the exclusive router lock. Shard locks are taken one at a
    /// time; a submitter may be holding one of them through a long
    /// evaluation (submits do NOT hold any router lock while evaluating),
    /// so this can block — but never deadlocks, because shard-lock
    /// holders only ever poll the router with non-blocking `try_read`.
    /// Holding the write lock across these waits stalls other submitters;
    /// acceptable while migrations are rare (see ROADMAP).
    fn migrate(
        &self,
        router: &mut Router<Q::Rel, Q::Cst>,
        owners: &BTreeSet<usize>,
        target: usize,
        qkeys: &[KeyPattern<Q::Rel, Q::Cst>],
        migrated: &mut MigrationRecord<Q>,
    ) {
        EngineMetrics::add(&self.metrics.migrations, 1);
        // Seed with every *registered* key related to the query's keys,
        // so the extraction in each source shard starts from the exact
        // conflict set.
        let seed: Vec<KeyPattern<Q::Rel, Q::Cst>> = router
            .keys
            .keys()
            .filter(|k| qkeys.iter().any(|q| keys_related(q, k)))
            .cloned()
            .collect();
        for &src in owners {
            if src == target {
                continue;
            }
            let moved = self.shards[src].engine.lock().extract_related(&seed);
            EngineMetrics::add(&self.shards[src].stats.migrated_out, moved.len() as u64);
            let mut tgt = self.shards[target].engine.lock();
            let mut moved_keys: Vec<KeyPattern<Q::Rel, Q::Cst>> = Vec::new();
            for q in moved {
                for k in route_keys(&q) {
                    router.reassign(&k, target);
                    if !moved_keys.contains(&k) {
                        moved_keys.push(k);
                    }
                }
                tgt.insert_pending(q);
            }
            if !moved_keys.is_empty() {
                migrated.push((src, moved_keys));
            }
        }
        // Re-point every related key — not just those held by moved
        // queries. A key claimed by an in-flight submitter (registered in
        // its phase 1, query not yet inserted anywhere) has no holder to
        // extract; leaving it on a losing shard would split related keys
        // across shards. The claimant's phase-2 validation sees the move
        // and follows it here.
        for k in &seed {
            router.reassign(k, target);
        }
    }
}

/// A query's deduplicated routing keys: every provided and required key
/// pattern.
fn route_keys<Q: CoordinationQuery>(q: &Q) -> Vec<KeyPattern<Q::Rel, Q::Cst>> {
    let mut keys = q.provides();
    for k in q.requires() {
        if !keys.contains(&k) {
            keys.push(k);
        }
    }
    // Dedup the provides side too (keys are Hash+Eq, not Ord).
    let mut out: Vec<KeyPattern<Q::Rel, Q::Cst>> = Vec::with_capacity(keys.len());
    for k in keys {
        if !out.contains(&k) {
            out.push(k);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::tests::{SaturationEvaluator, TestQuery};
    use std::sync::atomic::AtomicU64;
    use std::time::{Duration, Instant};

    fn chain_query(i: i64, next: Option<i64>) -> TestQuery {
        let requires = next.map(|n| ("R", Some(n))).into_iter().collect();
        TestQuery::new(format!("q{i}"), vec![("R", Some(i))], requires)
    }

    #[test]
    fn disjoint_chains_land_on_distinct_shards() {
        let engine = ShardedEngine::new(SaturationEvaluator, 4);
        // Four disjoint waiting pairs → round-robin over all shards.
        for g in 0..4 {
            engine
                .submit(chain_query(100 * g, Some(100 * g + 1)))
                .unwrap();
        }
        assert_eq!(engine.pending_count(), 4);
        let stats = engine.shard_stats();
        assert!(stats.iter().all(|s| s.submits == 1), "{stats:?}");
        // Completing each chain coordinates within its shard.
        for g in 0..4 {
            let r = engine.submit(chain_query(100 * g + 1, None)).unwrap();
            assert!(r.coordinated());
        }
        assert_eq!(engine.pending_count(), 0);
        assert_eq!(engine.delivered(), 8);
    }

    #[test]
    fn bridging_query_migrates_components_to_one_shard() {
        let engine = ShardedEngine::new(SaturationEvaluator, 2);
        // Two disjoint waiters on different shards…
        engine.submit(chain_query(0, Some(1))).unwrap();
        engine.submit(chain_query(10, Some(11))).unwrap();
        assert_eq!(engine.pending_count(), 2);
        // …bridged by a query that requires both: it provides R(1)
        // (wanted by q0) and requires R(11) (provided by nobody yet) plus
        // R(10)'s chain — make it provide 11's need and need 10.
        let bridge = TestQuery::new(
            "bridge",
            vec![("R", Some(1)), ("R", Some(11))],
            vec![("R", Some(10))],
        );
        let r = engine.submit(bridge).unwrap();
        // Everything is now mutually satisfied: q0 needs R(1) ✓ (bridge),
        // q10 needs R(11) ✓ (bridge), bridge needs R(10) ✓ (q10).
        assert!(r.coordinated());
        assert_eq!(r.retired.len(), 3);
        assert_eq!(engine.pending_count(), 0);
        assert_eq!(engine.metrics().snapshot().migrations, 1);
        // All routing state was released.
        assert!(engine.router.read().keys.is_empty());
    }

    #[test]
    fn router_refcounts_shared_keys() {
        let engine = ShardedEngine::new(SaturationEvaluator, 2);
        // Two queries requiring the same (unprovided) key share a route
        // key and must co-shard.
        engine
            .submit(TestQuery::new(
                "a",
                vec![("A", Some(1))],
                vec![("X", Some(9))],
            ))
            .unwrap();
        engine
            .submit(TestQuery::new(
                "b",
                vec![("B", Some(1))],
                vec![("X", Some(9))],
            ))
            .unwrap();
        {
            let router = engine.router.read();
            let slot = &router.keys[&("X", Some(9))];
            assert_eq!(slot.refs, 2);
        }
        let stats = engine.shard_stats();
        assert_eq!(stats.iter().filter(|s| s.submits > 0).count(), 1);
    }

    /// The concurrency proof: two submitters to disjoint components must
    /// both be *inside* component evaluation at the same time. A
    /// single-mutex engine would serialize them and time out.
    #[test]
    fn disjoint_submitters_evaluate_concurrently() {
        #[derive(Clone)]
        struct Rendezvous(Arc<AtomicU64>);
        impl ComponentEvaluator<TestQuery> for Rendezvous {
            type Delivery = ();
            type Error = String;
            fn evaluate(&self, _queries: &[TestQuery]) -> Result<Option<(Vec<usize>, ())>, String> {
                self.0.fetch_add(1, Ordering::SeqCst);
                let deadline = Instant::now() + Duration::from_secs(10);
                while self.0.load(Ordering::SeqCst) < 2 {
                    if Instant::now() > deadline {
                        return Err("no concurrent evaluation within 10s".into());
                    }
                    std::thread::yield_now();
                }
                Ok(None)
            }
        }

        let inside = Arc::new(AtomicU64::new(0));
        let engine = ShardedEngine::new(Rendezvous(Arc::clone(&inside)), 2);
        std::thread::scope(|s| {
            let e1 = &engine;
            let e2 = &engine;
            let t1 = s.spawn(move || e1.submit(chain_query(0, Some(1))));
            let t2 = s.spawn(move || e2.submit(chain_query(100, Some(101))));
            t1.join().unwrap().expect("first submitter");
            t2.join().unwrap().expect("second submitter");
        });
        assert_eq!(inside.load(Ordering::SeqCst), 2);
        assert_eq!(engine.pending_count(), 2);
    }

    #[test]
    fn rejected_bridge_rolls_back_its_migration() {
        #[derive(Clone)]
        struct RejectBridge;
        impl ComponentEvaluator<TestQuery> for RejectBridge {
            type Delivery = ();
            type Error = String;
            fn evaluate(&self, queries: &[TestQuery]) -> Result<Option<(Vec<usize>, ())>, String> {
                if queries.iter().any(|q| q.name == "bridge") {
                    Err("bridge poisons the component".into())
                } else {
                    Ok(None)
                }
            }
        }
        let engine = ShardedEngine::new(RejectBridge, 2);
        engine.submit(chain_query(0, Some(1))).unwrap(); // shard 0
        engine.submit(chain_query(10, Some(11))).unwrap(); // shard 1
                                                           // A bridge touching both groups, rejected by the evaluator: the
                                                           // phase-1 merge it forced must be undone.
        let bridge = TestQuery::new("bridge", vec![("R", Some(1)), ("R", Some(11))], vec![]);
        engine.submit(bridge).unwrap_err();
        assert_eq!(engine.pending_count(), 2);
        assert_eq!(engine.metrics().snapshot().migrations, 1);
        let per_shard: Vec<usize> = engine
            .shards
            .iter()
            .map(|s| s.engine.lock().pending_count())
            .collect();
        assert_eq!(
            per_shard.iter().filter(|&&n| n == 1).count(),
            2,
            "merge not rolled back: {per_shard:?}"
        );
        // Routing reflects the split: reaching group 0 afterwards needs
        // no further migration.
        let stats_before = engine.metrics().snapshot().migrations;
        engine
            .submit(TestQuery::new(
                "w0",
                vec![("R", Some(99))],
                vec![("R", Some(0))],
            ))
            .unwrap();
        assert_eq!(
            engine.metrics().snapshot().migrations,
            stats_before,
            "no further migration needed to reach group 0"
        );
    }

    #[test]
    fn rejected_query_releases_its_keys() {
        #[derive(Clone)]
        struct AlwaysFail;
        impl ComponentEvaluator<TestQuery> for AlwaysFail {
            type Delivery = ();
            type Error = String;
            fn evaluate(&self, _queries: &[TestQuery]) -> Result<Option<(Vec<usize>, ())>, String> {
                Err("nope".into())
            }
        }
        let engine = ShardedEngine::new(AlwaysFail, 2);
        engine.submit(chain_query(0, Some(1))).unwrap_err();
        assert_eq!(engine.pending_count(), 0);
        assert!(engine.router.read().keys.is_empty());
    }
}
