//! Per-component sharding: concurrent submitters touching disjoint
//! components proceed in parallel instead of serializing behind one
//! engine mutex.
//!
//! ## Design
//!
//! Each shard owns an [`IncrementalEngine`] behind its own mutex. A
//! read-mostly **routing table** ([`parking_lot::RwLock`]) maps every key
//! pattern held by a pending query to the shard that owns it, with the
//! invariant that *all holders of related keys are co-sharded* — so any
//! two queries that could ever coordinate always meet inside one shard.
//!
//! * A query whose keys are unclaimed is routed round-robin.
//! * A query whose keys hit one shard is routed there.
//! * A query bridging several shards triggers a **migration**: the
//!   bridged components are moved to one target shard before the query
//!   lands.
//!
//! ## Migration protocol (marker-based)
//!
//! A migration must not hold the router write lock while it waits for
//! shard locks or scans shard slabs — that would stall every unrelated
//! submitter for the duration of a possibly long component evaluation.
//! Instead the router keeps a set of **migrating key markers**:
//!
//! 1. *Mark* (router write, brief): every registered key related to the
//!    bridging query's keys is marked. Routing and shard-side validation
//!    treat marked keys as "in flux": submitters touching them back off
//!    and retry, submitters touching anything else proceed.
//! 2. *Freeze* (no router lock): each source shard's slab is scanned —
//!    under that shard's lock alone — for the transitive key closure of
//!    the marked set; newly found keys are marked too (brief router
//!    writes) until a fixed point. Once the whole closure is marked, no
//!    new query can join the components being moved, and no in-flight
//!    claimant can slip in: a claimant validates its keys against the
//!    marker set *after* taking its shard lock, so it either landed
//!    before the freeze (and is seen by the scan) or backs off.
//! 3. *Move* (no router lock): extract the closure from each source
//!    shard and insert it into the target, taking one shard lock at a
//!    time.
//! 4. *Publish* (router write, brief): point every closure key at the
//!    target and lift the marks.
//!
//! ## Lock discipline
//!
//! The router write lock is only ever held for in-memory table work —
//! never while blocking on a shard lock or scanning a slab (the one
//! exception is the rare rejected-bridge rollback, which undoes a
//! migration whose shards it can already reach). Threads holding a
//! shard lock only ever poll the router with non-blocking `try_read`
//! and back off on failure, so the two lock levels cannot deadlock.
//! Migrations take shard locks one at a time with no router lock held,
//! and are **serialized** on a dedicated migration lock (acquired with
//! no other lock held): seeds that look disjoint can still grow
//! colliding transitive closures, and one-at-a-time execution keeps the
//! marker set owned by exactly one migration. Unrelated submitters
//! never touch that lock.

use crate::engine::{ComponentEvaluator, CoordinationQuery, IncrementalEngine, SubmitOutcome};
use crate::index::{keys_related, KeyPattern};
use crate::metrics::{EngineMetrics, ShardStats, ShardStatsSnapshot};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// One key pattern's routing entry.
struct KeySlot {
    shard: usize,
    /// How many pending queries hold this key.
    refs: usize,
}

/// The routing table: key pattern → owning shard, plus the keys
/// currently frozen by the in-flight migration.
struct Router<R, C> {
    keys: HashMap<KeyPattern<R, C>, KeySlot>,
    /// relation → shard → number of distinct keys (for wildcard lookups).
    by_rel: HashMap<R, HashMap<usize, usize>>,
    /// Keys mid-migration, bucketed by relation so the `blocked` probe
    /// run by every route/validation stays proportional to the query's
    /// own keys, not to the (possibly large) frozen closure. Routing
    /// related keys backs off until the migration publishes and lifts
    /// these.
    migrating: HashMap<R, Vec<Option<C>>>,
}

impl<R: Clone + Eq + std::hash::Hash, C: Clone + Eq + std::hash::Hash> Router<R, C> {
    fn new() -> Self {
        Router {
            keys: HashMap::new(),
            by_rel: HashMap::new(),
            migrating: HashMap::new(),
        }
    }

    /// Whether any of `keys` is related to a key frozen by the
    /// in-flight migration.
    fn blocked(&self, keys: &[KeyPattern<R, C>]) -> bool {
        !self.migrating.is_empty()
            && keys.iter().any(|(rel, c)| {
                self.migrating
                    .get(rel)
                    .is_some_and(|marks| marks.iter().any(|m| m.is_none() || c.is_none() || m == c))
            })
    }

    /// Add keys to the migrating set. Migrations are serialized and
    /// dedup their closure growth, so the keys are guaranteed fresh —
    /// no membership scan is needed.
    fn mark(&mut self, keys: &[KeyPattern<R, C>]) {
        for (rel, c) in keys {
            self.migrating
                .entry(rel.clone())
                .or_default()
                .push(c.clone());
        }
    }

    fn unmark(&mut self, keys: &std::collections::HashSet<KeyPattern<R, C>>) {
        for (rel, c) in keys {
            if let Some(marks) = self.migrating.get_mut(rel) {
                if let Some(pos) = marks.iter().position(|m| m == c) {
                    marks.swap_remove(pos);
                }
                if marks.is_empty() {
                    self.migrating.remove(rel);
                }
            }
        }
    }

    /// Shards owning any key related to one of `keys`.
    fn owners_related(&self, keys: &[KeyPattern<R, C>]) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        for key in keys {
            match &key.1 {
                Some(_) => {
                    for k in [key.clone(), (key.0.clone(), None)] {
                        if let Some(slot) = self.keys.get(&k) {
                            out.insert(slot.shard);
                        }
                    }
                }
                None => {
                    // Wildcard: every shard holding any key of the
                    // relation.
                    if let Some(shards) = self.by_rel.get(&key.0) {
                        out.extend(shards.keys().copied());
                    }
                }
            }
        }
        out
    }

    fn register(&mut self, key: &KeyPattern<R, C>, shard: usize) {
        match self.keys.get_mut(key) {
            Some(slot) => {
                debug_assert_eq!(slot.shard, shard, "key registered on two shards");
                slot.refs += 1;
            }
            None => {
                self.keys.insert(key.clone(), KeySlot { shard, refs: 1 });
                *self
                    .by_rel
                    .entry(key.0.clone())
                    .or_default()
                    .entry(shard)
                    .or_insert(0) += 1;
            }
        }
    }

    fn unregister(&mut self, key: &KeyPattern<R, C>) {
        let Some(slot) = self.keys.get_mut(key) else {
            return;
        };
        slot.refs -= 1;
        if slot.refs == 0 {
            let shard = slot.shard;
            self.keys.remove(key);
            if let Some(shards) = self.by_rel.get_mut(&key.0) {
                if let Some(n) = shards.get_mut(&shard) {
                    *n -= 1;
                    if *n == 0 {
                        shards.remove(&shard);
                    }
                }
                if shards.is_empty() {
                    self.by_rel.remove(&key.0);
                }
            }
        }
    }

    /// Point an existing key at a new shard (during migration).
    fn reassign(&mut self, key: &KeyPattern<R, C>, to: usize) {
        let Some(slot) = self.keys.get_mut(key) else {
            return;
        };
        let from = slot.shard;
        if from == to {
            return;
        }
        slot.shard = to;
        if let Some(shards) = self.by_rel.get_mut(&key.0) {
            if let Some(n) = shards.get_mut(&from) {
                *n -= 1;
                if *n == 0 {
                    shards.remove(&from);
                }
            }
            *shards.entry(to).or_insert(0) += 1;
        }
    }
}

struct Shard<Q: CoordinationQuery, V> {
    engine: Mutex<IncrementalEngine<Q, V>>,
    stats: ShardStats,
}

/// Key groups moved by migrations performed for one submission:
/// `(source shard, moved queries' keys)` — enough to undo the merges if
/// the submission is rejected.
type MigrationRecord<Q> = Vec<(
    usize,
    Vec<KeyPattern<<Q as CoordinationQuery>::Rel, <Q as CoordinationQuery>::Cst>>,
)>;

/// Per-query outcomes of [`ShardedEngine::submit_batch`], in input
/// order.
pub type BatchResults<Q, V> = Vec<
    Result<
        SubmitOutcome<Q, <V as ComponentEvaluator<Q>>::Delivery>,
        <V as ComponentEvaluator<Q>>::Error,
    >,
>;

/// A planned migration: the marked seed keys, the shards to drain, and
/// the shard everything lands on.
struct MigrationPlan<R, C> {
    seed: Vec<KeyPattern<R, C>>,
    sources: Vec<usize>,
    target: usize,
}

/// The sharded online coordination service: replaces the pre-incremental
/// `SharedEngine`'s single global mutex with per-component shards.
pub struct ShardedEngine<Q: CoordinationQuery, V> {
    shards: Vec<Shard<Q, V>>,
    router: RwLock<Router<Q::Rel, Q::Cst>>,
    metrics: Arc<EngineMetrics>,
    next_shard: AtomicUsize,
    /// Serializes migrations. Two migrations whose *seeds* look
    /// unrelated can still grow colliding transitive closures; running
    /// them one at a time means the marker set always belongs to
    /// exactly one in-flight migration — which is what lets `mark`
    /// skip dedup and `unmark` clear wholesale. Migrations are rare;
    /// unrelated submitters never touch this lock.
    migration_lock: Mutex<()>,
}

impl<Q: CoordinationQuery, V: ComponentEvaluator<Q> + Clone> ShardedEngine<Q, V> {
    /// A service with `shards` shards, each evaluating components with a
    /// clone of `evaluator`.
    pub fn new(evaluator: V, shards: usize) -> Self {
        assert!(shards > 0, "at least one shard required");
        let metrics = Arc::new(EngineMetrics::new());
        let shards = (0..shards)
            .map(|_| Shard {
                engine: Mutex::new(IncrementalEngine::with_metrics(
                    evaluator.clone(),
                    Arc::clone(&metrics),
                )),
                stats: ShardStats::default(),
            })
            .collect();
        ShardedEngine {
            shards,
            router: RwLock::new(Router::new()),
            metrics,
            next_shard: AtomicUsize::new(0),
            migration_lock: Mutex::new(()),
        }
    }
}

impl<Q: CoordinationQuery, V: ComponentEvaluator<Q>> ShardedEngine<Q, V> {
    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Aggregated metrics across all shards.
    pub fn metrics(&self) -> &Arc<EngineMetrics> {
        &self.metrics
    }

    /// Per-shard contention statistics.
    pub fn shard_stats(&self) -> Vec<ShardStatsSnapshot> {
        self.shards.iter().map(|s| s.stats.snapshot()).collect()
    }

    /// Total pending queries across shards.
    pub fn pending_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.engine.lock().pending_count())
            .sum()
    }

    /// Total maintained components across shards.
    pub fn component_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.engine.lock().component_count())
            .sum()
    }

    /// Total queries answered and retired.
    pub fn delivered(&self) -> u64 {
        self.metrics.delivered.load(Ordering::Relaxed)
    }

    /// Clones of all pending queries (shard by shard; a moving snapshot
    /// under concurrent submits).
    pub fn pending(&self) -> Vec<Q> {
        let mut out = Vec::new();
        for s in &self.shards {
            out.extend(s.engine.lock().pending().cloned());
        }
        out
    }

    /// Submit a query: route it to the shard owning its keys (migrating
    /// bridged components first if it spans shards), then run the
    /// incremental submit under that shard's lock only.
    pub fn submit(&self, query: Q) -> Result<SubmitOutcome<Q, V::Delivery>, V::Error> {
        let qkeys = route_keys(&query);
        let mut migrated: MigrationRecord<Q> = Vec::new();
        let target = self.claim(&qkeys, &mut migrated, true);
        let outcome =
            self.with_owned_shard(&qkeys, target, &mut migrated, true, |e| e.submit(query));
        self.finish(&qkeys, migrated, outcome)
    }

    /// Insert a query that is known to be stable-pending — recovered
    /// from the durable store's log, where it demonstrably did not
    /// coordinate — routing it like a submit but skipping evaluation.
    pub fn insert_pending(&self, query: Q) {
        let qkeys = route_keys(&query);
        let mut migrated: MigrationRecord<Q> = Vec::new();
        let target = self.claim(&qkeys, &mut migrated, true);
        self.with_owned_shard(&qkeys, target, &mut migrated, false, |e| {
            e.insert_pending(query)
        });
    }

    /// Submit a batch of queries, acquiring the routing table **once**
    /// for the whole batch (one claim pass, one release pass) instead of
    /// twice per query. Queries that need a migration — or whose route
    /// is invalidated by a concurrent one — fall back to the one-query
    /// path *after* the directly routable ones. Results are in input
    /// order, and directly routable queries of one component keep their
    /// relative order — so a batch behaves exactly like submitting its
    /// members sequentially when its components are disjoint or already
    /// co-sharded (a deferred in-batch bridge runs late, and may
    /// therefore observe same-component batch members that sequential
    /// order would have placed after it).
    pub fn submit_batch(&self, queries: Vec<Q>) -> BatchResults<Q, V> {
        EngineMetrics::add(&self.metrics.batches, 1);
        let n = queries.len();
        let keysets: Vec<Vec<KeyPattern<Q::Rel, Q::Cst>>> =
            queries.iter().map(route_keys).collect();

        // Phase 1 (one exclusive acquisition): route and claim every
        // directly routable query. Bridging or migration-blocked
        // queries stay unclaimed and take the slow path below.
        let mut targets: Vec<Option<usize>> = vec![None; n];
        {
            let mut router = self.router.write();
            for i in 0..n {
                let qkeys = &keysets[i];
                if router.blocked(qkeys) {
                    continue;
                }
                let owners = router.owners_related(qkeys);
                let t = match owners.len() {
                    0 => self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len(),
                    1 => *owners.iter().next().unwrap(),
                    _ => continue,
                };
                for k in qkeys {
                    router.register(k, t);
                }
                targets[i] = Some(t);
            }
        }

        // Phase 2: per target shard, take the shard lock once and run
        // the claimed queries in input order.
        let mut slots: Vec<Option<Q>> = queries.into_iter().map(Some).collect();
        let mut results: Vec<Option<_>> = (0..n).map(|_| None).collect();
        let mut by_shard: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, t) in targets.iter().enumerate() {
            if let Some(t) = *t {
                by_shard.entry(t).or_default().push(i);
            }
        }
        for (&t, idxs) in &by_shard {
            let shard = &self.shards[t];
            let mut engine = match shard.engine.try_lock() {
                Some(guard) => guard,
                None => {
                    EngineMetrics::add(&shard.stats.contended, 1);
                    shard.engine.lock()
                }
            };
            for &i in idxs {
                let qkeys = &keysets[i];
                // Same post-lock validation as the one-query path; an
                // invalidated claim falls through to the slow path with
                // its keys still registered.
                let valid = qkeys.is_empty()
                    || match self.router.try_read() {
                        Some(router) => {
                            qkeys.iter().all(|k| router.keys[k].shard == t)
                                && !router.blocked(qkeys)
                        }
                        None => false,
                    };
                if !valid {
                    continue;
                }
                EngineMetrics::add(&shard.stats.submits, 1);
                results[i] = Some(engine.submit(slots[i].take().expect("query unconsumed")));
            }
        }

        // Slow path: unclaimed queries run the full one-query protocol;
        // claimed-but-invalidated ones rejoin it after re-routing.
        for i in 0..n {
            if results[i].is_some() {
                continue;
            }
            let query = slots[i].take().expect("query unconsumed");
            match targets[i] {
                None => results[i] = Some(self.submit(query)),
                Some(t0) => {
                    let mut migrated: MigrationRecord<Q> = Vec::new();
                    let outcome =
                        self.with_owned_shard(&keysets[i], t0, &mut migrated, true, |e| {
                            e.submit(query)
                        });
                    results[i] = Some(self.finish(&keysets[i], migrated, outcome));
                    targets[i] = None; // released by `finish`, skip below
                }
            }
        }

        // Phase 3 (one exclusive acquisition): release everything the
        // fast-path queries retired or failed to submit.
        {
            let mut router = self.router.write();
            for i in 0..n {
                if targets[i].is_none() {
                    continue;
                }
                match results[i].as_ref().expect("result recorded") {
                    Err(_) => {
                        for k in &keysets[i] {
                            router.unregister(k);
                        }
                    }
                    Ok(out) => {
                        for q in &out.retired {
                            for k in route_keys(q) {
                                router.unregister(&k);
                            }
                        }
                    }
                }
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("result recorded"))
            .collect()
    }

    /// Route `qkeys` to one shard and (optionally) claim them there,
    /// performing marker-based migrations first when the keys bridge
    /// shards. Never holds the router lock while migrating.
    fn claim(
        &self,
        qkeys: &[KeyPattern<Q::Rel, Q::Cst>],
        migrated: &mut MigrationRecord<Q>,
        register: bool,
    ) -> usize {
        if qkeys.is_empty() {
            return self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        }
        let mut backoffs = 0u32;
        loop {
            let plan = {
                let mut router = self.router.write();
                if router.blocked(qkeys) {
                    None
                } else {
                    let owners = router.owners_related(qkeys);
                    match owners.len() {
                        0 => {
                            let t =
                                self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
                            if register {
                                for k in qkeys {
                                    router.register(k, t);
                                }
                            }
                            return t;
                        }
                        1 => {
                            let t = *owners.iter().next().unwrap();
                            if register {
                                for k in qkeys {
                                    router.register(k, t);
                                }
                            }
                            return t;
                        }
                        _ => {
                            // Bridging keys: migrate first (planned and
                            // marked under the serializing migration
                            // lock, outside this router acquisition).
                            Some(())
                        }
                    }
                }
            };
            match plan {
                None => {
                    // The in-flight migration owns (some of) our keys:
                    // wait it out without holding any lock. Migrations
                    // can span a long component evaluation, so
                    // persistent waits sleep (capped exponential)
                    // instead of burning a core on yield — on a
                    // single-CPU box that spinning would steal cycles
                    // from the very evaluation the migration is waiting
                    // on.
                    EngineMetrics::add(&self.metrics.migration_backoffs, 1);
                    if backoffs < 4 {
                        std::thread::yield_now();
                    } else {
                        let exp = (backoffs - 4).min(7);
                        std::thread::sleep(std::time::Duration::from_micros(50 << exp));
                    }
                    backoffs += 1;
                }
                Some(()) => self.perform_migration(qkeys, migrated),
            }
        }
    }

    /// Merge the components bridged by `qkeys` onto one shard. Runs
    /// under the serializing migration lock: the routing decision is
    /// re-made there (an earlier migration may have merged or retired
    /// everything already), the related registered keys are marked, the
    /// transitive key closure is frozen and moved, and the new routes
    /// published. Shard locks are taken one at a time; the router write
    /// lock is only held for brief table work.
    fn perform_migration(
        &self,
        qkeys: &[KeyPattern<Q::Rel, Q::Cst>],
        migrated: &mut MigrationRecord<Q>,
    ) {
        let _one_at_a_time = self.migration_lock.lock();
        // Re-plan under the lock with fresh routing state.
        let plan = {
            let mut router = self.router.write();
            let owners = router.owners_related(qkeys);
            if owners.len() <= 1 {
                return;
            }
            let target = *owners.iter().next().unwrap();
            let seed: Vec<KeyPattern<Q::Rel, Q::Cst>> = router
                .keys
                .keys()
                .filter(|k| qkeys.iter().any(|q| keys_related(q, k)))
                .cloned()
                .collect();
            router.mark(&seed);
            EngineMetrics::add(&self.metrics.migrations, 1);
            MigrationPlan {
                seed,
                sources: owners.iter().copied().filter(|&s| s != target).collect(),
                target,
            }
        };
        let MigrationPlan {
            mut seed,
            sources,
            target,
        } = plan;

        // Freeze: grow the marked set to the transitive key closure of
        // the components being moved. Marked keys block related routing,
        // so once a scan finds nothing new the closure can no longer
        // change. Each pass scans only the *frontier* (keys found by
        // the previous pass): components related solely to older keys
        // were already collected, and marks stop new arrivals from
        // re-relating to them — so the fixed point stays linear in the
        // closure instead of rescanning the full seed every round.
        let mut seen: HashSet<KeyPattern<Q::Rel, Q::Cst>> = seed.iter().cloned().collect();
        let mut frontier: Vec<KeyPattern<Q::Rel, Q::Cst>> = seed.clone();
        loop {
            let mut extra: Vec<KeyPattern<Q::Rel, Q::Cst>> = Vec::new();
            for &src in &sources {
                let found = self.shards[src].engine.lock().related_keys(&frontier);
                for k in found {
                    if seen.insert(k.clone()) {
                        extra.push(k);
                    }
                }
            }
            if extra.is_empty() {
                break;
            }
            self.router.write().mark(&extra);
            seed.extend(extra.iter().cloned());
            frontier = extra;
        }

        // Move: drain each source shard and refill the target, one
        // shard lock at a time, with no router lock held.
        for &src in &sources {
            let moved = self.shards[src].engine.lock().extract_related(&seed);
            if moved.is_empty() {
                continue;
            }
            EngineMetrics::add(&self.shards[src].stats.migrated_out, moved.len() as u64);
            let mut moved_keys: Vec<KeyPattern<Q::Rel, Q::Cst>> = Vec::new();
            {
                let mut tgt = self.shards[target].engine.lock();
                for q in moved {
                    for k in route_keys(&q) {
                        if !moved_keys.contains(&k) {
                            moved_keys.push(k);
                        }
                    }
                    tgt.insert_pending(q);
                }
            }
            migrated.push((src, moved_keys));
        }

        // Publish: point every closure key at the target — including
        // keys claimed by in-flight submitters whose query is not
        // inserted anywhere yet; their post-lock validation sees the
        // move (or the marks) and follows — then lift the marks.
        let mut router = self.router.write();
        for k in &seed {
            router.reassign(k, target);
        }
        router.unmark(&seen);
    }

    /// Run `op` on the shard that owns `qkeys`, re-validating the claim
    /// after acquiring the shard lock: every key must still point at the
    /// target and none may be frozen by a migration (see the module docs
    /// for why this cannot deadlock or lose the query).
    fn with_owned_shard<T>(
        &self,
        qkeys: &[KeyPattern<Q::Rel, Q::Cst>],
        mut target: usize,
        migrated: &mut MigrationRecord<Q>,
        record_submit: bool,
        op: impl FnOnce(&mut IncrementalEngine<Q, V>) -> T,
    ) -> T {
        let mut op = Some(op);
        loop {
            let shard = &self.shards[target];
            let mut engine = match shard.engine.try_lock() {
                Some(guard) => guard,
                None => {
                    EngineMetrics::add(&shard.stats.contended, 1);
                    shard.engine.lock()
                }
            };
            if !qkeys.is_empty() {
                match self.router.try_read() {
                    Some(router) => {
                        let consistent = qkeys.iter().all(|k| router.keys[k].shard == target)
                            && !router.blocked(qkeys);
                        if !consistent {
                            // A migration raced our claim: follow the
                            // keys (or wait out the marks) and retry.
                            drop(router);
                            drop(engine);
                            target = self.claim(qkeys, migrated, false);
                            continue;
                        }
                    }
                    None => {
                        // A writer is active — possibly a migrator about
                        // to publish a move of our keys. Back off and
                        // retry without holding the shard lock.
                        drop(engine);
                        target = self.router.read().keys[&qkeys[0]].shard;
                        continue;
                    }
                }
            }
            if record_submit {
                EngineMetrics::add(&shard.stats.submits, 1);
            }
            break (op.take().expect("op runs once"))(&mut engine);
        }
    }

    /// Release the routing claims of whatever left the pending set — the
    /// rejected query, or the retired set — and undo a rejected bridge's
    /// migrations.
    fn finish(
        &self,
        qkeys: &[KeyPattern<Q::Rel, Q::Cst>],
        migrated: MigrationRecord<Q>,
        outcome: Result<SubmitOutcome<Q, V::Delivery>, V::Error>,
    ) -> Result<SubmitOutcome<Q, V::Delivery>, V::Error> {
        match outcome {
            Err(e) => {
                let mut router = self.router.write();
                for k in qkeys {
                    router.unregister(k);
                }
                // Undo the merges performed for this submission: they
                // were justified only by the now-rejected bridging
                // query. Without this, repeated rejected bridges would
                // progressively collapse unrelated components onto one
                // shard with no way to re-split before retirement.
                for (src, keys) in &migrated {
                    // A concurrent migration may own these keys now;
                    // leaving the merge in place is only a load-balance
                    // pessimization, never a correctness issue.
                    if router.blocked(keys) {
                        continue;
                    }
                    // The group may have retired or moved meanwhile —
                    // follow its keys to wherever they live now.
                    let Some(cur) = keys
                        .iter()
                        .find_map(|k| router.keys.get(k).map(|slot| slot.shard))
                    else {
                        continue;
                    };
                    if cur == *src {
                        continue;
                    }
                    let moved_back = self.shards[cur].engine.lock().extract_related(keys);
                    EngineMetrics::add(
                        &self.shards[cur].stats.migrated_out,
                        moved_back.len() as u64,
                    );
                    let mut src_engine = self.shards[*src].engine.lock();
                    for q in moved_back {
                        for k in route_keys(&q) {
                            router.reassign(&k, *src);
                        }
                        src_engine.insert_pending(q);
                    }
                }
                Err(e)
            }
            Ok(out) => {
                if !out.retired.is_empty() {
                    let mut router = self.router.write();
                    for q in &out.retired {
                        for k in route_keys(q) {
                            router.unregister(&k);
                        }
                    }
                }
                Ok(out)
            }
        }
    }
}

/// A query's deduplicated routing keys: every provided and required key
/// pattern.
fn route_keys<Q: CoordinationQuery>(q: &Q) -> Vec<KeyPattern<Q::Rel, Q::Cst>> {
    let mut keys = q.provides();
    for k in q.requires() {
        if !keys.contains(&k) {
            keys.push(k);
        }
    }
    // Dedup the provides side too (keys are Hash+Eq, not Ord).
    let mut out: Vec<KeyPattern<Q::Rel, Q::Cst>> = Vec::with_capacity(keys.len());
    for k in keys {
        if !out.contains(&k) {
            out.push(k);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::tests::{SaturationEvaluator, TestQuery};
    use std::sync::atomic::AtomicU64;
    use std::time::{Duration, Instant};

    fn chain_query(i: i64, next: Option<i64>) -> TestQuery {
        let requires = next.map(|n| ("R", Some(n))).into_iter().collect();
        TestQuery::new(format!("q{i}"), vec![("R", Some(i))], requires)
    }

    #[test]
    fn disjoint_chains_land_on_distinct_shards() {
        let engine = ShardedEngine::new(SaturationEvaluator, 4);
        // Four disjoint waiting pairs → round-robin over all shards.
        for g in 0..4 {
            engine
                .submit(chain_query(100 * g, Some(100 * g + 1)))
                .unwrap();
        }
        assert_eq!(engine.pending_count(), 4);
        let stats = engine.shard_stats();
        assert!(stats.iter().all(|s| s.submits == 1), "{stats:?}");
        // Completing each chain coordinates within its shard.
        for g in 0..4 {
            let r = engine.submit(chain_query(100 * g + 1, None)).unwrap();
            assert!(r.coordinated());
        }
        assert_eq!(engine.pending_count(), 0);
        assert_eq!(engine.delivered(), 8);
    }

    #[test]
    fn bridging_query_migrates_components_to_one_shard() {
        let engine = ShardedEngine::new(SaturationEvaluator, 2);
        // Two disjoint waiters on different shards…
        engine.submit(chain_query(0, Some(1))).unwrap();
        engine.submit(chain_query(10, Some(11))).unwrap();
        assert_eq!(engine.pending_count(), 2);
        // …bridged by a query that requires both: it provides R(1)
        // (wanted by q0) and requires R(11) (provided by nobody yet) plus
        // R(10)'s chain — make it provide 11's need and need 10.
        let bridge = TestQuery::new(
            "bridge",
            vec![("R", Some(1)), ("R", Some(11))],
            vec![("R", Some(10))],
        );
        let r = engine.submit(bridge).unwrap();
        // Everything is now mutually satisfied: q0 needs R(1) ✓ (bridge),
        // q10 needs R(11) ✓ (bridge), bridge needs R(10) ✓ (q10).
        assert!(r.coordinated());
        assert_eq!(r.retired.len(), 3);
        assert_eq!(engine.pending_count(), 0);
        assert_eq!(engine.metrics().snapshot().migrations, 1);
        // All routing state was released, no marks linger.
        assert!(engine.router.read().keys.is_empty());
        assert!(engine.router.read().migrating.is_empty());
    }

    #[test]
    fn router_refcounts_shared_keys() {
        let engine = ShardedEngine::new(SaturationEvaluator, 2);
        // Two queries requiring the same (unprovided) key share a route
        // key and must co-shard.
        engine
            .submit(TestQuery::new(
                "a",
                vec![("A", Some(1))],
                vec![("X", Some(9))],
            ))
            .unwrap();
        engine
            .submit(TestQuery::new(
                "b",
                vec![("B", Some(1))],
                vec![("X", Some(9))],
            ))
            .unwrap();
        {
            let router = engine.router.read();
            let slot = &router.keys[&("X", Some(9))];
            assert_eq!(slot.refs, 2);
        }
        let stats = engine.shard_stats();
        assert_eq!(stats.iter().filter(|s| s.submits > 0).count(), 1);
    }

    /// The concurrency proof: two submitters to disjoint components must
    /// both be *inside* component evaluation at the same time. A
    /// single-mutex engine would serialize them and time out.
    #[test]
    fn disjoint_submitters_evaluate_concurrently() {
        #[derive(Clone)]
        struct Rendezvous(Arc<AtomicU64>);
        impl ComponentEvaluator<TestQuery> for Rendezvous {
            type Delivery = ();
            type Error = String;
            fn evaluate(&self, _queries: &[TestQuery]) -> Result<Option<(Vec<usize>, ())>, String> {
                self.0.fetch_add(1, Ordering::SeqCst);
                let deadline = Instant::now() + Duration::from_secs(10);
                while self.0.load(Ordering::SeqCst) < 2 {
                    if Instant::now() > deadline {
                        return Err("no concurrent evaluation within 10s".into());
                    }
                    std::thread::yield_now();
                }
                Ok(None)
            }
        }

        let inside = Arc::new(AtomicU64::new(0));
        let engine = ShardedEngine::new(Rendezvous(Arc::clone(&inside)), 2);
        std::thread::scope(|s| {
            let e1 = &engine;
            let e2 = &engine;
            let t1 = s.spawn(move || e1.submit(chain_query(0, Some(1))));
            let t2 = s.spawn(move || e2.submit(chain_query(100, Some(101))));
            t1.join().unwrap().expect("first submitter");
            t2.join().unwrap().expect("second submitter");
        });
        assert_eq!(inside.load(Ordering::SeqCst), 2);
        assert_eq!(engine.pending_count(), 2);
    }

    #[test]
    fn rejected_bridge_rolls_back_its_migration() {
        #[derive(Clone)]
        struct RejectBridge;
        impl ComponentEvaluator<TestQuery> for RejectBridge {
            type Delivery = ();
            type Error = String;
            fn evaluate(&self, queries: &[TestQuery]) -> Result<Option<(Vec<usize>, ())>, String> {
                if queries.iter().any(|q| q.name == "bridge") {
                    Err("bridge poisons the component".into())
                } else {
                    Ok(None)
                }
            }
        }
        let engine = ShardedEngine::new(RejectBridge, 2);
        engine.submit(chain_query(0, Some(1))).unwrap(); // shard 0
        engine.submit(chain_query(10, Some(11))).unwrap(); // shard 1
                                                           // A bridge touching both groups, rejected by the evaluator: the
                                                           // phase-1 merge it forced must be undone.
        let bridge = TestQuery::new("bridge", vec![("R", Some(1)), ("R", Some(11))], vec![]);
        engine.submit(bridge).unwrap_err();
        assert_eq!(engine.pending_count(), 2);
        assert_eq!(engine.metrics().snapshot().migrations, 1);
        let per_shard: Vec<usize> = engine
            .shards
            .iter()
            .map(|s| s.engine.lock().pending_count())
            .collect();
        assert_eq!(
            per_shard.iter().filter(|&&n| n == 1).count(),
            2,
            "merge not rolled back: {per_shard:?}"
        );
        // Routing reflects the split: reaching group 0 afterwards needs
        // no further migration.
        let stats_before = engine.metrics().snapshot().migrations;
        engine
            .submit(TestQuery::new(
                "w0",
                vec![("R", Some(99))],
                vec![("R", Some(0))],
            ))
            .unwrap();
        assert_eq!(
            engine.metrics().snapshot().migrations,
            stats_before,
            "no further migration needed to reach group 0"
        );
    }

    #[test]
    fn rejected_query_releases_its_keys() {
        #[derive(Clone)]
        struct AlwaysFail;
        impl ComponentEvaluator<TestQuery> for AlwaysFail {
            type Delivery = ();
            type Error = String;
            fn evaluate(&self, _queries: &[TestQuery]) -> Result<Option<(Vec<usize>, ())>, String> {
                Err("nope".into())
            }
        }
        let engine = ShardedEngine::new(AlwaysFail, 2);
        engine.submit(chain_query(0, Some(1))).unwrap_err();
        assert_eq!(engine.pending_count(), 0);
        assert!(engine.router.read().keys.is_empty());
    }

    #[test]
    fn insert_pending_routes_without_evaluating() {
        let engine = ShardedEngine::new(SaturationEvaluator, 2);
        // A free query inserted as already-pending must NOT coordinate on
        // insertion (the recovery contract)…
        engine.insert_pending(chain_query(1, None));
        engine.insert_pending(chain_query(100, Some(101)));
        assert_eq!(engine.pending_count(), 2);
        assert_eq!(engine.delivered(), 0);
        // …but a later submit touching its component evaluates it.
        let r = engine.submit(chain_query(0, Some(1))).unwrap();
        assert!(r.coordinated());
        assert_eq!(r.retired.len(), 2);
        assert_eq!(engine.pending_count(), 1);
    }

    #[test]
    fn insert_pending_colocates_related_keys() {
        let engine = ShardedEngine::new(SaturationEvaluator, 4);
        // Recovery inserts chain members one by one; all must co-shard.
        for i in 0..5 {
            engine.insert_pending(chain_query(i, Some(i + 1)));
        }
        let active: Vec<usize> = engine
            .shards
            .iter()
            .map(|s| s.engine.lock().pending_count())
            .filter(|&n| n > 0)
            .collect();
        assert_eq!(active, vec![5], "chain split across shards");
        let r = engine.submit(chain_query(5, None)).unwrap();
        assert!(r.coordinated());
        assert_eq!(r.retired.len(), 6);
    }

    #[test]
    fn submit_batch_matches_sequential_results() {
        let db_seq = ShardedEngine::new(SaturationEvaluator, 3);
        let db_batch = ShardedEngine::new(SaturationEvaluator, 3);
        // Three chains interleaved; the keystones close them mid-batch.
        let mut order = Vec::new();
        for g in 0..3i64 {
            order.push(chain_query(100 * g, Some(100 * g + 1)));
        }
        for g in 0..3i64 {
            order.push(chain_query(100 * g + 1, Some(100 * g + 2)));
        }
        for g in 0..3i64 {
            order.push(chain_query(100 * g + 2, None));
        }
        let seq_results: Vec<_> = order
            .iter()
            .cloned()
            .map(|q| db_seq.submit(q).unwrap())
            .collect();
        let batch_results = db_batch.submit_batch(order);
        assert_eq!(batch_results.len(), seq_results.len());
        for (i, (b, s)) in batch_results.iter().zip(&seq_results).enumerate() {
            let b = b.as_ref().unwrap();
            assert_eq!(b.coordinated(), s.coordinated(), "submission {i}");
            let mut bn: Vec<&str> = b.retired.iter().map(|q| q.name.as_str()).collect();
            let mut sn: Vec<&str> = s.retired.iter().map(|q| q.name.as_str()).collect();
            bn.sort_unstable();
            sn.sort_unstable();
            assert_eq!(bn, sn, "submission {i}");
        }
        assert_eq!(db_batch.pending_count(), db_seq.pending_count());
        assert_eq!(db_batch.delivered(), db_seq.delivered());
        assert_eq!(db_batch.metrics().snapshot().batches, 1);
        // All routing state was released along with the retirements.
        assert!(db_batch.router.read().keys.is_empty());
    }

    #[test]
    fn submit_batch_releases_keys_of_rejected_queries() {
        #[derive(Clone)]
        struct RejectNamed(&'static str);
        impl ComponentEvaluator<TestQuery> for RejectNamed {
            type Delivery = ();
            type Error = String;
            fn evaluate(&self, queries: &[TestQuery]) -> Result<Option<(Vec<usize>, ())>, String> {
                if queries.iter().any(|q| q.name == self.0) {
                    Err("rejected".into())
                } else {
                    Ok(None)
                }
            }
        }
        let engine = ShardedEngine::new(RejectNamed("q7"), 2);
        let results = engine.submit_batch(vec![
            chain_query(0, Some(1)),
            chain_query(7, None),
            chain_query(100, Some(101)),
        ]);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
        assert_eq!(engine.pending_count(), 2);
        // q7's keys were released; a fresh submit of the same keys works.
        assert_eq!(engine.router.read().keys.len(), 4);
    }

    #[test]
    fn submit_batch_handles_in_batch_bridges_via_slow_path() {
        let engine = ShardedEngine::new(SaturationEvaluator, 2);
        // Pre-place two disjoint waiters on separate shards.
        engine.submit(chain_query(0, Some(1))).unwrap();
        engine.submit(chain_query(10, Some(11))).unwrap();
        // The batch's bridge needs a migration: it defers to the slow
        // path but still coordinates everything.
        let bridge = TestQuery::new(
            "bridge",
            vec![("R", Some(1)), ("R", Some(11))],
            vec![("R", Some(10))],
        );
        let results = engine.submit_batch(vec![bridge, chain_query(50, Some(51))]);
        assert!(results[0].as_ref().unwrap().coordinated());
        assert_eq!(results[0].as_ref().unwrap().retired.len(), 3);
        assert!(!results[1].as_ref().unwrap().coordinated());
        assert_eq!(engine.pending_count(), 1);
        assert_eq!(engine.metrics().snapshot().migrations, 1);
    }
}
