//! Runtime lock-rank validator — the dynamic half of the workspace's
//! concurrency discipline.
//!
//! The static analyzer (`coord-lint`) proves the *source* acquires
//! locks in descending rank order along every lexical path it can see;
//! this module cross-checks the same DAG *dynamically*: every ranked
//! guard acquisition pushes its rank onto a thread-local stack and
//! asserts it does not out-rank any guard the thread already holds.
//! The whole test suite then doubles as a lock-order oracle — including
//! paths the static pass skips (test code, closures, trait dispatch).
//!
//! The rank table is **re-exported from `coord-lint`** (see
//! [`coord_lint::ranks`]), so the two oracles can never disagree about
//! which nesting is legal.
//!
//! ## Semantics
//!
//! * Acquiring rank `r` is legal iff `r <= min(held ranks)` — equal
//!   rank is allowed (e.g. source and target shard engines during a
//!   migration, serialized by the higher-ranked migration lock).
//! * Guards may be **dropped in any order**; the stack pops by token
//!   identity, not position.
//! * Non-blocking `try_*` acquisitions are not tracked: a thread that
//!   backs off on failure cannot participate in a deadlock cycle
//!   (their fallback discipline is rule L4's, checked statically).
//!
//! ## Cost
//!
//! With `debug-assertions` off this compiles to nothing: [`HeldRank`]
//! is a zero-sized type and [`ranked`] returns the guard unchanged
//! (modulo the transparent wrapper). CI runs the suite once in release
//! with `RUSTFLAGS="-C debug-assertions"` so the validator also
//! exercises the optimized build.

pub use coord_lint::ranks::{rank_of_alias, rank_of_receiver, LockRank, RankEntry, RANK_TABLE};

use std::ops::{Deref, DerefMut};

#[cfg(debug_assertions)]
mod held {
    use super::LockRank;
    use std::cell::RefCell;

    thread_local! {
        /// (rank, token id) per live ranked guard on this thread.
        static HELD: RefCell<Vec<(LockRank, u64)>> = const { RefCell::new(Vec::new()) };
        static NEXT_ID: RefCell<u64> = const { RefCell::new(0) };
    }

    pub(super) fn push(rank: LockRank) -> u64 {
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            if let Some(min) = h.iter().map(|&(r, _)| r).min() {
                assert!(
                    rank <= min,
                    "lock-rank violation: acquiring `{}` (rank {}) while a guard of \
                     rank {} is held — locks must be acquired in descending rank \
                     order (see coord_lint::ranks)",
                    rank.name(),
                    rank.level(),
                    min.level(),
                );
            }
            let id = NEXT_ID.with(|n| {
                let mut n = n.borrow_mut();
                *n += 1;
                *n
            });
            h.push((rank, id));
            id
        })
    }

    pub(super) fn pop(id: u64) {
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            if let Some(pos) = h.iter().rposition(|&(_, i)| i == id) {
                h.remove(pos);
            }
        });
    }

    /// Number of ranked guards the current thread holds (test hook).
    pub(super) fn depth() -> usize {
        HELD.with(|h| h.borrow().len())
    }
}

/// Witness that the current thread holds a guard of a given rank.
/// Dropping it (in any order relative to other witnesses) removes the
/// rank from the thread's held set. Zero-sized no-op without
/// debug-assertions.
#[derive(Debug)]
pub struct HeldRank {
    #[cfg(debug_assertions)]
    id: u64,
}

impl HeldRank {
    /// Record an acquisition of `rank`, asserting the descending-order
    /// invariant against everything this thread already holds.
    #[must_use]
    pub fn acquire(rank: LockRank) -> HeldRank {
        #[cfg(debug_assertions)]
        {
            HeldRank {
                id: held::push(rank),
            }
        }
        #[cfg(not(debug_assertions))]
        {
            let _ = rank;
            HeldRank {}
        }
    }
}

#[cfg(debug_assertions)]
impl Drop for HeldRank {
    fn drop(&mut self) {
        held::pop(self.id);
    }
}

/// A lock guard paired with its rank witness, so both release together
/// — `drop(guard)` at a call site pops the rank at exactly the moment
/// the lock is released. Transparent via `Deref`/`DerefMut`.
#[derive(Debug)]
pub struct Ranked<G> {
    guard: G,
    /// Declared after `guard` — struct fields drop in declaration
    /// order, so the rank stays "held" until the lock is released.
    _token: HeldRank,
}

impl<G> Deref for Ranked<G> {
    type Target = G;
    fn deref(&self) -> &G {
        &self.guard
    }
}

impl<G> DerefMut for Ranked<G> {
    fn deref_mut(&mut self) -> &mut G {
        &mut self.guard
    }
}

/// Wrap a freshly acquired guard with its rank, asserting the
/// descending-order invariant. The assertion runs immediately after
/// the acquisition — an out-of-order *blocking* acquisition is caught
/// whether or not it happened to deadlock on this run.
pub fn ranked<G>(rank: LockRank, guard: G) -> Ranked<G> {
    Ranked {
        guard,
        _token: HeldRank::acquire(rank),
    }
}

/// Ranked guards currently held by this thread. 0 when built without
/// debug-assertions (the validator is compiled out).
#[must_use]
pub fn held_count() -> usize {
    #[cfg(debug_assertions)]
    {
        held::depth()
    }
    #[cfg(not(debug_assertions))]
    {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descending_and_equal_acquisitions_pass() {
        let a = HeldRank::acquire(LockRank::Migration);
        let b = HeldRank::acquire(LockRank::Router);
        let c = HeldRank::acquire(LockRank::ShardEngine);
        // Equal rank: the migration-serialized src/tgt shard engines.
        let d = HeldRank::acquire(LockRank::ShardEngine);
        if cfg!(debug_assertions) {
            assert_eq!(held_count(), 4);
        }
        drop(c);
        drop(d);
        drop(b);
        drop(a);
        assert_eq!(held_count(), 0);
    }

    #[test]
    fn out_of_order_drop_then_reacquire_passes() {
        // The with_owned_shard retry pattern: guards released out of
        // acquisition order, then a higher rank taken fresh.
        let router = HeldRank::acquire(LockRank::Router);
        let engine = HeldRank::acquire(LockRank::ShardEngine);
        drop(router);
        drop(engine);
        let _mig = HeldRank::acquire(LockRank::Migration);
        assert!(held_count() <= 1);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "validator compiled out")]
    fn ascending_acquisition_panics() {
        let result = std::panic::catch_unwind(|| {
            let _engine = HeldRank::acquire(LockRank::ShardEngine);
            let _mig = HeldRank::acquire(LockRank::Migration);
        });
        assert!(result.is_err(), "rank 60 after rank 40 must assert");
        // The unwound guards must not leak into the thread's held set.
        assert_eq!(held_count(), 0);
    }

    #[test]
    fn ranked_wrapper_is_transparent_and_releases_on_drop() {
        let m = std::sync::Mutex::new(7u32);
        let mut g = ranked(LockRank::Registry, m.lock().unwrap());
        **g += 1;
        assert_eq!(**g, 8);
        if cfg!(debug_assertions) {
            assert_eq!(held_count(), 1);
        }
        drop(g);
        assert_eq!(held_count(), 0);
        assert!(!m.is_poisoned());
    }
}
