//! The incremental online coordination engine.
//!
//! The paper's Youtopia setting (Section 7): queries arrive online, the
//! system updates the coordination graph and evaluates only the affected
//! connected component. The pre-incremental engine recomputed the entire
//! coordination graph from scratch on every submit — O(n²) pairing work
//! over all pending queries. [`IncrementalEngine`] instead maintains
//! coordination state *across* submits:
//!
//! * a persistent [`AtomIndex`] so a new query unifies only against
//!   candidate partners (queries sharing a bucket),
//! * a [`UnionFind`] component index updated on submit (union with each
//!   candidate) and on retire (local re-partition of the survivors),
//! * pluggable component evaluation via [`ComponentEvaluator`], so this
//!   crate stays below the algorithm crate in the workspace DAG.
//!
//! Candidate discovery is conservative (bucket-level, not full
//! unification), so a maintained component is a *superset* of the true
//! weakly connected component — never a split of one. Evaluating a
//! superset is sound: extra queries were already stable (their own
//! components were evaluated when they last changed), and the evaluator
//! sees every query the true component contains.
//!
//! # Memo invalidation protocol
//!
//! Evaluators may memoize per-component results across evaluations (the
//! algorithm crate's evaluator caches closure verdicts keyed by content
//! digests of the member queries). The engine guarantees exactly one
//! invalidation signal and relies on content addressing for the rest:
//!
//! * **Submit** — a new query changes its component's membership, hence
//!   the content key of every closure containing it: stale entries are
//!   simply never looked up again. No explicit invalidation needed.
//! * **Retire** — answered queries leave the pending set forever; the
//!   engine calls [`ComponentEvaluator::note_departed`] so caches can
//!   reclaim the dead entries eagerly (an optimization — the entries
//!   could never be hit again by a correct content key).
//! * **Migration / rebalance / [`IncrementalEngine::extract_related`]**
//!   — queries stay live and unchanged, and every shard's evaluator is
//!   a clone sharing one cache, so moved components hit the same
//!   entries on their new shard. No signal is sent, deliberately.
//! * **Rollback** — a rejected submit (evaluator error) leaves the
//!   pending set untouched; any entries the failed evaluation inserted
//!   describe real closure contents and stay valid.
//! * **WAL replay** — recovery re-inserts pending queries without
//!   evaluating (`insert_pending`), so a recovered engine starts with a
//!   fresh, empty cache and rebuilds memos deterministically on first
//!   touch; replayed answers never consult a stale cache.

use crate::index::{AtomIndex, KeyPattern, Polarity};
use crate::metrics::{EngineMetrics, ShardStats};
use coord_graph::UnionFind;
use coord_obs::Tracer;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::hash::Hash;
use std::sync::Arc;

/// A query the coordination service can index and route: it declares the
/// key patterns of what it *provides* (head atoms) and *requires*
/// (postcondition atoms). Two queries may coordinate only if a required
/// pattern of one matches a provided pattern of the other (see
/// [`crate::index::AtomIndex`] for the matching rules).
pub trait CoordinationQuery: Clone {
    /// Relation symbol type.
    type Rel: Clone + Eq + Hash;
    /// Coordination-attribute constant type. `Ord` because the shared
    /// index keeps a relation's buckets sorted, making wildcard
    /// candidate enumeration deterministic.
    type Cst: Clone + Eq + Hash + Ord;

    /// Key patterns of the query's produced (head) atoms.
    fn provides(&self) -> Vec<KeyPattern<Self::Rel, Self::Cst>>;

    /// Key patterns of the query's required (postcondition) atoms.
    fn requires(&self) -> Vec<KeyPattern<Self::Rel, Self::Cst>>;
}

/// A component evaluation verdict: `Ok(Some((members, delivery)))` when a
/// coordinating set was found (member indices into the evaluated slice),
/// `Ok(None)` when nothing coordinates yet.
pub type EvalVerdict<D, E> = Result<Option<(Vec<usize>, D)>, E>;

/// Evaluates one (conservatively over-approximated) connected component
/// of pending queries and reports a coordinating set, if any.
pub trait ComponentEvaluator<Q> {
    /// What a coordinated set delivers to its submitters (e.g. answers).
    type Delivery;
    /// Evaluation failure (e.g. the component became unsafe).
    type Error;

    /// Evaluate `queries`; on success return the indices (into `queries`)
    /// of the coordinating-set members plus the delivery, or `None` if no
    /// set coordinates yet.
    fn evaluate(&self, queries: &[Q]) -> EvalVerdict<Self::Delivery, Self::Error>;

    /// Hook: `queries` were answered and permanently retired from the
    /// pending set. Evaluators that memoize across evaluations (see the
    /// memo invalidation protocol in the module docs) use this to drop
    /// cache entries naming the departed queries; the default does
    /// nothing. Only *retirement* triggers this — migration between
    /// shards and [`IncrementalEngine::extract_related`] keep queries
    /// live, and memo caches are shared by every clone of an evaluator,
    /// so moving a query never invalidates anything.
    fn note_departed(&self, _queries: &[Q]) {}
}

/// Result of one submit.
#[derive(Clone, Debug)]
pub struct SubmitOutcome<Q, D> {
    /// The delivery produced by a coordinating set, or `None` while the
    /// submitted query stays pending.
    pub delivery: Option<D>,
    /// The queries answered and removed from the pending set (possibly
    /// including the one just submitted).
    pub retired: Vec<Q>,
}

impl<Q, D> SubmitOutcome<Q, D> {
    /// Whether a coordinating set was found and delivered.
    pub fn coordinated(&self) -> bool {
        self.delivery.is_some()
    }
}

/// Result of the transitive related-component selection: the selected
/// live tokens plus the full key set they hold.
type RelatedSelection<Q> = (
    HashSet<usize>,
    Vec<KeyPattern<<Q as CoordinationQuery>::Rel, <Q as CoordinationQuery>::Cst>>,
);

/// One pending query with its cached key patterns (cached so removal
/// un-indexes exactly what insertion indexed).
struct Entry<Q: CoordinationQuery> {
    query: Q,
    provides: Vec<KeyPattern<Q::Rel, Q::Cst>>,
    requires: Vec<KeyPattern<Q::Rel, Q::Cst>>,
    /// Evaluations this query participated in while pending here — the
    /// observed-cost signal the rebalancer sums per component when
    /// picking victims. Reset when the query migrates to another shard
    /// (migration re-inserts it), which keeps the figure local to the
    /// shard being drained.
    cost: u64,
}

/// One maintained component's routing keys, membership size, and
/// observed evaluation cost — the unit the rebalancer moves.
#[derive(Clone, Debug)]
pub struct ComponentGroup<R, C> {
    /// Every key pattern held by the component's members (deduplicated).
    pub keys: Vec<KeyPattern<R, C>>,
    /// Number of pending queries in the component.
    pub size: usize,
    /// Sum of the members' evaluation-participation counts.
    pub cost: u64,
}

/// The single-writer incremental engine: one of these sits behind each
/// shard lock of a [`crate::sharded::ShardedEngine`], or can be used
/// directly for a single-threaded service.
pub struct IncrementalEngine<Q: CoordinationQuery, V> {
    evaluator: V,
    metrics: Arc<EngineMetrics>,
    /// Per-shard load sink when this engine sits behind a shard lock
    /// (`None` for standalone use): receives the evaluation-work counts
    /// the rebalancer's skew detection reads.
    shard_stats: Option<Arc<ShardStats>>,
    /// Trace sink for per-submit evaluate spans (disabled by default;
    /// the sharded engine wires its registry's tracer in).
    tracer: Tracer,
    /// Slab of pending queries; retired slots are recycled via `free`.
    slots: Vec<Option<Entry<Q>>>,
    free: Vec<usize>,
    live: usize,
    index: AtomIndex<Q::Rel, Q::Cst>,
    uf: UnionFind,
    /// Component membership: union-find root → live tokens.
    members: HashMap<usize, Vec<usize>>,
    delivered: u64,
}

impl<Q: CoordinationQuery, V: ComponentEvaluator<Q>> IncrementalEngine<Q, V> {
    /// An engine with fresh metrics.
    pub fn new(evaluator: V) -> Self {
        Self::with_metrics(evaluator, Arc::new(EngineMetrics::new()))
    }

    /// An engine reporting into shared metrics (used by the sharded
    /// engine so all shards aggregate into one set of counters).
    pub fn with_metrics(evaluator: V, metrics: Arc<EngineMetrics>) -> Self {
        IncrementalEngine {
            evaluator,
            metrics,
            shard_stats: None,
            tracer: Tracer::disabled(),
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            index: AtomIndex::new(),
            uf: UnionFind::new(0),
            members: HashMap::new(),
            delivered: 0,
        }
    }

    /// Attach a per-shard load sink: evaluation work performed by this
    /// engine is also recorded there (used by the sharded engine so the
    /// rebalancer can see *which* shard the work landed on).
    pub fn set_shard_stats(&mut self, stats: Arc<ShardStats>) {
        self.shard_stats = Some(stats);
    }

    /// Attach a trace sink: each submit's component evaluation becomes
    /// a `evaluate` begin/end span in the ring.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Number of pending queries.
    pub fn pending_count(&self) -> usize {
        self.live
    }

    /// Pending queries in slot order.
    pub fn pending(&self) -> impl Iterator<Item = &Q> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref())
            .map(|e| &e.query)
    }

    /// Total queries answered and retired.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of maintained (conservative) connected components.
    pub fn component_count(&self) -> usize {
        self.members.len()
    }

    /// The engine's metrics handle.
    pub fn metrics(&self) -> &Arc<EngineMetrics> {
        &self.metrics
    }

    /// Submit a new query: look up candidate partners through the atom
    /// index, evaluate the (incrementally maintained) component the query
    /// would join, and — if a coordinating set is found — deliver and
    /// retire its members, re-partitioning the survivors locally.
    ///
    /// On evaluator error the query is rejected and the pending set is
    /// left untouched (evaluation happens *before* the state commits).
    // lint: scans-slabs
    pub fn submit(&mut self, query: Q) -> Result<SubmitOutcome<Q, V::Delivery>, V::Error> {
        EngineMetrics::add(&self.metrics.submits, 1);
        let provides = query.provides();
        let requires = query.requires();
        let (candidates, examined) = self.index.candidates(&provides, &requires);
        EngineMetrics::add(&self.metrics.pairings_checked, examined);

        // The component the query joins: every candidate's current
        // component, merged. (Computed read-only so a rejection leaves no
        // trace.)
        let roots: BTreeSet<usize> = candidates.iter().map(|&c| self.uf.find(c)).collect();
        let mut tokens: Vec<usize> = Vec::new();
        for r in &roots {
            tokens.extend_from_slice(&self.members[r]);
        }

        let mut batch: Vec<Q> = tokens
            .iter()
            .map(|&t| {
                self.slots[t]
                    .as_ref()
                    .expect("member token is live")
                    .query
                    .clone()
            })
            .collect();
        batch.push(query.clone());

        EngineMetrics::add(&self.metrics.queries_evaluated, batch.len() as u64);
        if let Some(stats) = &self.shard_stats {
            EngineMetrics::add(&stats.eval_queries, batch.len() as u64);
        }
        EngineMetrics::add(
            &self.metrics.rebuild_avoided,
            (self.live + 1 - batch.len()) as u64,
        );
        EngineMetrics::add(&self.metrics.evaluations, 1);

        let verdict = {
            // The evaluate span carries the submit's request id (the
            // sharded layer installed it as the thread's current
            // context); a bare engine with no enclosing ticket records
            // id 0 as before.
            let _span = self
                .tracer
                .begin_in(coord_obs::TraceCtx::current(), "evaluate");
            self.evaluator.evaluate(&batch)?
        };

        // Commit: insert the query and link it with every candidate;
        // every evaluated member's observed cost grows by one.
        for &t in &tokens {
            self.slots[t].as_mut().expect("member token is live").cost += 1;
        }
        let token = self.insert(query, provides, requires);
        self.slots[token].as_mut().expect("just inserted").cost += 1;
        for &c in &candidates {
            self.link(token, c);
        }

        match verdict {
            None => Ok(SubmitOutcome {
                delivery: None,
                retired: Vec::new(),
            }),
            Some((set, delivery)) => {
                // Batch order was `tokens` then the new query.
                let retired_tokens: Vec<usize> = set
                    .iter()
                    .map(|&i| if i < tokens.len() { tokens[i] } else { token })
                    .collect();
                let retired = self.retire(&retired_tokens);
                self.delivered += retired.len() as u64;
                EngineMetrics::add(&self.metrics.delivered, retired.len() as u64);
                Ok(SubmitOutcome {
                    delivery: Some(delivery),
                    retired,
                })
            }
        }
    }

    /// Insert a query that is already known to be stable-pending, linking
    /// it into the component index without evaluating. Used when a
    /// cross-shard merge migrates queries between shards: linked pairs
    /// are always co-sharded, so migrated queries cannot newly coordinate
    /// until a later submit touches their component.
    // lint: scans-slabs
    pub fn insert_pending(&mut self, query: Q) {
        let provides = query.provides();
        let requires = query.requires();
        let (candidates, examined) = self.index.candidates(&provides, &requires);
        EngineMetrics::add(&self.metrics.pairings_checked, examined);
        let token = self.insert(query, provides, requires);
        for &c in &candidates {
            self.link(token, c);
        }
    }

    /// The transitive selection shared by [`Self::extract_related`] and
    /// [`Self::related_keys`]: every live token in a component holding a
    /// key related to `seed`, plus the full key set those tokens hold
    /// (seeded with `seed` itself). `&mut` only for union-find path
    /// compression — the engine's observable state is untouched.
    fn select_related(&mut self, seed: &[KeyPattern<Q::Rel, Q::Cst>]) -> RelatedSelection<Q> {
        let mut keys: Vec<KeyPattern<Q::Rel, Q::Cst>> = seed.to_vec();
        let mut selected: HashSet<usize> = HashSet::new();
        loop {
            let mut newly: Vec<usize> = Vec::new();
            for (t, slot) in self.slots.iter().enumerate() {
                let Some(e) = slot else { continue };
                if selected.contains(&t) {
                    continue;
                }
                let hit = e
                    .provides
                    .iter()
                    .chain(&e.requires)
                    .any(|k| keys.iter().any(|s| crate::index::keys_related(s, k)));
                if hit {
                    newly.push(t);
                }
            }
            if newly.is_empty() {
                break;
            }
            // Expand to whole components and grow the key set.
            for t in newly {
                let root = self.uf.find(t);
                let members = self.members[&root].clone();
                for m in members {
                    if selected.insert(m) {
                        let e = self.slots[m].as_ref().expect("member token is live");
                        for k in e.provides.iter().chain(&e.requires) {
                            if !keys.contains(k) {
                                keys.push(k.clone());
                            }
                        }
                    }
                }
            }
        }
        (selected, keys)
    }

    /// Every maintained component's routing keys, size, and observed
    /// evaluation cost. The sharded engine's rebalancer scans the hot
    /// shard with this — under that shard's lock only — to pick victim
    /// groups by cost. Ordered by component root token so victim
    /// selection (and therefore single-threaded rebalancing) is
    /// deterministic.
    // lint: scans-slabs
    pub fn component_groups(&self) -> Vec<ComponentGroup<Q::Rel, Q::Cst>> {
        let mut roots: Vec<usize> = self.members.keys().copied().collect();
        roots.sort_unstable();
        roots
            .into_iter()
            .map(|root| {
                let members = &self.members[&root];
                let mut keys: Vec<KeyPattern<Q::Rel, Q::Cst>> = Vec::new();
                let mut cost = 0u64;
                for &m in members {
                    let e = self.slots[m].as_ref().expect("member token is live");
                    cost += e.cost;
                    for k in e.provides.iter().chain(&e.requires) {
                        if !keys.contains(k) {
                            keys.push(k.clone());
                        }
                    }
                }
                ComponentGroup {
                    keys,
                    size: members.len(),
                    cost,
                }
            })
            .collect()
    }

    /// The full key set held by components related — transitively over
    /// shared keys — to `seed`, including `seed` itself, without removing
    /// anything. The sharded engine's migration protocol uses this to
    /// freeze (mark) a component group's complete key closure *before*
    /// extracting it, so the router write lock never has to be held
    /// across the slab scan.
    // lint: scans-slabs
    pub fn related_keys(
        &mut self,
        seed: &[KeyPattern<Q::Rel, Q::Cst>],
    ) -> Vec<KeyPattern<Q::Rel, Q::Cst>> {
        self.select_related(seed).1
    }

    /// Remove and return every query in a component holding a key related
    /// to `seed` — *transitively*: keys of extracted queries join the
    /// working set, so all holders of every affected key leave together
    /// (the invariant cross-shard routing relies on).
    // lint: scans-slabs
    pub fn extract_related(&mut self, seed: &[KeyPattern<Q::Rel, Q::Cst>]) -> Vec<Q> {
        let (selected, _keys) = self.select_related(seed);

        // Selected tokens are whole components: drop them wholesale.
        let roots: BTreeSet<usize> = selected.iter().map(|&t| self.uf.find(t)).collect();
        for r in roots {
            self.members.remove(&r);
        }
        let mut out = Vec::with_capacity(selected.len());
        let mut tokens: Vec<usize> = selected.into_iter().collect();
        tokens.sort_unstable();
        for t in tokens {
            let e = self.slots[t].take().expect("selected token is live");
            self.unindex(t, &e);
            self.free.push(t);
            self.live -= 1;
            out.push(e.query);
        }
        out
    }

    /// Check internal consistency (slab, index, union-find, membership).
    /// Cheap enough for a service health endpoint; the property tests
    /// call it after every submit.
    ///
    /// # Panics
    /// Panics with a description if an invariant is violated.
    pub fn validate_invariants(&mut self) {
        let live_tokens: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(t, s)| s.as_ref().map(|_| t))
            .collect();
        assert_eq!(live_tokens.len(), self.live, "live count drifted");
        let freed: HashSet<usize> = self.free.iter().copied().collect();
        assert_eq!(freed.len(), self.free.len(), "free list has duplicates");
        for &t in &live_tokens {
            assert!(!freed.contains(&t), "token {t} both live and free");
        }

        // `members` partitions the live tokens by union-find root.
        let mut seen: HashSet<usize> = HashSet::new();
        for (&root, members) in &self.members {
            assert!(!members.is_empty(), "empty component {root}");
            for &m in members {
                assert!(self.slots[m].is_some(), "member {m} not live");
                assert!(seen.insert(m), "token {m} in two components");
                assert_eq!(
                    self.uf.find(m),
                    self.uf.find(root),
                    "member {m} root drifted"
                );
            }
        }
        assert_eq!(seen.len(), self.live, "components do not cover pending");
    }

    fn insert(
        &mut self,
        query: Q,
        provides: Vec<KeyPattern<Q::Rel, Q::Cst>>,
        requires: Vec<KeyPattern<Q::Rel, Q::Cst>>,
    ) -> usize {
        let token = match self.free.pop() {
            Some(t) => {
                // A recycled slot: make it a singleton again (sound: no
                // live element has a freed token as union-find parent).
                self.uf.reset(&[t]);
                t
            }
            None => {
                self.slots.push(None);
                self.uf.push()
            }
        };
        for k in &provides {
            self.index.insert(token, Polarity::Provides, k);
        }
        for k in &requires {
            self.index.insert(token, Polarity::Requires, k);
        }
        self.slots[token] = Some(Entry {
            query,
            provides,
            requires,
            cost: 0,
        });
        self.members.insert(token, vec![token]);
        self.live += 1;
        token
    }

    fn unindex(&mut self, token: usize, entry: &Entry<Q>) {
        for k in &entry.provides {
            self.index.remove(token, Polarity::Provides, k);
        }
        for k in &entry.requires {
            self.index.remove(token, Polarity::Requires, k);
        }
    }

    /// Union the components of `a` and `b`, merging membership lists.
    fn link(&mut self, a: usize, b: usize) {
        let ra = self.uf.find(a);
        let rb = self.uf.find(b);
        if ra == rb {
            return;
        }
        let winner = self.uf.union(ra, rb).expect("distinct roots merge");
        let loser = if winner == ra { rb } else { ra };
        let mut moved = self.members.remove(&loser).expect("loser had members");
        self.members
            .get_mut(&winner)
            .expect("winner has members")
            .append(&mut moved);
    }

    /// Remove the retired tokens and locally re-partition the surviving
    /// members of the affected components: survivors are reset to
    /// singletons and re-linked through the index — work bounded by the
    /// component size, not the pending-set size.
    fn retire(&mut self, retired: &[usize]) -> Vec<Q> {
        let roots: BTreeSet<usize> = retired.iter().map(|&t| self.uf.find(t)).collect();
        let mut affected: Vec<usize> = Vec::new();
        for r in &roots {
            affected.extend(self.members.remove(r).expect("affected root has members"));
        }
        let retired_set: HashSet<usize> = retired.iter().copied().collect();
        let survivors: Vec<usize> = affected
            .iter()
            .copied()
            .filter(|t| !retired_set.contains(t))
            .collect();

        let mut out = Vec::with_capacity(retired.len());
        for &t in retired {
            let e = self.slots[t].take().expect("retired token is live");
            self.unindex(t, &e);
            self.free.push(t);
            self.live -= 1;
            out.push(e.query);
        }

        if !survivors.is_empty() {
            EngineMetrics::add(&self.metrics.repartitions, 1);
            // `affected` is the complete membership of the affected
            // components (closed under union-find parents), so resetting
            // it wholesale is sound.
            self.uf.reset(&affected);
            for &s in &survivors {
                self.members.insert(s, vec![s]);
            }
            for &s in &survivors {
                let (candidates, examined) = {
                    let e = self.slots[s].as_ref().expect("survivor is live");
                    self.index.candidates(&e.provides, &e.requires)
                };
                EngineMetrics::add(&self.metrics.pairings_checked, examined);
                for c in candidates {
                    if c != s {
                        self.link(s, c);
                    }
                }
            }
        }
        self.evaluator.note_departed(&out);
        out
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// A synthetic query for engine-level tests: coordination structure
    /// without any database semantics.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub(crate) struct TestQuery {
        pub name: String,
        pub provides: Vec<(&'static str, Option<i64>)>,
        pub requires: Vec<(&'static str, Option<i64>)>,
    }

    impl TestQuery {
        pub fn new(
            name: impl Into<String>,
            provides: Vec<(&'static str, Option<i64>)>,
            requires: Vec<(&'static str, Option<i64>)>,
        ) -> Self {
            TestQuery {
                name: name.into(),
                provides,
                requires,
            }
        }
    }

    impl CoordinationQuery for TestQuery {
        type Rel = &'static str;
        type Cst = i64;
        fn provides(&self) -> Vec<KeyPattern<&'static str, i64>> {
            self.provides.clone()
        }
        fn requires(&self) -> Vec<KeyPattern<&'static str, i64>> {
            self.requires.clone()
        }
    }

    /// Coordinates a component exactly when every required key is matched
    /// by some provided key within it (a miniature of the paper's
    /// semantics, enough to exercise the engine's bookkeeping).
    #[derive(Clone)]
    pub(crate) struct SaturationEvaluator;

    impl ComponentEvaluator<TestQuery> for SaturationEvaluator {
        type Delivery = Vec<String>;
        type Error = String;
        fn evaluate(
            &self,
            queries: &[TestQuery],
        ) -> Result<Option<(Vec<usize>, Vec<String>)>, String> {
            let provided: Vec<_> = queries.iter().flat_map(|q| q.provides.clone()).collect();
            let satisfied = |q: &TestQuery| {
                q.requires
                    .iter()
                    .all(|r| provided.iter().any(|p| crate::index::keys_related(p, r)))
            };
            if queries.iter().all(satisfied) {
                let names = queries.iter().map(|q| q.name.clone()).collect();
                Ok(Some(((0..queries.len()).collect(), names)))
            } else {
                Ok(None)
            }
        }
    }

    fn chain_query(i: i64, next: Option<i64>) -> TestQuery {
        let requires = next.map(|n| ("R", Some(n))).into_iter().collect();
        TestQuery::new(format!("q{i}"), vec![("R", Some(i))], requires)
    }

    #[test]
    fn chain_coordinates_when_complete() {
        let mut engine = IncrementalEngine::new(SaturationEvaluator);
        // q0 → q1 → q2; nothing coordinates until q2 (free) arrives.
        let r0 = engine.submit(chain_query(0, Some(1))).unwrap();
        assert!(!r0.coordinated());
        let r1 = engine.submit(chain_query(1, Some(2))).unwrap();
        assert!(!r1.coordinated());
        assert_eq!(engine.pending_count(), 2);
        assert_eq!(engine.component_count(), 1);
        engine.validate_invariants();

        let r2 = engine.submit(chain_query(2, None)).unwrap();
        assert!(r2.coordinated());
        assert_eq!(r2.retired.len(), 3);
        assert_eq!(engine.pending_count(), 0);
        assert_eq!(engine.delivered(), 3);
        engine.validate_invariants();
    }

    #[test]
    fn disjoint_components_stay_disjoint() {
        let mut engine = IncrementalEngine::new(SaturationEvaluator);
        engine.submit(chain_query(0, Some(1))).unwrap();
        engine.submit(chain_query(10, Some(11))).unwrap();
        assert_eq!(engine.component_count(), 2);
        // Completing the second chain retires it without touching the
        // first.
        let r = engine.submit(chain_query(11, None)).unwrap();
        assert!(r.coordinated());
        assert_eq!(engine.pending_count(), 1);
        assert_eq!(engine.pending().next().unwrap().name, "q0");
        engine.validate_invariants();
    }

    #[test]
    fn per_submit_work_tracks_component_not_pending() {
        let mut engine = IncrementalEngine::new(SaturationEvaluator);
        // 30 disjoint waiting pairs: every submit evaluates at most 2
        // queries even as pending grows.
        for i in 0..30 {
            engine
                .submit(chain_query(10 * i, Some(10 * i + 1)))
                .unwrap();
            engine
                .submit(chain_query(10 * i + 1, Some(10 * i + 2)))
                .unwrap();
        }
        assert_eq!(engine.pending_count(), 60);
        let snap = engine.metrics().snapshot();
        assert_eq!(snap.submits, 60);
        // Each submit evaluated its own (≤2-query) component only.
        assert!(snap.evaluated_per_submit() <= 2.0, "{snap:?}");
        // A full-rebuild engine would have looked at Σ pending ≈ 60²/2.
        assert!(snap.rebuild_avoided > 1500, "{snap:?}");
        engine.validate_invariants();
    }

    #[test]
    fn evaluator_error_rejects_without_state_change() {
        struct FailOn(&'static str);
        impl ComponentEvaluator<TestQuery> for FailOn {
            type Delivery = ();
            type Error = String;
            fn evaluate(&self, queries: &[TestQuery]) -> Result<Option<(Vec<usize>, ())>, String> {
                if queries.iter().any(|q| q.name == self.0) {
                    Err(format!("query {} poisons the component", self.0))
                } else {
                    Ok(None)
                }
            }
        }
        let mut engine = IncrementalEngine::new(FailOn("bad"));
        engine
            .submit(TestQuery::new(
                "ok",
                vec![("R", Some(1))],
                vec![("R", Some(2))],
            ))
            .unwrap();
        let err = engine
            .submit(TestQuery::new("bad", vec![("R", Some(2))], vec![]))
            .unwrap_err();
        assert!(err.contains("bad"));
        assert_eq!(engine.pending_count(), 1);
        assert_eq!(engine.component_count(), 1);
        engine.validate_invariants();
        // The survivor is untouched and can still link with a later
        // arrival.
        engine
            .submit(TestQuery::new(
                "later",
                vec![("R", Some(3))],
                vec![("R", Some(1))],
            ))
            .unwrap();
        assert_eq!(engine.component_count(), 1);
    }

    #[test]
    fn retirement_repartitions_survivors() {
        // One component where a sub-chain retires and the leftover splits
        // into two separate components.
        struct RetireSub;
        impl ComponentEvaluator<TestQuery> for RetireSub {
            type Delivery = ();
            type Error = String;
            fn evaluate(&self, queries: &[TestQuery]) -> Result<Option<(Vec<usize>, ())>, String> {
                // Retire the "hub" and everything named `done*` once the
                // hub is present.
                let retire: Vec<usize> = queries
                    .iter()
                    .enumerate()
                    .filter(|(_, q)| q.name == "hub" || q.name.starts_with("done"))
                    .map(|(i, _)| i)
                    .collect();
                if queries.iter().any(|q| q.name == "hub") {
                    Ok(Some((retire, ())))
                } else {
                    Ok(None)
                }
            }
        }
        let mut engine = IncrementalEngine::new(RetireSub);
        // left requires hub; right requires hub; done0 requires hub.
        // After hub (+done0) retire, left and right no longer share a
        // partner → two singleton components.
        engine
            .submit(TestQuery::new(
                "left",
                vec![("R", Some(1))],
                vec![("H", Some(0))],
            ))
            .unwrap();
        engine
            .submit(TestQuery::new(
                "right",
                vec![("R", Some(2))],
                vec![("H", Some(0))],
            ))
            .unwrap();
        engine
            .submit(TestQuery::new(
                "done0",
                vec![("D", Some(0))],
                vec![("H", Some(0))],
            ))
            .unwrap();
        // Requiring the same key does not link queries by itself — the
        // three waiters are separate components until the hub provides it.
        assert_eq!(engine.component_count(), 3);
        let r = engine
            .submit(TestQuery::new("hub", vec![("H", Some(0))], vec![]))
            .unwrap();
        assert!(r.coordinated());
        assert_eq!(
            r.retired
                .iter()
                .map(|q| q.name.as_str())
                .collect::<Vec<_>>(),
            vec!["done0", "hub"]
        );
        assert_eq!(engine.pending_count(), 2);
        // Survivors re-partitioned: left and right are now separate
        // components (their only shared neighbour is gone).
        assert_eq!(engine.component_count(), 2);
        assert_eq!(engine.metrics().snapshot().repartitions, 1);
        engine.validate_invariants();
    }

    #[test]
    fn slots_are_recycled_after_retirement() {
        let mut engine = IncrementalEngine::new(SaturationEvaluator);
        for round in 0..5 {
            engine.submit(chain_query(0, Some(1))).unwrap();
            let r = engine.submit(chain_query(1, None)).unwrap();
            assert!(r.coordinated(), "round {round}");
            engine.validate_invariants();
        }
        // Five rounds of two queries reused the same two slots.
        assert!(engine.slots.len() <= 2);
        assert_eq!(engine.delivered(), 10);
    }

    #[test]
    fn extract_related_moves_whole_key_groups_transitively() {
        let mut engine = IncrementalEngine::new(SaturationEvaluator);
        // x holds keys A and B; y holds only B; z is unrelated.
        engine
            .submit(TestQuery::new(
                "x",
                vec![("A", Some(1))],
                vec![("B", Some(1))],
            ))
            .unwrap();
        engine
            .submit(TestQuery::new("y", vec![], vec![("B", Some(1))]))
            .unwrap();
        engine
            .submit(TestQuery::new(
                "z",
                vec![("C", Some(9))],
                vec![("C", Some(8))],
            ))
            .unwrap();
        // Seeding with key A must transitively drag y along (via B).
        let moved = engine.extract_related(&[("A", Some(1))]);
        let mut names: Vec<&str> = moved.iter().map(|q| q.name.as_str()).collect();
        names.sort_unstable();
        assert_eq!(names, vec!["x", "y"]);
        assert_eq!(engine.pending_count(), 1);
        engine.validate_invariants();
    }

    #[test]
    fn component_groups_report_keys_size_and_observed_cost() {
        let mut engine = IncrementalEngine::new(SaturationEvaluator);
        // A 3-member chain: each submit evaluates the growing component,
        // so costs accumulate 1, 2, 3 across members → 6 total.
        engine.submit(chain_query(0, Some(1))).unwrap();
        engine.submit(chain_query(1, Some(2))).unwrap();
        engine.submit(chain_query(2, Some(3))).unwrap();
        // A never-evaluated singleton has cost 1 (its own submit).
        engine.submit(chain_query(50, Some(51))).unwrap();
        let mut groups = engine.component_groups();
        groups.sort_by_key(|g| g.size);
        assert_eq!(groups.len(), 2);
        assert_eq!((groups[0].size, groups[0].cost), (1, 1));
        assert_eq!((groups[1].size, groups[1].cost), (3, 6));
        assert!(groups[1].keys.contains(&("R", Some(0))));
        assert!(groups[1].keys.contains(&("R", Some(3))));
        // insert_pending (a migration arrival) starts cost back at 0.
        engine.insert_pending(chain_query(90, None));
        let fresh = engine
            .component_groups()
            .into_iter()
            .find(|g| g.keys.contains(&("R", Some(90))))
            .unwrap();
        assert_eq!(fresh.cost, 0);
    }

    #[test]
    fn insert_pending_links_without_evaluating() {
        let mut engine = IncrementalEngine::new(SaturationEvaluator);
        // A free query inserted as already-pending must NOT coordinate on
        // insertion (that is the migration contract)…
        engine.insert_pending(chain_query(1, None));
        assert_eq!(engine.pending_count(), 1);
        assert_eq!(engine.delivered(), 0);
        // …but the next submit touching its component evaluates it.
        let r = engine.submit(chain_query(0, Some(1))).unwrap();
        assert!(r.coordinated());
        assert_eq!(r.retired.len(), 2);
    }
}
