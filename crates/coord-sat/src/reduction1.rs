//! Theorem 1: `Entangled(Q_all)` is NP-complete, even when every
//! conjunctive query over the database is polynomial-time decidable.
//!
//! The construction encodes a 3SAT formula `C = {C_1, ..., C_k}` over
//! variables `x_1, ..., x_m` as entangled queries over a database with a
//! single unary relation `D = {0, 1}`:
//!
//! ```text
//! Clause-Query:  {C_1(1), ..., C_k(1)}  C(1)    :- ∅
//! x_i-Val:       {C(1)}                 R_i(x)  :- D(x)
//! x_i-True:      {R_i(1)}   ∧_{j: x_i ∈ C_j}  C_j(1)  :- ∅
//! x_i-False:     {R_i(0)}   ∧_{j: ¬x_i ∈ C_j} C_j(1)  :- ∅
//! ```
//!
//! `C` is satisfiable iff the instance has a coordinating set
//! (Appendix A). The crucial mechanics: at most one of `x_i-True` /
//! `x_i-False` can coordinate, because both postconditions must ground
//! against the *single* head `R_i(x)` of `x_i-Val`, forcing `x = 1` and
//! `x = 0` simultaneously.

use crate::cnf::Cnf;
use coord_core::{EntangledQuery, QueryBuilder};
use coord_db::{Database, Value};

/// The reduced instance: a query set and a two-value database.
pub struct Reduction1 {
    pub queries: Vec<EntangledQuery>,
    pub db: Database,
}

/// Index bookkeeping for interpreting coordinating sets back as truth
/// assignments.
impl Reduction1 {
    /// Index of the Clause-Query (always 0).
    pub fn clause_query(&self) -> usize {
        0
    }

    /// Index of `x_i-Val`.
    pub fn val_query(&self, i: usize) -> usize {
        1 + 3 * i
    }

    /// Index of `x_i-True`.
    pub fn true_query(&self, i: usize) -> usize {
        2 + 3 * i
    }

    /// Index of `x_i-False`.
    pub fn false_query(&self, i: usize) -> usize {
        3 + 3 * i
    }
}

/// Build the Theorem 1 instance for `formula`.
pub fn reduce(formula: &Cnf) -> Reduction1 {
    let mut db = Database::new();
    db.create_table("D", &["v"]).expect("fresh database");
    db.insert("D", vec![Value::int(0)]).expect("insert 0");
    db.insert("D", vec![Value::int(1)]).expect("insert 1");

    let mut queries = Vec::with_capacity(1 + 3 * formula.n_vars);

    // Clause-Query: {C_1(1), ..., C_k(1)} C(1) :- ∅.
    let mut cq = QueryBuilder::new("Clause-Query");
    for j in 0..formula.n_clauses() {
        cq = cq.postcondition(format!("C{}", j + 1), |a| a.constant(1i64));
    }
    queries.push(
        cq.head("C", |a| a.constant(1i64))
            .build()
            .expect("clause query"),
    );

    for i in 0..formula.n_vars {
        // x_i-Val: {C(1)} R_i(x) :- D(x).
        queries.push(
            QueryBuilder::new(format!("x{}-Val", i + 1))
                .postcondition("C", |a| a.constant(1i64))
                .head(format!("R{}", i + 1), |a| a.var("x"))
                .body("D", |a| a.var("x"))
                .build()
                .expect("val query"),
        );
        // x_i-True / x_i-False. If a polarity appears in no clause, the
        // query would have no heads (ill-formed), so we add an inert
        // witness head T_i(1) / F_i(1) that nothing requires — it cannot
        // affect any other query's coordination.
        for (polarity, tag) in [(true, "True"), (false, "False")] {
            let mut b = QueryBuilder::new(format!("x{}-{tag}", i + 1));
            b = b.postcondition(format!("R{}", i + 1), |a| a.constant(i64::from(polarity)));
            let mut any_head = false;
            for (j, clause) in formula.clauses.iter().enumerate() {
                if clause
                    .0
                    .iter()
                    .any(|l| l.var == i && l.positive == polarity)
                {
                    b = b.head(format!("C{}", j + 1), |a| a.constant(1i64));
                    any_head = true;
                }
            }
            if !any_head {
                let witness = if polarity {
                    format!("T{}", i + 1)
                } else {
                    format!("F{}", i + 1)
                };
                b = b.head(witness, |a| a.constant(1i64));
            }
            queries.push(b.build().expect("literal query"));
        }
    }

    Reduction1 { queries, db }
}

/// Extract the truth assignment encoded by a coordinating set: `x_i` is
/// true iff `x_i-True` is a member (variables with neither literal query
/// in the set default to true, as in the Appendix A proof).
pub fn decode_assignment(r: &Reduction1, formula: &Cnf, members: &[usize]) -> Vec<bool> {
    (0..formula.n_vars)
        .map(|i| {
            if members.contains(&r.false_query(i)) {
                false
            } else {
                true // includes the explicit x_i-True case
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::{Clause, Lit};
    use crate::dpll;
    use crate::gen::random_3sat;
    use coord_core::bruteforce;
    use rand::prelude::*;

    #[test]
    fn instance_shape() {
        let f = Cnf::new(2, vec![Clause(vec![Lit::pos(0), Lit::neg(1)])]);
        let r = reduce(&f);
        assert_eq!(r.queries.len(), 1 + 3 * 2);
        // Database is exactly {D(0), D(1)}.
        assert_eq!(r.db.tuple_count(), 2);
    }

    #[test]
    fn satisfiable_formula_has_coordinating_set() {
        // (x1 ∨ ¬x2 ∨ x1): satisfiable.
        let f = Cnf::new(2, vec![Clause(vec![Lit::pos(0), Lit::neg(1)])]);
        let r = reduce(&f);
        let res = bruteforce::any_coordinating_set(&r.db, &r.queries).unwrap();
        let best = res.best.expect("coordinating set must exist");
        // Decode and check it satisfies the formula.
        let members: Vec<usize> = best.queries.iter().map(|q| q.index()).collect();
        let assignment = decode_assignment(&r, &f, &members);
        assert!(f.satisfied_by(&assignment));
    }

    #[test]
    fn unsatisfiable_formula_has_none() {
        // (x1) ∧ (¬x1) as width-1 clauses.
        let f = Cnf::new(
            1,
            vec![Clause(vec![Lit::pos(0)]), Clause(vec![Lit::neg(0)])],
        );
        let r = reduce(&f);
        let res = bruteforce::any_coordinating_set(&r.db, &r.queries).unwrap();
        assert!(
            res.best.is_none(),
            "UNSAT formula must yield no coordinating set"
        );
    }

    #[test]
    fn reduction_agrees_with_dpll_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(99);
        for _case in 0..12 {
            let n = rng.random_range(1..4usize);
            let k = rng.random_range(1..4usize);
            let f = random_3sat(n, k, &mut rng);
            let r = reduce(&f);
            let entangled_sat = bruteforce::any_coordinating_set(&r.db, &r.queries)
                .unwrap()
                .best
                .is_some();
            let sat = dpll::solve(&f).is_some();
            assert_eq!(entangled_sat, sat, "disagreement on {f}");
        }
    }

    #[test]
    fn both_literal_queries_cannot_coexist() {
        // Force a set containing x1-True and x1-False: it must fail.
        let f = Cnf::new(
            1,
            vec![Clause(vec![Lit::pos(0)]), Clause(vec![Lit::neg(0)])],
        );
        let r = reduce(&f);
        // Full set: Clause-Query, x1-Val, x1-True, x1-False.
        let qs = coord_core::QuerySet::new(r.queries.clone());
        let all: Vec<coord_core::QueryId> = qs.ids().collect();
        let mut tried = 0;
        let res = bruteforce::coordinate_subset(&r.db, &qs, &all, &mut tried).unwrap();
        assert!(res.is_none());
    }
}
