//! Appendix B: relaxing the Consistent-Coordination fragment brings back
//! NP-hardness.
//!
//! Section 5's Consistent Coordination Algorithm requires *all* users to
//! coordinate on the *same* attribute set `A`. Appendix B shows the
//! smallest relaxation — some queries coordinating on attribute `A_0`
//! (the flight date) and some on `A_0, A_1` — already encodes 3SAT:
//!
//! ```text
//! qC:   {R(y_1, C_1), ..., R(y_k, C_k)}  R(x, C)   :- Fl(x, 1MAR), ∧_i Fl(y_i, 1MAR)
//! qCj:  {R(y, f)}                        R(x, C_j) :- Fr(C_j, f), Fl(x, 1MAR), Fl(y, d)
//! qXi:  {R(y, S_i)}                      R(x, X_i) :- Fl(x, 1MAR), Fl(y, 1MAR)
//! qX*i: {R(y, S_i)}                      R(x, X*_i):- Fl(x, 2MAR), Fl(y, 2MAR)
//! Si:   {R(y, C)}                        R(x, S_i) :- Fl(x, d), Fl(y, d')
//! ```
//!
//! `Fr` lists, for each clause, the literals that can satisfy it. The
//! "selection gadget" `S_i` forces at most one of `qX_i` / `qX*_i` to
//! coordinate: both postconditions must ground to `S_i`'s single head,
//! but their bodies put the witnessed flight on different dates.
//! A coordinating set exists iff the formula is satisfiable.

use crate::cnf::Cnf;
use coord_core::{EntangledQuery, QueryBuilder};
use coord_db::{Database, Value};

/// The reduced instance.
pub struct ReductionB {
    pub queries: Vec<EntangledQuery>,
    pub db: Database,
}

/// Build the Appendix B instance for `formula`.
pub fn reduce(formula: &Cnf) -> ReductionB {
    let mut db = Database::new();
    db.create_table("Fl", &["id", "date"])
        .expect("fresh database");
    // A couple of flights per date (ids are unique across dates, so no
    // flight exists on both days — the selection gadget depends on this).
    db.insert("Fl", vec![Value::int(1), Value::str("1MAR")])
        .expect("insert");
    db.insert("Fl", vec![Value::int(2), Value::str("1MAR")])
        .expect("insert");
    db.insert("Fl", vec![Value::int(3), Value::str("2MAR")])
        .expect("insert");
    db.insert("Fl", vec![Value::int(4), Value::str("2MAR")])
        .expect("insert");

    // Fr: clause → the literal names that satisfy it.
    db.create_table("Fr", &["clause", "literal"])
        .expect("fresh table");
    for (j, clause) in formula.clauses.iter().enumerate() {
        for lit in &clause.0 {
            let lit_name = if lit.positive {
                format!("X{}", lit.var + 1)
            } else {
                format!("X*{}", lit.var + 1)
            };
            db.insert(
                "Fr",
                vec![Value::str(format!("C{}", j + 1)), Value::str(lit_name)],
            )
            .expect("insert friend");
        }
    }

    let mut queries = Vec::new();

    // qC: requires every clause to be witnessed.
    let mut qc = QueryBuilder::new("qC");
    for j in 0..formula.n_clauses() {
        let yj = format!("y{}", j + 1);
        qc = qc.postcondition("R", |a| a.var(&yj).constant(format!("C{}", j + 1)));
    }
    qc = qc.head("R", |a| a.var("x").constant("C"));
    qc = qc.body("Fl", |a| a.var("x").constant("1MAR"));
    for j in 0..formula.n_clauses() {
        let yj = format!("y{}", j + 1);
        qc = qc.body("Fl", |a| a.var(&yj).constant("1MAR"));
    }
    queries.push(qc.build().expect("qC"));

    // qCj: each clause wants one satisfying literal ("friend").
    for j in 0..formula.n_clauses() {
        queries.push(
            QueryBuilder::new(format!("qC{}", j + 1))
                .postcondition("R", |a| a.var("y").var("f"))
                .head("R", |a| a.var("x").constant(format!("C{}", j + 1)))
                .body("Fr", |a| a.constant(format!("C{}", j + 1)).var("f"))
                .body("Fl", |a| a.var("x").constant("1MAR"))
                .body("Fl", |a| a.var("y").var("d"))
                .build()
                .expect("clause query"),
        );
    }

    // Literal queries and selection gadgets.
    for i in 0..formula.n_vars {
        queries.push(
            QueryBuilder::new(format!("qX{}", i + 1))
                .postcondition("R", |a| a.var("y").constant(format!("S{}", i + 1)))
                .head("R", |a| a.var("x").constant(format!("X{}", i + 1)))
                .body("Fl", |a| a.var("x").constant("1MAR"))
                .body("Fl", |a| a.var("y").constant("1MAR"))
                .build()
                .expect("positive literal query"),
        );
        queries.push(
            QueryBuilder::new(format!("qX*{}", i + 1))
                .postcondition("R", |a| a.var("y").constant(format!("S{}", i + 1)))
                .head("R", |a| a.var("x").constant(format!("X*{}", i + 1)))
                .body("Fl", |a| a.var("x").constant("2MAR"))
                .body("Fl", |a| a.var("y").constant("2MAR"))
                .build()
                .expect("negative literal query"),
        );
        queries.push(
            QueryBuilder::new(format!("S{}", i + 1))
                .postcondition("R", |a| a.var("y").constant("C"))
                .head("R", |a| a.var("x").constant(format!("S{}", i + 1)))
                .body("Fl", |a| a.var("x").var("d"))
                .body("Fl", |a| a.var("y").var("dp"))
                .build()
                .expect("selection gadget"),
        );
    }

    ReductionB { queries, db }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::{Clause, Lit};
    use coord_core::bruteforce;
    use coord_core::graphs::is_safe;
    use coord_core::QuerySet;

    #[test]
    fn instance_is_unsafe() {
        // qCj's postcondition R(y, f) has a variable partner: it unifies
        // with every literal head — the construction is deliberately
        // outside the safe fragment.
        let f = Cnf::new(1, vec![Clause(vec![Lit::pos(0)])]);
        let r = reduce(&f);
        assert!(!is_safe(&QuerySet::new(r.queries.clone())));
    }

    #[test]
    fn satisfiable_single_clause() {
        // (x1): the set {qC, qC1, qX1, S1} coordinates.
        let f = Cnf::new(1, vec![Clause(vec![Lit::pos(0)])]);
        let r = reduce(&f);
        let res = bruteforce::any_coordinating_set(&r.db, &r.queries).unwrap();
        let best = res
            .best
            .expect("satisfiable formula needs a coordinating set");
        // The set must include qC and the positive literal query.
        let qs = QuerySet::new(r.queries.clone());
        let names: Vec<&str> = best.queries.iter().map(|&q| qs.query(q).name()).collect();
        assert!(names.contains(&"qC"));
        assert!(names.contains(&"qX1"));
    }

    #[test]
    fn unsatisfiable_two_unit_clauses() {
        // x1 ∧ ¬x1: needs both qX1 and qX*1, which the S1 gadget forbids.
        let f = Cnf::new(
            1,
            vec![Clause(vec![Lit::pos(0)]), Clause(vec![Lit::neg(0)])],
        );
        let r = reduce(&f);
        let res = bruteforce::any_coordinating_set(&r.db, &r.queries).unwrap();
        assert!(res.best.is_none());
    }

    #[test]
    fn two_clause_satisfiable() {
        // (x1 ∨ x2) ∧ (¬x1): satisfied by x1=false, x2=true.
        let f = Cnf::new(
            2,
            vec![
                Clause(vec![Lit::pos(0), Lit::pos(1)]),
                Clause(vec![Lit::neg(0)]),
            ],
        );
        let r = reduce(&f);
        let res = bruteforce::any_coordinating_set(&r.db, &r.queries).unwrap();
        let best = res.best.expect("coordinating set must exist");
        let qs = QuerySet::new(r.queries.clone());
        let names: Vec<&str> = best.queries.iter().map(|&q| qs.query(q).name()).collect();
        // ¬x1 forces qX*1; clause 1 must then be witnessed by x2.
        assert!(names.contains(&"qX*1"));
        assert!(names.contains(&"qX2"));
        assert!(!names.contains(&"qX1"), "x1 cannot be both true and false");
    }
}
