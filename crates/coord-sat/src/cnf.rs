//! CNF formulas.

use std::fmt;

/// A literal: variable index (0-based) with polarity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Lit {
    pub var: usize,
    pub positive: bool,
}

impl Lit {
    /// A positive literal `x_var`.
    pub fn pos(var: usize) -> Self {
        Lit {
            var,
            positive: true,
        }
    }

    /// A negative literal `¬x_var`.
    pub fn neg(var: usize) -> Self {
        Lit {
            var,
            positive: false,
        }
    }

    /// The complementary literal.
    pub fn negated(self) -> Self {
        Lit {
            var: self.var,
            positive: !self.positive,
        }
    }

    /// Whether the literal is satisfied under `assignment`.
    pub fn satisfied_by(self, assignment: &[bool]) -> bool {
        assignment[self.var] == self.positive
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "x{}", self.var + 1)
        } else {
            write!(f, "¬x{}", self.var + 1)
        }
    }
}

/// A disjunction of literals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Clause(pub Vec<Lit>);

impl Clause {
    /// Whether the clause is satisfied under `assignment`.
    pub fn satisfied_by(&self, assignment: &[bool]) -> bool {
        self.0.iter().any(|l| l.satisfied_by(assignment))
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, l) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ")")
    }
}

/// A CNF formula over variables `x_0 .. x_{n_vars-1}`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cnf {
    pub n_vars: usize,
    pub clauses: Vec<Clause>,
}

impl Cnf {
    /// Build a formula, checking variable indices are in range.
    pub fn new(n_vars: usize, clauses: Vec<Clause>) -> Self {
        for c in &clauses {
            for l in &c.0 {
                assert!(l.var < n_vars, "literal variable out of range");
            }
        }
        Cnf { n_vars, clauses }
    }

    /// Number of clauses.
    pub fn n_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Whether `assignment` (length `n_vars`) satisfies every clause.
    pub fn satisfied_by(&self, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.n_vars);
        self.clauses.iter().all(|c| c.satisfied_by(assignment))
    }

    /// Brute-force satisfiability over all 2^n assignments (test oracle;
    /// panics above 20 variables).
    pub fn satisfiable_exhaustive(&self) -> Option<Vec<bool>> {
        assert!(self.n_vars <= 20, "exhaustive check limited to 20 vars");
        for mask in 0u32..(1u32 << self.n_vars) {
            let a: Vec<bool> = (0..self.n_vars).map(|i| mask & (1 << i) != 0).collect();
            if self.satisfied_by(&a) {
                return Some(a);
            }
        }
        None
    }
}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> Cnf {
        // (x1 ∨ ¬x2 ∨ x3) ∧ (x2 ∨ ¬x3 ∨ ¬x4)
        Cnf::new(
            4,
            vec![
                Clause(vec![Lit::pos(0), Lit::neg(1), Lit::pos(2)]),
                Clause(vec![Lit::pos(1), Lit::neg(2), Lit::neg(3)]),
            ],
        )
    }

    #[test]
    fn literal_semantics() {
        let a = vec![true, false];
        assert!(Lit::pos(0).satisfied_by(&a));
        assert!(!Lit::pos(1).satisfied_by(&a));
        assert!(Lit::neg(1).satisfied_by(&a));
        assert_eq!(Lit::pos(0).negated(), Lit::neg(0));
    }

    #[test]
    fn clause_and_formula_evaluation() {
        let f = example();
        assert!(f.satisfied_by(&[true, true, true, false]));
        assert!(!f.satisfied_by(&[false, true, false, true]));
    }

    #[test]
    fn exhaustive_finds_model() {
        let f = example();
        let model = f.satisfiable_exhaustive().unwrap();
        assert!(f.satisfied_by(&model));
    }

    #[test]
    fn unsat_detected() {
        // (x1) ∧ (¬x1)
        let f = Cnf::new(
            1,
            vec![Clause(vec![Lit::pos(0)]), Clause(vec![Lit::neg(0)])],
        );
        assert!(f.satisfiable_exhaustive().is_none());
    }

    #[test]
    fn display_notation() {
        let f = example();
        assert_eq!(f.to_string(), "(x1 ∨ ¬x2 ∨ x3) ∧ (x2 ∨ ¬x3 ∨ ¬x4)");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_literal_rejected() {
        Cnf::new(1, vec![Clause(vec![Lit::pos(3)])]);
    }
}
