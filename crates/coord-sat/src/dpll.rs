//! A DPLL SAT solver with unit propagation and pure-literal elimination.
//!
//! This is the "efficient algorithm" side of the hardness experiments: on
//! the small random 3SAT instances used to exercise the reductions, DPLL
//! solves in microseconds what the brute-force entangled-query search
//! takes exponential time to decide — making the Section 3 separation
//! *measurable* (see the `hardness_3sat` bench).

use crate::cnf::{Cnf, Lit};

/// Solve `formula`, returning a satisfying assignment if one exists.
pub fn solve(formula: &Cnf) -> Option<Vec<bool>> {
    let mut assignment: Vec<Option<bool>> = vec![None; formula.n_vars];
    if dpll(formula, &mut assignment) {
        // Unconstrained variables default to false.
        Some(assignment.into_iter().map(|a| a.unwrap_or(false)).collect())
    } else {
        None
    }
}

/// Status of a clause under a partial assignment.
enum ClauseState {
    Satisfied,
    /// All literals false.
    Conflict,
    /// Exactly one literal unassigned, rest false.
    Unit(Lit),
    /// Multiple literals unassigned.
    Open,
}

fn clause_state(lits: &[Lit], assignment: &[Option<bool>]) -> ClauseState {
    let mut unassigned: Option<Lit> = None;
    let mut n_unassigned = 0;
    for &l in lits {
        match assignment[l.var] {
            Some(v) if v == l.positive => return ClauseState::Satisfied,
            Some(_) => {}
            None => {
                unassigned = Some(l);
                n_unassigned += 1;
            }
        }
    }
    match n_unassigned {
        0 => ClauseState::Conflict,
        1 => ClauseState::Unit(unassigned.expect("counted one unassigned literal")),
        _ => ClauseState::Open,
    }
}

fn dpll(formula: &Cnf, assignment: &mut Vec<Option<bool>>) -> bool {
    // Unit propagation to fixpoint.
    let mut trail: Vec<usize> = Vec::new();
    loop {
        let mut propagated = false;
        for clause in &formula.clauses {
            match clause_state(&clause.0, assignment) {
                ClauseState::Conflict => {
                    for v in trail {
                        assignment[v] = None;
                    }
                    return false;
                }
                ClauseState::Unit(l) => {
                    assignment[l.var] = Some(l.positive);
                    trail.push(l.var);
                    propagated = true;
                }
                _ => {}
            }
        }
        if !propagated {
            break;
        }
    }

    // Pure-literal elimination: a variable appearing with only one
    // polarity in not-yet-satisfied clauses can be set to that polarity.
    let mut seen_pos = vec![false; formula.n_vars];
    let mut seen_neg = vec![false; formula.n_vars];
    let mut any_open = false;
    for clause in &formula.clauses {
        if matches!(clause_state(&clause.0, assignment), ClauseState::Satisfied) {
            continue;
        }
        any_open = true;
        for &l in &clause.0 {
            if assignment[l.var].is_none() {
                if l.positive {
                    seen_pos[l.var] = true;
                } else {
                    seen_neg[l.var] = true;
                }
            }
        }
    }
    if !any_open {
        return true; // every clause satisfied
    }
    for v in 0..formula.n_vars {
        if assignment[v].is_none() && (seen_pos[v] ^ seen_neg[v]) {
            assignment[v] = Some(seen_pos[v]);
            trail.push(v);
        }
    }

    // Branch on the first unassigned variable of an open clause.
    let branch_var = formula
        .clauses
        .iter()
        .filter(|c| !matches!(clause_state(&c.0, assignment), ClauseState::Satisfied))
        .flat_map(|c| c.0.iter())
        .find(|l| assignment[l.var].is_none())
        .map(|l| l.var);

    let result = match branch_var {
        None => {
            // No open clause has unassigned literals; re-check for conflicts.
            formula
                .clauses
                .iter()
                .all(|c| !matches!(clause_state(&c.0, assignment), ClauseState::Conflict))
        }
        Some(v) => {
            let mut ok = false;
            for value in [true, false] {
                assignment[v] = Some(value);
                if dpll(formula, assignment) {
                    ok = true;
                    break;
                }
                assignment[v] = None;
            }
            ok
        }
    };

    if !result {
        for v in trail {
            assignment[v] = None;
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Clause;
    use crate::gen::random_3sat;
    use rand::prelude::*;

    #[test]
    fn solves_satisfiable_formula() {
        // (x1 ∨ x2) ∧ (¬x1 ∨ x2) ∧ (¬x2 ∨ x3)
        let f = Cnf::new(
            3,
            vec![
                Clause(vec![Lit::pos(0), Lit::pos(1)]),
                Clause(vec![Lit::neg(0), Lit::pos(1)]),
                Clause(vec![Lit::neg(1), Lit::pos(2)]),
            ],
        );
        let model = solve(&f).unwrap();
        assert!(f.satisfied_by(&model));
    }

    #[test]
    fn detects_unsat() {
        // (x1) ∧ (¬x1)
        let f = Cnf::new(
            1,
            vec![Clause(vec![Lit::pos(0)]), Clause(vec![Lit::neg(0)])],
        );
        assert!(solve(&f).is_none());

        // All 8 polarity combinations over 3 vars in 2-var clauses: UNSAT.
        let mut clauses = Vec::new();
        for a in [true, false] {
            for b in [true, false] {
                clauses.push(Clause(vec![
                    Lit {
                        var: 0,
                        positive: a,
                    },
                    Lit {
                        var: 1,
                        positive: b,
                    },
                ]));
            }
        }
        let f2 = Cnf::new(2, clauses);
        assert!(solve(&f2).is_none());
    }

    #[test]
    fn empty_formula_is_sat() {
        let f = Cnf::new(3, vec![]);
        let model = solve(&f).unwrap();
        assert_eq!(model.len(), 3);
    }

    #[test]
    fn agrees_with_exhaustive_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let n = rng.random_range(1..8);
            let k = rng.random_range(0..12);
            let f = random_3sat(n, k, &mut rng);
            let dpll_sat = solve(&f);
            let exhaustive = f.satisfiable_exhaustive();
            assert_eq!(
                dpll_sat.is_some(),
                exhaustive.is_some(),
                "disagreement on {f}"
            );
            if let Some(m) = dpll_sat {
                assert!(f.satisfied_by(&m), "DPLL returned a non-model for {f}");
            }
        }
    }
}
