//! Theorem 2: `EntangledMax(Q_safe)` is NP-hard — even for *safe* query
//! sets, finding a **maximum-size** coordinating set encodes 3SAT.
//!
//! For each variable `x_j` a selection query
//!
//! ```text
//! q(x_j) = {} R_j(x_j) :- D(x_j)
//! ```
//!
//! and for each clause `C_i = x_{j1}^{v1} ∨ x_{j2}^{v2} ∨ x_{j3}^{v3}` the
//! one-literal-witness gadget (Figure 9): the first literal's query is
//! unconstrained, each later literal's query is "constrained" so it can
//! only coordinate when every earlier literal is false:
//!
//! ```text
//! {R_{j1}(v1)}                       C_i(1) :- ∅
//! {R_{j2}(v2), R_{j1}(¬v1)}          C_i(1) :- ∅
//! {R_{j3}(v3), R_{j2}(¬v2), R_{j1}(¬v1)}  C_i(1) :- ∅
//! ```
//!
//! Every postcondition `R_j(c)` unifies with exactly one head (the
//! selection query's) — the set is **safe** — yet at most one query per
//! clause can join any coordinating set, so the maximum size is `k + m`
//! iff the formula is satisfiable.

use crate::cnf::Cnf;
use coord_core::{EntangledQuery, QueryBuilder};
use coord_db::{Database, Value};

/// The reduced instance.
pub struct Reduction2 {
    pub queries: Vec<EntangledQuery>,
    pub db: Database,
    /// `k + m`: the target maximum size iff satisfiable.
    pub target_size: usize,
}

/// Build the Theorem 2 instance for `formula`.
pub fn reduce(formula: &Cnf) -> Reduction2 {
    let mut db = Database::new();
    db.create_table("D", &["v"]).expect("fresh database");
    db.insert("D", vec![Value::int(0)]).expect("insert 0");
    db.insert("D", vec![Value::int(1)]).expect("insert 1");

    let mut queries = Vec::new();

    // Selection queries q(x_j).
    for j in 0..formula.n_vars {
        queries.push(
            QueryBuilder::new(format!("q(x{})", j + 1))
                .head(format!("R{}", j + 1), |a| a.var("x"))
                .body("D", |a| a.var("x"))
                .build()
                .expect("selection query"),
        );
    }

    // Clause gadgets.
    for (i, clause) in formula.clauses.iter().enumerate() {
        for (b, lit) in clause.0.iter().enumerate() {
            let mut q = QueryBuilder::new(format!("q(C{},{})", i + 1, b + 1));
            // This literal must hold...
            q = q.postcondition(format!("R{}", lit.var + 1), |a| {
                a.constant(i64::from(lit.positive))
            });
            // ...and all earlier literals must fail.
            for earlier in &clause.0[..b] {
                q = q.postcondition(format!("R{}", earlier.var + 1), |a| {
                    a.constant(i64::from(!earlier.positive))
                });
            }
            queries.push(
                q.head(format!("C{}", i + 1), |a| a.constant(1i64))
                    .build()
                    .expect("clause gadget query"),
            );
        }
    }

    let target_size = formula.n_clauses() + formula.n_vars;
    Reduction2 {
        queries,
        db,
        target_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::{Clause, Lit};
    use crate::dpll;
    use crate::gen::random_3sat;
    use coord_core::bruteforce;
    use coord_core::graphs::is_safe;
    use coord_core::QuerySet;
    use rand::prelude::*;

    #[test]
    fn figure_9_example_shape() {
        // C1 = x1 ∨ ¬x2 ∨ x3, C2 = x2 ∨ ¬x3 ∨ ¬x4 (the paper's Figure 9).
        let f = Cnf::new(
            4,
            vec![
                Clause(vec![Lit::pos(0), Lit::neg(1), Lit::pos(2)]),
                Clause(vec![Lit::pos(1), Lit::neg(2), Lit::neg(3)]),
            ],
        );
        let r = reduce(&f);
        // 4 selection queries + 3 gadget queries per clause.
        assert_eq!(r.queries.len(), 4 + 6);
        assert_eq!(r.target_size, 2 + 4);
        // The constrained third query of C1: {R3(1), R2(1), R1(0)} C1(1).
        let third = &r.queries[4 + 2];
        assert_eq!(third.postconditions().len(), 3);
    }

    #[test]
    fn instance_is_safe() {
        let f = Cnf::new(3, vec![Clause(vec![Lit::pos(0), Lit::neg(1), Lit::pos(2)])]);
        let r = reduce(&f);
        assert!(is_safe(&QuerySet::new(r.queries.clone())));
    }

    #[test]
    fn satisfiable_reaches_target_size() {
        // (x1 ∨ ¬x2): satisfiable; target = 1 clause + 2 vars = 3.
        let f = Cnf::new(2, vec![Clause(vec![Lit::pos(0), Lit::neg(1)])]);
        let r = reduce(&f);
        let res = bruteforce::max_coordinating_set(&r.db, &r.queries).unwrap();
        assert_eq!(res.best.unwrap().len(), r.target_size);
    }

    #[test]
    fn unsatisfiable_stays_below_target() {
        // x1 ∧ ¬x1: max set should be 1 var query + 1 clause query = 2 < 3.
        let f = Cnf::new(
            1,
            vec![Clause(vec![Lit::pos(0)]), Clause(vec![Lit::neg(0)])],
        );
        let r = reduce(&f);
        assert_eq!(r.target_size, 3);
        let res = bruteforce::max_coordinating_set(&r.db, &r.queries).unwrap();
        let best = res.best.unwrap();
        assert!(best.len() < r.target_size, "got size {}", best.len());
    }

    #[test]
    fn at_most_one_witness_per_clause() {
        // For C = x1 ∨ x2, queries {R1(1)}C(1) and {R2(1), R1(0)}C(1)
        // cannot both coordinate (they force x1 = 1 and x1 = 0).
        let f = Cnf::new(2, vec![Clause(vec![Lit::pos(0), Lit::pos(1)])]);
        let r = reduce(&f);
        let qs = QuerySet::new(r.queries.clone());
        let all: Vec<coord_core::QueryId> = qs.ids().collect();
        let mut tried = 0;
        let res = bruteforce::coordinate_subset(&r.db, &qs, &all, &mut tried).unwrap();
        assert!(res.is_none(), "the full set must not coordinate");
    }

    #[test]
    fn target_size_iff_satisfiable_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(123);
        for _case in 0..10 {
            let n = rng.random_range(1..4usize);
            let k = rng.random_range(1..3usize);
            let f = random_3sat(n, k, &mut rng);
            let r = reduce(&f);
            let best = bruteforce::max_coordinating_set(&r.db, &r.queries)
                .unwrap()
                .best
                .map_or(0, |b| b.len());
            let sat = dpll::solve(&f).is_some();
            assert_eq!(
                best == r.target_size,
                sat,
                "max={} target={} for {f}",
                best,
                r.target_size
            );
        }
    }
}
