//! Random 3SAT instance generation.

use crate::cnf::{Clause, Cnf, Lit};
use rand::prelude::*;
use rand::seq::index::sample;

/// Generate a uniform random 3SAT formula: each clause picks 3 distinct
/// variables (or fewer if `n_vars < 3`) and independent random polarities.
pub fn random_3sat(n_vars: usize, n_clauses: usize, rng: &mut impl Rng) -> Cnf {
    assert!(n_vars > 0, "need at least one variable");
    let width = n_vars.min(3);
    let clauses = (0..n_clauses)
        .map(|_| {
            let vars = sample(rng, n_vars, width);
            Clause(
                vars.iter()
                    .map(|v| Lit {
                        var: v,
                        positive: rng.random_bool(0.5),
                    })
                    .collect(),
            )
        })
        .collect();
    Cnf::new(n_vars, clauses)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_is_correct() {
        let mut rng = StdRng::seed_from_u64(1);
        let f = random_3sat(10, 42, &mut rng);
        assert_eq!(f.n_vars, 10);
        assert_eq!(f.n_clauses(), 42);
        for c in &f.clauses {
            assert_eq!(c.0.len(), 3);
            // Distinct variables within a clause.
            let mut vars: Vec<usize> = c.0.iter().map(|l| l.var).collect();
            vars.sort_unstable();
            vars.dedup();
            assert_eq!(vars.len(), 3);
        }
    }

    #[test]
    fn small_var_counts_shrink_clauses() {
        let mut rng = StdRng::seed_from_u64(2);
        let f = random_3sat(2, 5, &mut rng);
        for c in &f.clauses {
            assert_eq!(c.0.len(), 2);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let f1 = random_3sat(6, 10, &mut StdRng::seed_from_u64(7));
        let f2 = random_3sat(6, 10, &mut StdRng::seed_from_u64(7));
        assert_eq!(f1, f2);
    }
}
