//! # coord-sat — 3SAT, DPLL, and the paper's hardness reductions
//!
//! Section 3 of *"The Complexity of Social Coordination"* pins down the
//! hardness of entangled-query evaluation with reductions from 3SAT that
//! use a database so trivial (a single unary relation over `{0, 1}`) that
//! conjunctive-query satisfiability is polynomial — isolating the
//! *coordination* as the source of NP-hardness. This crate makes those
//! reductions executable:
//!
//! * [`cnf`] — CNF formulas and assignments,
//! * [`dpll`] — a DPLL SAT solver (unit propagation + pure literals),
//!   the efficient baseline the reductions are verified against,
//! * [`gen`] — random 3SAT instance generation,
//! * [`reduction1`] — Theorem 1: `Entangled(Q_all)` is NP-complete,
//! * [`reduction2`] — Theorem 2: `EntangledMax(Q_safe)` is NP-hard
//!   (the one-literal-witness gadget of Figure 9),
//! * [`reduction_b`] — Appendix B: mixed coordination-attribute sets are
//!   NP-hard (the limit of the Consistent Coordination Algorithm).

#![deny(unsafe_code)]

pub mod cnf;
pub mod dpll;
pub mod gen;
pub mod reduction1;
pub mod reduction2;
pub mod reduction_b;

pub use cnf::{Clause, Cnf, Lit};
pub use dpll::solve as dpll_solve;
pub use gen::random_3sat;
