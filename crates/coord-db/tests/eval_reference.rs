//! Property test: the backtracking join evaluator against a naive
//! enumerate-all-assignments reference implementation.

use coord_db::{Atom, ConjunctiveQuery, Database, Term, Value, Var};
use proptest::prelude::*;
use std::collections::HashSet;

/// Naive reference: enumerate every assignment of query variables to
/// active-domain values and keep the ones where every grounded atom is in
/// its table.
fn naive_answers(db: &Database, q: &ConjunctiveQuery) -> HashSet<Vec<(Var, Value)>> {
    // Active domain.
    let mut domain: Vec<Value> = Vec::new();
    for rel in db.relations() {
        for row in db.table(rel).unwrap().iter_rows() {
            for v in &row {
                if !domain.contains(v) {
                    domain.push(v.clone());
                }
            }
        }
    }
    let vars = q.vars();
    let mut out = HashSet::new();
    let mut stack = vec![Vec::<Value>::new()];
    while let Some(partial) = stack.pop() {
        if partial.len() == vars.len() {
            let assignment: Vec<(Var, Value)> =
                vars.iter().copied().zip(partial.iter().cloned()).collect();
            let lookup = |v: Var| {
                assignment
                    .iter()
                    .find(|(w, _)| *w == v)
                    .map(|(_, val)| val.clone())
                    .unwrap()
            };
            let ok = q.atoms.iter().all(|atom| {
                let grounded: Vec<Value> = atom
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Const(c) => c.clone(),
                        Term::Var(v) => lookup(*v),
                    })
                    .collect();
                db.contains(&atom.relation, &grounded).unwrap()
            });
            if ok {
                let mut sorted = assignment;
                sorted.sort_by_key(|(v, _)| *v);
                out.insert(sorted);
            }
            continue;
        }
        for val in &domain {
            let mut next = partial.clone();
            next.push(val.clone());
            stack.push(next);
        }
    }
    out
}

#[derive(Clone, Debug)]
struct QuerySpec {
    atoms: Vec<(usize, Vec<TermSpec>)>, // (relation index, terms)
}

#[derive(Clone, Debug)]
enum TermSpec {
    Var(u32),
    Const(i64),
}

fn term_strategy() -> impl Strategy<Value = TermSpec> {
    prop_oneof![
        (0u32..3).prop_map(TermSpec::Var),
        (0i64..4).prop_map(TermSpec::Const),
    ]
}

fn query_strategy() -> impl Strategy<Value = QuerySpec> {
    prop::collection::vec((0usize..2, prop::collection::vec(term_strategy(), 2)), 1..4)
        .prop_map(|atoms| QuerySpec { atoms })
}

fn build_db(rows_a: &[(i64, i64)], rows_b: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    db.create_table("A", &["x", "y"]).unwrap();
    db.create_table("B", &["x", "y"]).unwrap();
    for &(a, b) in rows_a {
        db.insert("A", vec![Value::int(a), Value::int(b)]).unwrap();
    }
    for &(a, b) in rows_b {
        db.insert("B", vec![Value::int(a), Value::int(b)]).unwrap();
    }
    db
}

fn build_query(spec: &QuerySpec) -> ConjunctiveQuery {
    ConjunctiveQuery::new(
        spec.atoms
            .iter()
            .map(|(rel, terms)| {
                Atom::new(
                    if *rel == 0 { "A" } else { "B" },
                    terms
                        .iter()
                        .map(|t| match t {
                            TermSpec::Var(v) => Term::Var(Var(*v)),
                            TermSpec::Const(c) => Term::constant(*c),
                        })
                        .collect(),
                )
            })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn find_all_matches_naive_reference(
        spec in query_strategy(),
        rows_a in prop::collection::vec((0i64..4, 0i64..4), 0..6),
        rows_b in prop::collection::vec((0i64..4, 0i64..4), 0..6),
    ) {
        let db = build_db(&rows_a, &rows_b);
        let q = build_query(&spec);

        let expected = naive_answers(&db, &q);
        let actual: HashSet<Vec<(Var, Value)>> = db
            .find_all(&q, None)
            .unwrap()
            .into_iter()
            .map(|a| {
                let mut v: Vec<(Var, Value)> =
                    a.iter().map(|(var, val)| (var, val.clone())).collect();
                v.sort_by_key(|(var, _)| *var);
                v
            })
            .collect();
        prop_assert_eq!(actual, expected);
    }

    #[test]
    fn find_one_agrees_with_satisfiability(
        spec in query_strategy(),
        rows_a in prop::collection::vec((0i64..4, 0i64..4), 0..6),
        rows_b in prop::collection::vec((0i64..4, 0i64..4), 0..6),
    ) {
        let db = build_db(&rows_a, &rows_b);
        let q = build_query(&spec);
        let expected_sat = !naive_answers(&db, &q).is_empty();
        let one = db.find_one(&q).unwrap();
        prop_assert_eq!(one.is_some(), expected_sat);
        // Any returned assignment must actually satisfy the query.
        if let Some(a) = one {
            for atom in &q.atoms {
                let grounded: Vec<Value> = atom
                    .terms
                    .iter()
                    .map(|t| a.resolve(t).expect("all query vars bound"))
                    .collect();
                prop_assert!(db.contains(&atom.relation, &grounded).unwrap());
            }
        }
    }
}
