//! Property tests: every storage backend answers byte-identically to
//! the row store — `find_one`, `find_all` (including answer *order*),
//! and `distinct_project` — on random tables and conjunctive queries,
//! plus deterministic zero-arity and repeated-variable edge cases.

use coord_db::{Atom, BackendKind, ConjunctiveQuery, Database, Symbol, Term, Value, Var};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct QuerySpec {
    atoms: Vec<(usize, Vec<TermSpec>)>, // (relation index, terms)
}

#[derive(Clone, Debug)]
enum TermSpec {
    Var(u32),
    Const(i64),
}

fn term_strategy() -> impl Strategy<Value = TermSpec> {
    prop_oneof![
        (0u32..3).prop_map(TermSpec::Var),
        (0i64..4).prop_map(TermSpec::Const),
    ]
}

fn query_strategy() -> impl Strategy<Value = QuerySpec> {
    prop::collection::vec((0usize..2, prop::collection::vec(term_strategy(), 2)), 1..4)
        .prop_map(|atoms| QuerySpec { atoms })
}

fn build_db(kind: BackendKind, rows_a: &[(i64, i64)], rows_b: &[(i64, i64)]) -> Database {
    let mut db = Database::with_backend(kind);
    db.create_table("A", &["x", "y"]).unwrap();
    db.create_table("B", &["x", "y"]).unwrap();
    for &(a, b) in rows_a {
        db.insert("A", vec![Value::int(a), Value::int(b)]).unwrap();
    }
    for &(a, b) in rows_b {
        db.insert("B", vec![Value::int(a), Value::int(b)]).unwrap();
    }
    // Force the composite backend onto its multi-column index path so
    // equivalence is tested against *built* indexes, not the counting
    // fallback (which just delegates to the row store).
    db.advise_pattern(&Symbol::new("A"), &[0, 1]);
    db.advise_pattern(&Symbol::new("B"), &[0, 1]);
    db
}

fn build_query(spec: &QuerySpec) -> ConjunctiveQuery {
    ConjunctiveQuery::new(
        spec.atoms
            .iter()
            .map(|(rel, terms)| {
                Atom::new(
                    if *rel == 0 { "A" } else { "B" },
                    terms
                        .iter()
                        .map(|t| match t {
                            TermSpec::Var(v) => Term::Var(Var(*v)),
                            TermSpec::Const(c) => Term::constant(*c),
                        })
                        .collect(),
                )
            })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `find_all` answers — including their order — and the `find_one`
    /// witness are byte-identical across backends.
    #[test]
    fn backends_agree_on_answers(
        spec in query_strategy(),
        rows_a in prop::collection::vec((0i64..4, 0i64..4), 0..6),
        rows_b in prop::collection::vec((0i64..4, 0i64..4), 0..6),
    ) {
        let q = build_query(&spec);
        let reference = build_db(BackendKind::Row, &rows_a, &rows_b);
        let expected_all = reference.find_all(&q, None).unwrap();
        let expected_one = reference.find_one(&q).unwrap();
        for kind in [BackendKind::Composite, BackendKind::Columnar] {
            let db = build_db(kind, &rows_a, &rows_b);
            prop_assert_eq!(db.find_all(&q, None).unwrap(), expected_all.clone());
            prop_assert_eq!(db.find_one(&q).unwrap(), expected_one.clone());
        }
    }

    /// `distinct_project` — bound and unbound — is byte-identical
    /// across backends, row order included.
    #[test]
    fn backends_agree_on_distinct_project(
        rows_a in prop::collection::vec((0i64..4, 0i64..4), 0..8),
        bound in 0i64..4,
    ) {
        let reference = build_db(BackendKind::Row, &rows_a, &[]);
        let rel = Symbol::new("A");
        let t = reference.table(&rel).unwrap();
        let expected_bound = t.distinct_project(&[1], &[(0, Value::int(bound))]);
        let expected_free = t.distinct_project(&[0, 1], &[]);
        for kind in [BackendKind::Composite, BackendKind::Columnar] {
            let db = build_db(kind, &rows_a, &[]);
            let t = db.table(&rel).unwrap();
            prop_assert_eq!(
                t.distinct_project(&[1], &[(0, Value::int(bound))]),
                expected_bound.clone()
            );
            prop_assert_eq!(t.distinct_project(&[0, 1], &[]), expected_free.clone());
        }
    }
}

/// Zero-arity relations behave identically everywhere: the nullary
/// tuple is present or absent, and a nullary atom is satisfiable iff
/// it is present.
#[test]
fn zero_arity_tables_agree_across_backends() {
    for populated in [false, true] {
        let mut answers = Vec::new();
        for kind in BackendKind::ALL {
            let mut db = Database::with_backend(kind);
            db.create_table("Z", &[]).unwrap();
            if populated {
                db.insert("Z", vec![]).unwrap();
                // Duplicate nullary insert is a no-op on every backend.
                db.insert("Z", vec![]).unwrap();
            }
            let t = db.table(&Symbol::new("Z")).unwrap();
            assert_eq!(t.len(), usize::from(populated), "{}", kind.name());
            assert_eq!(t.contains(&[]), populated, "{}", kind.name());
            let q = ConjunctiveQuery::new(vec![Atom::new("Z", vec![])]);
            answers.push((db.find_one(&q).unwrap(), db.find_all(&q, None).unwrap()));
        }
        assert!(answers.windows(2).all(|w| w[0] == w[1]));
    }
}

/// Repeated-variable atoms (`A(x, x)`) filter identically on every
/// backend, including under an advised composite pattern.
#[test]
fn repeated_variable_atoms_agree_across_backends() {
    let rows = [(0, 0), (0, 1), (1, 1), (2, 3), (3, 3)];
    let q = ConjunctiveQuery::new(vec![Atom::new(
        "A",
        vec![Term::Var(Var(0)), Term::Var(Var(0))],
    )]);
    let reference = build_db(BackendKind::Row, &rows, &[]);
    let expected = reference.find_all(&q, None).unwrap();
    assert_eq!(expected.len(), 3); // (0,0), (1,1), (3,3)
    for kind in [BackendKind::Composite, BackendKind::Columnar] {
        let db = build_db(kind, &rows, &[]);
        assert_eq!(db.find_all(&q, None).unwrap(), expected, "{}", kind.name());
        assert_eq!(
            db.find_one(&q).unwrap(),
            reference.find_one(&q).unwrap(),
            "{}",
            kind.name()
        );
    }
}
