//! Conjunctive queries over database relations.
//!
//! A [`ConjunctiveQuery`] is a list of [`Atom`]s whose arguments are
//! [`Term`]s — variables or constants. This is exactly the *body* language
//! of entangled queries; the coordination algorithms construct combined
//! bodies in this form and send them to the database.

use crate::error::DbError;
use crate::symbol::Symbol;
use crate::value::Value;
use std::fmt;

/// A query variable, identified by a dense non-negative id.
///
/// Variable ids are scoped by the query set that created them; the
/// coordination layer renames per-query variables into one global space
/// before unification.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// The variable's raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

/// An atom argument: a variable or a constant value.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Term {
    Var(Var),
    Const(Value),
}

impl Term {
    /// Convenience constructor for a constant term.
    pub fn constant(v: impl Into<Value>) -> Self {
        Term::Const(v.into())
    }

    /// Convenience constructor for a variable term.
    pub fn var(i: u32) -> Self {
        Term::Var(Var(i))
    }

    /// The variable inside, if this term is a variable.
    pub fn as_var(&self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }

    /// The constant inside, if this term is a constant.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Var(_) => None,
            Term::Const(v) => Some(v),
        }
    }

    /// Whether this term is a constant.
    pub fn is_const(&self) -> bool {
        matches!(self, Term::Const(_))
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c:?}"),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Self {
        Term::Var(v)
    }
}

impl From<Value> for Term {
    fn from(v: Value) -> Self {
        Term::Const(v)
    }
}

/// A relational atom `R(t_1, ..., t_k)`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    pub relation: Symbol,
    pub terms: Vec<Term>,
}

impl Atom {
    /// Build an atom over relation `relation` with the given terms.
    pub fn new(relation: impl Into<Symbol>, terms: Vec<Term>) -> Self {
        Atom {
            relation: relation.into(),
            terms,
        }
    }

    /// The atom's arity.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// Iterate over the variables occurring in this atom (with repeats).
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.terms.iter().filter_map(Term::as_var)
    }

    /// Whether the atom contains no variables.
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(Term::is_const)
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t:?}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A conjunction of atoms, evaluated against a [`crate::Database`].
///
/// An empty conjunction is trivially satisfiable (used by the hardness
/// reductions, whose queries have body `∅`).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ConjunctiveQuery {
    pub atoms: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// Build a query from atoms.
    pub fn new(atoms: Vec<Atom>) -> Self {
        ConjunctiveQuery { atoms }
    }

    /// The empty (trivially true) query.
    pub fn empty() -> Self {
        ConjunctiveQuery { atoms: Vec::new() }
    }

    /// All distinct variables, in first-occurrence order.
    pub fn vars(&self) -> Vec<Var> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for atom in &self.atoms {
            for v in atom.vars() {
                if seen.insert(v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Validate relation names and arities against the database schema.
    pub fn validate(&self, db: &crate::Database) -> Result<(), DbError> {
        for atom in &self.atoms {
            let table = db.table(&atom.relation)?;
            if atom.arity() != table.schema().arity() {
                return Err(DbError::ArityMismatch {
                    relation: atom.relation.to_string(),
                    expected: table.schema().arity(),
                    actual: atom.arity(),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return write!(f, "∅");
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_accessors() {
        let t = Term::constant(5i64);
        assert!(t.is_const());
        assert_eq!(t.as_const(), Some(&Value::int(5)));
        assert_eq!(t.as_var(), None);

        let v = Term::var(3);
        assert_eq!(v.as_var(), Some(Var(3)));
        assert!(!v.is_const());
    }

    #[test]
    fn atom_vars_and_ground() {
        let a = Atom::new("F", vec![Term::var(0), Term::constant("Zurich")]);
        assert_eq!(a.vars().collect::<Vec<_>>(), vec![Var(0)]);
        assert!(!a.is_ground());

        let g = Atom::new("F", vec![Term::constant(1i64), Term::constant("Zurich")]);
        assert!(g.is_ground());
    }

    #[test]
    fn query_vars_dedup_in_order() {
        let q = ConjunctiveQuery::new(vec![
            Atom::new("F", vec![Term::var(1), Term::var(0)]),
            Atom::new("H", vec![Term::var(0), Term::var(2)]),
        ]);
        assert_eq!(q.vars(), vec![Var(1), Var(0), Var(2)]);
    }

    #[test]
    fn display_round_trip_shapes() {
        let q = ConjunctiveQuery::new(vec![Atom::new(
            "F",
            vec![Term::var(0), Term::constant("Paris")],
        )]);
        assert_eq!(q.to_string(), "F(?0, Paris)");
        assert_eq!(ConjunctiveQuery::empty().to_string(), "∅");
    }
}
