//! Instrumentation: counting database queries and probe work.
//!
//! The paper analyzes its algorithms partly by the *number of conjunctive
//! queries issued to the database* (e.g., the SCC Coordination Algorithm
//! issues at most |Q| queries, one per strongly connected component; the
//! Consistent Coordination Algorithm issues O(n) queries). These counters
//! let the tests and benchmarks check those bounds exactly.
//!
//! Beyond the per-call counters, the evaluator accounts its *work*:
//! candidate rows actually walked ([`QueryStats::rows_scanned`]),
//! ground-atom membership short-circuits
//! ([`QueryStats::ground_probe_count`]), and per-scan index hits/misses.
//! `rows_scanned + ground_probes` ([`QueryStats::probe_work`]) is the
//! wall-clock-free cost metric the storage bench gates on (the build
//! container has 1 CPU, so counters — not time — carry the perf claims).
//!
//! When a [`crate::Database`] is attached to a `coord-obs` registry
//! ([`crate::Database::attach_obs`]), every counter is mirrored into
//! registry counters (`db_*`) and `find_one`/`find_all` latencies land
//! in a `db_probe_nanos` histogram, so storage cost shows up in the same
//! snapshot as submit latency. Mirrored counters are monotone: they keep
//! growing across [`QueryStats::reset`] (which only zeroes the local
//! counters the tests read).

use coord_obs::{Counter, Histogram, Registry, TraceCtx, Tracer};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Registry mirrors, installed once by [`QueryStats::attach`].
#[derive(Debug)]
struct ObsMirror {
    find_one: Counter,
    find_all: Counter,
    distinct: Counter,
    membership: Counter,
    rows_scanned: Counter,
    ground_probes: Counter,
    index_hits: Counter,
    index_misses: Counter,
    probe_nanos: Histogram,
    tracer: Tracer,
}

/// Thread-safe counters of query activity against a [`crate::Database`].
///
/// Counters are atomic so the parallel ablation of the Consistent
/// Coordination Algorithm (Section 6.2 "future work") can share one
/// database across worker threads.
#[derive(Debug, Default)]
pub struct QueryStats {
    find_one: AtomicU64,
    find_all: AtomicU64,
    distinct: AtomicU64,
    membership: AtomicU64,
    rows_scanned: AtomicU64,
    ground_probes: AtomicU64,
    index_hits: AtomicU64,
    index_misses: AtomicU64,
    obs: OnceLock<ObsMirror>,
}

impl QueryStats {
    /// New zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mirror all counters into `registry` under `db_*` names and start
    /// recording probe latencies into the `db_probe_nanos` histogram and
    /// as request-attributed `db_probe` trace instants. The first attach
    /// wins; later calls are no-ops.
    pub(crate) fn attach(&self, registry: &Registry) {
        let _ = self.obs.set(ObsMirror {
            find_one: registry.counter("db_find_one"),
            find_all: registry.counter("db_find_all"),
            distinct: registry.counter("db_distinct"),
            membership: registry.counter("db_membership"),
            rows_scanned: registry.counter("db_rows_scanned"),
            ground_probes: registry.counter("db_ground_probes"),
            index_hits: registry.counter("db_index_hits"),
            index_misses: registry.counter("db_index_misses"),
            probe_nanos: registry.histogram("db_probe_nanos"),
            tracer: registry.tracer(),
        });
    }

    /// Start timing one `find_one`/`find_all` probe; `None` when no
    /// enabled histogram is attached (keeps the unattached path free of
    /// clock reads).
    pub(crate) fn probe_timer(&self) -> Option<Instant> {
        match self.obs.get() {
            Some(m) if m.probe_nanos.is_enabled() => Some(Instant::now()),
            _ => None,
        }
    }

    /// Record the elapsed time of a probe started with
    /// [`QueryStats::probe_timer`], both into the `db_probe_nanos`
    /// histogram and as a `db_probe` trace instant stamped with the
    /// submitting request's [`TraceCtx`].
    pub(crate) fn observe_probe(&self, started: Option<Instant>) {
        if let (Some(t), Some(m)) = (started, self.obs.get()) {
            let nanos = t.elapsed().as_nanos() as u64;
            m.probe_nanos.record(nanos);
            m.tracer.instant_in(TraceCtx::current(), "db_probe", nanos);
        }
    }

    pub(crate) fn record_find_one(&self) {
        self.find_one.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.obs.get() {
            m.find_one.incr();
        }
    }

    pub(crate) fn record_find_all(&self) {
        self.find_all.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.obs.get() {
            m.find_all.incr();
        }
    }

    pub(crate) fn record_distinct(&self) {
        self.distinct.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.obs.get() {
            m.distinct.incr();
        }
    }

    pub(crate) fn record_membership(&self) {
        self.membership.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.obs.get() {
            m.membership.incr();
        }
    }

    pub(crate) fn record_rows_scanned(&self, n: u64) {
        self.rows_scanned.fetch_add(n, Ordering::Relaxed);
        if let Some(m) = self.obs.get() {
            m.rows_scanned.add(n);
        }
    }

    pub(crate) fn record_ground_probe(&self) {
        self.ground_probes.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.obs.get() {
            m.ground_probes.incr();
        }
    }

    pub(crate) fn record_index_hit(&self) {
        self.index_hits.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.obs.get() {
            m.index_hits.incr();
        }
    }

    pub(crate) fn record_index_miss(&self) {
        self.index_misses.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.obs.get() {
            m.index_misses.incr();
        }
    }

    /// Number of choose-1 (`find_one`) queries issued.
    pub fn find_one_count(&self) -> u64 {
        self.find_one.load(Ordering::Relaxed)
    }

    /// Number of all-answer enumerations issued.
    pub fn find_all_count(&self) -> u64 {
        self.find_all.load(Ordering::Relaxed)
    }

    /// Number of distinct-projection queries issued.
    pub fn distinct_count(&self) -> u64 {
        self.distinct.load(Ordering::Relaxed)
    }

    /// Number of grounded-tuple membership checks issued.
    pub fn membership_count(&self) -> u64 {
        self.membership.load(Ordering::Relaxed)
    }

    /// Candidate rows walked by the evaluator across all scans.
    pub fn rows_scanned(&self) -> u64 {
        self.rows_scanned.load(Ordering::Relaxed)
    }

    /// Fully ground atoms short-circuited through an O(1) membership
    /// test (no rows walked).
    pub fn ground_probe_count(&self) -> u64 {
        self.ground_probes.load(Ordering::Relaxed)
    }

    /// Evaluator scans served by an index (anything but a full scan).
    pub fn index_hit_count(&self) -> u64 {
        self.index_hits.load(Ordering::Relaxed)
    }

    /// Evaluator scans that fell back to a full scan.
    pub fn index_miss_count(&self) -> u64 {
        self.index_misses.load(Ordering::Relaxed)
    }

    /// Total probe work: rows walked plus ground membership probes —
    /// the backend-comparable cost metric the storage bench gates on.
    pub fn probe_work(&self) -> u64 {
        self.rows_scanned() + self.ground_probe_count()
    }

    /// Total queries of all kinds.
    pub fn total(&self) -> u64 {
        self.find_one_count()
            + self.find_all_count()
            + self.distinct_count()
            + self.membership_count()
    }

    /// Reset all local counters to zero. Attached registry mirrors stay
    /// monotone (Prometheus-style counters must never go backwards).
    pub fn reset(&self) {
        self.find_one.store(0, Ordering::Relaxed);
        self.find_all.store(0, Ordering::Relaxed);
        self.distinct.store(0, Ordering::Relaxed);
        self.membership.store(0, Ordering::Relaxed);
        self.rows_scanned.store(0, Ordering::Relaxed);
        self.ground_probes.store(0, Ordering::Relaxed);
        self.index_hits.store(0, Ordering::Relaxed);
        self.index_misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_and_reset() {
        let s = QueryStats::new();
        s.record_find_one();
        s.record_find_one();
        s.record_distinct();
        s.record_rows_scanned(7);
        s.record_ground_probe();
        assert_eq!(s.find_one_count(), 2);
        assert_eq!(s.distinct_count(), 1);
        assert_eq!(s.total(), 3);
        assert_eq!(s.probe_work(), 8);
        s.reset();
        assert_eq!(s.total(), 0);
        assert_eq!(s.probe_work(), 0);
    }

    #[test]
    fn counters_are_independent() {
        let s = QueryStats::new();
        s.record_find_all();
        s.record_membership();
        assert_eq!(s.find_one_count(), 0);
        assert_eq!(s.find_all_count(), 1);
        assert_eq!(s.membership_count(), 1);
    }

    #[test]
    fn attached_mirrors_stay_monotone_across_reset() {
        let r = Registry::new();
        let s = QueryStats::new();
        s.attach(&r);
        s.record_find_one();
        s.record_rows_scanned(5);
        s.record_index_hit();
        s.record_index_miss();
        s.reset();
        s.record_rows_scanned(2);
        let snap = r.snapshot();
        assert_eq!(snap.counter("db_find_one"), Some(1));
        assert_eq!(snap.counter("db_rows_scanned"), Some(7));
        assert_eq!(snap.hit_rate("db_index_hits", "db_index_misses"), Some(0.5));
        // Local view was reset.
        assert_eq!(s.rows_scanned(), 2);
    }

    #[test]
    fn probe_timer_inert_without_attachment() {
        let s = QueryStats::new();
        assert!(s.probe_timer().is_none());
        s.observe_probe(None);
        let disabled = Registry::disabled();
        s.attach(&disabled);
        assert!(
            s.probe_timer().is_none(),
            "disabled histogram: no clock reads"
        );
    }
}
