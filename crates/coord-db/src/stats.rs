//! Instrumentation: counting database queries.
//!
//! The paper analyzes its algorithms partly by the *number of conjunctive
//! queries issued to the database* (e.g., the SCC Coordination Algorithm
//! issues at most |Q| queries, one per strongly connected component; the
//! Consistent Coordination Algorithm issues O(n) queries). These counters
//! let the tests and benchmarks check those bounds exactly.

use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe counters of query activity against a [`crate::Database`].
///
/// Counters are atomic so the parallel ablation of the Consistent
/// Coordination Algorithm (Section 6.2 "future work") can share one
/// database across worker threads.
#[derive(Debug, Default)]
pub struct QueryStats {
    find_one: AtomicU64,
    find_all: AtomicU64,
    distinct: AtomicU64,
    membership: AtomicU64,
}

impl QueryStats {
    /// New zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_find_one(&self) {
        self.find_one.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_find_all(&self) {
        self.find_all.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_distinct(&self) {
        self.distinct.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_membership(&self) {
        self.membership.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of choose-1 (`find_one`) queries issued.
    pub fn find_one_count(&self) -> u64 {
        self.find_one.load(Ordering::Relaxed)
    }

    /// Number of all-answer enumerations issued.
    pub fn find_all_count(&self) -> u64 {
        self.find_all.load(Ordering::Relaxed)
    }

    /// Number of distinct-projection queries issued.
    pub fn distinct_count(&self) -> u64 {
        self.distinct.load(Ordering::Relaxed)
    }

    /// Number of grounded-tuple membership checks issued.
    pub fn membership_count(&self) -> u64 {
        self.membership.load(Ordering::Relaxed)
    }

    /// Total queries of all kinds.
    pub fn total(&self) -> u64 {
        self.find_one_count()
            + self.find_all_count()
            + self.distinct_count()
            + self.membership_count()
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.find_one.store(0, Ordering::Relaxed);
        self.find_all.store(0, Ordering::Relaxed);
        self.distinct.store(0, Ordering::Relaxed);
        self.membership.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_and_reset() {
        let s = QueryStats::new();
        s.record_find_one();
        s.record_find_one();
        s.record_distinct();
        assert_eq!(s.find_one_count(), 2);
        assert_eq!(s.distinct_count(), 1);
        assert_eq!(s.total(), 3);
        s.reset();
        assert_eq!(s.total(), 0);
    }

    #[test]
    fn counters_are_independent() {
        let s = QueryStats::new();
        s.record_find_all();
        s.record_membership();
        assert_eq!(s.find_one_count(), 0);
        assert_eq!(s.find_all_count(), 1);
        assert_eq!(s.membership_count(), 1);
    }
}
