//! Pluggable tuple storage: the [`Storage`] trait and its backends.
//!
//! [`crate::Table`] delegates all physical data access to a [`Storage`]
//! implementation, so the evaluator and every engine above it are
//! agnostic to the representation. Three backends ship in-tree:
//!
//! * [`RowStore`] — the original row store with one hash index per
//!   column (insertion-ordered `Vec<Tuple>` + `indexes[c][v]` buckets).
//! * [`CompositeStore`] — a [`RowStore`] plus adaptive *multi-column*
//!   hash indexes: it observes which bound-column sets the workload
//!   probes (or is told explicitly via [`Storage::ensure_index`], wired
//!   from the engines' body-pattern analysis) and materializes an exact
//!   bucket per value combination, collapsing a `min(bucket)` scan into
//!   a point lookup.
//! * [`ColumnarStore`] — column-major storage with lazily rebuilt
//!   sorted permutations per column, serving equality scans by binary
//!   search and true range scans ([`Storage::scan_range`]).
//!
//! ## The determinism contract
//!
//! The backtracking evaluator promises byte-identical answers across
//! backends (see `tests/storage_props.rs`). Two invariants make that
//! hold, and every backend must preserve them:
//!
//! 1. **Ascending candidates:** [`Storage::scan`] yields candidate row
//!    ids in ascending insertion order. Access paths may over-approximate
//!    (a superset of the matching rows) but never reorder, so the
//!    sequence of *matching* rows — and therefore the DFS exploration
//!    order — is backend-independent.
//! 2. **Exact, path-independent estimates:** [`Storage::estimate`]
//!    returns the exact number of rows matching the *most selective
//!    single bound column*, regardless of which access path `scan`
//!    would actually take. Atom ordering decisions are therefore
//!    identical across backends even when one of them could serve the
//!    probe from a strictly better index.

use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::{Arc, RwLock};

/// Probe count after which [`CompositeStore`] materializes an index for
/// an observed multi-column pattern.
pub const COMPOSITE_BUILD_THRESHOLD: u32 = 4;

/// How a [`Scan`] is being served — recorded by the evaluator as index
/// hit/miss counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessPath {
    /// Every row id, no index consulted.
    FullScan,
    /// Single-column hash bucket for the given column.
    ColumnIndex(usize),
    /// Exact multi-column hash bucket.
    CompositeIndex,
    /// Binary-searched run of a sorted column permutation.
    SortedRange(usize),
}

impl AccessPath {
    /// Whether an index served the scan (anything but a full scan).
    pub fn is_indexed(&self) -> bool {
        !matches!(self, AccessPath::FullScan)
    }
}

/// A stream of candidate row ids plus the access path that produced it.
/// Candidates arrive in ascending insertion order (see the module docs'
/// determinism contract); equality paths are exact or superset,
/// depending on the backend.
pub struct Scan<'a> {
    rows: Box<dyn Iterator<Item = usize> + 'a>,
    path: AccessPath,
}

impl<'a> Scan<'a> {
    /// A scan over a borrowed iterator.
    pub fn new(rows: impl Iterator<Item = usize> + 'a, path: AccessPath) -> Self {
        Scan {
            rows: Box::new(rows),
            path,
        }
    }

    /// A scan that owns a shared bucket (used by backends whose indexes
    /// live behind interior mutability: the iterator keeps the bucket
    /// alive via the `Arc`, no lock is held while iterating).
    pub fn from_arc(bucket: Arc<Vec<usize>>, path: AccessPath) -> Scan<'static> {
        let len = bucket.len();
        Scan {
            rows: Box::new((0..len).map(move |i| bucket[i])),
            path,
        }
    }

    /// The access path serving this scan.
    pub fn path(&self) -> AccessPath {
        self.path
    }
}

impl fmt::Debug for Scan<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Scan({:?})", self.path)
    }
}

impl Iterator for Scan<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        self.rows.next()
    }
}

/// Physical storage for one relation. Object-safe so custom backends
/// can plug in at runtime ([`Backend::Custom`]); see the module docs
/// for the determinism contract every implementation must uphold.
pub trait Storage: fmt::Debug + Send + Sync {
    /// Number of (distinct) rows.
    fn len(&self) -> usize;

    /// Whether the store holds no rows.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of columns (the caller has already arity-checked tuples).
    fn arity(&self) -> usize;

    /// Insert a tuple; returns whether it was new. Duplicates are
    /// ignored.
    fn insert(&mut self, tuple: Tuple) -> bool;

    /// O(1)-ish membership test for a fully grounded tuple of the right
    /// arity.
    fn contains(&self, values: &[Value]) -> bool;

    /// The value at (`row`, `col`). Rows are dense ids `0..len()` in
    /// insertion order.
    fn cell(&self, row: usize, col: usize) -> &Value;

    /// Candidate rows for the given `(column, value)` equality
    /// constraints (ascending row ids; possibly a superset — callers
    /// re-verify). An empty `bound` is a full scan.
    fn scan(&self, bound: &[(usize, Value)]) -> Scan<'_>;

    /// Exact number of rows matching the most selective single bound
    /// column (`len()` when `bound` is empty). Must be identical across
    /// backends — see the determinism contract.
    fn estimate(&self, bound: &[(usize, Value)]) -> usize;

    /// Rows whose `col` value lies in `[lo, hi]` (inclusive). Candidate
    /// order is unspecified for range scans. The default is a filtered
    /// full scan; sorted backends serve it by binary search.
    fn scan_range<'a>(&'a self, col: usize, lo: &Value, hi: &Value) -> Scan<'a> {
        let (lo, hi) = (lo.clone(), hi.clone());
        Scan::new(
            (0..self.len()).filter(move |&r| {
                let v = self.cell(r, col);
                *v >= lo && *v <= hi
            }),
            AccessPath::FullScan,
        )
    }

    /// Number of distinct values in `col`.
    fn distinct_count(&self, col: usize) -> usize;

    /// Advise the backend that the given multi-column equality pattern
    /// will be probed (columns ascending, length ≥ 2). Backends without
    /// composite indexes ignore it.
    fn ensure_index(&self, _cols: &[usize]) {}

    /// Column sets with a materialized multi-column index (empty for
    /// backends without them).
    fn composite_patterns(&self) -> Vec<Vec<usize>> {
        Vec::new()
    }

    /// Clone into a boxed trait object (for [`Backend::Custom`]).
    fn boxed_clone(&self) -> Box<dyn Storage>;
}

// ---------------------------------------------------------------------
// RowStore: insertion-ordered rows + one hash index per column.
// ---------------------------------------------------------------------

/// The original backend: rows in insertion order, one hash index per
/// column, and a set view for O(1) membership.
#[derive(Clone, Debug)]
pub struct RowStore {
    arity: usize,
    rows: Vec<Tuple>,
    /// `indexes[c][v]` = ascending row ids whose column `c` equals `v`.
    indexes: Vec<HashMap<Value, Vec<usize>>>,
    row_set: HashSet<Tuple>,
}

impl RowStore {
    /// An empty store with `arity` columns.
    pub fn new(arity: usize) -> Self {
        RowStore {
            arity,
            rows: Vec::new(),
            indexes: vec![HashMap::new(); arity],
            row_set: HashSet::new(),
        }
    }

    /// Row ids whose column `col` equals `value` (ascending).
    pub fn bucket(&self, col: usize, value: &Value) -> &[usize] {
        self.indexes[col].get(value).map_or(&[], Vec::as_slice)
    }
}

impl Storage for RowStore {
    fn len(&self) -> usize {
        self.rows.len()
    }

    fn arity(&self) -> usize {
        self.arity
    }

    fn insert(&mut self, tuple: Tuple) -> bool {
        if self.row_set.contains(&tuple) {
            return false;
        }
        let row_id = self.rows.len();
        for (c, v) in tuple.iter().enumerate() {
            self.indexes[c].entry(v.clone()).or_default().push(row_id);
        }
        self.row_set.insert(tuple.clone());
        self.rows.push(tuple);
        true
    }

    fn contains(&self, values: &[Value]) -> bool {
        // `Tuple: Borrow<[Value]>` makes this allocation-free.
        self.row_set.contains(values)
    }

    fn cell(&self, row: usize, col: usize) -> &Value {
        &self.rows[row][col]
    }

    fn scan(&self, bound: &[(usize, Value)]) -> Scan<'_> {
        let driver = bound
            .iter()
            .map(|(c, v)| (self.bucket(*c, v), *c))
            .min_by_key(|(b, _)| b.len());
        match driver {
            Some((bucket, c)) => Scan::new(bucket.iter().copied(), AccessPath::ColumnIndex(c)),
            None => Scan::new(0..self.rows.len(), AccessPath::FullScan),
        }
    }

    fn estimate(&self, bound: &[(usize, Value)]) -> usize {
        bound
            .iter()
            .map(|(c, v)| self.bucket(*c, v).len())
            .min()
            .unwrap_or(self.rows.len())
    }

    fn distinct_count(&self, col: usize) -> usize {
        self.indexes[col].len()
    }

    fn boxed_clone(&self) -> Box<dyn Storage> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------
// CompositeStore: RowStore + adaptive multi-column hash indexes.
// ---------------------------------------------------------------------

/// Observed-or-built state for one multi-column pattern.
#[derive(Debug)]
enum PatternState {
    /// Seen this many probes; builds at [`COMPOSITE_BUILD_THRESHOLD`].
    Counting(u32),
    /// Materialized: exact bucket per value combination. Buckets sit
    /// behind `Arc` so scans own them without holding the lock; inserts
    /// copy-on-write via [`Arc::make_mut`].
    Built(HashMap<Vec<Value>, Arc<Vec<usize>>>),
}

/// A [`RowStore`] that additionally materializes exact multi-column
/// hash indexes for the bound-column patterns the workload actually
/// probes (adaptively after [`COMPOSITE_BUILD_THRESHOLD`] sightings, or
/// immediately via [`Storage::ensure_index`]).
#[derive(Debug)]
pub struct CompositeStore {
    base: RowStore,
    /// Pattern (ascending column ids, length ≥ 2) → state.
    patterns: RwLock<HashMap<Vec<usize>, PatternState>>,
}

impl CompositeStore {
    /// An empty store with `arity` columns.
    pub fn new(arity: usize) -> Self {
        CompositeStore {
            base: RowStore::new(arity),
            patterns: RwLock::new(HashMap::new()),
        }
    }

    fn build_index(&self, cols: &[usize]) -> HashMap<Vec<Value>, Arc<Vec<usize>>> {
        let mut map: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for rid in 0..self.base.len() {
            let key: Vec<Value> = cols
                .iter()
                .map(|&c| self.base.cell(rid, c).clone())
                .collect();
            map.entry(key).or_default().push(rid);
        }
        map.into_iter().map(|(k, v)| (k, Arc::new(v))).collect()
    }

    /// The exact bucket for `bound` if a composite index covers its
    /// column set: `None` means "no index (yet)", `Some` with an empty
    /// bucket means "indexed, no matching rows". Counts the pattern
    /// sighting and builds the index at the threshold.
    fn composite_bucket(
        &self,
        cols: &[usize],
        bound: &[(usize, Value)],
    ) -> Option<Arc<Vec<usize>>> {
        let key = || -> Vec<Value> { bound.iter().map(|(_, v)| v.clone()).collect() };
        // Fast path: pattern already built — read lock only.
        {
            let guard = self.patterns.read().unwrap();
            match guard.get(cols) {
                Some(PatternState::Built(map)) => {
                    return Some(map.get(&key()).cloned().unwrap_or_default());
                }
                Some(PatternState::Counting(_)) | None => {}
            }
        }
        // Slow path (only until the pattern is built): count, maybe build.
        let mut guard = self.patterns.write().unwrap();
        let state = guard
            .entry(cols.to_vec())
            .or_insert(PatternState::Counting(0));
        if let PatternState::Counting(n) = state {
            *n += 1;
            if *n < COMPOSITE_BUILD_THRESHOLD {
                return None;
            }
            *state = PatternState::Built(self.build_index(cols));
        }
        match state {
            PatternState::Built(map) => Some(map.get(&key()).cloned().unwrap_or_default()),
            PatternState::Counting(_) => unreachable!("pattern built above"),
        }
    }
}

impl Clone for CompositeStore {
    fn clone(&self) -> Self {
        let patterns = self
            .patterns
            .read()
            .unwrap()
            .iter()
            .map(|(k, v)| {
                let state = match v {
                    PatternState::Counting(n) => PatternState::Counting(*n),
                    PatternState::Built(map) => PatternState::Built(map.clone()),
                };
                (k.clone(), state)
            })
            .collect();
        CompositeStore {
            base: self.base.clone(),
            patterns: RwLock::new(patterns),
        }
    }
}

impl Storage for CompositeStore {
    fn len(&self) -> usize {
        self.base.len()
    }

    fn arity(&self) -> usize {
        self.base.arity()
    }

    fn insert(&mut self, tuple: Tuple) -> bool {
        if !self.base.insert(tuple) {
            return false;
        }
        let rid = self.base.len() - 1;
        let mut guard = self.patterns.write().unwrap();
        for (cols, state) in guard.iter_mut() {
            if let PatternState::Built(map) = state {
                let key: Vec<Value> = cols
                    .iter()
                    .map(|&c| self.base.cell(rid, c).clone())
                    .collect();
                Arc::make_mut(map.entry(key).or_default()).push(rid);
            }
        }
        true
    }

    fn contains(&self, values: &[Value]) -> bool {
        self.base.contains(values)
    }

    fn cell(&self, row: usize, col: usize) -> &Value {
        self.base.cell(row, col)
    }

    fn scan(&self, bound: &[(usize, Value)]) -> Scan<'_> {
        if bound.len() >= 2 {
            let cols: Vec<usize> = bound.iter().map(|(c, _)| *c).collect();
            if let Some(bucket) = self.composite_bucket(&cols, bound) {
                return Scan::from_arc(bucket, AccessPath::CompositeIndex);
            }
        }
        self.base.scan(bound)
    }

    fn estimate(&self, bound: &[(usize, Value)]) -> usize {
        // Deliberately the single-column estimate (not the composite
        // bucket size): estimates must be backend-independent so atom
        // ordering — and therefore answers — never diverge.
        self.base.estimate(bound)
    }

    fn distinct_count(&self, col: usize) -> usize {
        self.base.distinct_count(col)
    }

    fn ensure_index(&self, cols: &[usize]) {
        if cols.len() < 2 || cols.iter().any(|&c| c >= self.arity()) {
            return;
        }
        let mut guard = self.patterns.write().unwrap();
        let state = guard
            .entry(cols.to_vec())
            .or_insert(PatternState::Counting(0));
        if let PatternState::Counting(_) = state {
            *state = PatternState::Built(self.build_index(cols));
        }
    }

    fn composite_patterns(&self) -> Vec<Vec<usize>> {
        let mut out: Vec<Vec<usize>> = self
            .patterns
            .read()
            .unwrap()
            .iter()
            .filter(|(_, s)| matches!(s, PatternState::Built(_)))
            .map(|(k, _)| k.clone())
            .collect();
        out.sort();
        out
    }

    fn boxed_clone(&self) -> Box<dyn Storage> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------
// ColumnarStore: column-major values + lazy sorted permutations.
// ---------------------------------------------------------------------

/// Column-major storage with one lazily (re)built sorted permutation
/// per column. Equality probes binary-search the permutation; range
/// probes ([`Storage::scan_range`]) come for free. Permutations are
/// sorted by `(value, row id)`, so equality runs yield ascending row
/// ids as the determinism contract requires.
#[derive(Debug)]
pub struct ColumnarStore {
    arity: usize,
    len: usize,
    cols: Vec<Vec<Value>>,
    row_set: HashSet<Tuple>,
    /// `perms[c]` sorts rows by `(cols[c][r], r)`. Stale (shorter than
    /// `len`) after inserts; rebuilt on the next probe of that column.
    perms: RwLock<Vec<Arc<Vec<u32>>>>,
}

impl ColumnarStore {
    /// An empty store with `arity` columns.
    pub fn new(arity: usize) -> Self {
        ColumnarStore {
            arity,
            len: 0,
            cols: vec![Vec::new(); arity],
            row_set: HashSet::new(),
            perms: RwLock::new((0..arity).map(|_| Arc::new(Vec::new())).collect()),
        }
    }

    /// The current sorted permutation for `col`, rebuilding if stale.
    fn perm(&self, col: usize) -> Arc<Vec<u32>> {
        {
            let guard = self.perms.read().unwrap();
            if guard[col].len() == self.len {
                return guard[col].clone();
            }
        }
        let mut guard = self.perms.write().unwrap();
        if guard[col].len() != self.len {
            let column = &self.cols[col];
            let mut perm: Vec<u32> = (0..self.len as u32).collect();
            perm.sort_unstable_by(|&a, &b| {
                column[a as usize].cmp(&column[b as usize]).then(a.cmp(&b))
            });
            guard[col] = Arc::new(perm);
        }
        guard[col].clone()
    }

    /// `perm` positions of the run equal to `value` in `col`.
    fn equal_run(&self, col: usize, value: &Value) -> (Arc<Vec<u32>>, std::ops::Range<usize>) {
        let perm = self.perm(col);
        let column = &self.cols[col];
        let lo = perm.partition_point(|&r| column[r as usize] < *value);
        let hi = perm.partition_point(|&r| column[r as usize] <= *value);
        (perm, lo..hi)
    }
}

impl Clone for ColumnarStore {
    fn clone(&self) -> Self {
        ColumnarStore {
            arity: self.arity,
            len: self.len,
            cols: self.cols.clone(),
            row_set: self.row_set.clone(),
            perms: RwLock::new(self.perms.read().unwrap().clone()),
        }
    }
}

impl Storage for ColumnarStore {
    fn len(&self) -> usize {
        self.len
    }

    fn arity(&self) -> usize {
        self.arity
    }

    fn insert(&mut self, tuple: Tuple) -> bool {
        if self.row_set.contains(&tuple) {
            return false;
        }
        for (c, v) in tuple.iter().enumerate() {
            self.cols[c].push(v.clone());
        }
        self.row_set.insert(tuple);
        self.len += 1;
        true
    }

    fn contains(&self, values: &[Value]) -> bool {
        self.row_set.contains(values)
    }

    fn cell(&self, row: usize, col: usize) -> &Value {
        &self.cols[col][row]
    }

    fn scan(&self, bound: &[(usize, Value)]) -> Scan<'_> {
        let mut best: Option<(Arc<Vec<u32>>, std::ops::Range<usize>, usize)> = None;
        for (c, v) in bound {
            let (perm, run) = self.equal_run(*c, v);
            if best.as_ref().is_none_or(|(_, r, _)| run.len() < r.len()) {
                best = Some((perm, run, *c));
            }
        }
        match best {
            Some((perm, run, c)) => Scan::new(
                run.map(move |i| perm[i] as usize),
                AccessPath::SortedRange(c),
            ),
            None => Scan::new(0..self.len, AccessPath::FullScan),
        }
    }

    fn estimate(&self, bound: &[(usize, Value)]) -> usize {
        bound
            .iter()
            .map(|(c, v)| self.equal_run(*c, v).1.len())
            .min()
            .unwrap_or(self.len)
    }

    fn scan_range<'a>(&'a self, col: usize, lo: &Value, hi: &Value) -> Scan<'a> {
        let perm = self.perm(col);
        let column = &self.cols[col];
        let start = perm.partition_point(|&r| column[r as usize] < *lo);
        let end = perm.partition_point(|&r| column[r as usize] <= *hi);
        Scan::new(
            (start..end).map(move |i| perm[i] as usize),
            AccessPath::SortedRange(col),
        )
    }

    fn distinct_count(&self, col: usize) -> usize {
        let perm = self.perm(col);
        let column = &self.cols[col];
        let mut distinct = 0;
        let mut prev: Option<&Value> = None;
        for &r in perm.iter() {
            let v = &column[r as usize];
            if prev != Some(v) {
                distinct += 1;
                prev = Some(v);
            }
        }
        distinct
    }

    fn boxed_clone(&self) -> Box<dyn Storage> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------
// Backend: the runtime-selectable storage for a table.
// ---------------------------------------------------------------------

/// Which in-tree backend a [`crate::Database`] builds its tables with.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// [`RowStore`] (the default).
    #[default]
    Row,
    /// [`CompositeStore`].
    Composite,
    /// [`ColumnarStore`].
    Columnar,
}

impl BackendKind {
    /// All in-tree backends (handy for equivalence sweeps).
    pub const ALL: [BackendKind; 3] = [
        BackendKind::Row,
        BackendKind::Composite,
        BackendKind::Columnar,
    ];

    /// Stable lowercase name (bench/series labels).
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::Row => "row",
            BackendKind::Composite => "composite",
            BackendKind::Columnar => "columnar",
        }
    }
}

/// A table's physical storage: one of the in-tree backends, or any
/// boxed [`Storage`] implementation.
#[derive(Debug)]
pub enum Backend {
    /// Per-column-hash row store.
    Row(RowStore),
    /// Row store + adaptive composite indexes.
    Composite(CompositeStore),
    /// Sorted columnar store.
    Columnar(ColumnarStore),
    /// A custom storage implementation.
    Custom(Box<dyn Storage>),
}

impl Backend {
    /// Build the given in-tree backend for `arity` columns.
    pub fn of_kind(kind: BackendKind, arity: usize) -> Self {
        match kind {
            BackendKind::Row => Backend::Row(RowStore::new(arity)),
            BackendKind::Composite => Backend::Composite(CompositeStore::new(arity)),
            BackendKind::Columnar => Backend::Columnar(ColumnarStore::new(arity)),
        }
    }

    /// The underlying storage as a trait object.
    pub fn store(&self) -> &dyn Storage {
        match self {
            Backend::Row(s) => s,
            Backend::Composite(s) => s,
            Backend::Columnar(s) => s,
            Backend::Custom(s) => s.as_ref(),
        }
    }

    /// The underlying storage, mutably.
    pub fn store_mut(&mut self) -> &mut dyn Storage {
        match self {
            Backend::Row(s) => s,
            Backend::Composite(s) => s,
            Backend::Columnar(s) => s,
            Backend::Custom(s) => s.as_mut(),
        }
    }
}

impl Clone for Backend {
    fn clone(&self) -> Self {
        match self {
            Backend::Row(s) => Backend::Row(s.clone()),
            Backend::Composite(s) => Backend::Composite(s.clone()),
            Backend::Columnar(s) => Backend::Columnar(s.clone()),
            Backend::Custom(s) => Backend::Custom(s.boxed_clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuples() -> Vec<Tuple> {
        vec![
            Tuple::new(vec![Value::int(1), Value::str("a"), Value::int(10)]),
            Tuple::new(vec![Value::int(2), Value::str("b"), Value::int(10)]),
            Tuple::new(vec![Value::int(3), Value::str("a"), Value::int(20)]),
            Tuple::new(vec![Value::int(4), Value::str("a"), Value::int(10)]),
        ]
    }

    fn filled(kind: BackendKind) -> Backend {
        let mut b = Backend::of_kind(kind, 3);
        for t in tuples() {
            assert!(b.store_mut().insert(t));
        }
        b
    }

    #[test]
    fn all_backends_agree_on_scans_and_estimates() {
        let row = filled(BackendKind::Row);
        for kind in [BackendKind::Composite, BackendKind::Columnar] {
            let other = filled(kind);
            for bound in [
                vec![],
                vec![(1, Value::str("a"))],
                vec![(1, Value::str("a")), (2, Value::int(10))],
                vec![(0, Value::int(3)), (2, Value::int(20))],
                vec![(1, Value::str("zzz"))],
            ] {
                // Repeat so the composite store crosses its build
                // threshold and switches access paths mid-test: matching
                // rows must not change.
                for _ in 0..=COMPOSITE_BUILD_THRESHOLD {
                    let verify = |s: &dyn Storage| -> Vec<usize> {
                        s.scan(&bound)
                            .filter(|&r| bound.iter().all(|(c, v)| s.cell(r, *c) == v))
                            .collect()
                    };
                    assert_eq!(
                        verify(row.store()),
                        verify(other.store()),
                        "{kind:?} diverged on {bound:?}"
                    );
                    assert_eq!(
                        row.store().estimate(&bound),
                        other.store().estimate(&bound),
                        "{kind:?} estimate diverged on {bound:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn composite_index_builds_after_threshold() {
        let b = filled(BackendKind::Composite);
        let bound = vec![(1, Value::str("a")), (2, Value::int(10))];
        for i in 0..COMPOSITE_BUILD_THRESHOLD {
            let path = b.store().scan(&bound).path();
            if i + 1 < COMPOSITE_BUILD_THRESHOLD {
                assert_eq!(path, AccessPath::ColumnIndex(1));
            } else {
                assert_eq!(path, AccessPath::CompositeIndex);
            }
        }
        assert_eq!(b.store().composite_patterns(), vec![vec![1, 2]]);
        let hits: Vec<usize> = b.store().scan(&bound).collect();
        assert_eq!(hits, vec![0, 3]);
    }

    #[test]
    fn composite_index_tracks_inserts() {
        let mut b = filled(BackendKind::Composite);
        b.store().ensure_index(&[1, 2]);
        let bound = vec![(1, Value::str("a")), (2, Value::int(10))];
        assert_eq!(b.store().scan(&bound).collect::<Vec<_>>(), vec![0, 3]);
        b.store_mut().insert(Tuple::new(vec![
            Value::int(5),
            Value::str("a"),
            Value::int(10),
        ]));
        assert_eq!(b.store().scan(&bound).collect::<Vec<_>>(), vec![0, 3, 4]);
        assert_eq!(b.store().scan(&bound).path(), AccessPath::CompositeIndex);
    }

    #[test]
    fn ensure_index_ignores_bad_patterns() {
        let b = filled(BackendKind::Composite);
        b.store().ensure_index(&[0]); // too short
        b.store().ensure_index(&[0, 9]); // out of range
        assert!(b.store().composite_patterns().is_empty());
    }

    #[test]
    fn columnar_equality_runs_yield_ascending_rows() {
        let b = filled(BackendKind::Columnar);
        let ids: Vec<usize> = b.store().scan(&[(1, Value::str("a"))]).collect();
        assert_eq!(ids, vec![0, 2, 3]);
        assert_eq!(
            b.store().scan(&[(1, Value::str("a"))]).path(),
            AccessPath::SortedRange(1)
        );
    }

    #[test]
    fn columnar_range_scan_is_binary_searched() {
        let b = filled(BackendKind::Columnar);
        let scan = b.store().scan_range(0, &Value::int(2), &Value::int(3));
        assert_eq!(scan.path(), AccessPath::SortedRange(0));
        let mut ids: Vec<usize> = scan.collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2]);
        // Default (filtered full scan) path agrees.
        let row = filled(BackendKind::Row);
        let mut base: Vec<usize> = row
            .store()
            .scan_range(0, &Value::int(2), &Value::int(3))
            .collect();
        base.sort_unstable();
        assert_eq!(base, ids);
    }

    #[test]
    fn columnar_perm_rebuilds_after_insert() {
        let mut b = filled(BackendKind::Columnar);
        assert_eq!(b.store().estimate(&[(2, Value::int(10))]), 3);
        b.store_mut().insert(Tuple::new(vec![
            Value::int(0),
            Value::str("c"),
            Value::int(10),
        ]));
        assert_eq!(b.store().estimate(&[(2, Value::int(10))]), 4);
        assert_eq!(b.store().distinct_count(1), 3);
    }

    #[test]
    fn zero_arity_stores_behave() {
        for kind in BackendKind::ALL {
            let mut b = Backend::of_kind(kind, 0);
            assert!(!b.store().contains(&[]));
            assert!(b.store_mut().insert(Tuple::new(Vec::new())));
            assert!(!b.store_mut().insert(Tuple::new(Vec::new())));
            assert_eq!(b.store().len(), 1);
            assert!(b.store().contains(&[]));
            assert_eq!(b.store().scan(&[]).collect::<Vec<_>>(), vec![0]);
        }
    }

    #[test]
    fn duplicates_ignored_everywhere() {
        for kind in BackendKind::ALL {
            let mut b = filled(kind);
            assert!(!b.store_mut().insert(tuples().swap_remove(0)));
            assert_eq!(b.store().len(), 4, "{kind:?}");
        }
    }
}
