//! Backtracking evaluation of conjunctive queries.
//!
//! The evaluator performs a depth-first join over the query's atoms with
//! *greedy dynamic atom ordering*: at each step it picks the
//! not-yet-joined atom with the smallest candidate-row estimate under
//! the current bindings. Fully ground atoms estimate 0 and are
//! short-circuited through an O(1) membership test — no rows are walked.
//! Everything else is served through [`crate::Table::scan`], which lets
//! the selected [`crate::storage::Storage`] backend pick its best access
//! path (single-column bucket, composite index, or sorted range).
//!
//! Atom selection resolves each atom's bound columns exactly once; the
//! winning plan's bound set is reused to drive the scan, and the scan
//! iterator is consumed without materializing row-id vectors. Estimates
//! are backend-independent by the [`crate::storage`] determinism
//! contract, so `find_one`/`find_all` answers are byte-identical across
//! backends.
//!
//! This is a classic left-deep index-nested-loop strategy — entirely
//! adequate for the paper's workloads, whose combined queries have few
//! atoms per relation and highly selective constants.

use crate::database::Database;
use crate::error::DbError;
use crate::query::{ConjunctiveQuery, Term, Var};
use crate::value::Value;
use std::collections::HashMap;

/// A (partial) mapping from query variables to database values.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Assignment {
    map: HashMap<Var, Value>,
}

impl Assignment {
    /// An empty assignment.
    pub fn new() -> Self {
        Assignment::default()
    }

    /// The value bound to `v`, if any.
    pub fn get(&self, v: Var) -> Option<&Value> {
        self.map.get(&v)
    }

    /// Bind `v` to `value`, returning the previous binding if one existed.
    pub fn bind(&mut self, v: Var, value: Value) -> Option<Value> {
        self.map.insert(v, value)
    }

    /// Remove the binding of `v`.
    pub fn unbind(&mut self, v: Var) {
        self.map.remove(&v);
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate over (variable, value) bindings in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, &Value)> {
        self.map.iter().map(|(v, val)| (*v, val))
    }

    /// Resolve a term to a value under this assignment.
    pub fn resolve(&self, term: &Term) -> Option<Value> {
        match term {
            Term::Const(c) => Some(c.clone()),
            Term::Var(v) => self.get(*v).cloned(),
        }
    }
}

impl FromIterator<(Var, Value)> for Assignment {
    fn from_iter<T: IntoIterator<Item = (Var, Value)>>(iter: T) -> Self {
        Assignment {
            map: iter.into_iter().collect(),
        }
    }
}

/// Find one satisfying assignment for `query`, if any.
pub fn find_one(db: &Database, query: &ConjunctiveQuery) -> Result<Option<Assignment>, DbError> {
    query.validate(db)?;
    let mut result = None;
    search(db, query, &mut |a| {
        result = Some(a.clone());
        true // stop at first answer: choose-1 semantics
    })?;
    Ok(result)
}

/// Enumerate satisfying assignments (up to `limit`).
pub fn find_all(
    db: &Database,
    query: &ConjunctiveQuery,
    limit: Option<usize>,
) -> Result<Vec<Assignment>, DbError> {
    query.validate(db)?;
    let mut out = Vec::new();
    search(db, query, &mut |a| {
        out.push(a.clone());
        limit.is_some_and(|l| out.len() >= l)
    })?;
    Ok(out)
}

/// Depth-first join driver. Calls `on_answer` for every satisfying
/// assignment; stops early when the callback returns `true`.
fn search(
    db: &Database,
    query: &ConjunctiveQuery,
    on_answer: &mut dyn FnMut(&Assignment) -> bool,
) -> Result<(), DbError> {
    let mut used = vec![false; query.atoms.len()];
    let mut binding = Assignment::new();
    step(db, query, &mut used, &mut binding, on_answer)?;
    Ok(())
}

/// One level of the join: pick the best remaining atom, enumerate its
/// matches, recurse. Returns `true` if the search should stop.
fn step(
    db: &Database,
    query: &ConjunctiveQuery,
    used: &mut [bool],
    binding: &mut Assignment,
    on_answer: &mut dyn FnMut(&Assignment) -> bool,
) -> Result<bool, DbError> {
    let Some(plan) = pick_next_atom(db, query, used, binding)? else {
        // All atoms joined: report the answer.
        return Ok(on_answer(binding));
    };
    let next = plan.atom;
    used[next] = true;
    let stop = enumerate_matches(db, query, &plan, used, binding, on_answer)?;
    used[next] = false;
    Ok(stop)
}

/// The selected atom plus the bound columns its selection already
/// resolved — reused as-is to drive the scan, so bucket sizes are never
/// recomputed between selection and enumeration.
struct AtomPlan {
    /// Index into `query.atoms`.
    atom: usize,
    /// `(column, value)` for every term resolvable under the current
    /// binding, in ascending column order.
    bound: Vec<(usize, Value)>,
    /// Whether every term resolved (the atom is fully ground).
    ground: bool,
}

/// Greedy ordering: among unused atoms, prefer ground atoms (estimate
/// 0 — they cost one membership probe), then atoms with the smallest
/// candidate-row estimate given current bindings. Estimates come from
/// [`crate::Table::estimate`], which is backend-independent.
fn pick_next_atom(
    db: &Database,
    query: &ConjunctiveQuery,
    used: &[bool],
    binding: &Assignment,
) -> Result<Option<AtomPlan>, DbError> {
    let mut best: Option<(usize, AtomPlan)> = None; // (estimate, plan)
    for (i, atom) in query.atoms.iter().enumerate() {
        if used[i] {
            continue;
        }
        let table = db.table(&atom.relation)?;
        let mut bound: Vec<(usize, Value)> = Vec::with_capacity(atom.terms.len());
        for (c, term) in atom.terms.iter().enumerate() {
            if let Some(v) = binding.resolve(term) {
                bound.push((c, v));
            }
        }
        let ground = bound.len() == atom.terms.len();
        let est = if ground {
            0 // one O(1) membership probe
        } else if bound.is_empty() {
            // Unbound atoms are a last resort: full scan.
            table.len().max(1) + 1_000_000
        } else {
            table.estimate(&bound)
        };
        if best.as_ref().is_none_or(|(b, _)| est < *b) {
            best = Some((
                est,
                AtomPlan {
                    atom: i,
                    bound,
                    ground,
                },
            ));
        }
    }
    Ok(best.map(|(_, p)| p))
}

/// Enumerate the rows of the planned atom's relation that are compatible
/// with the current binding, extending the binding and recursing for
/// each. Fully ground atoms short-circuit through the storage membership
/// test without touching any row.
fn enumerate_matches(
    db: &Database,
    query: &ConjunctiveQuery,
    plan: &AtomPlan,
    used: &mut [bool],
    binding: &mut Assignment,
    on_answer: &mut dyn FnMut(&Assignment) -> bool,
) -> Result<bool, DbError> {
    let atom = &query.atoms[plan.atom];
    let table = db.table(&atom.relation)?;
    let stats = db.stats();

    if plan.ground {
        // Every term resolved to a value: one O(1) membership probe.
        // `plan.bound` is complete and in column order, so the values
        // form the candidate tuple directly.
        let values: Vec<Value> = plan.bound.iter().map(|(_, v)| v.clone()).collect();
        stats.record_ground_probe();
        if !table.contains(&values) {
            return Ok(false);
        }
        return step(db, query, used, binding, on_answer);
    }

    // The plan's bound set drives the scan: the backend picks its best
    // access path, and the iterator is consumed in place — no row-id
    // clone, no lock held while iterating.
    let scan = table.scan(&plan.bound);
    if scan.path().is_indexed() {
        stats.record_index_hit();
    } else {
        stats.record_index_miss();
    }

    let mut scanned: u64 = 0;
    let mut stopped = false;
    for rid in scan {
        scanned += 1;
        // Try to match the atom's terms against this row, recording which
        // variables we newly bind so we can undo on backtrack.
        let mut newly_bound: Vec<Var> = Vec::new();
        let mut ok = true;
        for (c, term) in atom.terms.iter().enumerate() {
            match term {
                Term::Const(v) => {
                    if v != table.cell(rid, c) {
                        ok = false;
                        break;
                    }
                }
                Term::Var(var) => match binding.get(*var) {
                    Some(bound) => {
                        if bound != table.cell(rid, c) {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        binding.bind(*var, table.cell(rid, c).clone());
                        newly_bound.push(*var);
                    }
                },
            }
        }
        if ok {
            let stop = step(db, query, used, binding, on_answer)?;
            for v in &newly_bound {
                binding.unbind(*v);
            }
            if stop {
                stopped = true;
                break;
            }
        } else {
            for v in &newly_bound {
                binding.unbind(*v);
            }
        }
    }
    stats.record_rows_scanned(scanned);
    Ok(stopped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Atom;
    use crate::value::Value;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table("F", &["id", "dest"]).unwrap();
        db.create_table("H", &["id", "loc"]).unwrap();
        for (id, dest) in [(1, "Zurich"), (2, "Paris"), (3, "Paris"), (4, "Athens")] {
            db.insert("F", vec![Value::int(id), Value::str(dest)])
                .unwrap();
        }
        for (id, loc) in [(10, "Paris"), (11, "Athens")] {
            db.insert("H", vec![Value::int(id), Value::str(loc)])
                .unwrap();
        }
        db
    }

    fn atom(rel: &str, terms: Vec<Term>) -> Atom {
        Atom::new(rel, terms)
    }

    #[test]
    fn empty_query_is_trivially_satisfiable() {
        let db = db();
        let q = ConjunctiveQuery::empty();
        let a = find_one(&db, &q).unwrap().unwrap();
        assert!(a.is_empty());
    }

    #[test]
    fn constant_selection() {
        let db = db();
        let q = ConjunctiveQuery::new(vec![atom("F", vec![Term::var(0), Term::constant("Paris")])]);
        let a = find_one(&db, &q).unwrap().unwrap();
        let id = a.get(Var(0)).unwrap().as_int().unwrap();
        assert!(id == 2 || id == 3);
    }

    #[test]
    fn unsatisfiable_constant() {
        let db = db();
        let q = ConjunctiveQuery::new(vec![atom("F", vec![Term::var(0), Term::constant("Oslo")])]);
        assert!(find_one(&db, &q).unwrap().is_none());
    }

    #[test]
    fn join_on_shared_variable() {
        // F(x, d), H(y, d): flight destination with a hotel in the same city.
        let db = db();
        let q = ConjunctiveQuery::new(vec![
            atom("F", vec![Term::var(0), Term::var(2)]),
            atom("H", vec![Term::var(1), Term::var(2)]),
        ]);
        let all = find_all(&db, &q, None).unwrap();
        // Paris: flights 2,3 × hotel 10 → 2 answers. Athens: flight 4 ×
        // hotel 11 → 1 answer. Zurich: no hotel.
        assert_eq!(all.len(), 3);
        for a in &all {
            let d = a.get(Var(2)).unwrap().as_str().unwrap().to_string();
            assert!(d == "Paris" || d == "Athens");
        }
    }

    #[test]
    fn find_all_respects_limit() {
        let db = db();
        let q = ConjunctiveQuery::new(vec![atom("F", vec![Term::var(0), Term::var(1)])]);
        let two = find_all(&db, &q, Some(2)).unwrap();
        assert_eq!(two.len(), 2);
        let all = find_all(&db, &q, None).unwrap();
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn repeated_variable_in_one_atom() {
        // F(x, x) should have no answers (ids are ints, dests strings).
        let db = db();
        let q = ConjunctiveQuery::new(vec![atom("F", vec![Term::var(0), Term::var(0)])]);
        assert!(find_one(&db, &q).unwrap().is_none());
    }

    #[test]
    fn repeated_variable_matching() {
        let mut db = Database::new();
        db.create_table("E", &["a", "b"]).unwrap();
        db.insert("E", vec![Value::int(1), Value::int(1)]).unwrap();
        db.insert("E", vec![Value::int(1), Value::int(2)]).unwrap();
        let q = ConjunctiveQuery::new(vec![atom("E", vec![Term::var(0), Term::var(0)])]);
        let all = find_all(&db, &q, None).unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].get(Var(0)), Some(&Value::int(1)));
    }

    #[test]
    fn ground_atom_membership() {
        let db = db();
        let sat = ConjunctiveQuery::new(vec![atom(
            "F",
            vec![Term::constant(1i64), Term::constant("Zurich")],
        )]);
        assert!(find_one(&db, &sat).unwrap().is_some());
        let unsat = ConjunctiveQuery::new(vec![atom(
            "F",
            vec![Term::constant(1i64), Term::constant("Paris")],
        )]);
        assert!(find_one(&db, &unsat).unwrap().is_none());
    }

    #[test]
    fn triangle_join() {
        // R(x,y), R(y,z), R(z,x) on a small cyclic relation.
        let mut db = Database::new();
        db.create_table("R", &["a", "b"]).unwrap();
        db.insert("R", vec![Value::int(1), Value::int(2)]).unwrap();
        db.insert("R", vec![Value::int(2), Value::int(3)]).unwrap();
        db.insert("R", vec![Value::int(3), Value::int(1)]).unwrap();
        db.insert("R", vec![Value::int(3), Value::int(4)]).unwrap();
        let q = ConjunctiveQuery::new(vec![
            atom("R", vec![Term::var(0), Term::var(1)]),
            atom("R", vec![Term::var(1), Term::var(2)]),
            atom("R", vec![Term::var(2), Term::var(0)]),
        ]);
        let all = find_all(&db, &q, None).unwrap();
        // The triangle 1→2→3→1 in its three rotations.
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn validation_rejects_unknown_relation_and_bad_arity() {
        let db = db();
        let bad_rel = ConjunctiveQuery::new(vec![atom("Nope", vec![Term::var(0)])]);
        assert!(find_one(&db, &bad_rel).is_err());
        let bad_arity = ConjunctiveQuery::new(vec![atom("F", vec![Term::var(0)])]);
        assert!(find_one(&db, &bad_arity).is_err());
    }

    /// Regression pin for the ground-atom short-circuit: a fully
    /// resolved atom must cost exactly one membership probe and walk
    /// zero rows, even when its values land in a hot (large) bucket.
    #[test]
    fn ground_atom_probe_counts_are_pinned() {
        for kind in crate::storage::BackendKind::ALL {
            let mut db = Database::with_backend(kind);
            db.create_table("A", &["k", "v"]).unwrap();
            // One hot key: the column-0 bucket for `1` holds 1000 rows.
            for i in 0..1000 {
                db.insert("A", vec![Value::int(1), Value::int(i)]).unwrap();
            }
            db.stats().reset();
            let sat = ConjunctiveQuery::new(vec![atom(
                "A",
                vec![Term::constant(1i64), Term::constant(500i64)],
            )]);
            assert!(db.find_one(&sat).unwrap().is_some());
            let unsat = ConjunctiveQuery::new(vec![atom(
                "A",
                vec![Term::constant(1i64), Term::constant(5000i64)],
            )]);
            assert!(db.find_one(&unsat).unwrap().is_none());
            let stats = db.stats();
            assert_eq!(stats.ground_probe_count(), 2, "{kind:?}");
            assert_eq!(
                stats.rows_scanned(),
                0,
                "{kind:?}: ground atoms walk no rows"
            );
        }
    }

    /// Regression pin for scan-driven enumeration: a single-constant
    /// probe into a selective bucket walks exactly the bucket, through
    /// an index.
    #[test]
    fn selective_scan_probe_counts_are_pinned() {
        for kind in crate::storage::BackendKind::ALL {
            let mut db = Database::with_backend(kind);
            db.create_table("A", &["k", "v"]).unwrap();
            for i in 0..100 {
                db.insert("A", vec![Value::int(i), Value::int(i % 10)])
                    .unwrap();
            }
            db.stats().reset();
            // A(x, 7): the column-1 bucket holds exactly 10 rows.
            let q =
                ConjunctiveQuery::new(vec![atom("A", vec![Term::var(0), Term::constant(7i64)])]);
            assert_eq!(db.find_all(&q, None).unwrap().len(), 10);
            let stats = db.stats();
            assert_eq!(stats.rows_scanned(), 10, "{kind:?}");
            assert_eq!(stats.index_hit_count(), 1, "{kind:?}");
            assert_eq!(stats.index_miss_count(), 0, "{kind:?}");
        }
    }

    /// Answers are byte-identical across backends: same assignments in
    /// the same order, per the storage determinism contract.
    #[test]
    fn backends_agree_on_answer_order() {
        let build = |kind| {
            let mut db = Database::with_backend(kind);
            db.create_table("R", &["a", "b"]).unwrap();
            for (a, b) in [(1, 2), (2, 3), (3, 1), (3, 4), (1, 4), (4, 2)] {
                db.insert("R", vec![Value::int(a), Value::int(b)]).unwrap();
            }
            db
        };
        let q = ConjunctiveQuery::new(vec![
            atom("R", vec![Term::var(0), Term::var(1)]),
            atom("R", vec![Term::var(1), Term::var(2)]),
        ]);
        let reference = build(crate::storage::BackendKind::Row);
        let expected = reference.find_all(&q, None).unwrap();
        for kind in crate::storage::BackendKind::ALL {
            let db = build(kind);
            assert_eq!(db.find_all(&q, None).unwrap(), expected, "{kind:?}");
            assert_eq!(
                db.find_one(&q).unwrap(),
                expected.first().cloned(),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn cross_product_when_no_shared_vars() {
        let db = db();
        let q = ConjunctiveQuery::new(vec![
            atom("F", vec![Term::var(0), Term::constant("Zurich")]),
            atom("H", vec![Term::var(1), Term::constant("Paris")]),
        ]);
        let all = find_all(&db, &q, None).unwrap();
        assert_eq!(all.len(), 1); // 1 Zurich flight × 1 Paris hotel
        let a = &all[0];
        assert_eq!(a.get(Var(0)), Some(&Value::int(1)));
        assert_eq!(a.get(Var(1)), Some(&Value::int(10)));
    }
}
