//! Interned names for relations and attributes.

use std::fmt;
use std::sync::Arc;

/// A relation or attribute name.
///
/// Wraps `Arc<str>` so that names can be cloned freely while building
/// coordination graphs and combined queries.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(Arc<str>);

impl Symbol {
    /// Create a symbol from a string.
    pub fn new(name: impl AsRef<str>) -> Self {
        Symbol(Arc::from(name.as_ref()))
    }

    /// The symbol's textual name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::new(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Self {
        Symbol::new(s)
    }
}

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn equality_and_hash() {
        let a = Symbol::new("Flights");
        let b: Symbol = "Flights".into();
        assert_eq!(a, b);
        let mut m = HashMap::new();
        m.insert(a.clone(), 1);
        assert_eq!(m.get(&b), Some(&1));
    }

    #[test]
    fn compares_with_str() {
        let a = Symbol::new("R");
        assert_eq!(a, "R");
        assert_ne!(a, "Q");
    }

    #[test]
    fn display() {
        assert_eq!(Symbol::new("Hotels").to_string(), "Hotels");
    }
}
