//! Relation schemas: named attributes with positional access.

use crate::error::DbError;
use crate::symbol::Symbol;

/// The schema of one relation: its name and ordered attribute names.
///
/// The first attribute is conventionally the key (as in the paper's
/// `S(key, A_1, ..., A_d)` form used by the Consistent Coordination
/// Algorithm), but the engine itself does not enforce key constraints —
/// duplicate tuples are simply deduplicated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelationSchema {
    name: Symbol,
    attrs: Vec<Symbol>,
}

impl RelationSchema {
    /// Create a schema for relation `name` with the given attribute names.
    ///
    /// Returns an error if two attributes share a name.
    pub fn new(
        name: impl Into<Symbol>,
        attrs: impl IntoIterator<Item = impl Into<Symbol>>,
    ) -> Result<Self, DbError> {
        let name = name.into();
        let attrs: Vec<Symbol> = attrs.into_iter().map(Into::into).collect();
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].contains(a) {
                return Err(DbError::DuplicateAttribute {
                    relation: name.to_string(),
                    attribute: a.to_string(),
                });
            }
        }
        Ok(RelationSchema { name, attrs })
    }

    /// The relation's name.
    pub fn name(&self) -> &Symbol {
        &self.name
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Ordered attribute names.
    pub fn attrs(&self) -> &[Symbol] {
        &self.attrs
    }

    /// Position of the attribute named `attr`, if any.
    pub fn attr_index(&self, attr: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.as_str() == attr)
    }

    /// Position of `attr`, or a descriptive error.
    pub fn require_attr(&self, attr: &str) -> Result<usize, DbError> {
        self.attr_index(attr)
            .ok_or_else(|| DbError::UnknownAttribute {
                relation: self.name.to_string(),
                attribute: attr.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let s = RelationSchema::new("Flights", ["flightId", "destination"]).unwrap();
        assert_eq!(s.name(), &Symbol::new("Flights"));
        assert_eq!(s.arity(), 2);
        assert_eq!(s.attr_index("destination"), Some(1));
        assert_eq!(s.attr_index("nope"), None);
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = RelationSchema::new("R", ["a", "a"]).unwrap_err();
        assert!(matches!(err, DbError::DuplicateAttribute { .. }));
    }

    #[test]
    fn require_attr_errors_are_descriptive() {
        let s = RelationSchema::new("R", ["a"]).unwrap();
        let err = s.require_attr("b").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains('R') && msg.contains('b'), "got: {msg}");
    }

    #[test]
    fn zero_arity_allowed() {
        // The hardness reductions use unary and nullary-ish relations; a
        // zero-attribute schema is degenerate but legal.
        let s = RelationSchema::new("T", Vec::<&str>::new()).unwrap();
        assert_eq!(s.arity(), 0);
    }
}
