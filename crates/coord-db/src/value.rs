//! Database values: 64-bit integers and cheaply cloneable strings.

use std::fmt;
use std::sync::Arc;

/// A single attribute value stored in a database tuple.
///
/// Strings are reference-counted (`Arc<str>`) so that cloning values while
/// building substitutions, groundings and combined queries never copies
/// string data.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// 64-bit signed integer (keys, dates encoded as ordinals, truth values
    /// in the hardness reductions).
    Int(i64),
    /// Interned string (user names, destinations, airline names, ...).
    Str(Arc<str>),
}

impl Value {
    /// Construct an integer value.
    pub fn int(v: i64) -> Self {
        Value::Int(v)
    }

    /// Construct a string value.
    pub fn str(v: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(v.as_ref()))
    }

    /// Return the integer payload, if this value is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Str(_) => None,
        }
    }

    /// Return the string payload, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Str(s) => Some(s),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn int_accessors() {
        let v = Value::int(7);
        assert_eq!(v.as_int(), Some(7));
        assert_eq!(v.as_str(), None);
    }

    #[test]
    fn str_accessors() {
        let v = Value::str("Zurich");
        assert_eq!(v.as_str(), Some("Zurich"));
        assert_eq!(v.as_int(), None);
    }

    #[test]
    fn equality_distinguishes_variants() {
        assert_ne!(Value::int(1), Value::str("1"));
        assert_eq!(Value::str("a"), Value::str("a"));
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let v = Value::str("a-long-destination-name");
        let w = v.clone();
        assert_eq!(v, w);
    }

    #[test]
    fn hashable_in_sets() {
        let mut s = HashSet::new();
        s.insert(Value::int(1));
        s.insert(Value::str("x"));
        s.insert(Value::int(1));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::int(42).to_string(), "42");
        assert_eq!(Value::str("Paris").to_string(), "Paris");
    }

    #[test]
    fn ordering_is_total() {
        let mut vs = [
            Value::str("b"),
            Value::int(2),
            Value::str("a"),
            Value::int(1),
        ];
        vs.sort();
        // All ints sort before all strings (enum variant order).
        assert_eq!(vs[0], Value::int(1));
        assert_eq!(vs[1], Value::int(2));
        assert_eq!(vs[2], Value::str("a"));
        assert_eq!(vs[3], Value::str("b"));
    }

    #[test]
    fn from_impls() {
        let a: Value = 5i64.into();
        let b: Value = "x".into();
        let c: Value = String::from("y").into();
        assert_eq!(a, Value::int(5));
        assert_eq!(b, Value::str("x"));
        assert_eq!(c, Value::str("y"));
    }
}
