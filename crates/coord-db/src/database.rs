//! The database: a collection of named tables plus query instrumentation.

use crate::error::DbError;
use crate::eval::{self, Assignment};
use crate::query::ConjunctiveQuery;
use crate::schema::RelationSchema;
use crate::stats::QueryStats;
use crate::storage::BackendKind;
use crate::symbol::Symbol;
use crate::table::Table;
use crate::tuple::Tuple;
use crate::value::Value;
use coord_obs::Registry as ObsRegistry;
use std::collections::HashMap;

/// An in-memory relational database instance.
///
/// Plays the role of the MySQL instance in the paper's prototype: the
/// coordination algorithms only interact with it through conjunctive
/// queries ([`Database::find_one`], [`Database::find_all`]), distinct-value
/// projections ([`Database::distinct_values`]) and grounded membership
/// tests ([`Database::contains`]). Every interaction is counted in
/// [`Database::stats`] so the paper's query-count bounds can be asserted.
///
/// Tables are physically stored by a pluggable [`crate::storage::Storage`]
/// backend; [`Database::with_backend`] selects which one new tables use.
/// Answers are byte-identical across backends (see [`crate::storage`]'s
/// determinism contract) — only the probe work differs.
#[derive(Debug, Default)]
pub struct Database {
    tables: HashMap<Symbol, Table>,
    /// Relation names in creation order (stable iteration for tests/demos).
    order: Vec<Symbol>,
    /// Backend for tables created without an explicit kind.
    default_backend: BackendKind,
    stats: QueryStats,
}

impl Database {
    /// Create an empty database (row-store backend).
    pub fn new() -> Self {
        Database::default()
    }

    /// Create an empty database whose tables use the given storage
    /// backend.
    pub fn with_backend(kind: BackendKind) -> Self {
        Database {
            default_backend: kind,
            ..Database::default()
        }
    }

    /// The backend newly created tables use.
    pub fn default_backend(&self) -> BackendKind {
        self.default_backend
    }

    /// Create a table with the given relation name and attribute names.
    pub fn create_table(&mut self, name: impl Into<Symbol>, attrs: &[&str]) -> Result<(), DbError> {
        let name = name.into();
        let schema = RelationSchema::new(name.clone(), attrs.iter().copied())?;
        self.create_table_with_schema(schema)
    }

    /// Create a table from a pre-built schema.
    pub fn create_table_with_schema(&mut self, schema: RelationSchema) -> Result<(), DbError> {
        let kind = self.default_backend;
        self.add_table(Table::with_backend(schema, kind))
    }

    /// Create a table on an explicit storage backend (overriding the
    /// database default).
    pub fn create_table_with_backend(
        &mut self,
        name: impl Into<Symbol>,
        attrs: &[&str],
        kind: BackendKind,
    ) -> Result<(), DbError> {
        let name = name.into();
        let schema = RelationSchema::new(name.clone(), attrs.iter().copied())?;
        self.add_table(Table::with_backend(schema, kind))
    }

    fn add_table(&mut self, table: Table) -> Result<(), DbError> {
        let name = table.schema().name().clone();
        if self.tables.contains_key(&name) {
            return Err(DbError::DuplicateRelation {
                relation: name.to_string(),
            });
        }
        self.order.push(name.clone());
        self.tables.insert(name, table);
        Ok(())
    }

    /// Insert a tuple into the named relation.
    pub fn insert(
        &mut self,
        relation: impl Into<Symbol>,
        values: impl Into<Tuple>,
    ) -> Result<bool, DbError> {
        let relation = relation.into();
        let table = self
            .tables
            .get_mut(&relation)
            .ok_or(DbError::UnknownRelation {
                relation: relation.to_string(),
            })?;
        table.insert(values)
    }

    /// Bulk-insert tuples into the named relation.
    pub fn insert_all(
        &mut self,
        relation: impl Into<Symbol>,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> Result<usize, DbError> {
        let relation = relation.into();
        let table = self
            .tables
            .get_mut(&relation)
            .ok_or(DbError::UnknownRelation {
                relation: relation.to_string(),
            })?;
        let mut n = 0;
        for row in rows {
            if table.insert(row)? {
                n += 1;
            }
        }
        Ok(n)
    }

    /// Look up a table by relation name.
    pub fn table(&self, relation: &Symbol) -> Result<&Table, DbError> {
        self.tables
            .get(relation)
            .ok_or_else(|| DbError::UnknownRelation {
                relation: relation.to_string(),
            })
    }

    /// Look up a table by textual relation name.
    pub fn table_named(&self, relation: &str) -> Result<&Table, DbError> {
        self.table(&Symbol::new(relation))
    }

    /// Whether a relation with this name exists.
    pub fn has_relation(&self, relation: &Symbol) -> bool {
        self.tables.contains_key(relation)
    }

    /// Relation names in creation order.
    pub fn relations(&self) -> impl Iterator<Item = &Symbol> {
        self.order.iter()
    }

    /// Query counters.
    pub fn stats(&self) -> &QueryStats {
        &self.stats
    }

    /// Mirror this database's query counters into a `coord-obs`
    /// registry (`db_*` counters) and record `find_one`/`find_all`
    /// latencies into its `db_probe_nanos` histogram — storage cost in
    /// the same snapshot as submit latency. The first attach wins;
    /// later calls are no-ops.
    pub fn attach_obs(&self, registry: &ObsRegistry) {
        self.stats.attach(registry);
    }

    /// Advise the named relation's backend that the given multi-column
    /// equality pattern will be probed (columns ascending, length ≥ 2).
    /// No-op for unknown relations and for backends without composite
    /// indexes — callers advise opportunistically.
    pub fn advise_pattern(&self, relation: &Symbol, cols: &[usize]) {
        if let Some(table) = self.tables.get(relation) {
            table.advise_index(cols);
        }
    }

    /// Choose-1 evaluation: find one satisfying assignment, if any.
    pub fn find_one(&self, query: &ConjunctiveQuery) -> Result<Option<Assignment>, DbError> {
        self.stats.record_find_one();
        let timer = self.stats.probe_timer();
        let out = eval::find_one(self, query);
        self.stats.observe_probe(timer);
        out
    }

    /// Whether the query has at least one satisfying assignment.
    pub fn is_satisfiable(&self, query: &ConjunctiveQuery) -> Result<bool, DbError> {
        Ok(self.find_one(query)?.is_some())
    }

    /// Enumerate satisfying assignments, up to `limit` if given.
    pub fn find_all(
        &self,
        query: &ConjunctiveQuery,
        limit: Option<usize>,
    ) -> Result<Vec<Assignment>, DbError> {
        self.stats.record_find_all();
        let timer = self.stats.probe_timer();
        let out = eval::find_all(self, query, limit);
        self.stats.observe_probe(timer);
        out
    }

    /// Distinct projections of named attributes of `relation`, restricted by
    /// `bound` (attribute-name, value) constraints.
    pub fn distinct_values(
        &self,
        relation: &Symbol,
        project: &[&str],
        bound: &[(&str, Value)],
    ) -> Result<Vec<Vec<Value>>, DbError> {
        self.stats.record_distinct();
        let table = self.table(relation)?;
        let schema = table.schema();
        let proj: Vec<usize> = project
            .iter()
            .map(|a| schema.require_attr(a))
            .collect::<Result<_, _>>()?;
        let bnd: Vec<(usize, Value)> = bound
            .iter()
            .map(|(a, v)| Ok((schema.require_attr(a)?, v.clone())))
            .collect::<Result<_, DbError>>()?;
        Ok(table.distinct_project(&proj, &bnd))
    }

    /// Grounded-tuple membership test (used by the coordinating-set
    /// verifier: condition (2) of Definition 1).
    pub fn contains(&self, relation: &Symbol, values: &[Value]) -> Result<bool, DbError> {
        self.stats.record_membership();
        Ok(self.table(relation)?.contains(values))
    }

    /// Some value from the database's active domain, if any exists.
    ///
    /// Entangled queries with variables that occur in heads/postconditions
    /// but not in any body atom may take any domain value (Definition 1
    /// only requires that every variable be assigned). The algorithms use
    /// this as the default grounding for such unconstrained variables.
    pub fn any_domain_value(&self) -> Option<Value> {
        self.order
            .iter()
            .map(|name| &self.tables[name])
            .find(|t| !t.is_empty() && t.schema().arity() > 0)
            .map(|t| t.cell(0, 0).clone())
    }

    /// Total number of tuples across all relations.
    pub fn tuple_count(&self) -> usize {
        self.tables.values().map(Table::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Atom, Term, Var};

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.create_table("Flights", &["id", "dest"]).unwrap();
        db.insert("Flights", vec![Value::int(101), Value::str("Zurich")])
            .unwrap();
        db.insert("Flights", vec![Value::int(102), Value::str("Paris")])
            .unwrap();
        db
    }

    #[test]
    fn create_and_insert() {
        let db = sample_db();
        assert_eq!(db.table_named("Flights").unwrap().len(), 2);
        assert_eq!(db.tuple_count(), 2);
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut db = sample_db();
        let err = db.create_table("Flights", &["x"]).unwrap_err();
        assert!(matches!(err, DbError::DuplicateRelation { .. }));
    }

    #[test]
    fn unknown_relation_errors() {
        let db = sample_db();
        assert!(db.table_named("Hotels").is_err());
        let mut db = sample_db();
        assert!(db.insert("Hotels", vec![Value::int(0)]).is_err());
    }

    #[test]
    fn find_one_counts_queries() {
        let db = sample_db();
        let q = ConjunctiveQuery::new(vec![Atom::new(
            "Flights",
            vec![Term::Var(Var(0)), Term::constant("Paris")],
        )]);
        assert!(db.find_one(&q).unwrap().is_some());
        assert_eq!(db.stats().find_one_count(), 1);
    }

    #[test]
    fn distinct_values_by_attr_name() {
        let db = sample_db();
        let dests = db
            .distinct_values(&Symbol::new("Flights"), &["dest"], &[])
            .unwrap();
        assert_eq!(dests.len(), 2);
        assert_eq!(db.stats().distinct_count(), 1);
    }

    #[test]
    fn contains_checks_membership() {
        let db = sample_db();
        let f = Symbol::new("Flights");
        assert!(db
            .contains(&f, &[Value::int(101), Value::str("Zurich")])
            .unwrap());
        assert!(!db
            .contains(&f, &[Value::int(101), Value::str("Paris")])
            .unwrap());
    }

    #[test]
    fn any_domain_value_present() {
        let db = sample_db();
        assert!(db.any_domain_value().is_some());
        let empty = Database::new();
        assert!(empty.any_domain_value().is_none());
    }

    #[test]
    fn relations_in_creation_order() {
        let mut db = sample_db();
        db.create_table("Hotels", &["id", "loc"]).unwrap();
        let names: Vec<String> = db
            .relations()
            .map(std::string::ToString::to_string)
            .collect();
        assert_eq!(names, vec!["Flights", "Hotels"]);
    }
}
