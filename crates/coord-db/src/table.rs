//! Tables: a relation schema bound to a pluggable [`Storage`] backend.

use crate::error::DbError;
use crate::schema::RelationSchema;
use crate::storage::{Backend, BackendKind, Scan, Storage};
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashSet;

/// A stored relation: schema plus physical storage.
///
/// All data access goes through the [`Storage`] trait, so the evaluator
/// and the engines above it are agnostic to the representation: the
/// default per-column-hash [`crate::storage::RowStore`], the
/// composite-index [`crate::storage::CompositeStore`], the sorted
/// [`crate::storage::ColumnarStore`], or any custom backend via
/// [`Table::with_storage`]. For the paper's workloads (tables of up to
/// 10⁶ rows with 2–4 columns) every bound-column lookup is O(bucket),
/// which is what the backtracking join in [`crate::eval`] relies on.
#[derive(Clone, Debug)]
pub struct Table {
    schema: RelationSchema,
    backend: Backend,
}

impl Table {
    /// Create an empty table with the given schema on the default
    /// (row-store) backend.
    pub fn new(schema: RelationSchema) -> Self {
        Self::with_backend(schema, BackendKind::Row)
    }

    /// Create an empty table on the given in-tree backend.
    pub fn with_backend(schema: RelationSchema, kind: BackendKind) -> Self {
        let arity = schema.arity();
        Table {
            schema,
            backend: Backend::of_kind(kind, arity),
        }
    }

    /// Create a table on a custom (boxed) storage backend. The backend
    /// must be empty and agree with the schema's arity.
    pub fn with_storage(
        schema: RelationSchema,
        storage: Box<dyn Storage>,
    ) -> Result<Self, DbError> {
        if storage.arity() != schema.arity() {
            return Err(DbError::ArityMismatch {
                relation: schema.name().to_string(),
                expected: schema.arity(),
                actual: storage.arity(),
            });
        }
        Ok(Table {
            schema,
            backend: Backend::Custom(storage),
        })
    }

    /// The table's schema.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// The table's storage backend.
    pub fn storage(&self) -> &dyn Storage {
        self.backend.store()
    }

    /// Number of (distinct) rows.
    pub fn len(&self) -> usize {
        self.backend.store().len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.backend.store().is_empty()
    }

    /// Insert a tuple. Duplicate tuples are ignored; returns whether the
    /// tuple was newly inserted.
    pub fn insert(&mut self, values: impl Into<Tuple>) -> Result<bool, DbError> {
        let tuple = values.into();
        if tuple.len() != self.schema.arity() {
            return Err(DbError::ArityMismatch {
                relation: self.schema.name().to_string(),
                expected: self.schema.arity(),
                actual: tuple.len(),
            });
        }
        Ok(self.backend.store_mut().insert(tuple))
    }

    /// O(1) membership test for a fully grounded tuple (allocation-free:
    /// backends test the borrowed slice directly).
    pub fn contains(&self, values: &[Value]) -> bool {
        // Cheap arity guard: a wrong-arity tuple is never a member.
        if values.len() != self.schema.arity() {
            return false;
        }
        self.backend.store().contains(values)
    }

    /// The value at (`row`, `col`); rows are dense ids in insertion
    /// order.
    pub fn cell(&self, row: usize, col: usize) -> &Value {
        self.backend.store().cell(row, col)
    }

    /// Materialized rows in insertion order (test/diagnostic helper —
    /// hot paths use [`Table::scan`] + [`Table::cell`]).
    pub fn iter_rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        let store = self.backend.store();
        (0..store.len()).map(move |r| {
            (0..store.arity())
                .map(|c| store.cell(r, c).clone())
                .collect()
        })
    }

    /// Candidate rows for the given equality constraints, with the
    /// access path that serves them (possibly a superset — callers
    /// re-verify).
    pub fn scan(&self, bound: &[(usize, Value)]) -> Scan<'_> {
        self.backend.store().scan(bound)
    }

    /// Rows whose `col` value lies in `[lo, hi]` (inclusive).
    pub fn scan_range<'a>(&'a self, col: usize, lo: &Value, hi: &Value) -> Scan<'a> {
        self.backend.store().scan_range(col, lo, hi)
    }

    /// Exact number of rows matching the most selective single bound
    /// column (backend-independent; see [`crate::storage`]'s
    /// determinism contract).
    pub fn estimate(&self, bound: &[(usize, Value)]) -> usize {
        self.backend.store().estimate(bound)
    }

    /// Row ids whose column `col` equals `value` (ascending, possibly
    /// empty).
    pub fn lookup(&self, col: usize, value: &Value) -> Vec<usize> {
        let bound = [(col, value.clone())];
        self.scan(&bound)
            .filter(|&r| self.cell(r, col) == value)
            .collect()
    }

    /// Number of distinct values in column `col`.
    pub fn distinct_count(&self, col: usize) -> usize {
        self.backend.store().distinct_count(col)
    }

    /// Advise the backend that the given multi-column equality pattern
    /// will be probed (no-op on backends without composite indexes).
    pub fn advise_index(&self, cols: &[usize]) {
        self.backend.store().ensure_index(cols);
    }

    /// Distinct projections of the given columns over rows matching the
    /// `bound` constraints (column, value pairs).
    ///
    /// This implements the option-list query of the Consistent Coordination
    /// Algorithm: `SELECT DISTINCT project FROM S WHERE bound`.
    pub fn distinct_project(&self, project: &[usize], bound: &[(usize, Value)]) -> Vec<Vec<Value>> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for rid in self.scan(bound) {
            if bound.iter().all(|(c, v)| self.cell(rid, *c) == v) {
                let key: Vec<Value> = project.iter().map(|&c| self.cell(rid, c).clone()).collect();
                if seen.insert(key.clone()) {
                    out.push(key);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flights_on(kind: BackendKind) -> Table {
        let schema = RelationSchema::new("Flights", ["id", "dest"]).unwrap();
        let mut t = Table::with_backend(schema, kind);
        t.insert(vec![Value::int(1), Value::str("Zurich")]).unwrap();
        t.insert(vec![Value::int(2), Value::str("Paris")]).unwrap();
        t.insert(vec![Value::int(3), Value::str("Zurich")]).unwrap();
        t
    }

    fn flights() -> Table {
        flights_on(BackendKind::Row)
    }

    #[test]
    fn insert_and_len() {
        let t = flights();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn duplicate_insert_is_ignored() {
        let mut t = flights();
        let fresh = t.insert(vec![Value::int(1), Value::str("Zurich")]).unwrap();
        assert!(!fresh);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn arity_checked() {
        let mut t = flights();
        let err = t.insert(vec![Value::int(9)]).unwrap_err();
        assert!(matches!(err, DbError::ArityMismatch { .. }));
    }

    #[test]
    fn contains_grounded() {
        for kind in BackendKind::ALL {
            let t = flights_on(kind);
            assert!(t.contains(&[Value::int(2), Value::str("Paris")]));
            assert!(!t.contains(&[Value::int(2), Value::str("Zurich")]));
            assert!(!t.contains(&[Value::int(2)]));
        }
    }

    #[test]
    fn lookup_uses_index() {
        for kind in BackendKind::ALL {
            let t = flights_on(kind);
            let zurich_rows = t.lookup(1, &Value::str("Zurich"));
            assert_eq!(zurich_rows, vec![0, 2]);
            assert_eq!(t.lookup(1, &Value::str("Oslo")).len(), 0);
        }
    }

    #[test]
    fn distinct_count_per_column() {
        for kind in BackendKind::ALL {
            let t = flights_on(kind);
            assert_eq!(t.distinct_count(0), 3);
            assert_eq!(t.distinct_count(1), 2);
        }
    }

    #[test]
    fn distinct_project_unbounded() {
        let t = flights();
        let dests = t.distinct_project(&[1], &[]);
        assert_eq!(dests.len(), 2);
        assert!(dests.contains(&vec![Value::str("Zurich")]));
        assert!(dests.contains(&vec![Value::str("Paris")]));
    }

    #[test]
    fn distinct_project_bound() {
        for kind in BackendKind::ALL {
            let t = flights_on(kind);
            let ids = t.distinct_project(&[0], &[(1, Value::str("Zurich"))]);
            assert_eq!(ids.len(), 2);
            let none = t.distinct_project(&[0], &[(1, Value::str("Oslo"))]);
            assert!(none.is_empty());
        }
    }

    #[test]
    fn iter_rows_in_insertion_order() {
        for kind in BackendKind::ALL {
            let t = flights_on(kind);
            let rows: Vec<Vec<Value>> = t.iter_rows().collect();
            assert_eq!(rows.len(), 3);
            assert_eq!(rows[1], vec![Value::int(2), Value::str("Paris")]);
        }
    }

    #[test]
    fn custom_storage_arity_is_checked() {
        use crate::storage::RowStore;
        let schema = RelationSchema::new("R", ["a", "b"]).unwrap();
        assert!(Table::with_storage(schema.clone(), Box::new(RowStore::new(3))).is_err());
        let t = Table::with_storage(schema, Box::new(RowStore::new(2))).unwrap();
        assert_eq!(t.len(), 0);
    }
}
