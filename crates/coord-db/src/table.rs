//! Tables: tuple storage with per-column hash indexes.

use crate::error::DbError;
use crate::schema::RelationSchema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::{HashMap, HashSet};

/// A stored relation: schema, rows, and one hash index per column.
///
/// Indexes are maintained eagerly on insert. For the workloads in the paper
/// (tables of up to ~82k rows with 2–4 columns) this costs a few hash
/// insertions per tuple and makes every bound-column lookup O(1), which is
/// what the backtracking join in [`crate::eval`] relies on.
#[derive(Clone, Debug)]
pub struct Table {
    schema: RelationSchema,
    rows: Vec<Tuple>,
    /// `indexes[c][v]` = row ids whose column `c` equals `v`.
    indexes: Vec<HashMap<Value, Vec<usize>>>,
    /// Set view of `rows` for O(1) membership tests (used both for insert
    /// deduplication and by the coordinating-set verifier).
    row_set: HashSet<Tuple>,
}

impl Table {
    /// Create an empty table with the given schema.
    pub fn new(schema: RelationSchema) -> Self {
        let arity = schema.arity();
        Table {
            schema,
            rows: Vec::new(),
            indexes: vec![HashMap::new(); arity],
            row_set: HashSet::new(),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// Number of (distinct) rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Insert a tuple. Duplicate tuples are ignored; returns whether the
    /// tuple was newly inserted.
    pub fn insert(&mut self, values: impl Into<Tuple>) -> Result<bool, DbError> {
        let tuple = values.into();
        if tuple.len() != self.schema.arity() {
            return Err(DbError::ArityMismatch {
                relation: self.schema.name().to_string(),
                expected: self.schema.arity(),
                actual: tuple.len(),
            });
        }
        if self.row_set.contains(&tuple) {
            return Ok(false);
        }
        let row_id = self.rows.len();
        for (c, v) in tuple.iter().enumerate() {
            self.indexes[c].entry(v.clone()).or_default().push(row_id);
        }
        self.row_set.insert(tuple.clone());
        self.rows.push(tuple);
        Ok(true)
    }

    /// All rows in insertion order.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// The row with the given id.
    pub fn row(&self, id: usize) -> &Tuple {
        &self.rows[id]
    }

    /// O(1) membership test for a fully grounded tuple.
    pub fn contains(&self, values: &[Value]) -> bool {
        // Cheap arity guard: a wrong-arity tuple is never a member.
        if values.len() != self.schema.arity() {
            return false;
        }
        // Avoid allocating when the set is empty.
        if self.row_set.is_empty() {
            return false;
        }
        let t = Tuple::new(values.to_vec());
        self.row_set.contains(&t)
    }

    /// Row ids whose column `col` equals `value` (possibly empty).
    pub fn lookup(&self, col: usize, value: &Value) -> &[usize] {
        self.indexes[col]
            .get(value)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of distinct values in column `col`.
    pub fn distinct_count(&self, col: usize) -> usize {
        self.indexes[col].len()
    }

    /// Distinct projections of the given columns over rows matching the
    /// `bound` constraints (column, value pairs).
    ///
    /// This implements the option-list query of the Consistent Coordination
    /// Algorithm: `SELECT DISTINCT project FROM S WHERE bound`.
    pub fn distinct_project(&self, project: &[usize], bound: &[(usize, Value)]) -> Vec<Vec<Value>> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        // Pick the most selective bound column to drive the scan.
        let candidates: Vec<usize> =
            match bound.iter().min_by_key(|(c, v)| self.lookup(*c, v).len()) {
                Some((c, v)) => self.lookup(*c, v).to_vec(),
                None => (0..self.rows.len()).collect(),
            };
        for rid in candidates {
            let row = &self.rows[rid];
            if bound.iter().all(|(c, v)| &row[*c] == v) {
                let key: Vec<Value> = project.iter().map(|&c| row[c].clone()).collect();
                if seen.insert(key.clone()) {
                    out.push(key);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flights() -> Table {
        let schema = RelationSchema::new("Flights", ["id", "dest"]).unwrap();
        let mut t = Table::new(schema);
        t.insert(vec![Value::int(1), Value::str("Zurich")]).unwrap();
        t.insert(vec![Value::int(2), Value::str("Paris")]).unwrap();
        t.insert(vec![Value::int(3), Value::str("Zurich")]).unwrap();
        t
    }

    #[test]
    fn insert_and_len() {
        let t = flights();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn duplicate_insert_is_ignored() {
        let mut t = flights();
        let fresh = t.insert(vec![Value::int(1), Value::str("Zurich")]).unwrap();
        assert!(!fresh);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn arity_checked() {
        let mut t = flights();
        let err = t.insert(vec![Value::int(9)]).unwrap_err();
        assert!(matches!(err, DbError::ArityMismatch { .. }));
    }

    #[test]
    fn contains_grounded() {
        let t = flights();
        assert!(t.contains(&[Value::int(2), Value::str("Paris")]));
        assert!(!t.contains(&[Value::int(2), Value::str("Zurich")]));
        assert!(!t.contains(&[Value::int(2)]));
    }

    #[test]
    fn lookup_uses_index() {
        let t = flights();
        let zurich_rows = t.lookup(1, &Value::str("Zurich"));
        assert_eq!(zurich_rows.len(), 2);
        assert_eq!(t.lookup(1, &Value::str("Oslo")).len(), 0);
    }

    #[test]
    fn distinct_count_per_column() {
        let t = flights();
        assert_eq!(t.distinct_count(0), 3);
        assert_eq!(t.distinct_count(1), 2);
    }

    #[test]
    fn distinct_project_unbounded() {
        let t = flights();
        let dests = t.distinct_project(&[1], &[]);
        assert_eq!(dests.len(), 2);
        assert!(dests.contains(&vec![Value::str("Zurich")]));
        assert!(dests.contains(&vec![Value::str("Paris")]));
    }

    #[test]
    fn distinct_project_bound() {
        let t = flights();
        let ids = t.distinct_project(&[0], &[(1, Value::str("Zurich"))]);
        assert_eq!(ids.len(), 2);
        let none = t.distinct_project(&[0], &[(1, Value::str("Oslo"))]);
        assert!(none.is_empty());
    }
}
