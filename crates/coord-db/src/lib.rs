//! # coord-db — in-memory relational database
//!
//! This crate is the storage and query-evaluation substrate for the
//! entangled-query coordination system. The original prototype of
//! *"The Complexity of Social Coordination"* (Mamouras et al., VLDB 2012)
//! used MySQL via JDBC; the coordination algorithms only ever interact with
//! the database through **conjunctive queries** over small schemas, so a
//! compact in-memory engine exercises the identical code path.
//!
//! The engine provides:
//!
//! * a simple value model ([`Value`]: integers and interned strings),
//! * named relations ([`Table`]) over pluggable [`Storage`] backends:
//!   the per-column-hash [`storage::RowStore`], the adaptive
//!   composite-index [`storage::CompositeStore`], and the sorted
//!   [`storage::ColumnarStore`] — byte-identical answers, different
//!   probe work (see [`storage`]'s determinism contract),
//! * conjunctive queries ([`ConjunctiveQuery`]) over variables and
//!   constants, evaluated by a backtracking join with greedy atom ordering
//!   ([`eval`]),
//! * *choose-1* semantics (`find_one`) as required by entangled queries, as
//!   well as all-answers enumeration and distinct-value projection (used by
//!   the Consistent Coordination Algorithm to compute option lists `V(q)`),
//! * instrumentation counting the number of issued database queries, so the
//!   paper's "number of DB queries" analyses can be validated exactly.
//!
//! ## Example
//!
//! ```
//! use coord_db::{Database, Value, ConjunctiveQuery, Atom, Term, Var};
//!
//! let mut db = Database::new();
//! db.create_table("Flights", &["flightId", "destination"]).unwrap();
//! db.insert("Flights", vec![Value::int(101), Value::str("Zurich")]).unwrap();
//!
//! // Flights(x, "Zurich")
//! let q = ConjunctiveQuery::new(vec![Atom::new(
//!     "Flights",
//!     vec![Term::Var(Var(0)), Term::constant(Value::str("Zurich"))],
//! )]);
//! let answer = db.find_one(&q).unwrap().expect("a flight exists");
//! assert_eq!(answer.get(Var(0)), Some(&Value::int(101)));
//! ```

#![forbid(unsafe_code)]

pub mod database;
pub mod error;
pub mod eval;
pub mod query;
pub mod schema;
pub mod stats;
pub mod storage;
pub mod symbol;
pub mod table;
pub mod tuple;
pub mod value;

pub use database::Database;
pub use error::DbError;
pub use eval::Assignment;
pub use query::{Atom, ConjunctiveQuery, Term, Var};
pub use schema::RelationSchema;
pub use stats::QueryStats;
pub use storage::{AccessPath, Backend, BackendKind, Scan, Storage};
pub use symbol::Symbol;
pub use table::Table;
pub use tuple::Tuple;
pub use value::Value;
