//! Database tuples.

use crate::value::Value;
use std::fmt;
use std::ops::Deref;

/// One row of a relation: an ordered sequence of values.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple(Box<[Value]>);

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: impl Into<Vec<Value>>) -> Self {
        Tuple(values.into().into_boxed_slice())
    }

    /// The tuple's values.
    pub fn values(&self) -> &[Value] {
        &self.0
    }
}

impl Deref for Tuple {
    type Target = [Value];

    fn deref(&self) -> &[Value] {
        &self.0
    }
}

/// Lets `HashSet<Tuple>` answer membership for a borrowed `&[Value]`
/// without allocating a temporary `Tuple` — the hot path of ground-atom
/// probes. Sound because `Tuple`'s derived `Hash`/`Eq` delegate to the
/// boxed slice, which hashes identically to `[Value]`.
impl std::borrow::Borrow<[Value]> for Tuple {
    fn borrow(&self) -> &[Value] {
        &self.0
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:?}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple::new(v)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple::new(iter.into_iter().collect::<Vec<_>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deref_and_index() {
        let t = Tuple::new(vec![Value::int(1), Value::str("a")]);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0], Value::int(1));
        assert_eq!(t[1], Value::str("a"));
    }

    #[test]
    fn equality() {
        let a = Tuple::new(vec![Value::int(1)]);
        let b: Tuple = vec![Value::int(1)].into();
        assert_eq!(a, b);
    }

    #[test]
    fn collects_from_iterator() {
        let t: Tuple = (0..3).map(Value::int).collect();
        assert_eq!(t.values(), &[Value::int(0), Value::int(1), Value::int(2)]);
    }

    #[test]
    fn debug_format() {
        let t = Tuple::new(vec![Value::int(101), Value::str("Zurich")]);
        assert_eq!(format!("{t:?}"), "(101, \"Zurich\")");
    }
}
