//! Database errors.

use std::fmt;

/// Errors raised by the database layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// A query or insert referred to a relation that does not exist.
    UnknownRelation { relation: String },
    /// A relation with this name already exists.
    DuplicateRelation { relation: String },
    /// A schema declared the same attribute twice.
    DuplicateAttribute { relation: String, attribute: String },
    /// An attribute name was not found in the relation's schema.
    UnknownAttribute { relation: String, attribute: String },
    /// A tuple or atom had the wrong number of values for its relation.
    ArityMismatch {
        relation: String,
        expected: usize,
        actual: usize,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::UnknownRelation { relation } => {
                write!(f, "unknown relation `{relation}`")
            }
            DbError::DuplicateRelation { relation } => {
                write!(f, "relation `{relation}` already exists")
            }
            DbError::DuplicateAttribute {
                relation,
                attribute,
            } => {
                write!(
                    f,
                    "relation `{relation}` declares attribute `{attribute}` twice"
                )
            }
            DbError::UnknownAttribute {
                relation,
                attribute,
            } => {
                write!(f, "relation `{relation}` has no attribute `{attribute}`")
            }
            DbError::ArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "relation `{relation}` has arity {expected}, got {actual} values"
            ),
        }
    }
}

impl std::error::Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_relation() {
        let e = DbError::UnknownRelation {
            relation: "Flights".into(),
        };
        assert!(e.to_string().contains("Flights"));
    }

    #[test]
    fn arity_mismatch_mentions_counts() {
        let e = DbError::ArityMismatch {
            relation: "R".into(),
            expected: 2,
            actual: 3,
        };
        let s = e.to_string();
        assert!(s.contains('2') && s.contains('3'));
    }
}
