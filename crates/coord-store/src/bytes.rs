//! Little-endian byte encoding helpers shared by record, snapshot and
//! query codecs. No varints, no reflection: fixed-width integers and
//! length-prefixed strings keep the format trivially auditable.

use crate::error::StoreError;

/// Append a `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an `i64`.
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Append a length-prefixed byte slice.
pub fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

/// Sequential reader over an encoded buffer. Every accessor fails with
/// [`StoreError::Codec`] instead of panicking, so a corrupt payload that
/// slipped past the frame checksum still surfaces as an error.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.buf.len() - self.pos < n {
            return Err(StoreError::codec("record payload shorter than declared"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `i64`.
    pub fn i64(&mut self) -> Result<i64, StoreError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, StoreError> {
        let n = self.u32()? as usize;
        let s = self.take(n)?;
        String::from_utf8(s.to_vec()).map_err(|_| StoreError::codec("invalid UTF-8 in record"))
    }

    /// Read a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], StoreError> {
        let n = self.u32()? as usize;
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_primitives() {
        let mut out = Vec::new();
        put_u32(&mut out, 7);
        put_u64(&mut out, u64::MAX);
        put_i64(&mut out, -42);
        put_str(&mut out, "héllo");
        put_bytes(&mut out, &[1, 2, 3]);
        let mut r = Reader::new(&out);
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert!(r.is_empty());
    }

    #[test]
    fn short_buffer_errors_instead_of_panicking() {
        let mut r = Reader::new(&[1, 2]);
        assert!(r.u64().is_err());
        let mut out = Vec::new();
        put_u32(&mut out, 100); // declares 100 bytes, provides none
        let mut r = Reader::new(&out);
        assert!(r.bytes().is_err());
    }

    #[test]
    fn invalid_utf8_is_a_codec_error() {
        let mut out = Vec::new();
        put_bytes(&mut out, &[0xFF, 0xFE]);
        let mut r = Reader::new(&out);
        assert!(r.str().is_err());
    }
}
