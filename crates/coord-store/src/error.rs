//! Storage-layer errors.

use std::fmt;
use std::io;

/// Failures of the durable store: I/O, on-disk corruption beyond what
/// prefix recovery tolerates, or a payload that frames cleanly but does
/// not decode.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// A structurally invalid store directory (e.g. a snapshot whose
    /// header names the wrong epoch).
    Corrupt(String),
    /// A checksum-clean payload failed to decode.
    Codec(String),
}

impl StoreError {
    pub(crate) fn codec(msg: impl Into<String>) -> Self {
        StoreError::Codec(msg.into())
    }

    pub(crate) fn corrupt(msg: impl Into<String>) -> Self {
        StoreError::Corrupt(msg.into())
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt(m) => write!(f, "store corrupt: {m}"),
            StoreError::Codec(m) => write!(f, "record codec error: {m}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// A durable engine failure: either the wrapped engine rejected the
/// submission (state unchanged, nothing logged) or the store itself
/// failed.
#[derive(Debug)]
pub enum DurableError<E> {
    /// The component evaluator rejected the submission.
    Engine(E),
    /// The write-ahead log or snapshot failed.
    Store(StoreError),
}

impl<E: fmt::Display> fmt::Display for DurableError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Engine(e) => write!(f, "engine error: {e}"),
            DurableError::Store(e) => write!(f, "{e}"),
        }
    }
}

impl<E: fmt::Debug + fmt::Display> std::error::Error for DurableError<E> {}

impl<E> From<StoreError> for DurableError<E> {
    fn from(e: StoreError) -> Self {
        DurableError::Store(e)
    }
}
