//! The append-only write-ahead log file.
//!
//! Layout: a fixed 16-byte header (`CWAL` magic + format version +
//! epoch), then a run of [`crate::frame`] records. Appends go through a
//! [`WalWriter`] that tracks the file offset (so callers learn exactly
//! where each record ends — the crash-point tests depend on it) and
//! applies the configured [`SyncPolicy`].
//!
//! Reading ([`read_wal`]) validates the header, scans the clean frame
//! prefix, and reports whether a torn tail was found; recovery truncates
//! the file back to the clean prefix before re-opening it for append, so
//! fresh records never interleave with garbage.

use crate::error::StoreError;
use crate::frame::{scan_frames, write_frame};
use coord_obs::{Histogram, TraceCtx, Tracer};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::time::Instant;

/// WAL file magic: `CWAL` + format version 1 (big-endian in spirit; the
/// trailing byte is the version).
pub const WAL_MAGIC: [u8; 8] = *b"CWAL\x00\x00\x00\x01";

/// Header length: magic + epoch.
pub const WAL_HEADER_LEN: u64 = 16;

/// When appended records are pushed to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Never `fsync`; durability rides on the OS page cache (fastest —
    /// survives process crashes, not power loss).
    Never,
    /// `fsync` after every record (slowest, strongest).
    EveryRecord,
    /// `fsync` every `n` records.
    EveryN(u64),
}

/// An open WAL file positioned for appending.
pub struct WalWriter {
    file: File,
    /// Byte offset of the end of the file (= end of the last record).
    len: u64,
    sync: SyncPolicy,
    appended_since_sync: u64,
    /// `fsync` latency sink (disabled unless the owning store attaches
    /// its observability registry via [`WalWriter::set_obs`]).
    sync_hist: Histogram,
    tracer: Tracer,
}

impl WalWriter {
    /// Create a fresh WAL at `path` (truncating any existing file) and
    /// write its header.
    pub fn create(path: &Path, epoch: u64, sync: SyncPolicy) -> Result<Self, StoreError> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(&WAL_MAGIC)?;
        file.write_all(&epoch.to_le_bytes())?;
        file.sync_data()?;
        Ok(WalWriter {
            file,
            len: WAL_HEADER_LEN,
            sync,
            appended_since_sync: 0,
            sync_hist: Histogram::disabled(),
            tracer: Tracer::disabled(),
        })
    }

    /// Open an existing WAL for appending at `clean_len` (as reported by
    /// [`read_wal`]), truncating any torn tail beyond it first.
    pub fn reopen(path: &Path, clean_len: u64, sync: SyncPolicy) -> Result<Self, StoreError> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(clean_len)?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        Ok(WalWriter {
            file,
            len: clean_len,
            sync,
            appended_since_sync: 0,
            sync_hist: Histogram::disabled(),
            tracer: Tracer::disabled(),
        })
    }

    /// Attach observability sinks: every `fsync` this writer performs is
    /// recorded in `sync_hist` and traced as a `wal_sync` instant.
    pub fn set_obs(&mut self, sync_hist: Histogram, tracer: Tracer) {
        self.sync_hist = sync_hist;
        self.tracer = tracer;
    }

    /// Sync to stable storage, recording the latency.
    fn timed_sync(&mut self) -> Result<(), StoreError> {
        let start = self.sync_hist.is_enabled().then(Instant::now);
        self.file.sync_data()?;
        if let Some(start) = start {
            let nanos = start.elapsed().as_nanos() as u64;
            self.sync_hist.record(nanos);
            // The sync runs inside the submitting request's wal_append
            // span, so the thread-local ctx attributes it to that trace.
            self.tracer
                .instant_in(TraceCtx::current(), "wal_sync", nanos);
        }
        self.appended_since_sync = 0;
        Ok(())
    }

    /// Append one framed record; returns the file offset of the record's
    /// end (the clean length of the log if a crash follows immediately).
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, StoreError> {
        let mut buf = Vec::with_capacity(payload.len() + 8);
        write_frame(&mut buf, payload);
        self.file.write_all(&buf)?;
        self.len += buf.len() as u64;
        self.appended_since_sync += 1;
        let flush = match self.sync {
            SyncPolicy::Never => false,
            SyncPolicy::EveryRecord => true,
            SyncPolicy::EveryN(n) => self.appended_since_sync >= n.max(1),
        };
        if flush {
            self.timed_sync()?;
        }
        Ok(self.len)
    }

    /// Current end-of-log offset.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the log holds no records (header only).
    pub fn is_empty(&self) -> bool {
        self.len <= WAL_HEADER_LEN
    }

    /// Force records to stable storage regardless of policy.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.timed_sync()
    }
}

/// A scanned WAL file: record payloads of the clean prefix plus where it
/// ends.
#[derive(Debug)]
pub struct WalContents {
    /// The epoch stamped in the header.
    pub epoch: u64,
    /// Clean record payloads, in append order.
    pub records: Vec<Vec<u8>>,
    /// Absolute end offset of each clean record (parallel to
    /// `records`), so recovery can truncate back to a record boundary
    /// when a checksum-clean payload fails to decode.
    pub record_ends: Vec<u64>,
    /// Byte offset of the end of the clean prefix.
    pub clean_len: u64,
    /// Whether a torn or corrupt tail was cut off.
    pub torn: bool,
}

/// Read and validate a WAL file, stopping at the first torn or corrupt
/// frame. A file too short to hold a header, or with the wrong magic,
/// is reported as corrupt (the caller decides whether that is fatal —
/// for the *current* epoch's log it means "no clean records").
pub fn read_wal(path: &Path) -> Result<WalContents, StoreError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < WAL_HEADER_LEN as usize || bytes[..8] != WAL_MAGIC {
        return Err(StoreError::corrupt(format!(
            "{} is not a WAL (short or bad magic)",
            path.display()
        )));
    }
    let epoch = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let scan = scan_frames(&bytes[WAL_HEADER_LEN as usize..]);
    Ok(WalContents {
        epoch,
        records: scan.payloads,
        record_ends: scan
            .ends
            .iter()
            .map(|&e| WAL_HEADER_LEN + e as u64)
            .collect(),
        clean_len: WAL_HEADER_LEN + scan.clean_len as u64,
        torn: scan.truncated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temp::TempDir;

    #[test]
    fn create_append_read_roundtrip() {
        let dir = TempDir::new("wal-roundtrip");
        let path = dir.path().join("wal-0.log");
        let mut w = WalWriter::create(&path, 7, SyncPolicy::Never).unwrap();
        assert!(w.is_empty());
        let end1 = w.append(b"one").unwrap();
        let end2 = w.append(b"two-two").unwrap();
        assert!(end2 > end1);
        assert_eq!(w.len(), end2);
        drop(w);

        let c = read_wal(&path).unwrap();
        assert_eq!(c.epoch, 7);
        assert!(!c.torn);
        assert_eq!(c.records, vec![b"one".to_vec(), b"two-two".to_vec()]);
        assert_eq!(c.clean_len, end2);
    }

    #[test]
    fn torn_tail_is_cut_and_reopen_truncates() {
        let dir = TempDir::new("wal-torn");
        let path = dir.path().join("wal.log");
        let mut w = WalWriter::create(&path, 0, SyncPolicy::Never).unwrap();
        let end1 = w.append(b"keep").unwrap();
        w.append(b"lost-in-the-crash").unwrap();
        drop(w);
        // Simulate a torn write: cut the file mid-record.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..end1 as usize + 5]).unwrap();

        let c = read_wal(&path).unwrap();
        assert!(c.torn);
        assert_eq!(c.records, vec![b"keep".to_vec()]);
        assert_eq!(c.clean_len, end1);

        // Reopen for append at the clean prefix; new records follow it.
        let mut w = WalWriter::reopen(&path, c.clean_len, SyncPolicy::EveryRecord).unwrap();
        w.append(b"after-recovery").unwrap();
        let c = read_wal(&path).unwrap();
        assert!(!c.torn);
        assert_eq!(
            c.records,
            vec![b"keep".to_vec(), b"after-recovery".to_vec()]
        );
    }

    #[test]
    fn bad_magic_is_corrupt() {
        let dir = TempDir::new("wal-magic");
        let path = dir.path().join("junk.log");
        std::fs::write(&path, b"not a wal at all").unwrap();
        assert!(matches!(read_wal(&path), Err(StoreError::Corrupt(_))));
        std::fs::write(&path, b"shrt").unwrap();
        assert!(matches!(read_wal(&path), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn every_n_sync_policy_counts() {
        let dir = TempDir::new("wal-sync");
        let path = dir.path().join("wal.log");
        let mut w = WalWriter::create(&path, 0, SyncPolicy::EveryN(3)).unwrap();
        for i in 0..10u8 {
            w.append(&[i]).unwrap();
        }
        w.sync().unwrap();
        let c = read_wal(&path).unwrap();
        assert_eq!(c.records.len(), 10);
    }
}
