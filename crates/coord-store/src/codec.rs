//! Query serialization: the store logs *encoded* queries and never
//! inspects them, so the engine's query type stays pluggable.

use crate::error::StoreError;

/// Encodes and decodes one query type for the WAL and snapshots.
///
/// Encoding must be **deterministic** (the same query always produces
/// the same bytes): the durable engines use the encoded form as the
/// query's identity when mapping a retired query back to the sequence
/// number of the submit that logged it. Two structurally equal queries
/// may share an encoding — retiring either is then equivalent, which
/// keeps the reconstructed pending multiset exact.
pub trait QueryCodec<Q> {
    /// Append the query's encoding to `out`.
    fn encode(&self, query: &Q, out: &mut Vec<u8>);

    /// Decode a query from its exact encoding.
    fn decode(&self, bytes: &[u8]) -> Result<Q, StoreError>;
}
