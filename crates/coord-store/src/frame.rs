//! Log record framing: `[len: u32 LE][crc32: u32 LE][payload]`.
//!
//! Every record in a WAL or snapshot file is wrapped in this frame. The
//! length bounds the read, the CRC-32 (IEEE, the zlib/Ethernet
//! polynomial) detects torn writes and bit rot: a reader walks frames
//! from the start of a stream and stops at the first frame whose header
//! is short, whose payload is short, or whose checksum disagrees —
//! everything before that point is the *clean prefix*, everything after
//! is discarded by recovery.

use std::convert::TryInto;

/// Frame header size: payload length + checksum.
pub const HEADER_LEN: usize = 8;

/// Records larger than this are rejected at append time and treated as
/// corruption at read time (a wildly large length field is almost always
/// a torn or overwritten header, and bounding it keeps a corrupt length
/// from provoking a giant allocation).
pub const MAX_PAYLOAD: usize = 64 << 20;

/// CRC-32 (IEEE 802.3 polynomial, reflected), byte-at-a-time with a
/// lazily built table. This is the same checksum zlib calls `crc32`.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    });
    let mut c = !0u32;
    for &b in bytes {
        c = table[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Append one framed record to `out`.
///
/// # Panics
/// Panics if the payload exceeds [`MAX_PAYLOAD`] (callers frame small
/// engine mutations; hitting the cap is a logic error, not bad input).
pub fn write_frame(out: &mut Vec<u8>, payload: &[u8]) {
    assert!(payload.len() <= MAX_PAYLOAD, "record exceeds frame cap");
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Result of scanning a byte stream for frames.
#[derive(Debug)]
pub struct FrameScan {
    /// Payloads of every clean frame, in order.
    pub payloads: Vec<Vec<u8>>,
    /// End offset of each clean frame (parallel to `payloads`), so a
    /// caller that rejects a checksum-clean payload at a higher layer
    /// can truncate back to the preceding frame boundary.
    pub ends: Vec<usize>,
    /// Byte offset of the end of the clean prefix (start of the first
    /// torn/corrupt frame, or the stream length if all frames are clean).
    pub clean_len: usize,
    /// Whether the scan stopped early on a torn or corrupt frame.
    pub truncated: bool,
}

/// Walk `bytes` frame by frame from offset 0, stopping at the first
/// short or checksum-failing frame.
pub fn scan_frames(bytes: &[u8]) -> FrameScan {
    let mut payloads = Vec::new();
    let mut ends = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= HEADER_LEN {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let want = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_PAYLOAD || bytes.len() - pos - HEADER_LEN < len {
            return FrameScan {
                payloads,
                ends,
                clean_len: pos,
                truncated: true,
            };
        }
        let payload = &bytes[pos + HEADER_LEN..pos + HEADER_LEN + len];
        if crc32(payload) != want {
            return FrameScan {
                payloads,
                ends,
                clean_len: pos,
                truncated: true,
            };
        }
        payloads.push(payload.to_vec());
        pos += HEADER_LEN + len;
        ends.push(pos);
    }
    FrameScan {
        payloads,
        ends,
        clean_len: pos,
        truncated: pos != bytes.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_multiple_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"alpha");
        write_frame(&mut buf, b"");
        write_frame(&mut buf, b"beta-gamma");
        let scan = scan_frames(&buf);
        assert!(!scan.truncated);
        assert_eq!(scan.clean_len, buf.len());
        assert_eq!(
            scan.payloads,
            vec![b"alpha".to_vec(), vec![], b"beta-gamma".to_vec()]
        );
    }

    #[test]
    fn truncation_at_every_offset_yields_a_frame_prefix() {
        let mut buf = Vec::new();
        let payloads: Vec<Vec<u8>> = (0..5).map(|i| vec![i as u8; i * 3 + 1]).collect();
        let mut ends = vec![0usize];
        for p in &payloads {
            write_frame(&mut buf, p);
            ends.push(buf.len());
        }
        for cut in 0..=buf.len() {
            let scan = scan_frames(&buf[..cut]);
            // The clean prefix is the largest whole-frame boundary ≤ cut.
            let frames = ends.iter().filter(|&&e| e <= cut).count() - 1;
            assert_eq!(scan.payloads.len(), frames, "cut at {cut}");
            assert_eq!(scan.clean_len, ends[frames], "cut at {cut}");
            assert_eq!(scan.truncated, cut != ends[frames]);
            assert_eq!(scan.payloads[..], payloads[..frames]);
        }
    }

    #[test]
    fn corruption_stops_the_scan() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"first");
        let first_end = buf.len();
        write_frame(&mut buf, b"second");
        write_frame(&mut buf, b"third");
        // Flip one payload byte of the second record.
        buf[first_end + HEADER_LEN] ^= 0xFF;
        let scan = scan_frames(&buf);
        assert!(scan.truncated);
        assert_eq!(scan.payloads, vec![b"first".to_vec()]);
        assert_eq!(scan.clean_len, first_end);
    }

    #[test]
    fn absurd_length_field_is_corruption_not_allocation() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"ok");
        let end = buf.len();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&[0; 4]);
        let scan = scan_frames(&buf);
        assert!(scan.truncated);
        assert_eq!(scan.clean_len, end);
        assert_eq!(scan.payloads.len(), 1);
    }
}
