//! The coordination store: a directory of epoch-stamped WAL streams and
//! snapshots, with deterministic prefix recovery.
//!
//! ## On-disk layout
//!
//! ```text
//! <dir>/snap-{epoch:020}.bin        point-in-time pending set (at most one live)
//! <dir>/wal-{epoch:020}-{s:04}.log  mutation streams of the current epoch
//! ```
//!
//! Engine mutations are **commit records**: one per accepted submit,
//! carrying the submitted query and the seqs of every query the submit
//! retired. A record is atomic (one checksummed frame), so any clean
//! record prefix corresponds exactly to a prefix of acknowledged
//! submits — there is no window where a delivered coordination is
//! half-logged.
//!
//! Recovery applies `snapshot + log tail` as a *set difference*: insert
//! every logged submit, remove every retired seq. Records carry globally
//! unique seqs and a retire always names an already-logged (or lost,
//! hence ignorable) submit, so the reconstruction is independent of the
//! interleaving order across streams — which is what makes one log per
//! shard sound without any cross-stream ordering.
//!
//! Recovery is **availability-first**: damage to a WAL — a torn tail, a
//! flipped byte, a zero-filled region, even a garbled header — shrinks
//! that stream's recovered prefix (reported via
//! [`RecoveryReport::torn_tails`]) but never refuses to open the store.
//! Only a *renamed* snapshot that fails validation is a hard error,
//! because it was fsynced before the rename made it visible and the
//! data it carried is gone with it.
//!
//! ## Snapshot rotation
//!
//! A snapshot advances the epoch: capture the live set under the
//! rotation write lock (no appends in flight), write
//! `snap-{e+1}.bin.tmp` (fsynced), create empty WALs for epoch `e+1`,
//! fsync the directory, rename the snapshot into place (the commit
//! point), then delete the old epoch's files. Every fallible step
//! precedes the rename, so a failed or crashed rotation leaves epoch
//! `e` fully authoritative (tmp and stray new-epoch files are swept on
//! the next open) — and once the rename lands, epoch `e+1` is complete.

use crate::bytes::{put_bytes, put_u32, put_u64, Reader};
use crate::error::StoreError;
use crate::frame::{scan_frames, write_frame};
use crate::wal::{read_wal, SyncPolicy, WalWriter, WAL_HEADER_LEN};
use coord_engine::lockrank::{self, LockRank};
use coord_obs::{Counter, Gauge, Histogram, Registry as ObsRegistry, TraceCtx, Tracer};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Snapshot file magic: `CSNP` + format version 1.
pub const SNAP_MAGIC: [u8; 8] = *b"CSNP\x00\x00\x00\x01";

/// Record tag: one accepted submit plus the set it retired.
const TAG_COMMIT: u8 = 1;

/// Store configuration.
#[derive(Clone, Copy, Debug)]
pub struct StoreOptions {
    /// Number of WAL streams (the sharded engine uses one per shard so
    /// concurrent submitters do not serialize on a single log mutex).
    pub streams: usize,
    /// When records reach stable storage.
    pub sync: SyncPolicy,
    /// Take a snapshot (and rotate the epoch) after this many records;
    /// `None` disables snapshotting.
    pub snapshot_every: Option<u64>,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            streams: 1,
            sync: SyncPolicy::Never,
            snapshot_every: Some(1024),
        }
    }
}

/// One engine mutation as logged: an accepted submit and the retired
/// set it produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitRecord {
    /// The submit's globally unique sequence number.
    pub seq: u64,
    /// The submitted query, encoded by the caller's codec.
    pub query: Vec<u8>,
    /// Seqs retired by this submit's coordination (possibly including
    /// `seq` itself when the new query coordinated immediately).
    pub retired: Vec<u64>,
}

impl CommitRecord {
    /// Encode into a WAL payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.query.len() + 16 * self.retired.len() + 32);
        out.push(TAG_COMMIT);
        put_u64(&mut out, self.seq);
        put_bytes(&mut out, &self.query);
        put_u32(&mut out, self.retired.len() as u32);
        for &r in &self.retired {
            put_u64(&mut out, r);
        }
        out
    }

    /// Decode from a WAL payload.
    pub fn decode(payload: &[u8]) -> Result<Self, StoreError> {
        let mut r = Reader::new(payload);
        let tag = r.u8()?;
        if tag != TAG_COMMIT {
            return Err(StoreError::codec(format!("unknown record tag {tag}")));
        }
        let seq = r.u64()?;
        let query = r.bytes()?.to_vec();
        let n = r.u32()? as usize;
        let mut retired = Vec::with_capacity(n);
        for _ in 0..n {
            retired.push(r.u64()?);
        }
        Ok(CommitRecord {
            seq,
            query,
            retired,
        })
    }
}

/// What recovery found on disk.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Epoch the store resumed in.
    pub epoch: u64,
    /// Whether a snapshot seeded the state.
    pub had_snapshot: bool,
    /// Pending entries loaded from the snapshot.
    pub snapshot_entries: usize,
    /// Commit records replayed from the epoch's WAL tails.
    pub records_replayed: usize,
    /// WAL files whose torn/corrupt tail was truncated.
    pub torn_tails: usize,
}

/// Point-in-time counters for the store.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStatsSnapshot {
    pub records_appended: u64,
    pub bytes_appended: u64,
    pub snapshots_taken: u64,
    pub epoch: u64,
}

struct EpochState {
    epoch: u64,
    wals: Vec<Mutex<WalWriter>>,
}

/// The store's observability handles: one registry shared with the
/// engine layer (the durable wrappers thread a single registry through
/// both), plus the recording instruments drawn from it.
struct StoreObs {
    registry: ObsRegistry,
    /// "wal_append_nanos": latency of one record append as the caller
    /// sees it (framing + write + any policy-triggered sync).
    append_hist: Histogram,
    /// "snapshot_rotation_nanos": full rotation under the write lock.
    rotation_hist: Histogram,
    /// "store_epoch": the current epoch, updated on open and rotation.
    epoch_gauge: Gauge,
    tracer: Tracer,
}

impl StoreObs {
    fn new(registry: ObsRegistry) -> Self {
        StoreObs {
            append_hist: registry.histogram("wal_append_nanos"),
            rotation_hist: registry.histogram("snapshot_rotation_nanos"),
            epoch_gauge: registry.gauge("store_epoch"),
            tracer: registry.tracer(),
            registry,
        }
    }
}

/// The durable store: WAL streams + snapshots in one directory.
pub struct CoordStore {
    dir: PathBuf,
    opts: StoreOptions,
    state: RwLock<EpochState>,
    /// Serializes snapshotters (the rotation write lock alone would let
    /// two threads race to the same new epoch).
    snap_lock: Mutex<()>,
    since_snapshot: AtomicU64,
    records_appended: Counter,
    bytes_appended: Counter,
    snapshots_taken: Counter,
    obs: StoreObs,
}

/// Result of opening a store directory: the store plus the recovered
/// pending set (encoded queries by seq).
pub struct Recovered {
    pub store: CoordStore,
    /// First unused sequence number.
    pub next_seq: u64,
    /// Surviving pending set: seq → encoded query, in seq order.
    pub live: BTreeMap<u64, Vec<u8>>,
    pub report: RecoveryReport,
}

fn snap_name(epoch: u64) -> String {
    format!("snap-{epoch:020}.bin")
}

fn wal_name(epoch: u64, stream: usize) -> String {
    format!("wal-{epoch:020}-{stream:04}.log")
}

fn parse_snap(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("snap-")?.strip_suffix(".bin")?;
    rest.parse().ok()
}

fn parse_wal(name: &str) -> Option<(u64, usize)> {
    let rest = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    let (epoch, stream) = rest.split_once('-')?;
    Some((epoch.parse().ok()?, stream.parse().ok()?))
}

/// Push the directory's entry table to stable storage, so renames and
/// newly created files survive power loss in the order we committed
/// them.
fn fsync_dir(dir: &Path) -> Result<(), StoreError> {
    File::open(dir)?.sync_all()?;
    Ok(())
}

impl CoordStore {
    /// Open (or create) a store directory, recovering the pending set
    /// from `snapshot + WAL tails`. Torn tails are truncated; files from
    /// superseded epochs and abandoned `.tmp` snapshots are removed.
    pub fn open(dir: impl AsRef<Path>, opts: StoreOptions) -> Result<Recovered, StoreError> {
        Self::open_with_obs(dir, opts, ObsRegistry::new())
    }

    /// Like [`Self::open`], recording into an explicit observability
    /// registry (shared with the engine layer by the durable wrappers,
    /// or [`ObsRegistry::disabled`] for near-zero instrument cost).
    /// Recovery itself is measured: `store_replay_records` counts the
    /// commit records replayed, `store_replay_nanos` gauges the full
    /// open-to-ready recovery time.
    pub fn open_with_obs(
        dir: impl AsRef<Path>,
        opts: StoreOptions,
        registry: ObsRegistry,
    ) -> Result<Recovered, StoreError> {
        assert!(opts.streams > 0, "at least one WAL stream required");
        let obs = StoreObs::new(registry);
        let replay_start = Instant::now();
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;

        // Inventory the directory.
        let mut snaps: Vec<u64> = Vec::new();
        let mut wals: Vec<(u64, usize, PathBuf)> = Vec::new();
        let mut tmps: Vec<PathBuf> = Vec::new();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            // Case-sensitive on purpose: only names this store itself
            // wrote (always lower-case) are sweep candidates.
            #[allow(clippy::case_sensitive_file_extension_comparisons)]
            if name.ends_with(".tmp") {
                tmps.push(entry.path());
            } else if let Some(e) = parse_snap(name) {
                snaps.push(e);
            } else if let Some((e, s)) = parse_wal(name) {
                wals.push((e, s, entry.path()));
            }
        }
        for tmp in tmps {
            let _ = std::fs::remove_file(tmp);
        }
        snaps.sort_unstable();

        // Seed from the newest snapshot, if any. A renamed snapshot was
        // fully written and synced before the rename, so a decode
        // failure here is real corruption, not a crash artifact.
        let mut report = RecoveryReport::default();
        let mut live: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        let mut next_seq = 0u64;
        let mut epoch = 0u64;
        if let Some(&e) = snaps.last() {
            let (snap_next, entries) = read_snapshot(&dir.join(snap_name(e)), e)?;
            next_seq = snap_next;
            report.had_snapshot = true;
            report.snapshot_entries = entries.len();
            live.extend(entries);
            epoch = e;
        }

        // Replay the chosen epoch's WAL tails: two passes (insert every
        // submit, then remove every retired seq) make the result
        // independent of cross-stream record order.
        let mut records: Vec<CommitRecord> = Vec::new();
        let mut clean: BTreeMap<usize, (PathBuf, u64)> = BTreeMap::new();
        for (e, s, path) in &wals {
            if *e != epoch {
                continue;
            }
            match read_wal(path) {
                Ok(contents) => {
                    if contents.epoch != epoch {
                        // A header whose epoch disagrees with the file
                        // name cannot vouch for its records: same
                        // treatment as a damaged header — an empty
                        // clean prefix.
                        report.torn_tails += 1;
                        clean.insert(*s, (path.clone(), 0));
                        continue;
                    }
                    if contents.torn {
                        report.torn_tails += 1;
                    }
                    let mut clean_len = contents.clean_len;
                    for (i, payload) in contents.records.iter().enumerate() {
                        match CommitRecord::decode(payload) {
                            Ok(r) => records.push(r),
                            Err(_) => {
                                // Checksum-clean but undecodable — e.g.
                                // a zero-filled region from a crashed
                                // allocation parses as endless empty
                                // frames. Availability-first prefix
                                // stop, like any other corruption:
                                // recovery never refuses to open.
                                clean_len = if i == 0 {
                                    WAL_HEADER_LEN
                                } else {
                                    contents.record_ends[i - 1]
                                };
                                report.torn_tails += 1;
                                break;
                            }
                        }
                    }
                    clean.insert(*s, (path.clone(), clean_len));
                }
                Err(StoreError::Corrupt(_)) => {
                    // Header never made it to disk: an empty clean
                    // prefix. Recreate the file below.
                    report.torn_tails += 1;
                    clean.insert(*s, (path.clone(), 0));
                }
                Err(e) => return Err(e),
            }
        }
        report.records_replayed = records.len();
        for r in &records {
            live.insert(r.seq, r.query.clone());
            next_seq = next_seq.max(r.seq + 1);
        }
        for r in &records {
            for retired in &r.retired {
                live.remove(retired);
                // A retire can name a seq whose own commit record was
                // lost to the crash (the cross-stream ack window).
                // next_seq must still advance past it: reusing the seq
                // would let this stale retire delete a *new* query on
                // the following recovery.
                next_seq = next_seq.max(retired + 1);
            }
        }

        // Remove files of superseded epochs.
        for (e, _, path) in &wals {
            if *e != epoch {
                let _ = std::fs::remove_file(path);
            }
        }
        for &e in &snaps {
            if e != epoch {
                let _ = std::fs::remove_file(dir.join(snap_name(e)));
            }
        }

        // Re-open every stream for append at its clean prefix.
        let sync_hist = obs.registry.histogram("wal_sync_nanos");
        let mut writers = Vec::with_capacity(opts.streams);
        for s in 0..opts.streams {
            let mut writer = match clean.get(&s) {
                Some((path, 0)) => WalWriter::create(path, epoch, opts.sync)?,
                Some((path, len)) => WalWriter::reopen(path, *len, opts.sync)?,
                None => WalWriter::create(&dir.join(wal_name(epoch, s)), epoch, opts.sync)?,
            };
            writer.set_obs(sync_hist.clone(), obs.tracer.clone());
            writers.push(Mutex::new(writer));
        }
        // Streams beyond the configured count (a shard-count change)
        // were replayed above; their files stay until the next rotation
        // captures their records in a snapshot.

        // Best-effort: persist the truncations/creations/deletions this
        // recovery performed (recovery is re-runnable, so a lost batch
        // of metadata just repeats the cleanup next time).
        let _ = fsync_dir(&dir);

        report.epoch = epoch;
        let replay_records = obs.registry.counter("store_replay_records");
        replay_records.add(records.len() as u64);
        obs.registry
            .gauge("store_replay_nanos")
            .set(replay_start.elapsed().as_nanos() as u64);
        obs.epoch_gauge.set(epoch);
        let store = CoordStore {
            dir,
            opts,
            state: RwLock::new(EpochState {
                epoch,
                wals: writers,
            }),
            snap_lock: Mutex::new(()),
            since_snapshot: AtomicU64::new(0),
            records_appended: Counter::new(),
            bytes_appended: Counter::new(),
            snapshots_taken: Counter::new(),
            obs,
        };
        store
            .obs
            .registry
            .register_counter("store_records_appended", &store.records_appended);
        store
            .obs
            .registry
            .register_counter("store_bytes_appended", &store.bytes_appended);
        store
            .obs
            .registry
            .register_counter("store_snapshots_taken", &store.snapshots_taken);
        Ok(Recovered {
            store,
            next_seq,
            live,
            report,
        })
    }

    /// The store's configuration.
    pub fn options(&self) -> &StoreOptions {
        &self.opts
    }

    /// Append one commit record to `stream` (wrapped modulo the stream
    /// count); returns the stream's clean length after the append.
    // lint: acquires(store.state, wal_stream)
    pub fn append_commit(&self, stream: usize, record: &CommitRecord) -> Result<u64, StoreError> {
        let payload = record.encode();
        let state = lockrank::ranked(LockRank::StoreState, self.state.read());
        let mut wal = lockrank::ranked(
            LockRank::WalStream,
            state.wals[stream % state.wals.len()].lock(),
        );
        let _span = self.obs.tracer.begin_in(TraceCtx::current(), "wal_append");
        let _timer = self.obs.append_hist.start();
        let end = wal.append(&payload)?;
        self.records_appended.incr();
        self.bytes_appended.add(payload.len() as u64 + 8);
        self.since_snapshot.fetch_add(1, Ordering::Relaxed);
        Ok(end)
    }

    /// Whether enough records accumulated since the last rotation for a
    /// snapshot to be due.
    pub fn snapshot_due(&self) -> bool {
        match self.opts.snapshot_every {
            None => false,
            Some(n) => self.since_snapshot.load(Ordering::Relaxed) >= n.max(1),
        }
    }

    /// Take a snapshot and rotate the epoch. `capture` runs under the
    /// rotation write lock — no appends are in flight — and must return
    /// the current `(next_seq, pending set)`; state captured there is
    /// exactly what a subsequent recovery restores before replaying the
    /// (empty) new WALs.
    pub fn snapshot<F>(&self, capture: F) -> Result<(), StoreError>
    where
        F: FnOnce() -> (u64, Vec<(u64, Vec<u8>)>),
    {
        let _one_at_a_time = lockrank::ranked(LockRank::SnapRotation, self.snap_lock.lock());
        self.snapshot_locked(capture)
    }

    /// Like [`Self::snapshot`], but re-checks [`Self::snapshot_due`]
    /// *after* serializing on the snapshot lock and skips the rotation
    /// (returning `false`) if another thread already took it — N
    /// submitters crossing the threshold together produce one
    /// rotation, not N. Returns `true` if a snapshot was taken.
    // lint: acquires(snap_lock, store.state)
    pub fn snapshot_if_due<F>(&self, capture: F) -> Result<bool, StoreError>
    where
        F: FnOnce() -> (u64, Vec<(u64, Vec<u8>)>),
    {
        let _one_at_a_time = lockrank::ranked(LockRank::SnapRotation, self.snap_lock.lock());
        if !self.snapshot_due() {
            return Ok(false);
        }
        self.snapshot_locked(capture)?;
        Ok(true)
    }

    // lint: acquires(store.state)
    fn snapshot_locked<F>(&self, capture: F) -> Result<(), StoreError>
    where
        F: FnOnce() -> (u64, Vec<(u64, Vec<u8>)>),
    {
        let _span = self
            .obs
            .tracer
            .begin_in(TraceCtx::current(), "snapshot_rotation");
        let _timer = self.obs.rotation_hist.start();
        let mut state = lockrank::ranked(LockRank::StoreState, self.state.write());
        let (next_seq, entries) = capture();
        let new_epoch = state.epoch + 1;

        // Write the snapshot to a tmp file and fsync before the rename
        // commit point.
        let tmp = self.dir.join(format!("{}.tmp", snap_name(new_epoch)));
        {
            let mut file = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)?;
            let mut buf = Vec::new();
            buf.extend_from_slice(&SNAP_MAGIC);
            buf.extend_from_slice(&new_epoch.to_le_bytes());
            let mut meta = Vec::new();
            put_u64(&mut meta, next_seq);
            put_u64(&mut meta, entries.len() as u64);
            write_frame(&mut buf, &meta);
            for (seq, query) in &entries {
                let mut e = Vec::with_capacity(query.len() + 12);
                put_u64(&mut e, *seq);
                put_bytes(&mut e, query);
                write_frame(&mut buf, &e);
            }
            file.write_all(&buf)?;
            file.sync_data()?;
        }

        // Create the new epoch's streams BEFORE the rename commit
        // point: every fallible step must precede it, so a failed
        // rotation leaves the old epoch fully authoritative (the
        // still-open old WALs keep accepting durable appends, and the
        // next recovery — seeing no new snapshot — replays them and
        // sweeps the stray tmp/new-epoch files).
        let old_epoch = state.epoch;
        let sync_hist = self.obs.registry.histogram("wal_sync_nanos");
        let mut new_wals = Vec::with_capacity(self.opts.streams);
        for s in 0..self.opts.streams {
            let mut w = WalWriter::create(
                &self.dir.join(wal_name(new_epoch, s)),
                new_epoch,
                self.opts.sync,
            )?;
            w.set_obs(sync_hist.clone(), self.obs.tracer.clone());
            new_wals.push(Mutex::new(w));
        }
        // Make the tmp snapshot's and the new WALs' directory entries
        // durable before the rename commit point: metadata must not
        // reach disk out of order with the rename, or a power loss
        // could surface the new snapshot without its WAL files'
        // content.
        fsync_dir(&self.dir)?;
        let final_path = self.dir.join(snap_name(new_epoch));
        std::fs::rename(&tmp, &final_path)?;
        // Persist the rename itself before the old epoch's files are
        // unlinked below. Best-effort by design: the rename already
        // happened, so aborting here would leave the in-memory epoch
        // behind the filesystem and funnel acknowledged appends into
        // WALs the next recovery ignores — strictly worse than a
        // possibly-unpersisted rename.
        let _ = fsync_dir(&self.dir);

        state.epoch = new_epoch;
        state.wals = new_wals;
        self.since_snapshot.store(0, Ordering::Relaxed);
        self.snapshots_taken.incr();
        self.obs.epoch_gauge.set(new_epoch);
        drop(state);

        let _ = std::fs::remove_file(self.dir.join(snap_name(old_epoch)));
        // Sweep the directory for *every* WAL of the old epoch — a
        // stream-count reduction leaves replayed-but-writerless stream
        // files behind that indexed deletion would miss.
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if parse_wal(name).is_some_and(|(e, _)| e == old_epoch) {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        Ok(())
    }

    /// Current epoch.
    pub fn epoch(&self) -> u64 {
        lockrank::ranked(LockRank::StoreState, self.state.read()).epoch
    }

    /// Clean length (bytes) of one WAL stream — the offset a crash-point
    /// test truncates at.
    pub fn stream_len(&self, stream: usize) -> u64 {
        let state = lockrank::ranked(LockRank::StoreState, self.state.read());
        let wal = lockrank::ranked(
            LockRank::WalStream,
            state.wals[stream % state.wals.len()].lock(),
        );
        wal.len()
    }

    /// Byte offset where records start in a WAL file (after the header).
    pub fn wal_header_len() -> u64 {
        WAL_HEADER_LEN
    }

    /// Force all streams to stable storage.
    pub fn sync_all(&self) -> Result<(), StoreError> {
        let state = lockrank::ranked(LockRank::StoreState, self.state.read());
        for wal in &state.wals {
            lockrank::ranked(LockRank::WalStream, wal.lock()).sync()?;
        }
        Ok(())
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> StoreStatsSnapshot {
        StoreStatsSnapshot {
            records_appended: self.records_appended.get(),
            bytes_appended: self.bytes_appended.get(),
            snapshots_taken: self.snapshots_taken.get(),
            epoch: lockrank::ranked(LockRank::StoreState, self.state.read()).epoch,
        }
    }

    /// The observability registry this store records into: WAL append
    /// and sync latency histograms, snapshot-rotation timings, replay
    /// counters, and the epoch gauge.
    pub fn obs(&self) -> &ObsRegistry {
        &self.obs.registry
    }
}

/// A decoded snapshot: the next unused seq plus the pending entries
/// (seq, encoded query).
type SnapshotContents = (u64, Vec<(u64, Vec<u8>)>);

/// Read and validate a snapshot file. Unlike WAL tails, a snapshot must
/// be *entirely* clean — it was fsynced before its rename made it
/// visible, so any damage is real corruption.
fn read_snapshot(path: &Path, expect_epoch: u64) -> Result<SnapshotContents, StoreError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < 16 || bytes[..8] != SNAP_MAGIC {
        return Err(StoreError::corrupt(format!(
            "{} is not a snapshot (short or bad magic)",
            path.display()
        )));
    }
    let epoch = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    if epoch != expect_epoch {
        return Err(StoreError::corrupt(format!(
            "{} header epoch {epoch} disagrees with its name",
            path.display()
        )));
    }
    let scan = scan_frames(&bytes[16..]);
    if scan.truncated || scan.payloads.is_empty() {
        return Err(StoreError::corrupt(format!(
            "{} has a damaged frame",
            path.display()
        )));
    }
    let mut meta = Reader::new(&scan.payloads[0]);
    let next_seq = meta.u64()?;
    let count = meta.u64()? as usize;
    if scan.payloads.len() != count + 1 {
        return Err(StoreError::corrupt(format!(
            "{} holds {} entries, header promised {count}",
            path.display(),
            scan.payloads.len() - 1
        )));
    }
    let mut entries = Vec::with_capacity(count);
    for payload in &scan.payloads[1..] {
        let mut r = Reader::new(payload);
        let seq = r.u64()?;
        let query = r.bytes()?.to_vec();
        entries.push((seq, query));
    }
    Ok((next_seq, entries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temp::TempDir;

    fn commit(seq: u64, q: &str, retired: &[u64]) -> CommitRecord {
        CommitRecord {
            seq,
            query: q.as_bytes().to_vec(),
            retired: retired.to_vec(),
        }
    }

    fn opts(streams: usize) -> StoreOptions {
        StoreOptions {
            streams,
            sync: SyncPolicy::Never,
            snapshot_every: None,
        }
    }

    #[test]
    fn record_roundtrip() {
        let r = commit(9, "query-bytes", &[1, 2, 9]);
        assert_eq!(CommitRecord::decode(&r.encode()).unwrap(), r);
        assert!(CommitRecord::decode(&[77]).is_err());
    }

    #[test]
    fn open_empty_then_reopen_with_records() {
        let dir = TempDir::new("store-basic");
        let rec = CoordStore::open(dir.path(), opts(1)).unwrap();
        assert_eq!(rec.next_seq, 0);
        assert!(rec.live.is_empty());
        assert!(!rec.report.had_snapshot);
        rec.store.append_commit(0, &commit(0, "a", &[])).unwrap();
        rec.store.append_commit(0, &commit(1, "b", &[])).unwrap();
        // Submit 2 coordinates and retires 0 and itself.
        rec.store
            .append_commit(0, &commit(2, "c", &[0, 2]))
            .unwrap();
        drop(rec);

        let rec = CoordStore::open(dir.path(), opts(1)).unwrap();
        assert_eq!(rec.next_seq, 3);
        assert_eq!(rec.report.records_replayed, 3);
        let live: Vec<(u64, String)> = rec
            .live
            .iter()
            .map(|(s, q)| (*s, String::from_utf8(q.clone()).unwrap()))
            .collect();
        assert_eq!(live, vec![(1, "b".into())]);
    }

    #[test]
    fn snapshot_rotates_epoch_and_prunes_old_files() {
        let dir = TempDir::new("store-rotate");
        let rec = CoordStore::open(dir.path(), opts(2)).unwrap();
        rec.store.append_commit(0, &commit(0, "a", &[])).unwrap();
        rec.store.append_commit(1, &commit(1, "b", &[])).unwrap();
        rec.store
            .snapshot(|| (2, vec![(0, b"a".to_vec()), (1, b"b".to_vec())]))
            .unwrap();
        assert_eq!(rec.store.epoch(), 1);
        // Old epoch files are gone; snapshot + fresh WALs remain.
        let names: Vec<String> = std::fs::read_dir(dir.path())
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert!(names.iter().any(|n| n.starts_with("snap-")), "{names:?}");
        assert!(
            names
                .iter()
                .all(|n| !n.contains("-00000000000000000000-") || n.starts_with("snap-")),
            "old epoch wal lingers: {names:?}"
        );
        // Tail records after the snapshot land in the new epoch.
        rec.store.append_commit(0, &commit(2, "c", &[1])).unwrap();
        drop(rec);

        let rec = CoordStore::open(dir.path(), opts(2)).unwrap();
        assert!(rec.report.had_snapshot);
        assert_eq!(rec.report.snapshot_entries, 2);
        assert_eq!(rec.report.records_replayed, 1);
        assert_eq!(rec.next_seq, 3);
        let seqs: Vec<u64> = rec.live.keys().copied().collect();
        assert_eq!(seqs, vec![0, 2]);
    }

    /// Regression: a retire naming a seq whose own commit record was
    /// lost (cross-stream ack window) must still advance next_seq past
    /// it — reusing the seq would let the stale retire delete a new
    /// query on the following recovery.
    #[test]
    fn next_seq_advances_past_retired_only_seqs() {
        let dir = TempDir::new("store-retired-seq");
        {
            let rec = CoordStore::open(dir.path(), opts(2)).unwrap();
            // Seq 4 coordinated with seq 5 and retired both; seq 5's
            // own commit record never hit disk (lost stream).
            rec.store
                .append_commit(0, &commit(4, "t2", &[4, 5]))
                .unwrap();
        }
        let rec = CoordStore::open(dir.path(), opts(2)).unwrap();
        assert_eq!(rec.next_seq, 6, "retired-only seq 5 must not be reused");
        // A new query at the (now unused) next seq survives the stale
        // retire record across another recovery.
        rec.store.append_commit(1, &commit(6, "new", &[])).unwrap();
        drop(rec);
        let rec = CoordStore::open(dir.path(), opts(2)).unwrap();
        assert_eq!(rec.live.len(), 1);
        assert_eq!(rec.live.keys().copied().collect::<Vec<_>>(), vec![6]);
    }

    /// Regression: a rotation that fails partway must leave the old
    /// epoch fully authoritative — acknowledged appends after the
    /// failure must survive the next recovery. (Every fallible rotation
    /// step precedes the snapshot-rename commit point.)
    #[test]
    fn failed_rotation_keeps_existing_wal_authoritative() {
        let dir = TempDir::new("store-failed-rotation");
        let rec = CoordStore::open(dir.path(), opts(1)).unwrap();
        rec.store.append_commit(0, &commit(0, "a", &[])).unwrap();
        // Block creation of the new epoch's WAL (a directory squats on
        // its path): the rotation must fail *before* renaming the
        // snapshot into place.
        let blocker = dir.path().join(wal_name(1, 0));
        std::fs::create_dir(&blocker).unwrap();
        assert!(rec
            .store
            .snapshot(|| (1, vec![(0, b"a".to_vec())]))
            .is_err());
        assert_eq!(rec.store.epoch(), 0, "failed rotation advanced the epoch");
        // Appends continue durably in the old epoch.
        rec.store.append_commit(0, &commit(1, "b", &[])).unwrap();
        drop(rec);
        std::fs::remove_dir(&blocker).unwrap();

        let rec = CoordStore::open(dir.path(), opts(1)).unwrap();
        assert!(!rec.report.had_snapshot, "half-rotated snapshot chosen");
        assert_eq!(rec.live.len(), 2, "post-failure append lost");
    }

    #[test]
    fn snapshot_if_due_collapses_to_one_rotation() {
        let dir = TempDir::new("store-if-due");
        let rec = CoordStore::open(
            dir.path(),
            StoreOptions {
                streams: 1,
                sync: SyncPolicy::Never,
                snapshot_every: Some(2),
            },
        )
        .unwrap();
        rec.store.append_commit(0, &commit(0, "a", &[])).unwrap();
        assert!(!rec.store.snapshot_due());
        assert!(!rec.store.snapshot_if_due(|| unreachable!()).unwrap());
        rec.store.append_commit(0, &commit(1, "b", &[])).unwrap();
        assert!(rec.store.snapshot_due());
        // First caller rotates…
        assert!(rec
            .store
            .snapshot_if_due(|| (2, vec![(0, b"a".to_vec()), (1, b"b".to_vec())]))
            .unwrap());
        // …stragglers that also saw the threshold do nothing.
        assert!(!rec.store.snapshot_if_due(|| unreachable!()).unwrap());
        assert_eq!(rec.store.stats().snapshots_taken, 1);
    }

    #[test]
    fn rotation_sweeps_stale_extra_stream_files() {
        let dir = TempDir::new("store-sweep");
        {
            let rec = CoordStore::open(dir.path(), opts(4)).unwrap();
            for s in 0..4 {
                rec.store
                    .append_commit(s, &commit(s as u64, "q", &[]))
                    .unwrap();
            }
        }
        // Re-open with fewer streams (streams 2 and 3 have no writer),
        // then rotate: every epoch-0 WAL must be swept, including the
        // writerless ones.
        let rec = CoordStore::open(dir.path(), opts(2)).unwrap();
        assert_eq!(rec.live.len(), 4);
        rec.store
            .snapshot(|| (4, rec.live.iter().map(|(s, b)| (*s, b.clone())).collect()))
            .unwrap();
        let stale: Vec<String> = std::fs::read_dir(dir.path())
            .unwrap()
            .filter_map(|e| e.unwrap().file_name().into_string().ok())
            .filter(|n| parse_wal(n).is_some_and(|(e, _)| e == 0))
            .collect();
        assert!(stale.is_empty(), "epoch-0 WALs linger: {stale:?}");
        drop(rec);
        let rec = CoordStore::open(dir.path(), opts(2)).unwrap();
        assert_eq!(rec.live.len(), 4);
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let dir = TempDir::new("store-torn");
        let rec = CoordStore::open(dir.path(), opts(1)).unwrap();
        rec.store.append_commit(0, &commit(0, "keep", &[])).unwrap();
        let clean = rec.store.append_commit(0, &commit(1, "torn", &[])).unwrap();
        drop(rec);
        let path = dir.path().join(wal_name(0, 0));
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..clean as usize - 3]).unwrap();

        let rec = CoordStore::open(dir.path(), opts(1)).unwrap();
        assert_eq!(rec.report.torn_tails, 1);
        assert_eq!(rec.live.len(), 1);
        rec.store
            .append_commit(0, &commit(1, "retry", &[]))
            .unwrap();
        drop(rec);

        let rec = CoordStore::open(dir.path(), opts(1)).unwrap();
        assert_eq!(rec.report.torn_tails, 0);
        let live: Vec<String> = rec
            .live
            .values()
            .map(|q| String::from_utf8(q.clone()).unwrap())
            .collect();
        assert_eq!(live, vec!["keep", "retry"]);
    }

    /// Regression: a zero-filled tail (e.g. a crashed file allocation)
    /// is *checksum-clean* — `len 0, crc 0` frames repeat forever — but
    /// undecodable. Recovery must prefix-stop there, not refuse to open.
    #[test]
    fn zero_filled_tail_is_a_prefix_stop_not_a_hard_error() {
        let dir = TempDir::new("store-zeros");
        let clean_end;
        {
            let rec = CoordStore::open(dir.path(), opts(1)).unwrap();
            rec.store.append_commit(0, &commit(0, "keep", &[])).unwrap();
            clean_end = rec.store.append_commit(0, &commit(1, "also", &[])).unwrap();
        }
        let path = dir.path().join(wal_name(0, 0));
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0u8; 256]);
        std::fs::write(&path, &bytes).unwrap();

        let rec = CoordStore::open(dir.path(), opts(1)).unwrap();
        assert_eq!(rec.report.torn_tails, 1);
        assert_eq!(rec.live.len(), 2, "clean records before the zeros lost");
        // The zeros were truncated away; appends continue from the
        // clean boundary.
        assert_eq!(rec.store.stream_len(0), clean_end);
        rec.store
            .append_commit(0, &commit(2, "after", &[]))
            .unwrap();
        drop(rec);
        let rec = CoordStore::open(dir.path(), opts(1)).unwrap();
        assert_eq!(rec.live.len(), 3);
    }

    #[test]
    fn abandoned_tmp_snapshot_is_ignored_and_removed() {
        let dir = TempDir::new("store-tmp");
        {
            let rec = CoordStore::open(dir.path(), opts(1)).unwrap();
            rec.store.append_commit(0, &commit(0, "a", &[])).unwrap();
        }
        // A crash mid-snapshot leaves a tmp file behind.
        std::fs::write(
            dir.path().join("snap-00000000000000000001.bin.tmp"),
            b"junk",
        )
        .unwrap();
        let rec = CoordStore::open(dir.path(), opts(1)).unwrap();
        assert!(!rec.report.had_snapshot);
        assert_eq!(rec.live.len(), 1);
        assert!(!dir
            .path()
            .join("snap-00000000000000000001.bin.tmp")
            .exists());
    }

    #[test]
    fn stream_count_change_still_replays_old_streams() {
        let dir = TempDir::new("store-streams");
        {
            let rec = CoordStore::open(dir.path(), opts(4)).unwrap();
            for s in 0..4 {
                rec.store
                    .append_commit(s, &commit(s as u64, "q", &[]))
                    .unwrap();
            }
        }
        // Re-open with fewer streams: every old stream's records count.
        let rec = CoordStore::open(dir.path(), opts(2)).unwrap();
        assert_eq!(rec.live.len(), 4);
        assert_eq!(rec.next_seq, 4);
    }

    #[test]
    fn missing_wal_after_snapshot_reads_as_empty() {
        let dir = TempDir::new("store-missing-wal");
        {
            let rec = CoordStore::open(dir.path(), opts(2)).unwrap();
            rec.store.append_commit(0, &commit(0, "a", &[])).unwrap();
            rec.store
                .snapshot(|| (1, vec![(0, b"a".to_vec())]))
                .unwrap();
        }
        // Simulate a crash right after the snapshot rename: the new
        // epoch's WALs never got created.
        for s in 0..2 {
            let _ = std::fs::remove_file(dir.path().join(wal_name(1, s)));
        }
        let rec = CoordStore::open(dir.path(), opts(2)).unwrap();
        assert!(rec.report.had_snapshot);
        assert_eq!(rec.report.records_replayed, 0);
        assert_eq!(rec.live.len(), 1);
    }
}
