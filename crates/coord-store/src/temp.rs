//! Self-cleaning temporary directories for tests and benches.
//!
//! The workspace has no `tempfile` dependency (offline container), so
//! the store ships its own minimal equivalent: a uniquely named
//! directory under the system temp dir, removed recursively on drop.
//! Exposed publicly because the durability bench and the top-level
//! crash-recovery suites all need scratch store directories.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A temporary directory deleted (recursively) when dropped.
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create a fresh directory whose name starts with `prefix`.
    ///
    /// # Panics
    /// Panics if the directory cannot be created (tests and benches have
    /// no way to proceed without scratch space).
    pub fn new(prefix: &str) -> Self {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("coord-store-{prefix}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_cleans_up() {
        let kept;
        {
            let dir = TempDir::new("probe");
            kept = dir.path().to_path_buf();
            assert!(kept.is_dir());
            std::fs::write(kept.join("inner.txt"), b"x").unwrap();
        }
        assert!(!kept.exists());
    }

    #[test]
    fn two_dirs_are_distinct() {
        let a = TempDir::new("dup");
        let b = TempDir::new("dup");
        assert_ne!(a.path(), b.path());
    }
}
