//! Shared test fixtures: a minimal key-structured query, its byte
//! codec, and a saturation evaluator.
//!
//! Used by the crate's own unit tests and its crash-point fuzz suite
//! (`tests/crash_points.rs`) — one copy, so the encoding and the
//! coordination semantics the two suites exercise cannot drift apart.
//! Public for the same reason [`crate::temp`] is: downstream crates'
//! store experiments need the same scaffolding.

use crate::bytes::{put_i64, put_str, put_u32, Reader};
use crate::codec::QueryCodec;
use crate::error::StoreError;
use coord_engine::index::{keys_related, KeyPattern};
use coord_engine::{ComponentEvaluator, CoordinationQuery};

/// A minimal query carrying only coordination key structure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MiniQuery {
    pub name: String,
    pub provides: Vec<(String, Option<i64>)>,
    pub requires: Vec<(String, Option<i64>)>,
}

/// Build a [`MiniQuery`] from constant keys.
pub fn mini(name: &str, provides: &[(&str, i64)], requires: &[(&str, i64)]) -> MiniQuery {
    MiniQuery {
        name: name.into(),
        provides: provides
            .iter()
            .map(|&(r, c)| (r.to_string(), Some(c)))
            .collect(),
        requires: requires
            .iter()
            .map(|&(r, c)| (r.to_string(), Some(c)))
            .collect(),
    }
}

/// A chain link: provides `R(i)`, requires `R(next)` (none = free tail).
pub fn chain(i: i64, next: Option<i64>) -> MiniQuery {
    MiniQuery {
        name: format!("q{i}"),
        provides: vec![("R".into(), Some(i))],
        requires: next.map(|n| ("R".into(), Some(n))).into_iter().collect(),
    }
}

impl CoordinationQuery for MiniQuery {
    type Rel = String;
    type Cst = i64;
    fn provides(&self) -> Vec<KeyPattern<String, i64>> {
        self.provides.clone()
    }
    fn requires(&self) -> Vec<KeyPattern<String, i64>> {
        self.requires.clone()
    }
}

/// Coordinates a component exactly when every required key is matched
/// by a provided key within it; delivers the member names.
#[derive(Clone)]
pub struct SaturationEvaluator;

impl ComponentEvaluator<MiniQuery> for SaturationEvaluator {
    type Delivery = Vec<String>;
    type Error = String;

    fn evaluate(&self, queries: &[MiniQuery]) -> Result<Option<(Vec<usize>, Vec<String>)>, String> {
        let provided: Vec<_> = queries.iter().flat_map(|x| x.provides.clone()).collect();
        let ok = queries.iter().all(|x| {
            x.requires
                .iter()
                .all(|r| provided.iter().any(|p| keys_related(p, r)))
        });
        if ok {
            Ok(Some((
                (0..queries.len()).collect(),
                queries.iter().map(|x| x.name.clone()).collect(),
            )))
        } else {
            Ok(None)
        }
    }
}

/// Deterministic byte codec for [`MiniQuery`].
pub struct MiniCodec;

impl QueryCodec<MiniQuery> for MiniCodec {
    fn encode(&self, q: &MiniQuery, out: &mut Vec<u8>) {
        put_str(out, &q.name);
        for side in [&q.provides, &q.requires] {
            put_u32(out, side.len() as u32);
            for (r, c) in side {
                put_str(out, r);
                match c {
                    Some(v) => {
                        out.push(1);
                        put_i64(out, *v);
                    }
                    None => out.push(0),
                }
            }
        }
    }

    fn decode(&self, bytes: &[u8]) -> Result<MiniQuery, StoreError> {
        let mut r = Reader::new(bytes);
        let name = r.str()?;
        let mut sides = Vec::new();
        for _ in 0..2 {
            let n = r.u32()? as usize;
            let mut side = Vec::with_capacity(n);
            for _ in 0..n {
                let rel = r.str()?;
                let c = match r.u8()? {
                    1 => Some(r.i64()?),
                    _ => None,
                };
                side.push((rel, c));
            }
            sides.push(side);
        }
        let requires = sides.pop().expect("two sides encoded");
        let provides = sides.pop().expect("two sides encoded");
        Ok(MiniQuery {
            name,
            provides,
            requires,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_roundtrip() {
        let codec = MiniCodec;
        for q in [
            chain(5, Some(6)),
            chain(9, None),
            mini("m", &[("A", 1), ("B", 2)], &[("C", 3)]),
        ] {
            let mut bytes = Vec::new();
            codec.encode(&q, &mut bytes);
            assert_eq!(codec.decode(&bytes).unwrap(), q);
        }
        assert!(MiniCodec.decode(&[9, 9]).is_err());
    }
}
