//! Durable wrappers around the online coordination engines.
//!
//! [`DurableEngine`] wraps an [`IncrementalEngine`]; [`DurableShardedEngine`]
//! wraps a [`ShardedEngine`] with as many WAL streams as shards under a
//! shared snapshot epoch (records are spread round-robin over the
//! streams for append parallelism rather than pinned to the owning
//! shard — recovery is order-independent, so pinning would buy
//! nothing). Both follow the same commit protocol:
//!
//! 1. apply the submit to the in-memory engine (a rejected submit
//!    mutates nothing and logs nothing),
//! 2. record the accepted mutation — the query plus the seqs it retired
//!    — as **one** checksummed commit record,
//! 3. acknowledge the caller.
//!
//! A crash before step 2 loses only unacknowledged work; recovery
//! rebuilds exactly the state produced by the clean record prefix.
//! Replay never re-evaluates components: the log already says which
//! queries retired, so recovery decodes the surviving pending set and
//! re-indexes it with `insert_pending` — which is why the `durability`
//! bench measures replay *faster* than live submission.
//!
//! ## The retired-seq registry
//!
//! The engine retires queries by value, not by any stable id, so the
//! wrapper keeps a registry mapping each pending query's encoding to the
//! seqs that submitted it (a multiset: duplicate queries pop oldest
//! first — retiring either duplicate reconstructs the same pending
//! multiset). In the sharded engine the registry entry is made *before*
//! the engine apply, so a concurrent submit on another thread that
//! retires the query always finds its seq.
//!
//! ## Sharded acknowledgment window (closed)
//!
//! With multiple log streams, a submit used to be able to retire a
//! query whose own commit record (on another stream) had not hit the
//! log yet: recovery stayed exact — a retire naming a never-logged seq
//! is simply ignored, and the unlogged query was never acknowledged —
//! but a *delivered* coordination could mention a partner whose commit
//! record was lost with the crash. The sharded wrapper now enforces a
//! **per-coordination flush barrier**: the registry tracks, per seq,
//! whether the submit's commit record has been appended, a retire only
//! pops seqs whose record is on its stream (waiting out the short
//! append-in-flight window of a concurrent partner), and a delivering
//! submit syncs every stream before acknowledging (under any policy
//! stronger than [`SyncPolicy::Never`]). So at the moment a
//! coordination is delivered, every partner's commit record is appended
//! — and as durable as the deliverer's own record. The one residual
//! caveat: if a partner's *append itself failed* (a [`StoreError`]
//! already surfaced to that partner's submitter), its seq is released
//! rather than blocking the retirer forever — that degraded-durability
//! state is explicit on both sides. The single-stream [`DurableEngine`]
//! has strict prefix semantics and needs none of this.
//!
//! ## Rebalancing and the per-shard streams
//!
//! [`DurableShardedEngine`] routes each commit record to the WAL stream
//! of the shard that ran the submit (`submit_with_shard`), so the
//! stream mapping stays correct as the [`coord_engine::Rebalancer`]
//! moves components between shards — a component's post-move commits
//! land on its new shard's stream with no `Rebalanced` log record
//! needed, because recovery is order-independent across streams and
//! re-routes the surviving pending set against the *current* placement
//! on replay.

use crate::codec::QueryCodec;
use crate::error::{DurableError, StoreError};
use crate::store::{CommitRecord, CoordStore, RecoveryReport, StoreOptions};
use crate::wal::SyncPolicy;
use coord_engine::lockrank::{self, LockRank};
use coord_engine::{
    ComponentEvaluator, CoordinationQuery, IncrementalEngine, Placement, RebalanceConfig,
    RebalanceReport, Rebalancer, ShardedEngine, SubmitOutcome,
};
use coord_obs::Registry as ObsRegistry;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Durability configuration for the engine wrappers.
#[derive(Clone, Copy, Debug)]
pub struct DurabilityOptions {
    /// When appended records reach stable storage.
    pub sync: SyncPolicy,
    /// Snapshot (and rotate the WAL epoch) after this many commit
    /// records; `None` disables snapshotting.
    pub snapshot_every: Option<u64>,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions {
            sync: SyncPolicy::Never,
            snapshot_every: Some(1024),
        }
    }
}

impl DurabilityOptions {
    fn store_options(&self, streams: usize) -> StoreOptions {
        StoreOptions {
            streams,
            sync: self.sync,
            snapshot_every: self.snapshot_every,
        }
    }
}

/// One registered pending query: its encoding plus where its submit
/// stands. Sharded submits *reserve* an entry before the engine apply
/// (so a racing retire on another thread always finds the seq) and
/// confirm it afterwards; snapshots skip unconfirmed entries — a
/// reserved entry may belong to a submit the engine is about to reject,
/// and capturing it would resurrect a query no uninterrupted run ever
/// held. `logged` flips once the submit's commit record is appended to
/// its stream (or its append definitively failed): the ack-window
/// barrier only lets a retire pop logged entries, so a delivered
/// coordination can never name a partner whose record is still in
/// flight.
struct RegistryEntry {
    bytes: Vec<u8>,
    applied: bool,
    logged: bool,
}

/// Pending-set bookkeeping shared by both wrappers: seq → encoding (the
/// snapshot payload) and encoding → seqs (retired-query lookup).
#[derive(Default)]
struct Registry {
    live: BTreeMap<u64, RegistryEntry>,
    by_bytes: HashMap<Vec<u8>, VecDeque<u64>>,
}

impl Registry {
    fn insert(&mut self, seq: u64, bytes: Vec<u8>, applied: bool, logged: bool) {
        self.by_bytes
            .entry(bytes.clone())
            .or_default()
            .push_back(seq);
        self.live.insert(
            seq,
            RegistryEntry {
                bytes,
                applied,
                logged,
            },
        );
    }

    /// Mark a reserved seq as applied by the engine (snapshots may now
    /// capture it).
    fn confirm(&mut self, seq: u64) {
        if let Some(entry) = self.live.get_mut(&seq) {
            entry.applied = true;
        }
    }

    /// Mark a seq's commit record as appended to its stream (no-op if
    /// the entry was already retired — a submit that coordinated
    /// immediately pops its own entry before appending).
    fn mark_logged(&mut self, seq: u64) {
        if let Some(entry) = self.live.get_mut(&seq) {
            entry.logged = true;
        }
    }

    /// Pop the oldest **applied and logged** live seq whose query has
    /// this encoding (`own_seq` — the retiring submit's own reservation
    /// — is exempt from the logged requirement: its record is appended,
    /// with the retire list, right after). Reserved (unapplied) seqs
    /// are never taken: they may belong to a concurrent submit the
    /// engine is about to reject, and retiring one would leave the
    /// applied duplicate's seq in the registry with no engine copy
    /// behind it — which a snapshot or replay would then resurrect.
    /// Applied-but-unlogged seqs are not taken either — that is the
    /// acknowledgment-window barrier: the caller waits out the
    /// partner's in-flight append instead of delivering a coordination
    /// whose partner might never reach the log.
    fn retire(&mut self, bytes: &[u8], own_seq: Option<u64>) -> Option<u64> {
        let seqs = self.by_bytes.get(bytes)?;
        let pos = seqs.iter().position(|s| {
            self.live
                .get(s)
                .is_some_and(|e| e.applied && (e.logged || own_seq == Some(*s)))
        })?;
        let seqs = self.by_bytes.get_mut(bytes).expect("checked above");
        let seq = seqs.remove(pos).expect("position in bounds");
        if seqs.is_empty() {
            self.by_bytes.remove(bytes);
        }
        self.live.remove(&seq);
        Some(seq)
    }

    /// Remove a specific reserved seq (a rejected submit).
    fn remove(&mut self, seq: u64) {
        if let Some(entry) = self.live.remove(&seq) {
            if let Some(seqs) = self.by_bytes.get_mut(&entry.bytes) {
                seqs.retain(|&s| s != seq);
                if seqs.is_empty() {
                    self.by_bytes.remove(&entry.bytes);
                }
            }
        }
    }

    /// Applied entries only: a reserved-but-unconfirmed entry's record
    /// (if the submit is accepted at all) will land in the post-rotation
    /// epoch, so skipping it here loses nothing.
    fn capture(&self) -> Vec<(u64, Vec<u8>)> {
        self.live
            .iter()
            .filter(|(_, e)| e.applied)
            .map(|(s, e)| (*s, e.bytes.clone()))
            .collect()
    }

    fn len(&self) -> usize {
        self.live.len()
    }
}

/// A single-writer [`IncrementalEngine`] with WAL + snapshot durability.
pub struct DurableEngine<Q: CoordinationQuery, V, C> {
    inner: IncrementalEngine<Q, V>,
    store: CoordStore,
    codec: C,
    registry: Registry,
    next_seq: u64,
    report: RecoveryReport,
    /// Last failed background rotation (see [`Self::take_snapshot_error`]).
    snapshot_error: Option<StoreError>,
}

impl<Q, V, C> DurableEngine<Q, V, C>
where
    Q: CoordinationQuery,
    V: ComponentEvaluator<Q>,
    C: QueryCodec<Q>,
{
    /// Open (or create) a durable engine at `dir`, recovering any
    /// pending set a previous process left behind.
    pub fn open(
        dir: impl AsRef<Path>,
        evaluator: V,
        codec: C,
        options: DurabilityOptions,
    ) -> Result<Self, StoreError> {
        Self::open_with_obs(dir, evaluator, codec, options, ObsRegistry::new())
    }

    /// Like [`Self::open`], with one observability registry shared by
    /// the store (WAL append/sync, rotation, replay instruments) and
    /// the wrapped engine.
    pub fn open_with_obs(
        dir: impl AsRef<Path>,
        evaluator: V,
        codec: C,
        options: DurabilityOptions,
        obs: ObsRegistry,
    ) -> Result<Self, StoreError> {
        let recovered = CoordStore::open_with_obs(dir, options.store_options(1), obs.clone())?;
        let mut inner = IncrementalEngine::new(evaluator);
        inner.metrics().register(&obs);
        inner.set_tracer(obs.tracer());
        let mut registry = Registry::default();
        for (seq, bytes) in &recovered.live {
            inner.insert_pending(codec.decode(bytes)?);
            registry.insert(*seq, bytes.clone(), true, true);
        }
        Ok(DurableEngine {
            inner,
            store: recovered.store,
            codec,
            registry,
            next_seq: recovered.next_seq,
            report: recovered.report,
            snapshot_error: None,
        })
    }

    /// Submit a query; on acceptance the mutation is logged before the
    /// caller is acknowledged.
    ///
    /// A [`DurableError::Store`] failure means the in-memory submit
    /// applied but was **not** made durable (it will not survive a
    /// crash); the in-memory engine remains usable. A *snapshot*
    /// failure after a durably-logged submit does not fail the submit —
    /// the outcome is returned and the error parked for
    /// [`Self::take_snapshot_error`]; the next due submit retries the
    /// rotation.
    pub fn submit(
        &mut self,
        query: Q,
    ) -> Result<SubmitOutcome<Q, V::Delivery>, DurableError<V::Error>> {
        let mut qbytes = Vec::new();
        self.codec.encode(&query, &mut qbytes);
        let outcome = self.inner.submit(query).map_err(DurableError::Engine)?;
        let seq = self.next_seq;
        self.next_seq += 1;
        // Single-writer strict prefix: no append can race a retire, so
        // the entry is born logged.
        self.registry.insert(seq, qbytes.clone(), true, true);
        let mut retired = Vec::with_capacity(outcome.retired.len());
        for q in &outcome.retired {
            let mut b = Vec::new();
            self.codec.encode(q, &mut b);
            let s = self
                .registry
                .retire(&b, None)
                .expect("retired query was registered pending");
            retired.push(s);
        }
        self.store.append_commit(
            0,
            &CommitRecord {
                seq,
                query: qbytes,
                retired,
            },
        )?;
        if self.store.snapshot_due() {
            if let Err(e) = self.snapshot() {
                self.snapshot_error = Some(e);
            }
        }
        Ok(outcome)
    }

    /// Take a snapshot now, rotating the WAL epoch.
    pub fn snapshot(&mut self) -> Result<(), StoreError> {
        let next_seq = self.next_seq;
        let entries = self.registry.capture();
        self.store.snapshot(move || (next_seq, entries))
    }

    /// The last *background* snapshot failure (a rotation triggered by
    /// `snapshot_every` during a submit), if any, cleared on read.
    /// Submits stay durable through the still-open WAL when a rotation
    /// fails; this surfaces the degraded state for monitoring.
    pub fn take_snapshot_error(&mut self) -> Option<StoreError> {
        self.snapshot_error.take()
    }

    /// What recovery found when this engine was opened.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.report
    }

    /// The underlying store (stats, epoch, stream offsets).
    pub fn store(&self) -> &CoordStore {
        &self.store
    }

    /// End offset of the WAL after the most recent record — the clean
    /// length a crash-point test truncates against.
    pub fn wal_len(&self) -> u64 {
        self.store.stream_len(0)
    }

    /// Pending queries in slot order.
    pub fn pending(&self) -> impl Iterator<Item = &Q> {
        self.inner.pending()
    }

    /// Number of pending queries.
    pub fn pending_count(&self) -> usize {
        self.inner.pending_count()
    }

    /// Number of maintained components.
    pub fn component_count(&self) -> usize {
        self.inner.component_count()
    }

    /// Total queries answered and retired.
    pub fn delivered(&self) -> u64 {
        self.inner.delivered()
    }

    /// The wrapped engine's metrics.
    pub fn metrics(&self) -> &std::sync::Arc<coord_engine::EngineMetrics> {
        self.inner.metrics()
    }

    /// The observability registry shared by the store and the engine.
    pub fn obs(&self) -> &ObsRegistry {
        self.store.obs()
    }

    /// Check the wrapped engine's invariants plus the registry mirror.
    ///
    /// # Panics
    /// Panics with a description if an invariant is violated.
    pub fn validate_invariants(&mut self) {
        self.inner.validate_invariants();
        assert_eq!(
            self.registry.len(),
            self.inner.pending_count(),
            "registry drifted from the pending set"
        );
    }
}

/// A [`ShardedEngine`] with one WAL stream per shard and a shared
/// snapshot epoch.
pub struct DurableShardedEngine<Q: CoordinationQuery, V, C> {
    inner: ShardedEngine<Q, V>,
    store: CoordStore,
    codec: C,
    registry: Mutex<Registry>,
    next_seq: AtomicU64,
    report: RecoveryReport,
    /// Skew correction over the wrapped engine (see [`Self::rebalance`]).
    rebalancer: Mutex<Rebalancer>,
    /// Last failed background rotation (see [`Self::take_snapshot_error`]).
    snapshot_error: Mutex<Option<StoreError>>,
}

impl<Q, V, C> DurableShardedEngine<Q, V, C>
where
    Q: CoordinationQuery,
    V: ComponentEvaluator<Q> + Clone,
    C: QueryCodec<Q>,
{
    /// Open (or create) a durable sharded engine at `dir` with `shards`
    /// shards, recovering and re-routing any surviving pending set.
    pub fn open(
        dir: impl AsRef<Path>,
        evaluator: V,
        shards: usize,
        codec: C,
        options: DurabilityOptions,
    ) -> Result<Self, StoreError> {
        Self::open_with_obs(dir, evaluator, shards, codec, options, ObsRegistry::new())
    }

    /// Like [`Self::open`], with one observability registry shared by
    /// the store (WAL append/sync, rotation, replay instruments) and
    /// the wrapped sharded engine (submit/lock-wait/migration/rebalance
    /// histograms and the trace ring) — so one
    /// [`ObsRegistry::snapshot`] covers the whole durable stack.
    pub fn open_with_obs(
        dir: impl AsRef<Path>,
        evaluator: V,
        shards: usize,
        codec: C,
        options: DurabilityOptions,
        obs: ObsRegistry,
    ) -> Result<Self, StoreError> {
        let recovered = CoordStore::open_with_obs(dir, options.store_options(shards), obs.clone())?;
        let inner = ShardedEngine::with_obs(evaluator, shards, Placement::default(), obs);
        let mut registry = Registry::default();
        for (seq, bytes) in &recovered.live {
            // Replay never re-evaluates: pending survivors are routed
            // and re-indexed only (the log proved they did not
            // coordinate before the crash).
            inner.insert_pending(codec.decode(bytes)?);
            registry.insert(*seq, bytes.clone(), true, true);
        }
        Ok(DurableShardedEngine {
            inner,
            store: recovered.store,
            codec,
            registry: Mutex::new(registry),
            next_seq: AtomicU64::new(recovered.next_seq),
            report: recovered.report,
            rebalancer: Mutex::new(Rebalancer::new(RebalanceConfig::default())),
            snapshot_error: Mutex::new(None),
        })
    }

    /// Submit under the owning shard's lock; the accepted mutation is
    /// logged — to **that shard's** WAL stream, so the stream mapping
    /// tracks rebalancing moves — before the caller is acknowledged.
    /// A submit that delivers a coordination additionally waits for
    /// every retired partner's commit record to be appended, and syncs
    /// all streams before returning (the per-coordination flush
    /// barrier; see the module docs). Snapshot failures during a
    /// background rotation do not fail the submit — see
    /// [`Self::take_snapshot_error`].
    pub fn submit(
        &self,
        query: Q,
    ) -> Result<SubmitOutcome<Q, V::Delivery>, DurableError<V::Error>> {
        // Open the request's root trace ticket here, at the durable
        // stack's entry point, so the root "submit" span covers the
        // engine apply *and* the WAL append/sync that follow it; the
        // sharded engine's own submit ticket nests under this context
        // and reuses the same trace id.
        let _ticket = self.inner.obs().tracer().ticket("submit");
        let mut qbytes = Vec::new();
        self.codec.encode(&query, &mut qbytes);
        // Reserve the seq *before* the engine apply so a concurrent
        // submit that retires this query can always find its seq; the
        // reservation is unapplied, so a concurrent snapshot will not
        // capture it (the submit might still be rejected).
        let seq = self.next_seq.fetch_add(1, Ordering::SeqCst);
        lockrank::ranked(LockRank::Registry, self.registry.lock()).insert(
            seq,
            qbytes.clone(),
            false,
            false,
        );
        let (shard, outcome) = match self.inner.submit_with_shard(query) {
            (_, Err(e)) => {
                lockrank::ranked(LockRank::Registry, self.registry.lock()).remove(seq);
                return Err(DurableError::Engine(e));
            }
            (shard, Ok(o)) => (shard, o),
        };
        let mut retired = Vec::with_capacity(outcome.retired.len());
        lockrank::ranked(LockRank::Registry, self.registry.lock()).confirm(seq);
        for q in &outcome.retired {
            let mut b = Vec::new();
            self.codec.encode(q, &mut b);
            // The retired query was in the engine, so a matching
            // *applied* entry exists — or its submitter sits in the
            // short window between engine apply and confirm, or between
            // confirm and its append. Wait those windows out (without
            // holding the registry lock) rather than pop a reserved
            // entry that may belong to a submit about to be rejected,
            // or deliver a coordination naming a partner whose commit
            // record never reached its stream. The waited-on submit
            // never waits on us in turn — its own retire targets were
            // applied strictly before it applied — so the wait graph
            // follows engine-apply order and cannot cycle.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            let s = loop {
                if let Some(s) =
                    lockrank::ranked(LockRank::Registry, self.registry.lock()).retire(&b, Some(seq))
                {
                    break s;
                }
                assert!(
                    std::time::Instant::now() < deadline,
                    "retired query has no applied+logged registry entry"
                );
                std::thread::yield_now();
            };
            retired.push(s);
        }
        let appended = self.store.append_commit(
            shard,
            &CommitRecord {
                seq,
                query: qbytes,
                retired: retired.clone(),
            },
        );
        // Release waiters either way: on success the record is on its
        // stream; on failure the submit is about to surface a store
        // error (the documented applied-but-not-durable state) and no
        // record will ever come — blocking a retirer forever would turn
        // one stream's fault into a service-wide stall.
        lockrank::ranked(LockRank::Registry, self.registry.lock()).mark_logged(seq);
        appended?;
        // Per-coordination flush barrier: partners' records are
        // *appended* (the retire loop waited for that); make them as
        // durable as this record before acknowledging the delivery.
        // Only `EveryN` needs the explicit sync — under `EveryRecord`
        // every partner append already synced itself before its
        // `mark_logged`, and under `Never` nothing is ever synced, so
        // there is nothing to strengthen.
        if !retired.is_empty() && matches!(self.store.options().sync, SyncPolicy::EveryN(_)) {
            self.store.sync_all()?;
        }
        if self.store.snapshot_due() {
            if let Err(e) = self.snapshot_if_due() {
                *self.snapshot_error.lock() = Some(e);
            }
        }
        Ok(outcome)
    }

    /// One rebalance pass over the wrapped engine: detect a hot shard
    /// from the per-shard load windows and move its costliest component
    /// groups to colder shards (marker-based migration; related traffic
    /// backs off briefly, unrelated traffic never blocks). Purely an
    /// in-memory placement change: commit records written after the
    /// move land on the new shard's stream, and recovery re-routes the
    /// pending set anyway, so no log record is needed and a crash at
    /// any point stays exactly recoverable.
    pub fn rebalance(&self) -> RebalanceReport {
        lockrank::ranked(LockRank::Rebalancer, self.rebalancer.lock()).run(&self.inner)
    }

    /// Replace the rebalancer's tuning (and reset its load watermarks).
    /// The default is conservative; tests and small deployments can
    /// lower the window/threshold so passes trigger on light traffic.
    pub fn set_rebalance_config(&self, config: RebalanceConfig) {
        **lockrank::ranked(LockRank::Rebalancer, self.rebalancer.lock()) = Rebalancer::new(config);
    }

    /// Take a snapshot now, rotating every shard's WAL to the next
    /// epoch. Concurrent submitters keep running; the capture happens
    /// under the store's rotation lock with no appends in flight.
    pub fn snapshot(&self) -> Result<(), StoreError> {
        self.store.snapshot(|| self.capture())
    }

    /// Rotate only if the record threshold is still exceeded — many
    /// submitters crossing it together produce one rotation, not one
    /// each.
    // lint: acquires(snap_lock, store.state, registry)
    fn snapshot_if_due(&self) -> Result<(), StoreError> {
        self.store.snapshot_if_due(|| self.capture()).map(|_| ())
    }

    /// Registry captured under the rotation lock: every record already
    /// appended is reflected, every in-flight submit will append to the
    /// new epoch (replay is idempotent either way).
    // lint: acquires(registry)
    fn capture(&self) -> (u64, Vec<(u64, Vec<u8>)>) {
        let registry = lockrank::ranked(LockRank::Registry, self.registry.lock());
        (self.next_seq.load(Ordering::SeqCst), registry.capture())
    }

    /// The last *background* snapshot failure (a rotation triggered by
    /// `snapshot_every` during a submit), if any, cleared on read.
    /// Submits stay durable through the still-open WAL when a rotation
    /// fails; this surfaces the degraded state for monitoring.
    pub fn take_snapshot_error(&self) -> Option<StoreError> {
        self.snapshot_error.lock().take()
    }

    /// What recovery found when this engine was opened.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.report
    }

    /// The underlying store (stats, epoch, stream offsets).
    pub fn store(&self) -> &CoordStore {
        &self.store
    }

    /// Clean end offset of every WAL stream (stream index = shard
    /// index) — the per-stream truncation points crash tests cut at.
    pub fn wal_stream_lens(&self) -> Vec<u64> {
        (0..self.store.options().streams)
            .map(|s| self.store.stream_len(s))
            .collect()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }

    /// Total pending queries across shards.
    pub fn pending_count(&self) -> usize {
        self.inner.pending_count()
    }

    /// Clones of all pending queries.
    pub fn pending(&self) -> Vec<Q> {
        self.inner.pending()
    }

    /// Total maintained components across shards.
    pub fn component_count(&self) -> usize {
        self.inner.component_count()
    }

    /// Total queries answered and retired.
    pub fn delivered(&self) -> u64 {
        self.inner.delivered()
    }

    /// Aggregated engine metrics.
    pub fn metrics(&self) -> &std::sync::Arc<coord_engine::EngineMetrics> {
        self.inner.metrics()
    }

    /// Per-shard contention statistics.
    pub fn shard_stats(&self) -> Vec<coord_engine::ShardStatsSnapshot> {
        self.inner.shard_stats()
    }

    /// The observability registry shared by the store and the sharded
    /// engine: one snapshot covers submit latency, WAL append/sync,
    /// rotations, migrations and rebalance passes.
    pub fn obs(&self) -> &ObsRegistry {
        self.inner.obs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temp::TempDir;
    use crate::testkit::{chain, mini, MiniCodec, MiniQuery, SaturationEvaluator as Saturation};

    fn opts(snapshot_every: Option<u64>) -> DurabilityOptions {
        DurabilityOptions {
            sync: SyncPolicy::Never,
            snapshot_every,
        }
    }

    fn names(mut v: Vec<String>) -> Vec<String> {
        v.sort_unstable();
        v
    }

    #[test]
    fn pending_set_survives_reopen() {
        let dir = TempDir::new("durable-basic");
        {
            let mut e = DurableEngine::open(dir.path(), Saturation, MiniCodec, opts(None)).unwrap();
            assert!(!e.submit(chain(0, Some(1))).unwrap().coordinated());
            assert!(!e.submit(chain(1, Some(2))).unwrap().coordinated());
            assert!(!e.submit(chain(10, Some(11))).unwrap().coordinated());
            assert_eq!(e.pending_count(), 3);
            e.validate_invariants();
        } // crash (no clean shutdown exists)

        let mut e = DurableEngine::open(dir.path(), Saturation, MiniCodec, opts(None)).unwrap();
        assert_eq!(e.recovery_report().records_replayed, 3);
        assert_eq!(e.pending_count(), 3);
        assert_eq!(e.component_count(), 2);
        e.validate_invariants();
        // The recovered components still coordinate correctly.
        let r = e.submit(chain(2, None)).unwrap();
        assert_eq!(names(r.delivery.unwrap()), vec!["q0", "q1", "q2"]);
        assert_eq!(e.pending_count(), 1);
    }

    #[test]
    fn retirement_is_durable() {
        let dir = TempDir::new("durable-retire");
        {
            let mut e = DurableEngine::open(dir.path(), Saturation, MiniCodec, opts(None)).unwrap();
            e.submit(chain(0, Some(1))).unwrap();
            let r = e.submit(chain(1, None)).unwrap();
            assert!(r.coordinated());
        }
        let e = DurableEngine::open(dir.path(), Saturation, MiniCodec, opts(None)).unwrap();
        assert_eq!(e.pending_count(), 0, "retired queries resurrected");
        assert_eq!(e.recovery_report().records_replayed, 2);
    }

    #[test]
    fn duplicate_queries_recover_as_a_multiset() {
        let dir = TempDir::new("durable-dup");
        {
            let mut e = DurableEngine::open(dir.path(), Saturation, MiniCodec, opts(None)).unwrap();
            // Two byte-identical waiters plus one that retires with one
            // of them (saturation retires whole components; both
            // duplicates share a component, so submit a separate pair).
            e.submit(chain(5, Some(6))).unwrap();
            e.submit(chain(5, Some(6))).unwrap();
            assert_eq!(e.pending_count(), 2);
        }
        let e = DurableEngine::open(dir.path(), Saturation, MiniCodec, opts(None)).unwrap();
        assert_eq!(e.pending_count(), 2, "duplicate collapsed");
    }

    #[test]
    fn rejected_submit_logs_nothing() {
        #[derive(Clone)]
        struct RejectNamed(&'static str);
        impl ComponentEvaluator<MiniQuery> for RejectNamed {
            type Delivery = ();
            type Error = String;
            fn evaluate(&self, queries: &[MiniQuery]) -> Result<Option<(Vec<usize>, ())>, String> {
                if queries.iter().any(|x| x.name == self.0) {
                    Err("rejected".into())
                } else {
                    Ok(None)
                }
            }
        }
        let dir = TempDir::new("durable-reject");
        {
            let mut e =
                DurableEngine::open(dir.path(), RejectNamed("q9"), MiniCodec, opts(None)).unwrap();
            e.submit(chain(0, Some(1))).unwrap();
            e.submit(chain(9, None)).unwrap_err();
            assert_eq!(e.pending_count(), 1);
        }
        let e = DurableEngine::open(dir.path(), RejectNamed("q9"), MiniCodec, opts(None)).unwrap();
        assert_eq!(e.recovery_report().records_replayed, 1);
        assert_eq!(e.pending_count(), 1);
    }

    #[test]
    fn snapshots_bound_replay_work() {
        let dir = TempDir::new("durable-snap");
        {
            let mut e =
                DurableEngine::open(dir.path(), Saturation, MiniCodec, opts(Some(4))).unwrap();
            for i in 0..10 {
                e.submit(chain(10 * i, Some(10 * i + 1))).unwrap();
            }
            assert!(e.store().stats().snapshots_taken >= 2);
        }
        let mut e = DurableEngine::open(dir.path(), Saturation, MiniCodec, opts(Some(4))).unwrap();
        let report = e.recovery_report().clone();
        assert!(report.had_snapshot);
        assert!(
            report.records_replayed <= 4,
            "snapshot did not bound the tail: {report:?}"
        );
        assert_eq!(
            report.snapshot_entries + report.records_replayed,
            10,
            "{report:?}"
        );
        assert_eq!(e.pending_count(), 10);
        e.validate_invariants();
        // Seqs keep advancing across the snapshot boundary.
        e.submit(chain(500, None)).unwrap();
        assert_eq!(e.pending_count(), 10);
    }

    #[test]
    fn sharded_pending_set_survives_reopen() {
        let dir = TempDir::new("durable-sharded");
        {
            let e = DurableShardedEngine::open(dir.path(), Saturation, 4, MiniCodec, opts(None))
                .unwrap();
            std::thread::scope(|s| {
                for t in 0..4i64 {
                    let e = &e;
                    s.spawn(move || {
                        for c in 0..3 {
                            let base = 1000 * t + 10 * c;
                            e.submit(chain(base, Some(base + 1))).unwrap();
                            e.submit(chain(base + 1, Some(base + 2))).unwrap();
                        }
                    });
                }
            });
            assert_eq!(e.pending_count(), 24);
        }
        let e =
            DurableShardedEngine::open(dir.path(), Saturation, 4, MiniCodec, opts(None)).unwrap();
        assert_eq!(e.pending_count(), 24);
        assert_eq!(e.component_count(), 12);
        // Each recovered chain still completes.
        for t in 0..4i64 {
            for c in 0..3 {
                let base = 1000 * t + 10 * c;
                let r = e.submit(chain(base + 2, None)).unwrap();
                assert!(r.coordinated(), "chain {base} lost by recovery");
                assert_eq!(r.retired.len(), 3);
            }
        }
        assert_eq!(e.pending_count(), 0);
    }

    #[test]
    fn sharded_snapshot_rotation_under_concurrent_submits() {
        let dir = TempDir::new("durable-sharded-snap");
        {
            let e = DurableShardedEngine::open(dir.path(), Saturation, 2, MiniCodec, opts(Some(8)))
                .unwrap();
            std::thread::scope(|s| {
                for t in 0..2i64 {
                    let e = &e;
                    s.spawn(move || {
                        for i in 0..20 {
                            let base = 10_000 * t + 10 * i;
                            e.submit(chain(base, Some(base + 1))).unwrap();
                        }
                    });
                }
            });
            assert!(e.store().stats().snapshots_taken >= 1);
            assert_eq!(e.pending_count(), 40);
        }
        let e = DurableShardedEngine::open(dir.path(), Saturation, 2, MiniCodec, opts(Some(8)))
            .unwrap();
        assert!(e.recovery_report().had_snapshot);
        assert_eq!(e.pending_count(), 40);
    }

    /// Regression: a snapshot racing a submit that the engine later
    /// *rejects* must not capture the reserved (unapplied) registry
    /// entry — otherwise recovery resurrects a query whose submitter
    /// was told `Err`.
    #[test]
    fn snapshot_during_rejected_submit_does_not_resurrect_it() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        #[derive(Clone)]
        struct GateReject {
            started: Arc<AtomicBool>,
            release: Arc<AtomicBool>,
        }
        impl ComponentEvaluator<MiniQuery> for GateReject {
            type Delivery = ();
            type Error = String;
            fn evaluate(&self, queries: &[MiniQuery]) -> Result<Option<(Vec<usize>, ())>, String> {
                if queries.iter().any(|x| x.name == "bad") {
                    self.started.store(true, Ordering::SeqCst);
                    while !self.release.load(Ordering::SeqCst) {
                        std::thread::yield_now();
                    }
                    return Err("rejected mid-snapshot".into());
                }
                Ok(None)
            }
        }

        let started = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));
        let dir = TempDir::new("durable-reject-snap");
        {
            let e = DurableShardedEngine::open(
                dir.path(),
                GateReject {
                    started: Arc::clone(&started),
                    release: Arc::clone(&release),
                },
                2,
                MiniCodec,
                opts(None),
            )
            .unwrap();
            std::thread::scope(|s| {
                let engine = &e;
                let rejected = s.spawn(move || {
                    engine
                        .submit(mini("bad", &[("R", 1)], &[]))
                        .expect_err("evaluator rejects `bad`")
                });
                while !started.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                // `bad` is reserved in the registry but not applied:
                // the snapshot must skip it.
                e.snapshot().unwrap();
                release.store(true, Ordering::SeqCst);
                rejected.join().unwrap();
            });
            assert_eq!(e.pending_count(), 0);
        }
        let e = DurableShardedEngine::open(
            dir.path(),
            GateReject { started, release },
            2,
            MiniCodec,
            opts(None),
        )
        .unwrap();
        assert!(e.recovery_report().had_snapshot);
        assert_eq!(e.pending_count(), 0, "rejected submit resurrected");
    }

    /// The acknowledgment-window barrier at the registry level: an
    /// applied entry whose commit record is still in flight cannot be
    /// popped by a concurrent retirer — only by its own submit.
    #[test]
    fn registry_retire_waits_for_logged_entries() {
        let mut r = Registry::default();
        r.insert(1, b"q".to_vec(), true, false); // applied, append in flight
        assert_eq!(r.retire(b"q", None), None, "unlogged entry popped");
        assert_eq!(r.retire(b"q", Some(1)), Some(1), "own seq is exempt");
        r.insert(2, b"q".to_vec(), true, false);
        assert_eq!(r.retire(b"q", None), None);
        r.mark_logged(2);
        assert_eq!(r.retire(b"q", None), Some(2));
        // Reserved (unapplied) entries stay untouchable either way.
        r.insert(3, b"q".to_vec(), false, true);
        assert_eq!(r.retire(b"q", None), None);
    }

    /// A rebalance pass between submits is invisible to durability:
    /// post-move commits land on the new shard's stream, and recovery
    /// restores the exact pending set.
    #[test]
    fn rebalance_then_crash_recovers_the_exact_pending_set() {
        let dir = TempDir::new("durable-rebalance");
        {
            let e = DurableShardedEngine::open(dir.path(), Saturation, 2, MiniCodec, opts(None))
                .unwrap();
            // Two medium chains land on distinct shards; the third —
            // twice as long — co-locates with one of them and makes
            // its shard hot.
            for i in 0..8i64 {
                e.submit(chain(i, Some(i + 1))).unwrap();
            }
            for i in 0..8i64 {
                e.submit(chain(100 + i, Some(100 + i + 1))).unwrap();
            }
            for i in 0..16i64 {
                e.submit(chain(200 + i, Some(200 + i + 1))).unwrap();
            }
            let report = e.rebalance();
            assert!(report.triggered, "no skew detected: {report:?}");
            assert!(report.groups_moved >= 1, "nothing moved: {report:?}");
            // Post-move submits follow the moved component; their
            // records go to its new shard's stream.
            let lens_before = e.wal_stream_lens();
            e.submit(chain(8, Some(9))).unwrap();
            e.submit(chain(108, Some(109))).unwrap();
            e.submit(chain(216, Some(217))).unwrap();
            let lens_after = e.wal_stream_lens();
            assert!(
                lens_before.iter().zip(&lens_after).all(|(b, a)| a >= b)
                    && lens_after.iter().sum::<u64>() > lens_before.iter().sum::<u64>(),
                "commit records not appended: {lens_before:?} → {lens_after:?}"
            );
            assert_eq!(e.pending_count(), 35);
        } // crash
        let e =
            DurableShardedEngine::open(dir.path(), Saturation, 2, MiniCodec, opts(None)).unwrap();
        assert_eq!(e.pending_count(), 35);
        // Every chain — moved or not — still completes.
        for (start, len) in [(0i64, 10i64), (100, 10), (200, 18)] {
            let r = e.submit(chain(start + len - 1, None)).unwrap();
            assert!(r.coordinated(), "chain at {start} lost");
            assert_eq!(r.retired.len() as i64, len, "chain at {start}");
        }
        assert_eq!(e.pending_count(), 0);
    }

    #[test]
    fn shard_count_can_change_across_restarts() {
        let dir = TempDir::new("durable-reshard");
        {
            let e = DurableShardedEngine::open(dir.path(), Saturation, 4, MiniCodec, opts(None))
                .unwrap();
            for i in 0..6i64 {
                e.submit(chain(100 * i, Some(100 * i + 1))).unwrap();
            }
        }
        let e =
            DurableShardedEngine::open(dir.path(), Saturation, 2, MiniCodec, opts(None)).unwrap();
        assert_eq!(e.pending_count(), 6);
        let r = e.submit(chain(1, None)).unwrap();
        assert!(r.coordinated());
        assert_eq!(r.retired.len(), 2);
    }
}
