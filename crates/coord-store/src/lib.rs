//! # coord-store — durable persistence for the online coordination engine
//!
//! The sharded incremental engine (`coord-engine`) keeps its entire
//! pending set in memory: a crash loses every in-flight entangled query.
//! This crate adds log-structured durability with deterministic replay:
//!
//! * [`frame`] — `[len][crc32][payload]` record framing; a clean frame
//!   prefix is exactly a prefix of acknowledged mutations,
//! * [`wal`] — epoch-stamped append-only log files with configurable
//!   [`wal::SyncPolicy`] and torn-tail truncation on reopen,
//! * [`store`] — the store directory: a WAL stream per shard (records
//!   spread round-robin for append parallelism) under a shared snapshot
//!   epoch, tmp+rename snapshot rotation, and order-independent
//!   set-difference recovery,
//! * [`codec`] — pluggable query serialization ([`codec::QueryCodec`]),
//!   keeping this crate below `coord-core` in the workspace DAG,
//! * [`durable`] — [`DurableEngine`] / [`DurableShardedEngine`]
//!   wrappers: submit → apply → log one atomic commit record →
//!   acknowledge; recovery replays `snapshot + log tail` with
//!   `insert_pending` (no re-evaluation), so replay is *faster* than
//!   live submission — the `durability` bench asserts it.
//!
//! `coord_core::persist` wires the entangled-query codec in and exposes
//! `DurableSharedEngine` so service callers opt into durability with
//! one constructor.

#![forbid(unsafe_code)]

pub mod bytes;
pub mod codec;
pub mod durable;
pub mod error;
pub mod frame;
pub mod store;
pub mod temp;
pub mod testkit;
pub mod wal;

pub use codec::QueryCodec;
pub use durable::{DurabilityOptions, DurableEngine, DurableShardedEngine};
pub use error::{DurableError, StoreError};
pub use store::{CommitRecord, CoordStore, RecoveryReport, StoreOptions, StoreStatsSnapshot};
pub use wal::SyncPolicy;
