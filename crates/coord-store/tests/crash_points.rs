//! Crash-point fuzzing of the durable engine: truncate the WAL at
//! *every* byte offset — including mid-record — and at randomly flipped
//! bytes, and assert recovery restores exactly the state after the
//! longest clean prefix of acknowledged submits.

use coord_store::temp::TempDir;
use coord_store::testkit::{chain, MiniCodec, MiniQuery, SaturationEvaluator as Saturation};
use coord_store::{DurabilityOptions, DurableEngine, SyncPolicy};
use proptest::prelude::*;
use rand::prelude::*;
use std::path::Path;

fn no_snapshots() -> DurabilityOptions {
    DurabilityOptions {
        sync: SyncPolicy::Never,
        snapshot_every: None,
    }
}

fn open(dir: &Path) -> DurableEngine<MiniQuery, Saturation, MiniCodec> {
    DurableEngine::open(dir, Saturation, MiniCodec, no_snapshots()).unwrap()
}

fn pending_names(engine: &DurableEngine<MiniQuery, Saturation, MiniCodec>) -> Vec<String> {
    let mut names: Vec<String> = engine.pending().map(|q| q.name.clone()).collect();
    names.sort_unstable();
    names
}

/// A workload of interleaved chain groups; completed chains exercise
/// retirement records.
fn workload(groups: usize, len: usize, complete_every: usize) -> Vec<MiniQuery> {
    let mut queries = Vec::new();
    for step in 0..len {
        for g in 0..groups {
            let base = 1_000 * g as i64;
            let i = base + step as i64;
            // Every `complete_every`-th step closes the chain (a free
            // query), producing a retirement; otherwise keep waiting.
            if (step + 1) % complete_every == 0 {
                queries.push(chain(i, None));
            } else {
                queries.push(chain(i, Some(i + 1)));
            }
        }
    }
    queries
}

/// Drive the engine, recording `(wal_len, pending set)` after every
/// acknowledged submit. Returns the WAL path and the state timeline.
fn drive(dir: &Path, arrivals: &[MiniQuery]) -> (std::path::PathBuf, Vec<(u64, Vec<String>)>) {
    let mut engine = open(dir);
    let mut timeline = vec![(0, Vec::new()), (engine.wal_len(), Vec::new())];
    for q in arrivals {
        engine.submit(q.clone()).unwrap();
        timeline.push((engine.wal_len(), pending_names(&engine)));
    }
    let wal = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-"))
        })
        .expect("wal file exists");
    (wal, timeline)
}

/// The recorded state for the longest acknowledged prefix whose WAL end
/// fits inside `cut` bytes.
fn expected_at(timeline: &[(u64, Vec<String>)], cut: u64) -> &[String] {
    &timeline
        .iter()
        .rev()
        .find(|(len, _)| *len <= cut)
        .expect("baseline entry always fits")
        .1
}

#[test]
fn truncation_at_every_byte_recovers_the_exact_prefix() {
    let dir = TempDir::new("fuzz-exhaustive");
    let arrivals = workload(2, 8, 4);
    let (wal, timeline) = drive(dir.path(), &arrivals);
    let full = std::fs::read(&wal).unwrap();
    assert_eq!(timeline.last().unwrap().0, full.len() as u64);

    for cut in 0..=full.len() {
        let crash_dir = TempDir::new("fuzz-cut");
        std::fs::write(
            crash_dir.path().join(wal.file_name().unwrap()),
            &full[..cut],
        )
        .unwrap();
        let mut engine = open(crash_dir.path());
        assert_eq!(
            pending_names(&engine),
            expected_at(&timeline, cut as u64),
            "cut at byte {cut} of {}",
            full.len()
        );
        engine.validate_invariants();
        // The truncated store stays appendable: one more submit both
        // applies and persists.
        engine.submit(chain(777_000, Some(777_001))).unwrap();
        drop(engine);
        let reopened = open(crash_dir.path());
        assert!(
            pending_names(&reopened).contains(&"q777000".to_string()),
            "cut at byte {cut}: post-recovery append lost"
        );
    }
}

#[test]
fn corrupted_byte_recovers_the_preceding_records() {
    let dir = TempDir::new("fuzz-flip");
    let arrivals = workload(2, 6, 3);
    let (wal, timeline) = drive(dir.path(), &arrivals);
    let full = std::fs::read(&wal).unwrap();
    let header = 16usize;

    // Flip every byte after the header (the header is validated
    // separately: damage there means an empty clean prefix).
    for pos in header..full.len() {
        let mut damaged = full.clone();
        damaged[pos] ^= 0x40;
        let crash_dir = TempDir::new("fuzz-flip-case");
        std::fs::write(crash_dir.path().join(wal.file_name().unwrap()), &damaged).unwrap();
        let engine = open(crash_dir.path());
        // Recovery keeps exactly the records before the damaged one.
        let boundary = timeline
            .iter()
            .rev()
            .find(|(len, _)| *len <= pos as u64)
            .unwrap();
        assert_eq!(pending_names(&engine), boundary.1, "flip at byte {pos}");
    }
}

#[test]
fn header_damage_means_empty_store_not_a_crash() {
    let dir = TempDir::new("fuzz-header");
    let arrivals = workload(1, 4, 9);
    let (wal, _) = drive(dir.path(), &arrivals);
    let full = std::fs::read(&wal).unwrap();
    for pos in 0..16 {
        let mut damaged = full.clone();
        damaged[pos] ^= 0xFF;
        let crash_dir = TempDir::new("fuzz-header-case");
        std::fs::write(crash_dir.path().join(wal.file_name().unwrap()), &damaged).unwrap();
        let engine = open(crash_dir.path());
        assert_eq!(engine.pending_count(), 0, "header flip at {pos}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random workload shapes × random crash offsets: recovery is the
    /// exact acknowledged prefix, and the recovered engine coordinates
    /// like a fresh engine fed that prefix directly.
    #[test]
    fn random_crash_points_recover_an_acknowledged_prefix(
        groups in 1usize..=3,
        len in 2usize..=10,
        complete_every in 2usize..=5,
        cut_per_mille in 0usize..=1000,
    ) {
        let dir = TempDir::new("fuzz-prop");
        let arrivals = workload(groups, len, complete_every);
        let (wal, timeline) = drive(dir.path(), &arrivals);
        let full = std::fs::read(&wal).unwrap();
        let cut = full.len() * cut_per_mille / 1000;

        let crash_dir = TempDir::new("fuzz-prop-case");
        std::fs::write(crash_dir.path().join(wal.file_name().unwrap()), &full[..cut]).unwrap();
        let mut engine = open(crash_dir.path());
        let expected = expected_at(&timeline, cut as u64);
        prop_assert_eq!(pending_names(&engine), expected);
        engine.validate_invariants();

        // Behavioral equivalence: a reference engine fed the same prefix
        // of submits agrees on the next coordination. The timeline has
        // two pre-submit baselines (offset 0 and the bare header); a cut
        // inside the header keeps neither, hence the saturation.
        let prefix_submits = timeline
            .iter()
            .filter(|(l, _)| *l <= cut as u64)
            .count()
            .saturating_sub(2);
        let ref_dir = TempDir::new("fuzz-prop-ref");
        let mut reference = open(ref_dir.path());
        for q in &arrivals[..prefix_submits] {
            reference.submit(q.clone()).unwrap();
        }
        prop_assert_eq!(pending_names(&engine), pending_names(&reference));
        prop_assert_eq!(engine.component_count(), reference.component_count());
        for q in &arrivals[prefix_submits..] {
            let a = engine.submit(q.clone()).unwrap();
            let b = reference.submit(q.clone()).unwrap();
            let mut ra: Vec<String> = a.retired.iter().map(|x| x.name.clone()).collect();
            let mut rb: Vec<String> = b.retired.iter().map(|x| x.name.clone()).collect();
            ra.sort_unstable();
            rb.sort_unstable();
            prop_assert_eq!(ra, rb, "post-recovery retirement diverged");
        }
        prop_assert_eq!(pending_names(&engine), pending_names(&reference));
    }

    /// Crashing, recovering, appending, and crashing again composes:
    /// the second recovery sees the survivors of both lives.
    #[test]
    fn recovery_composes_across_multiple_crashes(
        seed in prop::arbitrary::any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dir = TempDir::new("fuzz-multi");
        let arrivals = workload(2, 6, 3);
        let (first, second) = arrivals.split_at(arrivals.len() / 2);

        let (wal, timeline) = drive(dir.path(), first);
        let full = std::fs::read(&wal).unwrap();
        let cut = rng.random_range(0..=full.len());
        let crash_dir = TempDir::new("fuzz-multi-case");
        let wal_name = wal.file_name().unwrap().to_owned();
        std::fs::write(crash_dir.path().join(&wal_name), &full[..cut]).unwrap();

        let survivors;
        {
            let mut engine = open(crash_dir.path());
            prop_assert_eq!(pending_names(&engine), expected_at(&timeline, cut as u64));
            for q in second {
                engine.submit(q.clone()).unwrap();
            }
            survivors = pending_names(&engine);
        } // second crash (clean tail this time)

        let engine = open(crash_dir.path());
        prop_assert_eq!(pending_names(&engine), survivors);
    }
}
