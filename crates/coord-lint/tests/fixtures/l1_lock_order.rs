// Fixture: rule L1 (lock-order).
//
// `bad_direct` seeds an out-of-order acquisition: taking the
// migration lock (rank 60) while a shard engine guard (rank 40) is
// live. `bad_via_call` seeds the same violation through one level of
// call-graph propagation. `good` acquires in descending order.
// `suppressed` carries a justified allow.

struct S;

impl S {
    fn bad_direct(&self) {
        let engine = self.shard.engine.lock();
        let _mig = self.migration_lock.lock(); // VIOLATION: 60 after 40
        engine.submit();
    }

    // lint: acquires(migration_lock)
    fn takes_migration(&self) {
        let _g = self.migration_lock.lock();
    }

    fn bad_via_call(&self) {
        let engine = self.shard.engine.lock();
        self.takes_migration(); // VIOLATION: callee acquires rank 60
        engine.submit();
    }

    fn good(&self) {
        let _mig = self.migration_lock.lock();
        let mut router = self.router.write();
        let engine = self.shard.engine.lock();
        engine.submit();
        router.publish();
    }

    fn good_after_drop(&self) {
        let engine = self.shard.engine.lock();
        engine.submit();
        drop(engine);
        let _mig = self.migration_lock.lock(); // fine: guard released
    }

    fn suppressed(&self) {
        let engine = self.shard.engine.lock();
        // lint: allow(lock-order) — single-threaded bootstrap path, no
        // concurrent migration can exist before the router is published
        let _mig = self.migration_lock.lock();
        engine.submit();
    }
}
