// Fixture: malformed `// lint:` annotations are themselves findings —
// a typo'd allow or acquires must fail loudly, never silently no-op.

struct S;

impl S {
    fn empty_justification(&self) {
        let engine = self.shard.engine.lock();
        // lint: allow(lock-order) —
        let _mig = self.migration_lock.lock();
        engine.submit();
    }

    // lint: acquires(no_such_lock)
    fn unknown_lock(&self) {}

    // lint: allw(lock-order) — typo in the keyword
    fn typo(&self) {}
}
