// Fixture: rule L4 (try-lock-rationale).
//
// Every non-blocking acquisition must document what the fallback path
// does instead of blocking — `try_*` is the workspace's deadlock-escape
// hatch, and an undocumented one usually means an unconsidered one.

struct S;

impl S {
    fn bad(&self) {
        if let Some(engine) = self.shard.engine.try_lock() {
            engine.submit();
        } // VIOLATION: no backoff rationale
    }

    fn good(&self) {
        // lint: backoff — on contention the caller requeues the op and
        // retries after the current batch drains
        if let Some(engine) = self.shard.engine.try_lock() {
            engine.submit();
        }
    }

    fn suppressed(&self) {
        // lint: allow(try-lock-rationale) — probe-only diagnostic path;
        // a miss falls through to the cached stats snapshot
        let snap = self.router.try_read();
        drop(snap);
    }
}
