// Fixture: rule L2 (scan-under-router-write).
//
// `related_keys` is annotated as a slab scan; calling it while the
// router *write* guard is live is the PR 4 bug class. Holding only a
// read guard, or dropping the write guard first, is fine.

struct S;

impl S {
    // lint: scans-slabs
    fn related_keys(&self, k: u64) -> Vec<u64> {
        self.slabs.scan(k)
    }

    fn bad(&self) {
        let mut router = self.router.write();
        let keys = self.related_keys(7); // VIOLATION: scan under write guard
        router.extend(keys);
    }

    fn good_read_guard(&self) {
        let router = self.router.read();
        let _keys = self.related_keys(7); // fine: read guard only
        router.route(7);
    }

    fn good_after_drop(&self) {
        let mut router = self.router.write();
        router.mark(7);
        drop(router);
        let _keys = self.related_keys(7); // fine: write guard released
    }

    fn suppressed(&self) {
        let mut router = self.router.write();
        // lint: allow(scan-under-router-write) — shard is frozen and
        // empty at this point; the scan touches zero slabs by invariant
        let keys = self.related_keys(7);
        router.extend(keys);
    }
}
