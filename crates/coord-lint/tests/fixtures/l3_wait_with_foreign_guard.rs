// Fixture: rule L3 (wait-with-foreign-guard).
//
// Parking on a condvar or channel while holding a guard the wait does
// not consume is a lost-wakeup / deadlock recipe. Waiting with the
// condvar's *own* guard (passed as the first argument) is the correct
// std pattern and must not fire.

struct S;

impl S {
    fn bad_wait(&self) {
        let state = self.state.read();
        let gate = self.gate_mutex.lock();
        // VIOLATION: `state` is live and not consumed by the wait.
        let gate = self.cv.wait(gate);
        state.epoch();
    }

    fn bad_recv(&self) {
        let registry = self.registry.lock();
        let msg = self.rx.recv(); // VIOLATION: blocking recv under a guard
        registry.confirm(msg);
    }

    fn good_own_guard(&self) {
        let gate = self.gate_mutex.lock();
        let gate = self.cv.wait(gate); // fine: the wait consumes `gate`
        gate.check();
    }

    fn good_guard_dropped(&self) {
        let registry = self.registry.lock();
        registry.confirm(1);
        drop(registry);
        let _msg = self.rx.recv(); // fine: nothing held
    }

    fn suppressed(&self) {
        let state = self.state.read();
        let gate = self.gate_mutex.lock();
        // lint: allow(wait-with-foreign-guard) — bounded 1ms timeout and
        // the state lock is never taken by the waking thread
        let gate = self.cv.wait_timeout(gate, timeout);
        state.epoch();
    }
}
