//! Fixture suite: each rule gets a fixture seeding a positive
//! (violation), negatives (correct patterns), and a suppressed case —
//! proving the analyzer catches what it claims to catch and stays
//! quiet on the idioms the workspace actually uses. The final test
//! self-checks the real workspace tree.

use coord_lint::report::{Finding, Rule};
use coord_lint::{lint_sources, lint_workspace, LintRun};
use std::path::Path;

fn lint_fixture(name: &str) -> LintRun {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path).expect("fixture readable");
    lint_sources(&[(name.to_string(), src)])
}

fn errors_of(run: &LintRun, rule: Rule) -> Vec<&Finding> {
    run.findings
        .iter()
        .filter(|f| f.rule == rule && f.is_error())
        .collect()
}

fn suppressed_of(run: &LintRun, rule: Rule) -> Vec<&Finding> {
    run.findings
        .iter()
        .filter(|f| f.rule == rule && !f.is_error())
        .collect()
}

#[test]
fn l1_lock_order_fixture() {
    let run = lint_fixture("l1_lock_order.rs");
    let errors = errors_of(&run, Rule::LockOrder);
    // Seeded: one direct inversion, one through `// lint: acquires`.
    assert_eq!(errors.len(), 2, "findings: {:?}", run.findings);
    assert!(errors.iter().any(|f| f.message.contains("migration_lock")));
    assert!(errors.iter().any(|f| f.message.contains("takes_migration")));
    // The justified allow suppresses, and the suppression is recorded.
    let sup = suppressed_of(&run, Rule::LockOrder);
    assert_eq!(sup.len(), 1);
    assert!(sup[0].suppressed.as_deref().unwrap().contains("bootstrap"));
    // `good` / `good_after_drop` stay clean.
    assert_eq!(run.errors(), 2);
}

#[test]
fn l2_scan_under_router_write_fixture() {
    let run = lint_fixture("l2_scan_under_router_write.rs");
    let errors = errors_of(&run, Rule::ScanUnderRouterWrite);
    assert_eq!(errors.len(), 1, "findings: {:?}", run.findings);
    assert!(errors[0].message.contains("related_keys"));
    assert_eq!(suppressed_of(&run, Rule::ScanUnderRouterWrite).len(), 1);
    // Read-guard and drop-first variants stay clean.
    assert_eq!(run.errors(), 1);
}

#[test]
fn l3_wait_with_foreign_guard_fixture() {
    let run = lint_fixture("l3_wait_with_foreign_guard.rs");
    let errors = errors_of(&run, Rule::WaitWithForeignGuard);
    // Seeded: condvar wait over a foreign guard + blocking recv under a
    // registry guard.
    assert_eq!(errors.len(), 2, "findings: {:?}", run.findings);
    assert!(errors.iter().any(|f| f.message.contains("state")));
    assert!(errors.iter().any(|f| f.message.contains("registry")));
    assert_eq!(suppressed_of(&run, Rule::WaitWithForeignGuard).len(), 1);
    // Waiting with the condvar's own guard must not fire.
    assert_eq!(run.errors(), 2);
}

#[test]
fn l4_try_lock_rationale_fixture() {
    let run = lint_fixture("l4_try_lock_rationale.rs");
    let errors = errors_of(&run, Rule::TryLockRationale);
    assert_eq!(errors.len(), 1, "findings: {:?}", run.findings);
    assert!(errors[0].message.contains("try_lock"));
    assert_eq!(suppressed_of(&run, Rule::TryLockRationale).len(), 1);
    assert_eq!(run.errors(), 1);
}

#[test]
fn bad_annotation_fixture() {
    let run = lint_fixture("bad_annotation.rs");
    let bad = errors_of(&run, Rule::BadAnnotation);
    // Seeded: empty justification, unknown lock name, typo'd keyword.
    assert_eq!(bad.len(), 3, "findings: {:?}", run.findings);
    // The broken allow must NOT suppress the underlying violation.
    assert_eq!(errors_of(&run, Rule::LockOrder).len(), 1);
}

#[test]
fn workspace_self_check_is_clean() {
    // `CARGO_MANIFEST_DIR` is crates/coord-lint; the workspace root is
    // two levels up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let run = lint_workspace(&root).expect("workspace lintable");
    assert!(run.files_scanned > 50, "walked the real tree");
    let errors: Vec<_> = run.findings.iter().filter(|f| f.is_error()).collect();
    assert!(
        errors.is_empty(),
        "workspace must lint clean, got: {errors:#?}"
    );
    // Every suppression in the tree carries a justification by
    // construction; assert none are empty anyway (belt and braces).
    for f in &run.findings {
        if let Some(j) = &f.suppressed {
            assert!(!j.trim().is_empty(), "empty justification at {}", f.file);
        }
    }
}
