//! Finding types and the `lint_report.json` serializer (hand-rolled —
//! the crate takes zero dependencies so it can be the workspace's
//! root-of-trust).

/// The rule catalog. `BadAnnotation` covers malformed `// lint:` lines
/// themselves: annotations are load-bearing (they suppress findings and
/// feed the call graph), so a typo must be an error, not a silent
/// no-op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rule {
    /// L1: lock-rank ordering.
    LockOrder,
    /// L2: slab/engine-state scan under the router write guard.
    ScanUnderRouterWrite,
    /// L3: parking on a condvar/channel while holding a foreign guard.
    WaitWithForeignGuard,
    /// L4: `try_*` fallback path without a backoff rationale.
    TryLockRationale,
    /// Malformed or unrecognized `// lint:` annotation.
    BadAnnotation,
}

impl Rule {
    /// Stable slug used in `// lint: allow(<slug>)` and the report.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rule::LockOrder => "lock-order",
            Rule::ScanUnderRouterWrite => "scan-under-router-write",
            Rule::WaitWithForeignGuard => "wait-with-foreign-guard",
            Rule::TryLockRationale => "try-lock-rationale",
            Rule::BadAnnotation => "bad-annotation",
        }
    }

    /// Parse an `allow(<slug>)` rule name. `bad-annotation` is not
    /// suppressible: a broken annotation cannot vouch for itself.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "lock-order" => Some(Rule::LockOrder),
            "scan-under-router-write" => Some(Rule::ScanUnderRouterWrite),
            "wait-with-foreign-guard" => Some(Rule::WaitWithForeignGuard),
            "try-lock-rationale" => Some(Rule::TryLockRationale),
            _ => None,
        }
    }
}

/// One analyzer finding. `suppressed` carries the justification text of
/// the covering `// lint: allow` when one applies; suppressed findings
/// are reported (they appear in `lint_report.json` for auditability)
/// but do not fail the run.
#[derive(Clone, Debug)]
pub struct Finding {
    pub rule: Rule,
    pub file: String,
    pub line: usize,
    pub message: String,
    pub suppressed: Option<String>,
}

impl Finding {
    /// Whether this finding fails a `--deny` run.
    #[must_use]
    pub fn is_error(&self) -> bool {
        self.suppressed.is_none()
    }
}

/// Serialize findings as the `lint_report.json` document.
#[must_use]
pub fn to_json(findings: &[Finding], files_scanned: usize) -> String {
    let errors = findings.iter().filter(|f| f.is_error()).count();
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str(&format!("  \"errors\": {errors},\n"));
    out.push_str(&format!("  \"suppressed\": {},\n", findings.len() - errors));
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"rule\": \"{}\", ", f.rule.name()));
        out.push_str(&format!("\"file\": {}, ", json_str(&f.file)));
        out.push_str(&format!("\"line\": {}, ", f.line));
        out.push_str(&format!("\"message\": {}", json_str(&f.message)));
        if let Some(j) = &f.suppressed {
            out.push_str(&format!(", \"suppressed\": {}", json_str(j)));
        }
        out.push('}');
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Minimal JSON string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_counts_errors_and_suppressions() {
        let findings = vec![
            Finding {
                rule: Rule::LockOrder,
                file: "a.rs".into(),
                line: 3,
                message: "bad \"order\"".into(),
                suppressed: None,
            },
            Finding {
                rule: Rule::TryLockRationale,
                file: "b.rs".into(),
                line: 9,
                message: "missing rationale".into(),
                suppressed: Some("spin then sleep".into()),
            },
        ];
        let json = to_json(&findings, 42);
        assert!(json.contains("\"files_scanned\": 42"));
        assert!(json.contains("\"errors\": 1"));
        assert!(json.contains("\"suppressed\": 1"));
        assert!(json.contains("bad \\\"order\\\""));
        assert!(json.contains("\"rule\": \"lock-order\""));
    }

    #[test]
    fn bad_annotation_is_not_suppressible() {
        assert!(Rule::from_name("bad-annotation").is_none());
        assert_eq!(Rule::from_name("lock-order"), Some(Rule::LockOrder));
    }
}
