//! The concurrency-invariant analyzer: a brace/scope tracker over the
//! lexed token stream that models guard liveness and enforces the four
//! rules (see the crate docs for the catalog).
//!
//! ## Model
//!
//! The analysis is **intra-procedural** over a linear token walk, with
//! one level of call-graph propagation through `// lint: acquires(…)`
//! annotations. A guard becomes live at its acquisition site and dies
//! at:
//!
//! * the end of the brace scope holding its `let` binding,
//! * the end of the statement, for an expression temporary
//!   (`self.registry.lock().confirm(seq)`),
//! * the closing brace of the `match`/`if let` block it heads
//!   (`match x.try_lock() { … }`), or
//! * an explicit `drop(name)`.
//!
//! Liveness is over-approximated (a `match`-header guard is considered
//! live in every arm, statements are walked without control-flow
//! pruning): the tree must be clean under the over-approximation, which
//! is exactly the property that keeps the discipline auditable.
//!
//! `#[cfg(test)]` modules are skipped: tests exercise the **runtime**
//! lock-rank validator instead (the whole suite runs with the
//! thread-local rank stack armed), so the two oracles split the work —
//! static for production paths, dynamic for everything the tests drive.

use crate::lex::{lex, RawAnnotation, Spanned, Tok};
use crate::ranks::{rank_of_alias, rank_of_receiver, LockRank};
use crate::report::{Finding, Rule};
use std::collections::{HashMap, HashSet};

/// Blocking acquisition methods (create a guard, subject to L1).
const BLOCKING_METHODS: &[&str] = &["lock", "read", "write"];
/// Non-blocking acquisition methods (subject to L4, exempt from L1 as
/// acquirers — a failed `try_*` backs off instead of deadlocking).
const TRY_METHODS: &[&str] = &["try_lock", "try_read", "try_write"];
/// Methods that park the calling thread on a *different* object than
/// the guards it holds (subject to L3).
const WAIT_METHODS: &[&str] = &[
    "wait",
    "wait_while",
    "wait_timeout",
    "wait_timeout_while",
    "recv",
    "recv_timeout",
    "recv_deadline",
];
/// Guard-preserving adapters: `x.lock().unwrap()` still yields the
/// guard, so the chain stays a binding candidate through these.
const GUARD_ADAPTERS: &[&str] = &["unwrap", "expect", "unwrap_or_else"];

/// Function-level facts gathered in the first pass over every file.
#[derive(Default)]
pub struct FnFacts {
    /// fn name → ranks it acquires (from `// lint: acquires(…)`).
    pub acquires: HashMap<String, Vec<LockRank>>,
    /// fn names annotated `// lint: acquires(…) returns-guard`: the
    /// call's result *is* the guard of the first listed rank.
    pub returns_guard: HashSet<String>,
    /// fn names annotated `// lint: scans-slabs`.
    pub scans_slabs: HashSet<String>,
}

/// A parsed `// lint:` annotation.
enum Annotation {
    Acquires {
        ranks: Vec<LockRank>,
        returns_guard: bool,
    },
    ScansSlabs,
    Allow {
        rule: Rule,
        justification: String,
    },
    Backoff,
}

/// Per-line suppression / rationale index for one file.
struct LineAnnotations {
    /// line → (rule, justification).
    allows: HashMap<usize, (Rule, String)>,
    /// Lines carrying `// lint: backoff — …`.
    backoffs: HashSet<usize>,
}

/// How many lines above a site an `allow`/`backoff` annotation still
/// applies (the annotation sits on its own line above the statement,
/// which rustfmt may wrap).
const ANNOTATION_REACH: usize = 3;

impl LineAnnotations {
    fn allow_for(&self, rule: Rule, line: usize) -> Option<&str> {
        (line.saturating_sub(ANNOTATION_REACH)..=line)
            .rev()
            .find_map(|l| {
                self.allows
                    .get(&l)
                    .filter(|(r, _)| *r == rule)
                    .map(|(_, j)| j.as_str())
            })
    }

    fn backoff_near(&self, line: usize) -> bool {
        (line.saturating_sub(ANNOTATION_REACH)..=line).any(|l| self.backoffs.contains(&l))
    }
}

/// Parse one raw annotation body; `None` with a finding for malformed
/// ones (annotations are load-bearing, so typos must not silently
/// disable a rule).
fn parse_annotation(
    raw: &RawAnnotation,
    file: &str,
    findings: &mut Vec<Finding>,
) -> Option<Annotation> {
    let body = raw.body.as_str();
    if let Some(rest) = body.strip_prefix("acquires(") {
        let Some(end) = rest.find(')') else {
            bad(findings, file, raw.line, "unclosed acquires(…)");
            return None;
        };
        let mut ranks = Vec::new();
        for name in rest[..end].split(',') {
            let name = name.trim();
            match rank_of_alias(name) {
                Some(r) => ranks.push(r),
                None => {
                    bad(
                        findings,
                        file,
                        raw.line,
                        &format!("acquires names unknown lock `{name}`"),
                    );
                    return None;
                }
            }
        }
        if ranks.is_empty() {
            bad(findings, file, raw.line, "acquires(…) lists no locks");
            return None;
        }
        let returns_guard = rest[end + 1..].trim() == "returns-guard";
        if !returns_guard && !rest[end + 1..].trim().is_empty() {
            bad(findings, file, raw.line, "trailing text after acquires(…)");
            return None;
        }
        return Some(Annotation::Acquires {
            ranks,
            returns_guard,
        });
    }
    if body == "scans-slabs" {
        return Some(Annotation::ScansSlabs);
    }
    if let Some(rest) = body.strip_prefix("allow(") {
        let Some(end) = rest.find(')') else {
            bad(findings, file, raw.line, "unclosed allow(…)");
            return None;
        };
        let Some(rule) = Rule::from_name(rest[..end].trim()) else {
            bad(
                findings,
                file,
                raw.line,
                &format!("allow names unknown rule `{}`", &rest[..end]),
            );
            return None;
        };
        let justification = strip_dash(&rest[end + 1..]);
        if justification.is_empty() {
            bad(
                findings,
                file,
                raw.line,
                "allow(…) requires a non-empty justification after `—`",
            );
            return None;
        }
        return Some(Annotation::Allow {
            rule,
            justification,
        });
    }
    if let Some(rest) = body.strip_prefix("backoff") {
        let rationale = strip_dash(rest);
        if rationale.is_empty() {
            bad(
                findings,
                file,
                raw.line,
                "backoff requires a non-empty rationale after `—`",
            );
            return None;
        }
        return Some(Annotation::Backoff);
    }
    bad(
        findings,
        file,
        raw.line,
        &format!("unrecognized lint annotation `{body}`"),
    );
    None
}

/// Text after a leading `—`/`-`/`:` separator, trimmed.
fn strip_dash(s: &str) -> String {
    s.trim()
        .trim_start_matches(['—', '-', ':'])
        .trim()
        .to_string()
}

fn bad(findings: &mut Vec<Finding>, file: &str, line: usize, msg: &str) {
    findings.push(Finding {
        rule: Rule::BadAnnotation,
        file: file.to_string(),
        line,
        message: msg.to_string(),
        suppressed: None,
    });
}

/// Pass 1: collect fn-level annotations from one file (cross-file
/// facts: an annotation on `IncrementalEngine::related_keys` is
/// consulted at call sites in `sharded.rs`).
pub fn collect_facts(src: &str, file: &str, facts: &mut FnFacts, findings: &mut Vec<Finding>) {
    let lexed = lex(src);
    let mut pending: Vec<Annotation> = Vec::new();
    let mut ann_iter = lexed.annotations.iter().peekable();
    for (i, t) in lexed.tokens.iter().enumerate() {
        // Drain annotations that appear before this token.
        while let Some(a) = ann_iter.peek() {
            if a.line <= t.line {
                if let Some(parsed) = parse_annotation(a, file, findings) {
                    match parsed {
                        Annotation::Acquires { .. } | Annotation::ScansSlabs => {
                            pending.push(parsed);
                        }
                        // Line-scoped annotations are handled in pass 2.
                        Annotation::Allow { .. } | Annotation::Backoff => {}
                    }
                }
                ann_iter.next();
            } else {
                break;
            }
        }
        if let Tok::Ident(kw) = &t.tok {
            if kw == "fn" {
                if let Some(Spanned {
                    tok: Tok::Ident(name),
                    ..
                }) = lexed.tokens.get(i + 1)
                {
                    for a in pending.drain(..) {
                        match a {
                            Annotation::Acquires {
                                ranks,
                                returns_guard,
                            } => {
                                if returns_guard {
                                    facts.returns_guard.insert(name.clone());
                                }
                                // Fn names are not namespaced (documented
                                // limitation): same-named fns UNION their
                                // rank lists, staying conservative.
                                let entry = facts.acquires.entry(name.clone()).or_default();
                                for r in ranks {
                                    if !entry.contains(&r) {
                                        entry.push(r);
                                    }
                                }
                            }
                            Annotation::ScansSlabs => {
                                facts.scans_slabs.insert(name.clone());
                            }
                            _ => unreachable!("only fn-scoped annotations are pended"),
                        }
                    }
                }
            }
        }
    }
    for a in pending {
        if matches!(a, Annotation::Acquires { .. } | Annotation::ScansSlabs) {
            bad(
                findings,
                file,
                0,
                "fn-scoped lint annotation attaches to no fn",
            );
        }
    }
}

/// A live guard in the scope model.
#[derive(Debug)]
struct Guard {
    /// Brace depth the guard lives at; dies when the scope closes.
    depth: usize,
    /// Binding name, for `drop(name)` release. `None` for temporaries.
    binding: Option<String>,
    /// Receiver identifier at the acquisition site.
    lock: String,
    rank: Option<LockRank>,
    /// Acquired via `write()` (rule L2 cares about write guards only).
    is_write: bool,
    /// Dies at the next statement boundary of its depth.
    temp: bool,
    line: usize,
}

/// Pass 2: analyze one file against the workspace-wide facts.
pub fn analyze(src: &str, file: &str, facts: &FnFacts) -> Vec<Finding> {
    let lexed = lex(src);
    let mut findings = Vec::new();
    let mut anns = LineAnnotations {
        allows: HashMap::new(),
        backoffs: HashSet::new(),
    };
    for raw in &lexed.annotations {
        // Malformed annotations were already reported by pass 1; parse
        // quietly here.
        let mut scratch = Vec::new();
        match parse_annotation(raw, file, &mut scratch) {
            Some(Annotation::Allow {
                rule,
                justification,
            }) => {
                anns.allows.insert(raw.line, (rule, justification));
            }
            Some(Annotation::Backoff) => {
                anns.backoffs.insert(raw.line);
            }
            _ => {}
        }
    }

    let toks = &lexed.tokens;
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    // Guards created by a `match x.lock() { … }` header, installed into
    // the scope its `{` opens.
    let mut pending_scope_guards: Vec<Guard> = Vec::new();
    // Current statement's `let` binding, if any.
    let mut stmt_binding: Option<String> = None;
    let mut in_let = false;
    let mut i = 0usize;

    while i < toks.len() {
        let t = &toks[i];
        match &t.tok {
            Tok::OpenBrace => {
                depth += 1;
                for mut g in pending_scope_guards.drain(..) {
                    g.depth = depth;
                    // A match header binds its arm's pattern ident:
                    // `match x.try_lock() { Some(router) => …` — look
                    // ahead so `drop(router)` inside the arm releases
                    // the guard.
                    if g.binding.is_none() {
                        g.binding = arm_binding(toks, i + 1).or_else(|| stmt_binding.clone());
                    }
                    guards.push(g);
                }
                in_let = false;
                stmt_binding = None;
                i += 1;
            }
            Tok::CloseBrace => {
                guards.retain(|g| g.depth < depth);
                depth = depth.saturating_sub(1);
                in_let = false;
                stmt_binding = None;
                i += 1;
            }
            Tok::Punct(';') => {
                guards.retain(|g| !(g.temp && g.depth == depth));
                in_let = false;
                stmt_binding = None;
                i += 1;
            }
            Tok::Ident(id) if id == "let" => {
                in_let = true;
                stmt_binding = let_binding(toks, i + 1);
                i += 1;
            }
            Tok::Ident(id)
                if id == "drop"
                    && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::OpenParen)) =>
            {
                if let Some(Spanned {
                    tok: Tok::Ident(name),
                    ..
                }) = toks.get(i + 2)
                {
                    if matches!(toks.get(i + 3).map(|t| &t.tok), Some(Tok::CloseParen)) {
                        // Release the innermost guard with this binding.
                        if let Some(pos) = guards
                            .iter()
                            .rposition(|g| g.binding.as_deref() == Some(name.as_str()))
                        {
                            guards.remove(pos);
                        }
                    }
                }
                i += 1;
            }
            // Skip `#[cfg(test)] mod … { … }` wholesale.
            Tok::Punct('#') if is_cfg_test(toks, i) => {
                i = skip_cfg_test(toks, i);
            }
            Tok::Ident(name)
                if matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::OpenParen))
                    && !matches!(toks.get(i.wrapping_sub(1)).map(|t| &t.tok), Some(Tok::Ident(k)) if k == "fn") =>
            {
                let line = t.line;
                let is_method = matches!(
                    toks.get(i.wrapping_sub(1)).map(|t| &t.tok),
                    Some(Tok::Punct('.'))
                );
                let args_empty = matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::CloseParen));
                let is_blocking_acq =
                    is_method && args_empty && BLOCKING_METHODS.contains(&name.as_str());
                let is_try_acq = is_method && args_empty && TRY_METHODS.contains(&name.as_str());

                if is_blocking_acq || is_try_acq {
                    let receiver = receiver_ident(toks, i - 1);
                    let rank = receiver.as_deref().and_then(rank_of_receiver);
                    // L4: a try_* site must carry its backoff rationale.
                    if is_try_acq && !anns.backoff_near(line) {
                        push(
                            &mut findings,
                            &anns,
                            Rule::TryLockRationale,
                            file,
                            line,
                            format!(
                                "`{}.{}()` fallback path lacks a `// lint: backoff — …` rationale",
                                receiver.as_deref().unwrap_or("?"),
                                name
                            ),
                        );
                    }
                    // L1: blocking acquisition must not out-rank a live
                    // guard. try_* is exempt (a failed probe backs off;
                    // it cannot close a deadlock cycle).
                    if is_try_acq {
                        // exempt
                    } else if let Some(r) = rank {
                        for g in guards.iter().filter(|g| g.rank.is_some_and(|gr| gr < r)) {
                            push(
                                &mut findings,
                                &anns,
                                Rule::LockOrder,
                                file,
                                line,
                                format!(
                                    "acquiring `{}` (rank {}) while `{}` (rank {}, line {}) is held — lock order is {}",
                                    receiver.as_deref().unwrap_or("?"),
                                    r.level(),
                                    g.lock,
                                    g.rank.map_or(0, LockRank::level),
                                    g.line,
                                    order_hint(),
                                ),
                            );
                        }
                    }
                    // Liveness: bind / temp / next-scope per the chain.
                    let (kind, after) = chain_disposition(toks, i + 1);
                    install_guard(
                        &mut guards,
                        &mut pending_scope_guards,
                        kind,
                        Guard {
                            depth,
                            binding: None,
                            lock: receiver.unwrap_or_else(|| "?".into()),
                            rank,
                            is_write: name.contains("write"),
                            temp: false,
                            line,
                        },
                        in_let,
                        stmt_binding.as_deref(),
                    );
                    i = after;
                    continue;
                }

                // L3: waiting on a condvar/channel while holding any
                // guard of a *different* sync object.
                if is_method && WAIT_METHODS.contains(&name.as_str()) {
                    let first_arg = match toks.get(i + 2).map(|t| &t.tok) {
                        Some(Tok::Ident(a)) => Some(a.clone()),
                        _ => None,
                    };
                    for g in &guards {
                        if g.binding.is_some() && g.binding == first_arg {
                            continue; // the condvar consumes this guard
                        }
                        push(
                            &mut findings,
                            &anns,
                            Rule::WaitWithForeignGuard,
                            file,
                            line,
                            format!(
                                "`.{}()` parks this thread while guard `{}` (line {}) is live — a waiter must hold nothing but the condvar's own mutex",
                                name, g.lock, g.line
                            ),
                        );
                    }
                }

                // L2: a slab/engine-state scan under the router write
                // lock stalls every unrelated submitter.
                if facts.scans_slabs.contains(name.as_str()) {
                    for g in guards
                        .iter()
                        .filter(|g| g.rank == Some(LockRank::Router) && g.is_write)
                    {
                        push(
                            &mut findings,
                            &anns,
                            Rule::ScanUnderRouterWrite,
                            file,
                            line,
                            format!(
                                "`{name}(…)` scans shard state while the router write guard (line {}) is live — mark, release, then scan under shard locks only",
                                g.line
                            ),
                        );
                    }
                }

                // L1, one level of call-graph propagation: a call to a
                // fn annotated `// lint: acquires(…)` behaves like the
                // acquisition(s) it performs.
                if let Some(ranks) = facts.acquires.get(name.as_str()) {
                    for &r in ranks {
                        for g in guards.iter().filter(|g| g.rank.is_some_and(|gr| gr < r)) {
                            push(
                                &mut findings,
                                &anns,
                                Rule::LockOrder,
                                file,
                                line,
                                format!(
                                    "`{name}(…)` acquires `{}` (rank {}) while `{}` (rank {}, line {}) is held — lock order is {}",
                                    r.name(),
                                    r.level(),
                                    g.lock,
                                    g.rank.map_or(0, LockRank::level),
                                    g.line,
                                    order_hint(),
                                ),
                            );
                        }
                    }
                    if facts.returns_guard.contains(name.as_str()) {
                        let (kind, after) = chain_disposition(toks, skip_balanced(toks, i + 1));
                        install_guard(
                            &mut guards,
                            &mut pending_scope_guards,
                            kind,
                            Guard {
                                depth,
                                binding: None,
                                lock: ranks[0].name().to_string(),
                                rank: Some(ranks[0]),
                                is_write: false,
                                temp: false,
                                line,
                            },
                            in_let,
                            stmt_binding.as_deref(),
                        );
                        i = after;
                        continue;
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    findings
}

/// Record a finding, downgrading it to suppressed when a matching
/// `// lint: allow` with justification covers the line.
fn push(
    findings: &mut Vec<Finding>,
    anns: &LineAnnotations,
    rule: Rule,
    file: &str,
    line: usize,
    message: String,
) {
    let suppressed = anns.allow_for(rule, line).map(str::to_string);
    findings.push(Finding {
        rule,
        file: file.to_string(),
        line,
        message,
        suppressed,
    });
}

fn order_hint() -> &'static str {
    "rebalancer > migration_lock > router > shard.engine > snap_lock > store.state > wal_stream > registry"
}

/// What follows an acquisition expression decides the guard's life.
enum ChainKind {
    /// `let g = x.lock();` (or `… else`) — bound in the current scope.
    Bound,
    /// Consumed mid-expression — temporary until the statement ends.
    Temp,
    /// Heads a `match`/`if let` block — live inside the block scope.
    NextScope,
}

/// Classify the guard expression's continuation starting at the token
/// *after* the acquisition's `(`. Returns the disposition and the index
/// to resume the walk at (never skipping past statement structure).
fn chain_disposition(toks: &[Spanned], args_open_minus_one: usize) -> (ChainKind, usize) {
    // `args_open_minus_one` points at the OpenParen's index (we resume
    // scanning right after the call's balanced parens).
    let mut j = skip_balanced(toks, args_open_minus_one);
    // Guard-preserving adapters keep the chain a binding candidate. A
    // bare CloseParen means the acquisition was the last argument of a
    // guard-returning wrapper (`lockrank::ranked(rank, x.lock())`) or a
    // parenthesized expression — pop out and keep classifying.
    loop {
        match (toks.get(j).map(|t| &t.tok), toks.get(j + 1).map(|t| &t.tok)) {
            (Some(Tok::Punct('.')), Some(Tok::Ident(m)))
                if GUARD_ADAPTERS.contains(&m.as_str()) =>
            {
                j = skip_balanced(toks, j + 2);
            }
            (Some(Tok::CloseParen), _) => j += 1,
            _ => break,
        }
    }
    match toks.get(j).map(|t| &t.tok) {
        Some(Tok::Punct(';')) => (ChainKind::Bound, j),
        Some(Tok::Ident(kw)) if kw == "else" => (ChainKind::Bound, j),
        Some(Tok::OpenBrace) => (ChainKind::NextScope, j),
        _ => (ChainKind::Temp, j),
    }
}

/// Skip one balanced `( … )` group starting at index `open` (which must
/// be the OpenParen); returns the index after the matching close. If
/// `open` is not an OpenParen, returns `open` unchanged.
fn skip_balanced(toks: &[Spanned], open: usize) -> usize {
    if !matches!(toks.get(open).map(|t| &t.tok), Some(Tok::OpenParen)) {
        return open;
    }
    let mut depth = 0usize;
    let mut j = open;
    while j < toks.len() {
        match toks[j].tok {
            Tok::OpenParen => depth += 1,
            Tok::CloseParen => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

fn install_guard(
    guards: &mut Vec<Guard>,
    pending_scope_guards: &mut Vec<Guard>,
    kind: ChainKind,
    mut guard: Guard,
    in_let: bool,
    stmt_binding: Option<&str>,
) {
    match kind {
        ChainKind::Bound => {
            if in_let {
                match stmt_binding {
                    // `let _ = x.lock();` drops the guard immediately.
                    Some("_") => {}
                    b => {
                        guard.binding = b.map(str::to_string);
                        guards.push(guard);
                    }
                }
            } else {
                // Expression statement `x.lock();` — acquire + release.
            }
        }
        ChainKind::Temp => {
            guard.temp = true;
            if in_let {
                guard.binding = stmt_binding.map(str::to_string);
            }
            guards.push(guard);
        }
        ChainKind::NextScope => {
            pending_scope_guards.push(guard);
        }
    }
}

/// The final identifier of the receiver chain ending at `dot` (the `.`
/// before the acquisition method): `self.shards[i].engine.lock()` →
/// `engine`; `state.wals[s % n].lock()` → `wals`.
fn receiver_ident(toks: &[Spanned], dot: usize) -> Option<String> {
    let mut j = dot.checked_sub(1)?;
    loop {
        match &toks[j].tok {
            Tok::Ident(name) => return Some(name.clone()),
            Tok::CloseBracket => {
                let mut depth = 0usize;
                loop {
                    match toks[j].tok {
                        Tok::CloseBracket => depth += 1,
                        Tok::OpenBracket => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j = j.checked_sub(1)?;
                }
                j = j.checked_sub(1)?;
            }
            Tok::CloseParen => {
                let mut depth = 0usize;
                loop {
                    match toks[j].tok {
                        Tok::CloseParen => depth += 1,
                        Tok::OpenParen => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j = j.checked_sub(1)?;
                }
                j = j.checked_sub(1)?;
            }
            _ => return None,
        }
    }
}

/// The pattern binding of a `let`: the last identifier before `=` or
/// `:`, skipping pattern keywords (`let Some(mut g) = …` → `g`).
fn let_binding(toks: &[Spanned], from: usize) -> Option<String> {
    let mut best = None;
    let mut j = from;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Ident(id) if id == "mut" || id == "Some" || id == "Ok" || id == "Err" => {}
            Tok::Ident(id) => best = Some(id.clone()),
            Tok::Punct('=' | ':' | ';') | Tok::OpenBrace => break,
            _ => {}
        }
        j += 1;
    }
    best
}

/// The first arm's pattern binding right after a match's `{`:
/// `Some(router) => …` / `Ok(mut engine) => …`.
fn arm_binding(toks: &[Spanned], after_open: usize) -> Option<String> {
    match (
        toks.get(after_open).map(|t| &t.tok),
        toks.get(after_open + 1).map(|t| &t.tok),
        toks.get(after_open + 2).map(|t| &t.tok),
        toks.get(after_open + 3).map(|t| &t.tok),
    ) {
        (
            Some(Tok::Ident(ctor)),
            Some(Tok::OpenParen),
            Some(Tok::Ident(a)),
            Some(Tok::CloseParen),
        ) if ctor == "Some" || ctor == "Ok" => Some(a.clone()),
        (
            Some(Tok::Ident(ctor)),
            Some(Tok::OpenParen),
            Some(Tok::Ident(m)),
            Some(Tok::Ident(a)),
        ) if (ctor == "Some" || ctor == "Ok") && m == "mut" => Some(a.clone()),
        _ => None,
    }
}

/// Whether token `i` starts `#[cfg(test)]` directly followed by
/// `mod name {`.
fn is_cfg_test(toks: &[Spanned], i: usize) -> bool {
    let pat = [
        Tok::Punct('#'),
        Tok::OpenBracket,
        Tok::Ident("cfg".into()),
        Tok::OpenParen,
        Tok::Ident("test".into()),
        Tok::CloseParen,
        Tok::CloseBracket,
    ];
    for (k, p) in pat.iter().enumerate() {
        if toks.get(i + k).map(|t| &t.tok) != Some(p) {
            return false;
        }
    }
    matches!(toks.get(i + 7).map(|t| &t.tok), Some(Tok::Ident(m)) if m == "mod")
}

/// Skip past the `#[cfg(test)] mod … { … }` block starting at `i`.
fn skip_cfg_test(toks: &[Spanned], i: usize) -> usize {
    let mut j = i + 7;
    // Find the module's opening brace.
    while j < toks.len() && toks[j].tok != Tok::OpenBrace {
        j += 1;
    }
    let mut depth = 0usize;
    while j < toks.len() {
        match toks[j].tok {
            Tok::OpenBrace => depth += 1,
            Tok::CloseBrace => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}
