//! CLI: `cargo run -p coord-lint -- --workspace [--deny] [--json PATH]`.
//!
//! Exit status is 0 when no unsuppressed finding exists (or when run
//! without `--deny`), 1 on unsuppressed findings under `--deny`, 2 on
//! usage or I/O errors.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut workspace = false;
    let mut json_path: Option<PathBuf> = None;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--deny" => deny = true,
            "--json" => match args.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("coord-lint: --json requires a path");
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("coord-lint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("coord-lint: unknown argument `{other}`");
                eprintln!("usage: coord-lint --workspace [--deny] [--json PATH] [--root DIR]");
                return ExitCode::from(2);
            }
        }
    }
    if !workspace {
        eprintln!("coord-lint: only `--workspace` mode is supported");
        return ExitCode::from(2);
    }
    // When invoked via `cargo run -p coord-lint`, the cwd is already the
    // workspace root; `--root` overrides for out-of-tree invocation.
    if std::env::var_os("CARGO_MANIFEST_DIR").is_some() && root == Path::new(".") {
        // crates/coord-lint → workspace root is two levels up, but cargo
        // runs binaries from the *workspace* cwd, so "." is correct;
        // keep the default.
    }

    let run = match coord_lint::lint_workspace(&root) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("coord-lint: {e}");
            return ExitCode::from(2);
        }
    };

    for f in &run.findings {
        match &f.suppressed {
            Some(j) => println!(
                "allow [{}] {}:{} — {} (justification: {})",
                f.rule.name(),
                f.file,
                f.line,
                f.message,
                j
            ),
            None => println!(
                "error [{}] {}:{} — {}",
                f.rule.name(),
                f.file,
                f.line,
                f.message
            ),
        }
    }
    let errors = run.errors();
    println!(
        "coord-lint: {} files, {} error(s), {} suppressed",
        run.files_scanned,
        errors,
        run.findings.len() - errors
    );

    if let Some(path) = json_path {
        let json = coord_lint::report::to_json(&run.findings, run.files_scanned);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("coord-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if deny && errors > 0 {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
