//! A hand-rolled Rust lexer: just enough to drive the analyzer's
//! brace/scope tracker. Strings, char literals, and comments are
//! consumed (so braces inside them cannot desync the scope stack);
//! `// lint:` annotations are surfaced with their line numbers.

/// One token of interest to the analyzer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Any single punctuation character (`.`, `;`, `,`, `=`, `|`, …).
    Punct(char),
    /// `{`
    OpenBrace,
    /// `}`
    CloseBrace,
    /// `(`
    OpenParen,
    /// `)`
    CloseParen,
    /// `[`
    OpenBracket,
    /// `]`
    CloseBracket,
}

/// A token plus the 1-indexed source line it starts on.
#[derive(Clone, Debug)]
pub struct Spanned {
    pub tok: Tok,
    pub line: usize,
}

/// A `// lint: …` annotation comment.
#[derive(Clone, Debug)]
pub struct RawAnnotation {
    /// Text after `lint:`, trimmed.
    pub body: String,
    pub line: usize,
}

/// Lexer output: the token stream and every `// lint:` comment.
pub struct Lexed {
    pub tokens: Vec<Spanned>,
    pub annotations: Vec<RawAnnotation>,
}

/// Tokenize `src`, stripping comments/strings/lifetimes and collecting
/// `// lint:` annotations.
#[must_use]
pub fn lex(src: &str) -> Lexed {
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut tokens = Vec::new();
    let mut annotations = Vec::new();

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&'/') => {
                // Line comment: scan to end of line, keep `lint:` bodies.
                let start = i + 2;
                let mut j = start;
                while j < bytes.len() && bytes[j] != '\n' {
                    j += 1;
                }
                let text: String = bytes[start..j].iter().collect();
                let trimmed = text.trim_start_matches(['/', '!']).trim();
                if let Some(body) = trimmed.strip_prefix("lint:") {
                    annotations.push(RawAnnotation {
                        body: body.trim().to_string(),
                        line,
                    });
                }
                i = j;
            }
            '/' if bytes.get(i + 1) == Some(&'*') => {
                // Block comment (nestable).
                let mut depth = 1;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if bytes[j] == '/' && bytes.get(j + 1) == Some(&'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == '*' && bytes.get(j + 1) == Some(&'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                i = j;
            }
            '"' => i = skip_string(&bytes, i, &mut line),
            'r' | 'b' if is_raw_string_start(&bytes, i) => {
                i = skip_raw_string(&bytes, i, &mut line);
            }
            '\'' => {
                // Char literal or lifetime. `'a'` / `'\n'` are chars;
                // `'a` followed by a non-quote is a lifetime label.
                if bytes.get(i + 1) == Some(&'\\') {
                    // Escaped char literal.
                    let mut j = i + 2;
                    while j < bytes.len() && bytes[j] != '\'' {
                        j += 1;
                    }
                    i = j + 1;
                } else if bytes.get(i + 2) == Some(&'\'') && bytes.get(i + 1) != Some(&'\'') {
                    // Any one-char literal: 'a', '{', ' ', '.' — the
                    // closing quote two ahead disambiguates from a
                    // lifetime label.
                    i += 3; // 'x'
                } else {
                    // Lifetime: consume the quote; the label lexes as an
                    // ident (harmless).
                    i += 1;
                }
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                tokens.push(Spanned {
                    tok: Tok::Ident(bytes[start..i].iter().collect()),
                    line,
                });
            }
            '{' => {
                tokens.push(Spanned {
                    tok: Tok::OpenBrace,
                    line,
                });
                i += 1;
            }
            '}' => {
                tokens.push(Spanned {
                    tok: Tok::CloseBrace,
                    line,
                });
                i += 1;
            }
            '(' => {
                tokens.push(Spanned {
                    tok: Tok::OpenParen,
                    line,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Spanned {
                    tok: Tok::CloseParen,
                    line,
                });
                i += 1;
            }
            '[' => {
                tokens.push(Spanned {
                    tok: Tok::OpenBracket,
                    line,
                });
                i += 1;
            }
            ']' => {
                tokens.push(Spanned {
                    tok: Tok::CloseBracket,
                    line,
                });
                i += 1;
            }
            c => {
                tokens.push(Spanned {
                    tok: Tok::Punct(c),
                    line,
                });
                i += 1;
            }
        }
    }
    Lexed {
        tokens,
        annotations,
    }
}

/// Whether position `i` starts a raw (or raw-byte) string literal.
fn is_raw_string_start(bytes: &[char], i: usize) -> bool {
    let mut j = i;
    if bytes.get(j) == Some(&'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&'#') {
        j += 1;
    }
    bytes.get(j) == Some(&'"')
}

/// Skip a plain string literal starting at the opening quote.
fn skip_string(bytes: &[char], start: usize, line: &mut usize) -> usize {
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            '\\' => i += 2,
            '\n' => {
                *line += 1;
                i += 1;
            }
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skip a raw string literal (`r"…"`, `r#"…"#`, `br##"…"##`, …).
fn skip_raw_string(bytes: &[char], start: usize, line: &mut usize) -> usize {
    let mut i = start;
    if bytes.get(i) == Some(&'b') {
        i += 1;
    }
    i += 1; // 'r'
    let mut hashes = 0;
    while bytes.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    while i < bytes.len() {
        if bytes[i] == '\n' {
            *line += 1;
            i += 1;
        } else if bytes[i] == '"' {
            let mut j = i + 1;
            let mut h = 0;
            while h < hashes && bytes.get(j) == Some(&'#') {
                h += 1;
                j += 1;
            }
            if h == hashes {
                return j;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn braces_in_strings_and_comments_are_ignored() {
        let lexed = lex("fn f() { let s = \"{\"; /* } */ let c = '{'; } // {\n");
        let opens = lexed
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::OpenBrace)
            .count();
        let closes = lexed
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::CloseBrace)
            .count();
        assert_eq!(opens, 1);
        assert_eq!(closes, 1);
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let lexed = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.tok == Tok::Ident("str".into())));
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.tok == Tok::OpenBrace)
                .count(),
            1
        );
    }

    #[test]
    fn lint_annotations_are_collected_with_lines() {
        let lexed = lex("fn a() {}\n// lint: acquires(router)\nfn b() {}\n");
        assert_eq!(lexed.annotations.len(), 1);
        assert_eq!(lexed.annotations[0].body, "acquires(router)");
        assert_eq!(lexed.annotations[0].line, 2);
    }

    #[test]
    fn raw_strings_are_skipped() {
        let lexed = lex("let x = r#\"{ \" }\"#; let y = 1;");
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| matches!(t.tok, Tok::OpenBrace))
                .count(),
            0
        );
        assert!(lexed.tokens.iter().any(|t| t.tok == Tok::Ident("y".into())));
    }
}
