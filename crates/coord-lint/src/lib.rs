//! # coord-lint — lock-order & concurrency-invariant analyzer
//!
//! A self-contained static analyzer (zero dependencies, hand-rolled
//! lexer) that walks every `src/` file in the workspace and enforces
//! the concurrency discipline this codebase learned the hard way (the
//! router-write-across-slab-scan bug, the WAL ack window — see
//! CHANGES.md):
//!
//! | rule | slug | invariant |
//! |------|------|-----------|
//! | L1 | `lock-order` | locks are acquired in descending rank order (see [`ranks`]) |
//! | L2 | `scan-under-router-write` | no `router.write()` guard live across a `// lint: scans-slabs` call |
//! | L3 | `wait-with-foreign-guard` | no guard live across `wait*`/`recv*` on a different sync object |
//! | L4 | `try-lock-rationale` | every `try_*` site carries a `// lint: backoff — …` rationale |
//! | —  | `bad-annotation` | malformed `// lint:` lines are themselves errors |
//!
//! Suppression is only via `// lint: allow(<slug>) — <justification>`
//! with a non-empty justification; suppressed findings still appear in
//! `lint_report.json` for audit.
//!
//! The rank table in [`ranks`] is the single source of truth: the
//! runtime validator (`coord_engine::lockrank`) re-exports it, so the
//! static pass and the dynamic oracle can never disagree.

#![forbid(unsafe_code)]

pub mod analyze;
pub mod lex;
pub mod ranks;
pub mod report;

use analyze::{analyze, collect_facts, FnFacts};
use report::Finding;
use std::path::{Path, PathBuf};

/// Result of linting a file set.
pub struct LintRun {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
}

impl LintRun {
    /// Unsuppressed findings — the ones that fail `--deny`.
    #[must_use]
    pub fn errors(&self) -> usize {
        self.findings.iter().filter(|f| f.is_error()).count()
    }
}

/// Lint an explicit list of `(display name, source)` pairs. Two passes:
/// first collect `// lint:` fn annotations across *all* files (the
/// one-level call graph is cross-file), then analyze each file against
/// the combined facts.
#[must_use]
pub fn lint_sources(sources: &[(String, String)]) -> LintRun {
    let mut facts = FnFacts::default();
    let mut findings = Vec::new();
    for (name, src) in sources {
        collect_facts(src, name, &mut facts, &mut findings);
    }
    for (name, src) in sources {
        findings.extend(analyze(src, name, &facts));
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    LintRun {
        findings,
        files_scanned: sources.len(),
    }
}

/// Discover the workspace's lintable sources under `root`: every `.rs`
/// file below `crates/*/src` and the facade's `src/`. `shims/` is
/// excluded deliberately — it vendors the lock *primitives* themselves
/// (a `parking_lot` API shim), which are below the rank table's level
/// of abstraction. Test code (`tests/`, `benches/`, `#[cfg(test)]`
/// modules) is covered by the runtime validator instead.
#[must_use]
pub fn workspace_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates) {
        let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for dir in dirs {
            collect_rs(&dir.join("src"), &mut out);
        }
    }
    collect_rs(&root.join("src"), &mut out);
    out.sort();
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Lint the workspace rooted at `root` (the directory holding the
/// top-level `Cargo.toml`).
pub fn lint_workspace(root: &Path) -> std::io::Result<LintRun> {
    let mut sources = Vec::new();
    for path in workspace_sources(root) {
        let src = std::fs::read_to_string(&path)?;
        let display = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .into_owned();
        sources.push((display, src));
    }
    Ok(lint_sources(&sources))
}
