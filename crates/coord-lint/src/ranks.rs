//! The workspace's declared lock-order DAG — the **single source of
//! truth** shared by the static analyzer (rule L1) and the runtime
//! validator (`coord_engine::lockrank` re-exports this module), so the
//! two oracles can never disagree about which nesting is legal.
//!
//! ## The rank DAG
//!
//! Locks may only be acquired in **descending** rank order: while a
//! guard of rank `r` is live, only locks of rank `≤ r` may be acquired
//! (equal rank is allowed — e.g. the source and target shard engines
//! during a migration, which is serialized by the higher-ranked
//! migration lock). Non-blocking `try_*` acquisitions are exempt: a
//! thread that backs off on failure cannot participate in a deadlock
//! cycle (that discipline is checked separately by rule L4, which
//! requires every `try_*` fallback path to document its backoff).
//!
//! ```text
//!   rebalancer (70)            one pass at a time; held across whole passes
//!        │
//!   migration_lock (60)        serializes marker-based migrations
//!        │
//!   router (50)                routing table (write OR read — a reader
//!        │                     can block behind a queued writer)
//!   shard engine (40)          per-shard IncrementalEngine mutex
//!        │
//!   snap_lock (35)             snapshot/rotation serialization
//!        │
//!   store state (30)           epoch + WAL-stream vector RwLock
//!        │
//!   WAL stream (25)            per-stream writer mutex
//!        │
//!   registry (10)              durable seq registry
//! ```
//!
//! Every edge in the diagram is a nesting that really occurs in the
//! tree: `rebalancer → migration` (a rebalance pass runs migrations),
//! `migration → router/engine` (mark, freeze, move, publish),
//! `snap_lock → state → registry` (snapshot capture under the rotation
//! write lock), `state → wal` (append and sync), and so on.

/// A rank in the lock-order DAG. Higher numeric rank = acquired
/// earlier. `u8` repr so the runtime validator's thread-local stack
/// stays trivially copyable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum LockRank {
    /// `DurableShardedEngine::rebalancer` / `SharedEngine::rebalancer`:
    /// held across an entire rebalance pass (which runs migrations).
    Rebalancer = 70,
    /// `ShardedEngine::migration_lock`: serializes marker-based
    /// migrations; acquired with no other ranked lock held except the
    /// rebalancer guard.
    Migration = 60,
    /// `ShardedEngine::router`: the routing table `RwLock`. Read and
    /// write share one rank — a blocking `read()` can queue behind a
    /// writer, so it is just as dangerous under a lower-ranked guard.
    Router = 50,
    /// `Shard::engine`: one shard's `IncrementalEngine` mutex.
    ShardEngine = 40,
    /// `CoordStore::snap_lock`: snapshot/rotation serialization.
    SnapRotation = 35,
    /// `CoordStore::state`: the epoch + WAL-stream vector `RwLock`.
    StoreState = 30,
    /// One WAL stream's writer mutex (`state.wals[i]`).
    WalStream = 25,
    /// `DurableShardedEngine::registry` / `DurableEngine::registry`:
    /// the durable seq registry mutex.
    Registry = 10,
}

impl LockRank {
    /// The rank's numeric level (higher = acquired earlier).
    #[must_use]
    pub fn level(self) -> u8 {
        self as u8
    }

    /// Stable display name (matches the receiver patterns the static
    /// pass recognizes).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LockRank::Rebalancer => "rebalancer",
            LockRank::Migration => "migration_lock",
            LockRank::Router => "router",
            LockRank::ShardEngine => "shard.engine",
            LockRank::SnapRotation => "snap_lock",
            LockRank::StoreState => "store.state",
            LockRank::WalStream => "wal_stream",
            LockRank::Registry => "registry",
        }
    }
}

/// One row of the rank table: the receiver identifiers whose
/// `.lock()`/`.read()`/`.write()` acquisition carries the rank.
///
/// Matching is by the **last identifier of the receiver chain** at the
/// acquisition site (`self.shards[i].engine.lock()` matches `engine`;
/// `state.wals[s].lock()` matches `wals`). This is a naming contract:
/// the workspace's ranked locks are always reached through fields with
/// these exact names, and the self-check test keeps it honest.
pub struct RankEntry {
    pub rank: LockRank,
    /// Receiver identifiers that resolve to this lock.
    pub receivers: &'static [&'static str],
    /// Annotation alias accepted by `// lint: acquires(<name>)`.
    pub alias: &'static str,
}

/// The rank table, in descending rank order.
pub const RANK_TABLE: &[RankEntry] = &[
    RankEntry {
        rank: LockRank::Rebalancer,
        receivers: &["rebalancer"],
        alias: "rebalancer",
    },
    RankEntry {
        rank: LockRank::Migration,
        receivers: &["migration_lock"],
        alias: "migration_lock",
    },
    RankEntry {
        rank: LockRank::Router,
        receivers: &["router"],
        alias: "router",
    },
    RankEntry {
        rank: LockRank::ShardEngine,
        receivers: &["engine"],
        alias: "shard.engine",
    },
    RankEntry {
        rank: LockRank::SnapRotation,
        receivers: &["snap_lock"],
        alias: "snap_lock",
    },
    RankEntry {
        rank: LockRank::StoreState,
        receivers: &["state"],
        alias: "store.state",
    },
    RankEntry {
        rank: LockRank::WalStream,
        receivers: &["wal", "wals"],
        alias: "wal_stream",
    },
    RankEntry {
        rank: LockRank::Registry,
        receivers: &["registry"],
        alias: "registry",
    },
];

/// The rank acquired by locking a receiver with the given final
/// identifier, if it is one of the ranked locks.
#[must_use]
pub fn rank_of_receiver(ident: &str) -> Option<LockRank> {
    RANK_TABLE
        .iter()
        .find(|e| e.receivers.contains(&ident))
        .map(|e| e.rank)
}

/// The rank named by an `// lint: acquires(<name>)` annotation, if any.
/// Accepts both the alias and any receiver spelling.
#[must_use]
pub fn rank_of_alias(name: &str) -> Option<LockRank> {
    RANK_TABLE
        .iter()
        .find(|e| e.alias == name || e.receivers.contains(&name))
        .map(|e| e.rank)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_strictly_descending_with_unique_receivers() {
        let mut seen = std::collections::HashSet::new();
        let mut last = u8::MAX;
        for entry in RANK_TABLE {
            assert!(
                entry.rank.level() < last,
                "table must be strictly descending"
            );
            last = entry.rank.level();
            for r in entry.receivers {
                assert!(seen.insert(*r), "receiver {r} claimed by two ranks");
            }
            assert_eq!(rank_of_alias(entry.alias), Some(entry.rank));
        }
    }

    #[test]
    fn receiver_resolution_matches_declared_dag() {
        assert_eq!(
            rank_of_receiver("migration_lock"),
            Some(LockRank::Migration)
        );
        assert_eq!(rank_of_receiver("router"), Some(LockRank::Router));
        assert_eq!(rank_of_receiver("engine"), Some(LockRank::ShardEngine));
        assert_eq!(rank_of_receiver("wals"), Some(LockRank::WalStream));
        assert_eq!(rank_of_receiver("registry"), Some(LockRank::Registry));
        assert_eq!(rank_of_receiver("ring"), None);
        assert!(LockRank::Migration > LockRank::Router);
        assert!(LockRank::Router > LockRank::ShardEngine);
        assert!(LockRank::ShardEngine > LockRank::WalStream);
        assert!(LockRank::WalStream > LockRank::Registry);
    }
}
