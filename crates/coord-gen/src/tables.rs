//! Domain tables for the examples and the Consistent-algorithm
//! experiments: flights, hotels, cinemas, concerts.

use coord_db::{Database, DbError, Value};

/// Create `Flights(flightId, destination)` with the given
/// (id, destination) rows — the Section 2 schema.
pub fn flights_simple(db: &mut Database, rows: &[(i64, &str)]) -> Result<(), DbError> {
    db.create_table("Flights", &["flightId", "destination"])?;
    for &(id, dest) in rows {
        db.insert("Flights", vec![Value::int(id), Value::str(dest)])?;
    }
    Ok(())
}

/// Create the Section 6.2 flights table
/// `Flights(flightId, destination, day, source, airline)`.
///
/// * `unique_pairs = true` (Figure 7 setting): every row gets a distinct
///   (destination, day) combination, so the number of coordination
///   options equals the row count.
/// * `unique_pairs = false` (Figure 8 setting): destinations and days
///   cycle over small pools, capping the option count.
pub fn flights_coordination(
    db: &mut Database,
    name: &str,
    rows: usize,
    unique_pairs: bool,
) -> Result<(), DbError> {
    db.create_table(
        name,
        &["flightId", "destination", "day", "source", "airline"],
    )?;
    for i in 0..rows {
        let (dest, day) = if unique_pairs {
            (format!("city{i}"), i as i64)
        } else {
            (format!("city{}", i % 10), (i / 10) as i64)
        };
        db.insert(
            name,
            vec![
                Value::int(i as i64),
                Value::str(dest),
                Value::int(day),
                Value::str(format!("src{}", i % 5)),
                Value::str(format!("air{}", i % 3)),
            ],
        )?;
    }
    Ok(())
}

/// Create a Slashdot-scale activity table `name(id, topic, day)` and
/// return the topic-pool size `k = ⌈√rows⌉`.
///
/// Row `i` is `(i, "g{i % k}", i / k)`: both the topic pool and the day
/// range have ≈√rows values, so any *single-column* equality bucket
/// holds ≈√rows rows while the *(topic, day)* pair pins exactly one row.
/// That makes the table the storage-backend stress case: per-probe work
/// grows with √N for single-column indexes but stays flat once a
/// composite (topic, day) index is active. Topic strings are interned
/// once per pool entry, so a 10⁶-row build clones `Value`s instead of
/// formatting a million strings.
pub fn activity_pool(db: &mut Database, name: &str, rows: usize) -> Result<usize, DbError> {
    db.create_table(name, &["id", "topic", "day"])?;
    let k = activity_topic_count(rows);
    let topics: Vec<Value> = (0..k).map(|t| Value::str(format!("g{t}"))).collect();
    for i in 0..rows {
        db.insert(
            name,
            vec![
                Value::int(i as i64),
                topics[i % k].clone(),
                Value::int((i / k) as i64),
            ],
        )?;
    }
    Ok(k)
}

/// Topic-pool size used by [`activity_pool`]: `⌈√rows⌉` (minimum 1).
pub fn activity_topic_count(rows: usize) -> usize {
    ((rows as f64).sqrt().ceil() as usize).max(1)
}

/// Create `Hotels(hotelId, location)`.
pub fn hotels(db: &mut Database, rows: &[(i64, &str)]) -> Result<(), DbError> {
    db.create_table("Hotels", &["hotelId", "location"])?;
    for &(id, loc) in rows {
        db.insert("Hotels", vec![Value::int(id), Value::str(loc)])?;
    }
    Ok(())
}

/// Create the movies-example cinemas table `M(movie_id, cinema, movie)`
/// (Section 5): Hugo plays at Regal, AMC and Cinemark; Contagion at
/// Regal; Project X at AMC.
pub fn cinemas_example(db: &mut Database) -> Result<(), DbError> {
    db.create_table("M", &["movie_id", "cinema", "movie"])?;
    let rows = [
        (1, "Regal", "Contagion"),
        (2, "Regal", "Hugo"),
        (3, "AMC", "Project X"),
        (4, "AMC", "Hugo"),
        (5, "Cinemark", "Hugo"),
    ];
    for (id, cinema, movie) in rows {
        db.insert(
            "M",
            vec![Value::int(id), Value::str(cinema), Value::str(movie)],
        )?;
    }
    Ok(())
}

/// Create a concert-tour table `Concerts(concertId, city, day)` for the
/// introduction's Coldplay-fans scenario (Example 2).
pub fn concert_tour(db: &mut Database, stops: &[(&str, i64)]) -> Result<(), DbError> {
    db.create_table("Concerts", &["concertId", "city", "day"])?;
    for (i, &(city, day)) in stops.iter().enumerate() {
        db.insert(
            "Concerts",
            vec![Value::int(i as i64), Value::str(city), Value::int(day)],
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flights_simple_schema() {
        let mut db = Database::new();
        flights_simple(&mut db, &[(101, "Zurich")]).unwrap();
        let t = db.table_named("Flights").unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.schema().attr_index("destination"), Some(1));
    }

    #[test]
    fn coordination_flights_unique_pairs() {
        let mut db = Database::new();
        flights_coordination(&mut db, "Fl", 200, true).unwrap();
        let t = db.table_named("Fl").unwrap();
        assert_eq!(t.len(), 200);
        // Unique (dest, day): projecting both gives 200 distinct values.
        let pairs = t.distinct_project(&[1, 2], &[]);
        assert_eq!(pairs.len(), 200);
    }

    #[test]
    fn coordination_flights_cycled_pairs() {
        let mut db = Database::new();
        flights_coordination(&mut db, "Fl", 100, false).unwrap();
        let t = db.table_named("Fl").unwrap();
        let pairs = t.distinct_project(&[1, 2], &[]);
        // 10 destinations × 10 days = 100 combinations for 100 rows, but
        // each (dest, day) appears exactly once here by construction
        // (i%10, i/10 is a bijection on 0..100).
        assert_eq!(pairs.len(), 100);
        // The destination pool is small, though:
        assert_eq!(t.distinct_count(1), 10);
    }

    #[test]
    fn cinemas_match_the_paper() {
        let mut db = Database::new();
        cinemas_example(&mut db).unwrap();
        let t = db.table_named("M").unwrap();
        assert_eq!(t.len(), 5);
        let hugo_rows = t.distinct_project(&[1], &[(2, Value::str("Hugo"))]);
        assert_eq!(hugo_rows.len(), 3);
    }

    #[test]
    fn activity_pool_buckets_are_square_root_sized() {
        let mut db = Database::new();
        let rows = 400;
        let k = activity_pool(&mut db, "A", rows).unwrap();
        assert_eq!(k, 20);
        let t = db.table_named("A").unwrap();
        assert_eq!(t.len(), rows);
        // √N topics, √N days, and each (topic, day) pair is unique.
        assert_eq!(t.distinct_count(1), k);
        assert_eq!(t.distinct_count(2), rows / k);
        assert_eq!(t.lookup(1, &Value::str("g3")).len(), rows / k);
        assert_eq!(
            t.distinct_project(&[0], &[(1, Value::str("g3")), (2, Value::int(0))])
                .len(),
            1
        );
    }

    #[test]
    fn concert_tour_rows() {
        let mut db = Database::new();
        concert_tour(&mut db, &[("Paris", 10), ("Zurich", 12)]).unwrap();
        assert_eq!(db.table_named("Concerts").unwrap().len(), 2);
    }
}
