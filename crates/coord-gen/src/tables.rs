//! Domain tables for the examples and the Consistent-algorithm
//! experiments: flights, hotels, cinemas, concerts.

use coord_db::{Database, DbError, Value};

/// Create `Flights(flightId, destination)` with the given
/// (id, destination) rows — the Section 2 schema.
pub fn flights_simple(db: &mut Database, rows: &[(i64, &str)]) -> Result<(), DbError> {
    db.create_table("Flights", &["flightId", "destination"])?;
    for &(id, dest) in rows {
        db.insert("Flights", vec![Value::int(id), Value::str(dest)])?;
    }
    Ok(())
}

/// Create the Section 6.2 flights table
/// `Flights(flightId, destination, day, source, airline)`.
///
/// * `unique_pairs = true` (Figure 7 setting): every row gets a distinct
///   (destination, day) combination, so the number of coordination
///   options equals the row count.
/// * `unique_pairs = false` (Figure 8 setting): destinations and days
///   cycle over small pools, capping the option count.
pub fn flights_coordination(
    db: &mut Database,
    name: &str,
    rows: usize,
    unique_pairs: bool,
) -> Result<(), DbError> {
    db.create_table(
        name,
        &["flightId", "destination", "day", "source", "airline"],
    )?;
    for i in 0..rows {
        let (dest, day) = if unique_pairs {
            (format!("city{i}"), i as i64)
        } else {
            (format!("city{}", i % 10), (i / 10) as i64)
        };
        db.insert(
            name,
            vec![
                Value::int(i as i64),
                Value::str(dest),
                Value::int(day),
                Value::str(format!("src{}", i % 5)),
                Value::str(format!("air{}", i % 3)),
            ],
        )?;
    }
    Ok(())
}

/// Create `Hotels(hotelId, location)`.
pub fn hotels(db: &mut Database, rows: &[(i64, &str)]) -> Result<(), DbError> {
    db.create_table("Hotels", &["hotelId", "location"])?;
    for &(id, loc) in rows {
        db.insert("Hotels", vec![Value::int(id), Value::str(loc)])?;
    }
    Ok(())
}

/// Create the movies-example cinemas table `M(movie_id, cinema, movie)`
/// (Section 5): Hugo plays at Regal, AMC and Cinemark; Contagion at
/// Regal; Project X at AMC.
pub fn cinemas_example(db: &mut Database) -> Result<(), DbError> {
    db.create_table("M", &["movie_id", "cinema", "movie"])?;
    let rows = [
        (1, "Regal", "Contagion"),
        (2, "Regal", "Hugo"),
        (3, "AMC", "Project X"),
        (4, "AMC", "Hugo"),
        (5, "Cinemark", "Hugo"),
    ];
    for (id, cinema, movie) in rows {
        db.insert(
            "M",
            vec![Value::int(id), Value::str(cinema), Value::str(movie)],
        )?;
    }
    Ok(())
}

/// Create a concert-tour table `Concerts(concertId, city, day)` for the
/// introduction's Coldplay-fans scenario (Example 2).
pub fn concert_tour(db: &mut Database, stops: &[(&str, i64)]) -> Result<(), DbError> {
    db.create_table("Concerts", &["concertId", "city", "day"])?;
    for (i, &(city, day)) in stops.iter().enumerate() {
        db.insert(
            "Concerts",
            vec![Value::int(i as i64), Value::str(city), Value::int(day)],
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flights_simple_schema() {
        let mut db = Database::new();
        flights_simple(&mut db, &[(101, "Zurich")]).unwrap();
        let t = db.table_named("Flights").unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.schema().attr_index("destination"), Some(1));
    }

    #[test]
    fn coordination_flights_unique_pairs() {
        let mut db = Database::new();
        flights_coordination(&mut db, "Fl", 200, true).unwrap();
        let t = db.table_named("Fl").unwrap();
        assert_eq!(t.len(), 200);
        // Unique (dest, day): projecting both gives 200 distinct values.
        let pairs = t.distinct_project(&[1, 2], &[]);
        assert_eq!(pairs.len(), 200);
    }

    #[test]
    fn coordination_flights_cycled_pairs() {
        let mut db = Database::new();
        flights_coordination(&mut db, "Fl", 100, false).unwrap();
        let t = db.table_named("Fl").unwrap();
        let pairs = t.distinct_project(&[1, 2], &[]);
        // 10 destinations × 10 days = 100 combinations for 100 rows, but
        // each (dest, day) appears exactly once here by construction
        // (i%10, i/10 is a bijection on 0..100).
        assert_eq!(pairs.len(), 100);
        // The destination pool is small, though:
        assert_eq!(t.distinct_count(1), 10);
    }

    #[test]
    fn cinemas_match_the_paper() {
        let mut db = Database::new();
        cinemas_example(&mut db).unwrap();
        let t = db.table_named("M").unwrap();
        assert_eq!(t.len(), 5);
        let hugo_rows = t.distinct_project(&[1], &[(2, Value::str("Hugo"))]);
        assert_eq!(hugo_rows.len(), 3);
    }

    #[test]
    fn concert_tour_rows() {
        let mut db = Database::new();
        concert_tour(&mut db, &[("Paris", 10), ("Zurich", 12)]).unwrap();
        assert_eq!(db.table_named("Concerts").unwrap().len(), 2);
    }
}
