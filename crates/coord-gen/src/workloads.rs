//! Per-figure experiment instances (Section 6).

use crate::networks::barabasi_albert;
use crate::social::{complete_friendship_table, tag_for, tuple_pool, user_name};
use crate::tables::{activity_pool, activity_topic_count, flights_coordination};
use coord_core::consistent::{ConsistentConfig, ConsistentQuery};
use coord_core::{EntangledQuery, QueryBuilder};
use coord_db::{BackendKind, Database};
use coord_graph::{DiGraph, NodeId};
use rand::prelude::*;

/// Name of the tuple-pool table used by the SCC-algorithm workloads.
pub const POOL_TABLE: &str = "S";

/// Build the query of user `i` whose coordination partners are `partners`
/// (all in the list/scale-free workload family):
///
/// ```text
/// q_i = {R(u_p, y_p) : p ∈ partners}  R(u_i, x)  :-  S(x, t_i)
/// ```
///
/// The body selects exactly one pool tuple, so every body is satisfiable
/// — the paper's "most demanding scenario for finding a coordinating
/// set". Safety holds because each user has exactly one head `R(u_i, ·)`.
pub fn partner_query(i: usize, partners: &[usize]) -> EntangledQuery {
    let mut b = QueryBuilder::new(format!("q{i}"));
    for &p in partners {
        let y = format!("y{p}");
        b = b.postcondition("R", |a| a.constant(user_name(p)).var(&y));
    }
    b.head("R", |a| a.constant(user_name(i)).var("x"))
        .body(POOL_TABLE, |a| a.var("x").constant(tag_for(i)))
        .build()
        .expect("workload query is well-formed")
}

/// A [`partner_query`] variant whose postconditions *contend* on the
/// head variable:
///
/// ```text
/// c_i = {R(u_p, x) : p ∈ partners}  R(u_i, x)  :-  S(x, t_i)
/// ```
///
/// A cycle of these unifies every member's `x` into one class, so the
/// combined body demands one pool tuple carrying every member's tag —
/// unsatisfiable for cycles of length ≥ 2 (pool tags are per-user
/// distinct). The grounding *fails* rather than the unification, which
/// makes such cycles exercise the cached-failure path of the
/// differential layer: the verdict costs one database query the first
/// time and none afterwards.
pub fn contending_partner_query(i: usize, partners: &[usize]) -> EntangledQuery {
    let mut b = QueryBuilder::new(format!("c{i}"));
    for &p in partners {
        b = b.postcondition("R", |a| a.constant(user_name(p)).var("x"));
    }
    b.head("R", |a| a.constant(user_name(i)).var("x"))
        .body(POOL_TABLE, |a| a.var("x").constant(tag_for(i)))
        .build()
        .expect("workload query is well-formed")
}

/// An unsatisfiable-core workload for the cross-run closure cache: a
/// [`contending_partner_query`] cycle of `k` members (one SCC whose
/// grounding always fails; pick `k` above the engine's small-component
/// cutoff so the SCC path runs) plus `spokes` independent
/// [`partner_query`] chains of length 2 hanging off users
/// `k, k+1, …` — each spoke requires a cycle member, so every spoke
/// submit re-confronts the engine with the same failed cycle closure.
/// Returns `(cycle, spokes)` in arrival order.
pub fn unsat_cycle_with_spokes(
    k: usize,
    spokes: usize,
) -> (Vec<EntangledQuery>, Vec<EntangledQuery>) {
    let cycle: Vec<EntangledQuery> = (0..k)
        .map(|i| contending_partner_query(i, &[(i + 1) % k]))
        .collect();
    let spoke_queries: Vec<EntangledQuery> =
        (0..spokes).map(|s| partner_query(k + s, &[0])).collect();
    (cycle, spoke_queries)
}

/// A database holding just the tuple-pool table with `rows` rows —
/// build once and share across workload sizes (the table is the same for
/// every point of Figures 4–6).
pub fn pool_db(rows: usize) -> Database {
    let mut db = Database::new();
    tuple_pool(&mut db, POOL_TABLE, rows).expect("pool table");
    db
}

/// Name of the Slashdot-scale activity table used by the storage
/// workloads.
pub const ACTIVITY_TABLE: &str = "A";

/// A database holding only the [`activity_pool`] table `A(id, topic,
/// day)` with `rows` rows, every table created with the given storage
/// backend.
pub fn activity_db(rows: usize, kind: BackendKind) -> Database {
    let mut db = Database::with_backend(kind);
    activity_pool(&mut db, ACTIVITY_TABLE, rows).expect("activity table");
    db
}

/// A [`partner_query`] variant over the activity table: user `i`'s body
/// pins both the topic *and* the day of activity row `r = rows − 1 − i`,
///
/// ```text
/// q_i = {R(u_p, y_p) : p ∈ partners}  R(u_i, x)  :-  A(x, g_{r%k}, r/k)
/// ```
///
/// where `k = ⌈√rows⌉` matches the pool built by [`activity_db`]. The
/// two body constants select exactly one row, but any *single*-column
/// index bucket for either constant holds ≈√rows rows — and because `r`
/// is the *largest* row id in its topic bucket (for `i < k`), a
/// single-column scan walks the whole bucket before matching instead of
/// stopping at its first candidate. Per-submit probe work therefore
/// grows with √N on the plain row store and stays flat once a composite
/// (topic, day) index is active.
pub fn activity_partner_query(i: usize, partners: &[usize], rows: usize) -> EntangledQuery {
    assert!(i < rows, "user id {i} needs an activity row to target");
    let r = rows - 1 - i;
    let k = activity_topic_count(rows);
    let mut b = QueryBuilder::new(format!("q{i}"));
    for &p in partners {
        let y = format!("y{p}");
        b = b.postcondition("R", |a| a.constant(user_name(p)).var(&y));
    }
    b.head("R", |a| a.constant(user_name(i)).var("x"))
        .body(ACTIVITY_TABLE, |a| {
            a.var("x")
                .constant(format!("g{}", r % k))
                .constant((r / k) as i64)
        })
        .build()
        .expect("workload query is well-formed")
}

/// The Figure 4 list structure over the activity table: each query
/// coordinates with the next, the last requires nobody. Pair with
/// [`activity_db`]`(rows, kind)` for the storage-backend experiments.
pub fn activity_chain_queries(n: usize, rows: usize) -> Vec<EntangledQuery> {
    (0..n)
        .map(|i| {
            let partners: Vec<usize> = if i + 1 < n { vec![i + 1] } else { vec![] };
            activity_partner_query(i, &partners, rows)
        })
        .collect()
}

/// The Figure 4 list-structure queries: each query coordinates with the
/// next, the last requires nobody.
pub fn fig4_queries(n: usize) -> Vec<EntangledQuery> {
    (0..n)
        .map(|i| {
            let partners: Vec<usize> = if i + 1 < n { vec![i + 1] } else { vec![] };
            partner_query(i, &partners)
        })
        .collect()
}

/// Figure 4 instance: `n` queries in a list structure over a pool table
/// of `table_rows` tuples (82,168 in the paper).
pub fn fig4_instance(n: usize, table_rows: usize) -> (Database, Vec<EntangledQuery>) {
    (pool_db(table_rows.max(n)), fig4_queries(n))
}

/// The Figure 5/6 scale-free queries: coordination partners are the
/// successors in a Barabási–Albert digraph.
pub fn fig5_queries(n: usize, m_attach: usize, rng: &mut impl Rng) -> Vec<EntangledQuery> {
    queries_from_graph(&barabasi_albert(n, m_attach, rng))
}

/// Figure 5/6 instance: `n` queries whose coordination structure is a
/// Barabási–Albert scale-free digraph (each query's partners are its
/// graph successors).
pub fn fig5_instance(
    n: usize,
    m_attach: usize,
    table_rows: usize,
    rng: &mut impl Rng,
) -> (Database, Vec<EntangledQuery>) {
    (pool_db(table_rows.max(n)), fig5_queries(n, m_attach, rng))
}

/// Build partner queries from an arbitrary coordination digraph.
pub fn queries_from_graph(graph: &DiGraph<usize>) -> Vec<EntangledQuery> {
    (0..graph.node_count())
        .map(|i| {
            let mut partners: Vec<usize> = graph
                .successors(NodeId(i))
                .map(coord_graph::NodeId::index)
                .collect();
            partners.sort_unstable();
            partners.dedup();
            partner_query(i, &partners)
        })
        .collect()
}

/// A Zipf keystone-chain workload for the shard-skew experiments: `G`
/// open partner chains whose sizes follow a Zipf law with exponent ½
/// (`size_g = K / √(g+1)`, floored at 1) — one hot group, a heavy tail.
pub struct SkewWorkload {
    /// Phase 1 in arrival order: the chains' members, randomly
    /// interleaved with intra-group order preserved. Every member
    /// requires its successor and the keystone is withheld, so nothing
    /// coordinates.
    pub phase1: Vec<EntangledQuery>,
    /// Phase 2: one free keystone per group, closing its chain.
    pub keystones: Vec<EntangledQuery>,
    /// Per-group chain sizes (keystones excluded).
    pub sizes: Vec<usize>,
}

/// Zipf(½) group sizes: `K / √(g+1)`, floored at 1.
pub fn zipf_sizes(groups: usize, k: usize) -> Vec<usize> {
    (0..groups)
        .map(|g| ((k as f64) / ((g + 1) as f64).sqrt()).round().max(1.0) as usize)
        .collect()
}

/// Randomly interleave the groups' members into one arrival order,
/// preserving each group's internal order (so chains arrive head
/// first). Deterministic for a fixed seed.
pub fn interleave_arrivals(groups: Vec<Vec<EntangledQuery>>, seed: u64) -> Vec<EntangledQuery> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut queues: Vec<std::collections::VecDeque<EntangledQuery>> =
        groups.into_iter().map(Into::into).collect();
    let mut order = Vec::new();
    while queues.iter().any(|q| !q.is_empty()) {
        let pick = rng.random_range(0..queues.len());
        if let Some(q) = queues[pick].pop_front() {
            order.push(q);
        }
    }
    order
}

/// Build the skew workload: group `g` occupies user ids
/// `100·g .. 100·g + size_g` with its keystone at `100·g + size_g`
/// (size the pool table for `100·groups + k + 2` ids).
pub fn zipf_chain_workload(groups: usize, k: usize, seed: u64) -> SkewWorkload {
    // Group id ranges are strided at 100: a hot-group size reaching the
    // stride would make chains cross-entangle and the workload's
    // "independent groups" premise silently fail.
    assert!(k < 100, "hot-group size {k} must stay below the id stride");
    let sizes = zipf_sizes(groups, k);
    let chains: Vec<Vec<EntangledQuery>> = sizes
        .iter()
        .enumerate()
        .map(|(g, &n)| {
            (0..n)
                .map(|i| partner_query(100 * g + i, &[100 * g + i + 1]))
                .collect()
        })
        .collect();
    let keystones = sizes
        .iter()
        .enumerate()
        .map(|(g, &n)| partner_query(100 * g + n, &[]))
        .collect();
    SkewWorkload {
        phase1: interleave_arrivals(chains, seed),
        keystones,
        sizes,
    }
}

/// The flights schema-binding shared by the Figure 7–8 experiments:
/// coordinate on (destination, day), personal attributes (source,
/// airline).
pub fn flights_config() -> ConsistentConfig {
    ConsistentConfig::new(
        "Fl",
        "flightId",
        &["destination", "day"],
        &["source", "airline"],
        "Fr",
    )
}

/// Figure 7 instance: `n_queries` fully unconstrained queries (every
/// user coordinates with any friend, "don't care" on every attribute)
/// over a flights table with `flight_rows` rows, **all distinct**
/// (destination, day) pairs, and a complete friendship graph — the
/// worst case: nothing is ever pruned and every value is an option.
pub fn fig7_instance(
    n_queries: usize,
    flight_rows: usize,
) -> (Database, ConsistentConfig, Vec<ConsistentQuery>) {
    let mut db = Database::new();
    flights_coordination(&mut db, "Fl", flight_rows, true).expect("flights");
    complete_friendship_table(&mut db, "Fr", n_queries).expect("friends");
    let queries = worst_case_consistent_queries(n_queries);
    (db, flights_config(), queries)
}

/// Figure 8 instance: flights table fixed at `flight_rows` (100 in the
/// paper) rows with distinct (destination, day) combinations; the query
/// count varies.
pub fn fig8_instance(
    n_queries: usize,
    flight_rows: usize,
) -> (Database, ConsistentConfig, Vec<ConsistentQuery>) {
    let mut db = Database::new();
    flights_coordination(&mut db, "Fl", flight_rows, false).expect("flights");
    complete_friendship_table(&mut db, "Fr", n_queries).expect("friends");
    let queries = worst_case_consistent_queries(n_queries);
    (db, flights_config(), queries)
}

/// `n` queries with a single any-friend partner and no attribute
/// constraints: "all the queries are such that every tuple in the DB
/// satisfies them, which is the worst case for our algorithm".
pub fn worst_case_consistent_queries(n: usize) -> Vec<ConsistentQuery> {
    (0..n)
        .map(|i| ConsistentQuery::for_user(user_name(i), 2, 2).with_any_friend())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use coord_core::consistent::ConsistentCoordinator;
    use coord_core::graphs::{is_safe, is_unique};
    use coord_core::scc::SccCoordinator;
    use coord_core::QuerySet;

    #[test]
    fn fig4_chain_is_safe_not_unique_and_fully_coordinates() {
        let (db, queries) = fig4_instance(10, 100);
        let qs = QuerySet::new(queries.clone());
        assert!(is_safe(&qs));
        assert!(!is_unique(&qs), "the list structure is non-unique");
        let out = SccCoordinator::new(&db).run(&queries).unwrap();
        // Every suffix of the chain is a candidate; the whole chain wins.
        assert_eq!(out.found.len(), 10);
        assert_eq!(out.best().unwrap().len(), 10);
        assert_eq!(out.stats.db_queries, 10);
    }

    #[test]
    fn fig5_scale_free_coordinates_everyone() {
        let mut rng = StdRng::seed_from_u64(21);
        let (db, queries) = fig5_instance(40, 2, 100, &mut rng);
        let qs = QuerySet::new(queries.clone());
        assert!(is_safe(&qs));
        let out = SccCoordinator::new(&db).run(&queries).unwrap();
        // All bodies satisfiable and all postconditions matched: the
        // closure of any source node coordinates; the best covers at
        // least the largest closure. With seeds having no out-edges,
        // singleton seeds always coordinate.
        assert!(out.best().is_some());
        assert!(out.stats.db_queries <= out.stats.components);
    }

    #[test]
    fn fig7_every_value_survives_cleaning() {
        let (db, config, queries) = fig7_instance(8, 25);
        let coord = ConsistentCoordinator::new(&db, config).unwrap();
        let out = coord.run(&queries).unwrap();
        // Worst case: 25 distinct values, none prunable; with a complete
        // friendship graph every query survives at every value.
        assert_eq!(out.stats.values_considered, 25);
        assert!(out.per_value.iter().all(|(_, size)| *size == 8));
        assert_eq!(out.best.as_ref().unwrap().members.len(), 8);
    }

    #[test]
    fn fig8_option_count_is_capped_by_table() {
        let (db, config, queries) = fig8_instance(12, 100);
        let coord = ConsistentCoordinator::new(&db, config).unwrap();
        let out = coord.run(&queries).unwrap();
        assert_eq!(out.stats.values_considered, 100);
        assert_eq!(out.best.as_ref().unwrap().members.len(), 12);
    }

    #[test]
    fn activity_chain_coordinates_on_every_backend() {
        let rows = 10_000; // k = 100: single-column buckets of 100 rows
        let n = 12;
        let queries = activity_chain_queries(n, rows);
        let mut per_backend = Vec::new();
        for kind in BackendKind::ALL {
            let db = activity_db(rows, kind);
            let out = SccCoordinator::new(&db).run(&queries).unwrap();
            assert_eq!(out.found.len(), n, "backend {}", kind.name());
            per_backend.push(out.best().unwrap().len());
        }
        assert!(per_backend.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn partner_query_shape() {
        let q = partner_query(3, &[5, 7]);
        assert_eq!(q.postconditions().len(), 2);
        assert_eq!(q.heads().len(), 1);
        assert_eq!(q.body().len(), 1);
        assert_eq!(q.name(), "q3");
    }

    #[test]
    fn contending_cycle_is_safe_but_never_coordinates() {
        let (cycle, spokes) = unsat_cycle_with_spokes(7, 2);
        assert_eq!(cycle.len(), 7);
        assert_eq!(spokes.len(), 2);
        let all: Vec<_> = cycle.iter().chain(spokes.iter()).cloned().collect();
        let qs = QuerySet::new(all.clone());
        assert!(is_safe(&qs));
        let db = pool_db(100);
        let out = SccCoordinator::new(&db).run(&all).unwrap();
        // The cycle's head variables all unify into one class, so its
        // combined body asks for a single pool tuple with seven distinct
        // tags: grounding fails, and the spokes fail with it.
        assert!(out.found.is_empty());
        // The failure costs exactly one database probe (the cycle SCC);
        // spokes fail by propagation without touching the database.
        assert_eq!(out.stats.db_queries, 1);
    }
}
