//! Directed social-network topologies.

use coord_graph::{DiGraph, NodeId};
use rand::prelude::*;

/// Barabási–Albert preferential-attachment digraph (the paper's model for
/// the Figure 5–6 coordination structures, citing Barabási & Albert
/// 1999).
///
/// Starts from `m` seed nodes; every new node attaches `m` out-edges to
/// distinct existing nodes, chosen proportionally to (in-degree + 1). The
/// result has the power-law in-degree distribution the paper calls "a
/// reasonable model of social networks": few high-in-degree hubs, many
/// low-in-degree nodes.
pub fn barabasi_albert(n: usize, m: usize, rng: &mut impl Rng) -> DiGraph<usize> {
    assert!(m >= 1, "attachment count must be positive");
    let mut g: DiGraph<usize> = DiGraph::with_capacity(n, n.saturating_mul(m));
    for i in 0..n {
        g.add_node(i);
    }
    if n == 0 {
        return g;
    }

    // Repeated-node list for preferential attachment: node `v` appears
    // (in_degree(v) + 1) times.
    let seed = m.min(n);
    let mut pool: Vec<usize> = (0..seed).collect();

    for v in seed..n {
        let mut targets: Vec<usize> = Vec::with_capacity(m);
        // Sample m distinct targets (bounded retries, then fall back to
        // any not-yet-chosen node to guarantee progress).
        while targets.len() < m.min(v) {
            let candidate = pool[rng.random_range(0..pool.len())];
            if !targets.contains(&candidate) {
                targets.push(candidate);
            }
        }
        for &t in &targets {
            g.add_edge(NodeId(v), NodeId(t), ());
            pool.push(t);
        }
        pool.push(v);
    }
    g
}

/// Erdős–Rényi `G(n, p)` digraph (control topology for ablations).
pub fn erdos_renyi(n: usize, p: f64, rng: &mut impl Rng) -> DiGraph<usize> {
    let mut g: DiGraph<usize> = DiGraph::with_capacity(n, 0);
    for i in 0..n {
        g.add_node(i);
    }
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.random_bool(p) {
                g.add_edge(NodeId(u), NodeId(v), ());
            }
        }
    }
    g
}

/// A directed chain `0 → 1 → ... → n-1` (the Figure 4 list structure:
/// each query coordinates with the next, the last is free).
pub fn chain(n: usize) -> DiGraph<usize> {
    let mut g: DiGraph<usize> = DiGraph::with_capacity(n, n.saturating_sub(1));
    for i in 0..n {
        g.add_node(i);
    }
    for i in 0..n.saturating_sub(1) {
        g.add_edge(NodeId(i), NodeId(i + 1), ());
    }
    g
}

/// A complete digraph (everyone coordinates with everyone; the paper's
/// "complete friendship graph" used by the Figure 7–8 experiments).
pub fn complete(n: usize) -> DiGraph<usize> {
    let mut g: DiGraph<usize> = DiGraph::with_capacity(n, n.saturating_mul(n.saturating_sub(1)));
    for i in 0..n {
        g.add_node(i);
    }
    for u in 0..n {
        for v in 0..n {
            if u != v {
                g.add_edge(NodeId(u), NodeId(v), ());
            }
        }
    }
    g
}

/// A star: spokes `1..n` all point at hub `0`.
pub fn star(n: usize) -> DiGraph<usize> {
    let mut g: DiGraph<usize> = DiGraph::with_capacity(n, n.saturating_sub(1));
    for i in 0..n {
        g.add_node(i);
    }
    for i in 1..n {
        g.add_edge(NodeId(i), NodeId(0), ());
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ba_shape() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = barabasi_albert(100, 3, &mut rng);
        assert_eq!(g.node_count(), 100);
        // Every non-seed node has out-degree min(m, v).
        for v in 3..100 {
            assert_eq!(g.out_degree(NodeId(v)), 3);
        }
        // Seed nodes have no out-edges.
        for v in 0..3 {
            assert_eq!(g.out_degree(NodeId(v)), 0);
        }
    }

    #[test]
    fn ba_prefers_high_degree_nodes() {
        // The max in-degree should far exceed the mean for a large graph —
        // the hub signature of scale-free networks.
        let mut rng = StdRng::seed_from_u64(6);
        let g = barabasi_albert(2000, 2, &mut rng);
        let max_in = (0..2000).map(|v| g.in_degree(NodeId(v))).max().unwrap();
        let mean_in = g.edge_count() as f64 / 2000.0;
        assert!(
            (max_in as f64) > 10.0 * mean_in,
            "max {max_in} vs mean {mean_in}"
        );
    }

    #[test]
    fn ba_no_duplicate_targets_per_node() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = barabasi_albert(200, 4, &mut rng);
        for v in 0..200 {
            let mut succ: Vec<usize> = g
                .successors(NodeId(v))
                .map(coord_graph::NodeId::index)
                .collect();
            let before = succ.len();
            succ.sort_unstable();
            succ.dedup();
            assert_eq!(succ.len(), before, "node {v} has duplicate out-edges");
        }
    }

    #[test]
    fn ba_deterministic_for_seed() {
        let g1 = barabasi_albert(50, 2, &mut StdRng::seed_from_u64(1));
        let g2 = barabasi_albert(50, 2, &mut StdRng::seed_from_u64(1));
        assert_eq!(g1.edge_count(), g2.edge_count());
        for e in g1.edge_ids() {
            assert_eq!(g1.endpoints(e), g2.endpoints(e));
        }
    }

    #[test]
    fn chain_complete_star_shapes() {
        let c = chain(5);
        assert_eq!(c.edge_count(), 4);
        assert_eq!(c.out_degree(NodeId(4)), 0);

        let k = complete(4);
        assert_eq!(k.edge_count(), 12);

        let s = star(6);
        assert_eq!(s.edge_count(), 5);
        assert_eq!(s.in_degree(NodeId(0)), 5);
    }

    #[test]
    fn er_edge_probability_reasonable() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = erdos_renyi(60, 0.1, &mut rng);
        let expected = 60.0 * 59.0 * 0.1;
        let actual = g.edge_count() as f64;
        assert!((actual - expected).abs() < expected * 0.5);
    }

    #[test]
    fn degenerate_sizes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert_eq!(barabasi_albert(0, 2, &mut rng).node_count(), 0);
        assert_eq!(barabasi_albert(1, 2, &mut rng).edge_count(), 0);
        assert_eq!(chain(0).node_count(), 0);
        assert_eq!(chain(1).edge_count(), 0);
        assert_eq!(complete(1).edge_count(), 0);
        assert_eq!(star(1).edge_count(), 0);
    }
}
