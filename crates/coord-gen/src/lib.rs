//! # coord-gen — network, table, and workload generators
//!
//! Everything the Section 6 experiments need that isn't an algorithm:
//!
//! * [`networks`] — directed social-network topologies: the
//!   Barabási–Albert scale-free model the paper uses for Figures 5–6
//!   (citing the paper's reference \[1\]), plus chains, stars, complete graphs and Erdős–Rényi
//!   controls,
//! * [`social`] — a synthetic stand-in for the Slashdot social-network
//!   table (82,168 entries) used by the SCC-algorithm experiments; the
//!   real trace is not redistributable, and the paper uses it only as a
//!   pool of queryable tuples, so a size-matched synthetic table preserves
//!   the measured behaviour,
//! * [`tables`] — flights/hotels/movies/concerts tables for the examples
//!   and the Consistent-algorithm experiments,
//! * [`workloads`] — per-figure instance builders (`fig4_instance`, ...).

#![forbid(unsafe_code)]

pub mod networks;
pub mod social;
pub mod tables;
pub mod workloads;
