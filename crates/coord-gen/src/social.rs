//! Synthetic social-network tables.
//!
//! The paper's SCC-algorithm experiments query "the Slashdot social
//! network data \[with\] 82,168 entries". That trace is a fixed artifact we
//! do not redistribute; the experiments use it purely as a realistic pool
//! of queryable tuples (every query body is simple and guaranteed to
//! match at least one row). A size-matched synthetic table therefore
//! preserves everything the measurement depends on: row count, per-column
//! index behaviour, and guaranteed body satisfiability.

use coord_db::{Database, DbError, Value};
use coord_graph::DiGraph;
use rand::prelude::*;

/// Row count of the paper's Slashdot table.
pub const SLASHDOT_ROWS: usize = 82_168;

/// Create `name(id, tag)` with `rows` tuples. Row `i` is `(i, "t<i>")`,
/// so the constant `tag_for(i)` selects exactly one row — "we make sure
/// that for each body there is at least one tuple satisfying it".
pub fn tuple_pool(db: &mut Database, name: &str, rows: usize) -> Result<(), DbError> {
    db.create_table(name, &["id", "tag"])?;
    for i in 0..rows {
        db.insert(name, vec![Value::int(i as i64), Value::str(tag_for(i))])?;
    }
    Ok(())
}

/// The tag constant selecting row `i` of a [`tuple_pool`] table.
pub fn tag_for(i: usize) -> String {
    format!("t{i}")
}

/// Create a friendship table `name(user, friend)` from the edges of a
/// directed graph, mapping node `i` to user name `"u<i>"`.
pub fn friendship_table_from_graph(
    db: &mut Database,
    name: &str,
    graph: &DiGraph<usize>,
) -> Result<(), DbError> {
    db.create_table(name, &["user", "friend"])?;
    for e in graph.edge_ids() {
        let (u, v) = graph.endpoints(e);
        db.insert(
            name,
            vec![
                Value::str(user_name(u.index())),
                Value::str(user_name(v.index())),
            ],
        )?;
    }
    Ok(())
}

/// Create a complete friendship table over `n` users (the Figure 7–8
/// setting: "the Friends table encodes a complete friendship graph").
pub fn complete_friendship_table(db: &mut Database, name: &str, n: usize) -> Result<(), DbError> {
    db.create_table(name, &["user", "friend"])?;
    for u in 0..n {
        for v in 0..n {
            if u != v {
                db.insert(
                    name,
                    vec![Value::str(user_name(u)), Value::str(user_name(v))],
                )?;
            }
        }
    }
    Ok(())
}

/// Canonical synthetic user name for index `i`.
pub fn user_name(i: usize) -> String {
    format!("u{i}")
}

/// A Slashdot-sized friendship table: a Barabási–Albert graph whose edge
/// count approximates the original's 82,168 entries.
pub fn slashdot_like(db: &mut Database, name: &str, rng: &mut impl Rng) -> Result<usize, DbError> {
    // m = 10 out-edges per node ⇒ n ≈ rows / 10 nodes.
    let m = 10;
    let n = SLASHDOT_ROWS / m + m;
    let g = super::networks::barabasi_albert(n, m, rng);
    friendship_table_from_graph(db, name, &g)?;
    Ok(db.table_named(name)?.len())
}

/// Friends of `user` according to a friendship table (test helper).
pub fn friends_in_table(db: &Database, name: &str, user: &str) -> Vec<String> {
    let table = db.table_named(name).expect("friendship table exists");
    let rows = table.distinct_project(&[1], &[(0, Value::str(user))]);
    rows.into_iter()
        .filter_map(|mut r| r.swap_remove(0).as_str().map(str::to_string))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_pool_rows_are_selectable() {
        let mut db = Database::new();
        tuple_pool(&mut db, "S", 100).unwrap();
        let t = db.table_named("S").unwrap();
        assert_eq!(t.len(), 100);
        // Each tag selects exactly one row.
        assert_eq!(t.lookup(1, &Value::str(tag_for(42))).len(), 1);
    }

    #[test]
    fn friendship_from_graph() {
        let mut db = Database::new();
        let g = super::super::networks::chain(4);
        friendship_table_from_graph(&mut db, "F", &g).unwrap();
        assert_eq!(db.table_named("F").unwrap().len(), 3);
        assert_eq!(friends_in_table(&db, "F", "u0"), vec!["u1"]);
    }

    #[test]
    fn complete_friendships() {
        let mut db = Database::new();
        complete_friendship_table(&mut db, "F", 5).unwrap();
        assert_eq!(db.table_named("F").unwrap().len(), 20);
        let mut f = friends_in_table(&db, "F", "u2");
        f.sort();
        assert_eq!(f, vec!["u0", "u1", "u3", "u4"]);
    }

    #[test]
    fn slashdot_like_size_is_close() {
        let mut db = Database::new();
        let mut rng = StdRng::seed_from_u64(3);
        let rows = slashdot_like(&mut db, "Slash", &mut rng).unwrap();
        let err = (rows as f64 - SLASHDOT_ROWS as f64).abs() / SLASHDOT_ROWS as f64;
        assert!(err < 0.05, "got {rows} rows, want ≈ {SLASHDOT_ROWS}");
    }
}
