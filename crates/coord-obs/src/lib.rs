//! Observability substrate for the coordination stack: a metrics
//! registry (atomic counters, gauges, log-bucketed latency histograms),
//! a span-style event tracer over a fixed-capacity ring buffer, and
//! JSON / Prometheus-text exporters. Pure `std`, no dependencies — the
//! crate sits below every runtime crate in the workspace DAG.
//!
//! # Overhead model
//!
//! Recording must be safe to leave on in production, so every hot-path
//! cost is explicit:
//!
//! * **Counters** ([`Counter`], [`Gauge`]) are always live: one relaxed
//!   `fetch_add` per event, exactly what the engine's pre-registry
//!   ad-hoc atomics cost. Registration only makes them visible to
//!   [`Registry::snapshot`]; an unregistered counter still counts.
//! * **Histograms** ([`Histogram`]) record with a `leading_zeros` plus
//!   four relaxed atomic RMWs (bucket, count, sum, max) — lock-free, no
//!   allocation. A histogram handed out by a *disabled* registry holds
//!   no storage: `record` is a single branch on a `None`, and
//!   [`Histogram::start`] skips the `Instant::now()` clock read
//!   entirely, so instrumented code compiles to near-zero cost.
//! * **The tracer** ([`Tracer`]) pushes fixed-size events (no strings
//!   beyond a `&'static str` kind) into a preallocated ring under a
//!   short mutex critical section — two clock reads and one push per
//!   span. Disabled, every call is a branch on a `None`. When the ring
//!   is full the oldest event is overwritten and counted in `dropped`;
//!   sequence numbers make the gap visible in a dump, never silent.
//! * **Snapshots and exporters** are cold paths: they lock the
//!   registration maps and copy, never blocking a recorder.
//!
//! The CI `online_throughput --quick` gate holds the enabled-vs-disabled
//! submit-throughput delta within 5%.
//!
//! # Reading a trace dump
//!
//! [`Tracer::dump_json_lines`] emits one meta line (`events`, `dropped`)
//! followed by one JSON object per event: `seq` (gap-free unless events
//! were dropped), `at_ns` (nanoseconds since the tracer was created),
//! `kind` (`submit`, `evaluate`, `migrate`, `rebalance`, `wal_append`,
//! `wal_sync`, `snapshot_rotation`, `cache_hit`, `cache_miss`, …),
//! `phase` (`begin` / `end` / `instant`) and `arg` (the span duration in
//! nanoseconds on `end` events, a free slot otherwise). One submit's
//! journey reads as the `begin`/`end` pairs nested between its `submit`
//! span: evaluation, WAL append, sync, and any cache events in between.

pub mod export;
pub mod hist;
pub mod registry;
pub mod trace;

pub use hist::{HistTimer, Histogram, HistogramSnapshot};
pub use registry::{Counter, Gauge, ObsSnapshot, Registry};
pub use trace::{Span, TraceEvent, TracePhase, Tracer};
