//! Observability substrate for the coordination stack: a metrics
//! registry (atomic counters, gauges, log-bucketed latency histograms),
//! a span-style event tracer over a fixed-capacity ring buffer, and
//! JSON / Prometheus-text exporters. Pure `std`, no dependencies — the
//! crate sits below every runtime crate in the workspace DAG.
//!
//! # Overhead model
//!
//! Recording must be safe to leave on in production, so every hot-path
//! cost is explicit:
//!
//! * **Counters** ([`Counter`], [`Gauge`]) are always live: one relaxed
//!   `fetch_add` per event, exactly what the engine's pre-registry
//!   ad-hoc atomics cost. Registration only makes them visible to
//!   [`Registry::snapshot`]; an unregistered counter still counts.
//! * **Histograms** ([`Histogram`]) record with a `leading_zeros` plus
//!   four relaxed atomic RMWs (bucket, count, sum, max) — lock-free, no
//!   allocation. A histogram handed out by a *disabled* registry holds
//!   no storage: `record` is a single branch on a `None`, and
//!   [`Histogram::start`] skips the `Instant::now()` clock read
//!   entirely, so instrumented code compiles to near-zero cost.
//! * **The tracer** ([`Tracer`]) pushes fixed-size events (no strings
//!   beyond a `&'static str` kind) into a preallocated ring under a
//!   short mutex critical section — two clock reads and one push per
//!   span. Disabled, every call is a branch on a `None`. When the ring
//!   is full the oldest event is overwritten and counted in `dropped`;
//!   sequence numbers make the gap visible in a dump, never silent.
//! * **Snapshots and exporters** are cold paths: they lock the
//!   registration maps and copy, never blocking a recorder.
//!
//! The CI `online_throughput --quick` gate holds the enabled-vs-disabled
//! submit-throughput delta within 5%.
//!
//! # Reading a trace dump
//!
//! [`Tracer::dump_json_lines`] emits one meta line (`events`, `dropped`,
//! `orphaned_ends`) followed by one JSON object per event: `seq`
//! (gap-free unless events were dropped), `at_ns` (nanoseconds since
//! the tracer was created), `kind` (`submit`, `evaluate`, `migrate`,
//! `rebalance`, `wal_append`, `wal_sync`, `snapshot_rotation`,
//! `cache_hit`, `cache_miss`, `lock_wait`, `db_probe`, …), `phase`
//! (`begin` / `end` / `instant`), `arg` (the span duration in
//! nanoseconds on `end` events, a free slot otherwise), `trace` (the
//! request id; 0 = unattributed) and `thread` (a dense per-process
//! thread ordinal). One submit's journey reads as the `begin`/`end`
//! pairs nested between its `submit` span: evaluation, WAL append,
//! sync, and any cache events in between.
//!
//! # Request-scoped tracing
//!
//! Concurrent submitters interleave in the ring; the `trace` id is what
//! untangles them. Each submit allocates one [`TraceCtx`] (a
//! [`Tracer::ticket`] at the stack's entry point), installs it as the
//! thread-local current context, and every layer below — shard
//! lock-wait, closure evaluation, storage probes, memo lookups, WAL
//! append/sync — stamps its events with it. [`TraceAnalyzer`] rebuilds
//! per-trace span trees from the ring and attributes each root span's
//! wall time into a [`LatencyBreakdown`] (lock-wait / evaluate /
//! db-probe / memo / wal-append / wal-sync / other, summing to exactly
//! the critical-path nanos for a complete trace), with a top-K
//! slow-trace JSON report next to the snapshot exporters. The
//! [`Tracer::set_slow_query_log`] flight recorder copies any trace
//! whose root span exceeds a threshold into a bounded side buffer, so
//! slow traces survive ring overwrite. An `end` event whose `begin`
//! was overwritten is an *orphaned end*, counted in the dump meta line
//! and the analyzer output instead of reading as a silent seq gap.

#![forbid(unsafe_code)]

pub mod analyze;
pub mod export;
pub mod hist;
pub mod registry;
pub mod trace;

pub use analyze::{LatencyBreakdown, SpanNode, TraceAnalyzer, TraceSummary, PHASES};
pub use hist::{HistTimer, Histogram, HistogramSnapshot};
pub use registry::{Counter, Gauge, ObsSnapshot, Registry};
pub use trace::{
    SlowTrace, Span, TraceCtx, TraceEvent, TracePhase, TraceScope, TraceTicket, Tracer,
};
