//! Structured event tracer: span-style begin/end events into a
//! fixed-capacity ring buffer with sequence-numbered drops, request
//! attribution through per-submit [`TraceCtx`] ids, and a bounded
//! [`SlowTrace`] flight recorder that survives ring overwrite.
//!
//! # Request-scoped tracing
//!
//! Every event carries a `trace_id`. Id `0` means *unattributed* — the
//! plain [`Tracer::instant`] / [`Tracer::begin`] calls keep working and
//! record with id 0. A request path allocates one [`TraceCtx`] per
//! submit (via [`Tracer::ticket`] or [`Tracer::alloc_ctx`]) and either
//! passes it explicitly ([`Tracer::instant_in`], [`Tracer::begin_in`])
//! or installs it as the **thread-local current context**
//! ([`TraceCtx::enter`]) so layers with no parameter to spare — the
//! database's probe accounting, the closure cache, the WAL writer —
//! pick it up through [`TraceCtx::current`]. One synchronous submit
//! runs on one thread, so the thread-local is exactly the causal scope.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default ring capacity when a registry builds its tracer.
pub const DEFAULT_CAPACITY: usize = 8192;

/// Where an event sits in its span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TracePhase {
    /// A span opened.
    Begin,
    /// A span closed; `arg` carries the duration in nanoseconds.
    End,
    /// A point event with no span.
    Instant,
}

impl TracePhase {
    /// The lowercase name used in dumps.
    pub fn as_str(self) -> &'static str {
        match self {
            TracePhase::Begin => "begin",
            TracePhase::End => "end",
            TracePhase::Instant => "instant",
        }
    }
}

/// One request's identity: a nonzero id allocated per submit, or
/// [`TraceCtx::NONE`] (id 0) for unattributed events.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceCtx(pub u64);

std::thread_local! {
    static CURRENT_CTX: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

std::thread_local! {
    static THREAD_ORDINAL: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
}

/// A small dense per-process thread id (1-based, in first-trace order) —
/// stable for the thread's lifetime, compact enough to store per event.
fn thread_ordinal() -> u64 {
    THREAD_ORDINAL.with(|t| *t)
}

impl TraceCtx {
    /// The unattributed context (id 0).
    pub const NONE: TraceCtx = TraceCtx(0);

    /// Whether this context names a real trace.
    #[inline]
    pub fn is_traced(self) -> bool {
        self.0 != 0
    }

    /// The calling thread's current context ([`TraceCtx::NONE`] outside
    /// any [`TraceCtx::enter`] scope).
    #[inline]
    pub fn current() -> TraceCtx {
        TraceCtx(CURRENT_CTX.with(std::cell::Cell::get))
    }

    /// Install this context as the thread's current one until the
    /// returned guard drops (scopes nest; the previous context is
    /// restored).
    #[inline]
    pub fn enter(self) -> TraceScope {
        TraceScope {
            prev: CURRENT_CTX.with(|c| c.replace(self.0)),
        }
    }
}

/// Guard from [`TraceCtx::enter`]: restores the previously current
/// context when dropped.
pub struct TraceScope {
    prev: u64,
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        CURRENT_CTX.with(|c| c.set(self.prev));
    }
}

/// One recorded event. Fixed-size: the kind is a `&'static str`, the
/// free `arg` slot carries the span duration on [`TracePhase::End`].
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Monotonic sequence number (gap-free unless events were dropped).
    pub seq: u64,
    /// Nanoseconds since the tracer was created.
    pub at_nanos: u64,
    /// Event kind (`submit`, `evaluate`, `wal_append`, …).
    pub kind: &'static str,
    /// Begin / end / instant.
    pub phase: TracePhase,
    /// Duration in nanoseconds on `end` events; free otherwise.
    pub arg: u64,
    /// The request this event belongs to; 0 = unattributed.
    pub trace_id: u64,
    /// Dense ordinal of the recording thread (see [`TraceCtx`] docs).
    pub thread: u64,
}

/// One slow trace captured by the flight recorder: the root span's
/// identity plus a copy of every event of that trace still in the ring
/// at capture time (the root's end included), immune to later
/// overwrites.
#[derive(Clone, Debug)]
pub struct SlowTrace {
    /// The captured trace's id.
    pub trace_id: u64,
    /// Kind of the root span that tripped the threshold.
    pub root_kind: &'static str,
    /// The root span's wall time in nanoseconds.
    pub root_nanos: u64,
    /// The trace's events, oldest first.
    pub events: Vec<TraceEvent>,
}

struct Ring {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

/// The bounded flight-recorder buffer (see [`Tracer::set_slow_query_log`]).
struct SlowLog {
    buf: VecDeque<SlowTrace>,
    capacity: usize,
    recorded: u64,
    discarded: u64,
}

struct TracerInner {
    ring: Mutex<Ring>,
    epoch: Instant,
    next_trace_id: AtomicU64,
    /// Root-span duration (nanos) above which a trace is copied into
    /// the slow log; 0 = recorder off (the hot-path check is one load).
    slow_threshold: AtomicU64,
    slow: Mutex<SlowLog>,
}

/// Handle to a shared trace ring. Clones share the ring; a disabled
/// handle records nothing (one branch per call, no clock reads).
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(inner) => {
                let ring = inner.ring.lock().unwrap();
                write!(
                    f,
                    "Tracer(events: {}, dropped: {})",
                    ring.buf.len(),
                    ring.dropped
                )
            }
            None => write!(f, "Tracer(disabled)"),
        }
    }
}

impl Tracer {
    /// A live tracer whose ring holds at most `capacity` events; when
    /// full the oldest event is overwritten and counted as dropped.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Tracer {
            inner: Some(Arc::new(TracerInner {
                ring: Mutex::new(Ring {
                    buf: VecDeque::with_capacity(capacity),
                    capacity,
                    next_seq: 0,
                    dropped: 0,
                }),
                epoch: Instant::now(),
                next_trace_id: AtomicU64::new(1),
                slow_threshold: AtomicU64::new(0),
                slow: Mutex::new(SlowLog {
                    buf: VecDeque::new(),
                    capacity: 0,
                    recorded: 0,
                    discarded: 0,
                }),
            })),
        }
    }

    /// A no-op handle.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// Whether this handle records anywhere.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Allocate a fresh nonzero [`TraceCtx`] (the per-submit request
    /// id). Disabled tracers hand out [`TraceCtx::NONE`] so the whole
    /// attribution path stays inert.
    #[inline]
    pub fn alloc_ctx(&self) -> TraceCtx {
        match &self.inner {
            None => TraceCtx::NONE,
            Some(inner) => TraceCtx(inner.next_trace_id.fetch_add(1, Ordering::Relaxed)),
        }
    }

    /// Arm the slow-query flight recorder: when a **root** span (one
    /// opened by [`Tracer::ticket`]'s allocating path) of a traced
    /// request ends with a duration of at least `threshold_nanos`, the
    /// trace's events are copied from the ring into a side buffer of at
    /// most `capacity` traces (oldest evicted first), so slow traces
    /// survive ring overwrite. `threshold_nanos == 0` disarms.
    pub fn set_slow_query_log(&self, threshold_nanos: u64, capacity: usize) {
        if let Some(inner) = &self.inner {
            let mut slow = inner.slow.lock().unwrap();
            slow.capacity = capacity;
            while slow.buf.len() > capacity {
                slow.buf.pop_front();
                slow.discarded += 1;
            }
            drop(slow);
            let armed = if capacity == 0 { 0 } else { threshold_nanos };
            inner.slow_threshold.store(armed, Ordering::Relaxed);
        }
    }

    /// Copies of the captured slow traces, oldest first.
    pub fn slow_traces(&self) -> Vec<SlowTrace> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.slow.lock().unwrap().buf.iter().cloned().collect(),
        }
    }

    /// `(recorded, evicted)` totals for the slow-query log: how many
    /// traces ever tripped the threshold, and how many of those the
    /// bounded buffer has since discarded.
    pub fn slow_trace_counts(&self) -> (u64, u64) {
        match &self.inner {
            None => (0, 0),
            Some(inner) => {
                let slow = inner.slow.lock().unwrap();
                (slow.recorded, slow.discarded)
            }
        }
    }

    #[inline]
    fn push(&self, ctx: TraceCtx, kind: &'static str, phase: TracePhase, arg: u64) {
        if let Some(inner) = &self.inner {
            let at_nanos = inner.epoch.elapsed().as_nanos() as u64;
            let thread = thread_ordinal();
            let mut ring = inner.ring.lock().unwrap();
            let seq = ring.next_seq;
            ring.next_seq += 1;
            if ring.buf.len() == ring.capacity {
                ring.buf.pop_front();
                ring.dropped += 1;
            }
            ring.buf.push_back(TraceEvent {
                seq,
                at_nanos,
                kind,
                phase,
                arg,
                trace_id: ctx.0,
                thread,
            });
        }
    }

    /// Record an unattributed point event (trace id 0).
    #[inline]
    pub fn instant(&self, kind: &'static str, arg: u64) {
        self.push(TraceCtx::NONE, kind, TracePhase::Instant, arg);
    }

    /// Record a point event attributed to `ctx`.
    #[inline]
    pub fn instant_in(&self, ctx: TraceCtx, kind: &'static str, arg: u64) {
        self.push(ctx, kind, TracePhase::Instant, arg);
    }

    /// Open an unattributed span (trace id 0): records a begin event
    /// now, and an end event (with the duration as `arg`) when the
    /// returned guard drops.
    #[inline]
    pub fn begin(&self, kind: &'static str) -> Span {
        self.begin_span(TraceCtx::NONE, kind, false)
    }

    /// Open a span attributed to `ctx`.
    #[inline]
    pub fn begin_in(&self, ctx: TraceCtx, kind: &'static str) -> Span {
        self.begin_span(ctx, kind, false)
    }

    fn begin_span(&self, ctx: TraceCtx, kind: &'static str, root: bool) -> Span {
        if self.inner.is_none() {
            return Span {
                tracer: Tracer::disabled(),
                kind,
                ctx,
                root: false,
                start: None,
            };
        }
        self.push(ctx, kind, TracePhase::Begin, 0);
        Span {
            tracer: self.clone(),
            kind,
            ctx,
            root,
            start: Some(Instant::now()),
        }
    }

    /// One request-scoped tracing ticket. If the calling thread already
    /// has a current context (an enclosing layer — e.g. the durable
    /// engine — allocated the request's id), the ticket opens a plain
    /// nested span in it. Otherwise it allocates a fresh [`TraceCtx`],
    /// installs it as the thread's current context for the ticket's
    /// lifetime, and opens the trace's **root** span — the one whose
    /// wall time the slow-query flight recorder thresholds against.
    pub fn ticket(&self, kind: &'static str) -> TraceTicket {
        if self.inner.is_none() {
            return TraceTicket {
                _span: None,
                _scope: None,
                ctx: TraceCtx::NONE,
            };
        }
        let current = TraceCtx::current();
        if current.is_traced() {
            TraceTicket {
                _span: Some(self.begin_span(current, kind, false)),
                _scope: None,
                ctx: current,
            }
        } else {
            let ctx = self.alloc_ctx();
            let scope = ctx.enter();
            TraceTicket {
                _span: Some(self.begin_span(ctx, kind, true)),
                _scope: Some(scope),
                ctx,
            }
        }
    }

    /// Copy every ring event belonging to `ctx` into the slow log
    /// (called from a root span's drop once the threshold tripped).
    fn capture_slow(&self, ctx: TraceCtx, root_kind: &'static str, root_nanos: u64) {
        let Some(inner) = &self.inner else { return };
        let events: Vec<TraceEvent> = {
            let ring = inner.ring.lock().unwrap();
            ring.buf
                .iter()
                .filter(|e| e.trace_id == ctx.0)
                .copied()
                .collect()
        };
        let mut slow = inner.slow.lock().unwrap();
        if slow.capacity == 0 {
            return;
        }
        if slow.buf.len() == slow.capacity {
            slow.buf.pop_front();
            slow.discarded += 1;
        }
        slow.recorded += 1;
        slow.buf.push_back(SlowTrace {
            trace_id: ctx.0,
            root_kind,
            root_nanos,
            events,
        });
    }

    /// Copies of the buffered events (oldest first) plus the total
    /// number of events dropped by ring overwrites.
    pub fn events(&self) -> (Vec<TraceEvent>, u64) {
        match &self.inner {
            None => (Vec::new(), 0),
            Some(inner) => {
                let ring = inner.ring.lock().unwrap();
                (ring.buf.iter().copied().collect(), ring.dropped)
            }
        }
    }

    /// Dump the ring as JSON lines: one meta line (`events`, `dropped`,
    /// `orphaned_ends`) then one object per event. Sequence-number gaps
    /// after a nonzero `dropped` show exactly which events were
    /// overwritten; `orphaned_ends` counts the `end` events whose
    /// `begin` was among them (they are real span closures, just with
    /// the opening half overwritten).
    pub fn dump_json_lines(&self) -> String {
        let (events, dropped) = self.events();
        let mut out = format!(
            "{{\"type\":\"meta\",\"events\":{},\"dropped\":{},\"orphaned_ends\":{}}}\n",
            events.len(),
            dropped,
            crate::analyze::orphaned_end_count(&events),
        );
        for e in &events {
            out.push_str(&format!(
                "{{\"seq\":{},\"at_ns\":{},\"kind\":\"{}\",\"phase\":\"{}\",\"arg\":{},\
                 \"trace\":{},\"thread\":{}}}\n",
                e.seq,
                e.at_nanos,
                e.kind,
                e.phase.as_str(),
                e.arg,
                e.trace_id,
                e.thread,
            ));
        }
        out
    }
}

/// Span guard from [`Tracer::begin`] / [`Tracer::begin_in`]: records
/// the end event (duration in `arg`) when dropped or explicitly
/// finished.
pub struct Span {
    tracer: Tracer,
    kind: &'static str,
    ctx: TraceCtx,
    root: bool,
    start: Option<Instant>,
}

impl Span {
    /// Close the span now.
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            let nanos = start.elapsed().as_nanos() as u64;
            self.tracer
                .push(self.ctx, self.kind, TracePhase::End, nanos);
            if self.root && self.ctx.is_traced() {
                if let Some(inner) = &self.tracer.inner {
                    let threshold = inner.slow_threshold.load(Ordering::Relaxed);
                    if threshold != 0 && nanos >= threshold {
                        self.tracer.capture_slow(self.ctx, self.kind, nanos);
                    }
                }
            }
        }
    }
}

/// Guard from [`Tracer::ticket`]: the span (root or nested) plus, when
/// this ticket allocated the request id, the thread-local scope that
/// makes [`TraceCtx::current`] return it. Field order matters: the span
/// must record its end while the scope is still installed.
pub struct TraceTicket {
    /// Held for its drop: records the span's end event.
    _span: Option<Span>,
    /// Held for its drop: uninstalls the thread-local context.
    _scope: Option<TraceScope>,
    ctx: TraceCtx,
}

impl TraceTicket {
    /// The request id this ticket's events are attributed to
    /// ([`TraceCtx::NONE`] when the tracer is disabled).
    pub fn ctx(&self) -> TraceCtx {
        self.ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_begin_and_end_pairs() {
        let t = Tracer::with_capacity(16);
        {
            let span = t.begin("submit");
            t.instant("cache_hit", 7);
            span.finish();
        }
        let (events, dropped) = t.events();
        assert_eq!(dropped, 0);
        let kinds: Vec<_> = events.iter().map(|e| (e.kind, e.phase)).collect();
        assert_eq!(
            kinds,
            vec![
                ("submit", TracePhase::Begin),
                ("cache_hit", TracePhase::Instant),
                ("submit", TracePhase::End),
            ]
        );
        assert_eq!(events[1].arg, 7);
        // Unattributed calls carry trace id 0; all on one thread.
        assert!(events.iter().all(|e| e.trace_id == 0));
        assert!(events.iter().all(|e| e.thread == events[0].thread));
        // Sequence numbers are gap-free, timestamps monotone.
        assert!(events.windows(2).all(|w| w[1].seq == w[0].seq + 1));
        assert!(events.windows(2).all(|w| w[1].at_nanos >= w[0].at_nanos));
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let t = Tracer::with_capacity(4);
        for i in 0..10 {
            t.instant("tick", i);
        }
        let (events, dropped) = t.events();
        assert_eq!(events.len(), 4);
        assert_eq!(dropped, 6);
        // The survivors are the newest, with their original seqs.
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        t.instant("tick", 1);
        let span = t.begin("submit");
        drop(span);
        let ticket = t.ticket("submit");
        assert_eq!(ticket.ctx(), TraceCtx::NONE);
        drop(ticket);
        assert_eq!(t.alloc_ctx(), TraceCtx::NONE);
        let (events, dropped) = t.events();
        assert!(events.is_empty() && dropped == 0);
        assert_eq!(
            t.dump_json_lines(),
            "{\"type\":\"meta\",\"events\":0,\"dropped\":0,\"orphaned_ends\":0}\n"
        );
        assert!(t.slow_traces().is_empty());
    }

    #[test]
    fn dump_is_one_json_object_per_line() {
        let t = Tracer::with_capacity(8);
        t.instant("tick", 3);
        let dump = t.dump_json_lines();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"dropped\":0"));
        assert!(lines[1].contains("\"kind\":\"tick\""));
        assert!(lines[1].contains("\"phase\":\"instant\""));
        assert!(lines[1].contains("\"trace\":0"));
        assert!(lines[1].contains("\"thread\":"));
    }

    #[test]
    fn ctx_allocation_is_unique_and_nonzero() {
        let t = Tracer::with_capacity(8);
        let a = t.alloc_ctx();
        let b = t.alloc_ctx();
        assert!(a.is_traced() && b.is_traced());
        assert_ne!(a, b);
    }

    #[test]
    fn attributed_calls_stamp_the_trace_id() {
        let t = Tracer::with_capacity(16);
        let ctx = t.alloc_ctx();
        {
            let _span = t.begin_in(ctx, "submit");
            t.instant_in(ctx, "lock_wait", 10);
            t.instant("tick", 0); // unattributed rides along as id 0
        }
        let (events, _) = t.events();
        let ids: Vec<u64> = events.iter().map(|e| e.trace_id).collect();
        assert_eq!(ids, vec![ctx.0, ctx.0, 0, ctx.0]);
    }

    #[test]
    fn current_ctx_scopes_nest_and_restore() {
        assert_eq!(TraceCtx::current(), TraceCtx::NONE);
        let outer = TraceCtx(7);
        let scope = outer.enter();
        assert_eq!(TraceCtx::current(), outer);
        {
            let inner = TraceCtx(9);
            let _inner_scope = inner.enter();
            assert_eq!(TraceCtx::current(), inner);
        }
        assert_eq!(TraceCtx::current(), outer);
        drop(scope);
        assert_eq!(TraceCtx::current(), TraceCtx::NONE);
    }

    #[test]
    fn ticket_allocates_once_and_nested_tickets_reuse_it() {
        let t = Tracer::with_capacity(32);
        {
            let outer = t.ticket("submit");
            assert!(outer.ctx().is_traced());
            assert_eq!(TraceCtx::current(), outer.ctx());
            let inner = t.ticket("submit");
            assert_eq!(inner.ctx(), outer.ctx());
            drop(inner);
            t.instant_in(TraceCtx::current(), "lock_wait", 1);
        }
        assert_eq!(TraceCtx::current(), TraceCtx::NONE);
        let (events, _) = t.events();
        // begin, begin, end, lock_wait, end — all one trace id.
        assert_eq!(events.len(), 5);
        let id = events[0].trace_id;
        assert!(id != 0);
        assert!(events.iter().all(|e| e.trace_id == id));
        // A later ticket gets a fresh id.
        let next = t.ticket("submit");
        assert_ne!(next.ctx().0, id);
    }

    #[test]
    fn slow_query_log_captures_root_spans_over_threshold() {
        let t = Tracer::with_capacity(64);
        t.set_slow_query_log(1, 2); // 1ns threshold: everything is slow
        for i in 0..3u64 {
            let ticket = t.ticket("submit");
            t.instant_in(ticket.ctx(), "lock_wait", i);
            drop(ticket);
        }
        let (recorded, discarded) = t.slow_trace_counts();
        assert_eq!(recorded, 3);
        assert_eq!(discarded, 1, "bounded buffer evicted the oldest");
        let slow = t.slow_traces();
        assert_eq!(slow.len(), 2);
        for s in &slow {
            assert_eq!(s.root_kind, "submit");
            assert!(s.root_nanos >= 1);
            // begin + lock_wait + end, all of one trace.
            assert_eq!(s.events.len(), 3);
            assert!(s.events.iter().all(|e| e.trace_id == s.trace_id));
        }
        // Nested (non-root) spans never trip the recorder on their own.
        let outer = t.ticket("submit");
        let inner = t.ticket("submit");
        drop(inner);
        let before = t.slow_trace_counts().0;
        assert_eq!(before, 3, "nested ticket drop did not capture");
        drop(outer);
        assert_eq!(t.slow_trace_counts().0, 4);
    }

    #[test]
    fn slow_query_log_disarmed_by_zero_threshold() {
        let t = Tracer::with_capacity(16);
        let ticket = t.ticket("submit");
        drop(ticket);
        assert_eq!(t.slow_trace_counts(), (0, 0));
        t.set_slow_query_log(1, 0); // zero capacity also disarms
        let ticket = t.ticket("submit");
        drop(ticket);
        assert_eq!(t.slow_trace_counts(), (0, 0));
    }
}
