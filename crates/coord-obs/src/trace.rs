//! Structured event tracer: span-style begin/end events into a
//! fixed-capacity ring buffer with sequence-numbered drops.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default ring capacity when a registry builds its tracer.
pub const DEFAULT_CAPACITY: usize = 8192;

/// Where an event sits in its span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TracePhase {
    /// A span opened.
    Begin,
    /// A span closed; `arg` carries the duration in nanoseconds.
    End,
    /// A point event with no span.
    Instant,
}

impl TracePhase {
    /// The lowercase name used in dumps.
    pub fn as_str(self) -> &'static str {
        match self {
            TracePhase::Begin => "begin",
            TracePhase::End => "end",
            TracePhase::Instant => "instant",
        }
    }
}

/// One recorded event. Fixed-size: the kind is a `&'static str`, the
/// free `arg` slot carries the span duration on [`TracePhase::End`].
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Monotonic sequence number (gap-free unless events were dropped).
    pub seq: u64,
    /// Nanoseconds since the tracer was created.
    pub at_nanos: u64,
    /// Event kind (`submit`, `evaluate`, `wal_append`, …).
    pub kind: &'static str,
    /// Begin / end / instant.
    pub phase: TracePhase,
    /// Duration in nanoseconds on `end` events; free otherwise.
    pub arg: u64,
}

struct Ring {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

struct TracerInner {
    ring: Mutex<Ring>,
    epoch: Instant,
}

/// Handle to a shared trace ring. Clones share the ring; a disabled
/// handle records nothing (one branch per call, no clock reads).
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(inner) => {
                let ring = inner.ring.lock().unwrap();
                write!(
                    f,
                    "Tracer(events: {}, dropped: {})",
                    ring.buf.len(),
                    ring.dropped
                )
            }
            None => write!(f, "Tracer(disabled)"),
        }
    }
}

impl Tracer {
    /// A live tracer whose ring holds at most `capacity` events; when
    /// full the oldest event is overwritten and counted as dropped.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Tracer {
            inner: Some(Arc::new(TracerInner {
                ring: Mutex::new(Ring {
                    buf: VecDeque::with_capacity(capacity),
                    capacity,
                    next_seq: 0,
                    dropped: 0,
                }),
                epoch: Instant::now(),
            })),
        }
    }

    /// A no-op handle.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// Whether this handle records anywhere.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    #[inline]
    fn push(&self, kind: &'static str, phase: TracePhase, arg: u64) {
        if let Some(inner) = &self.inner {
            let at_nanos = inner.epoch.elapsed().as_nanos() as u64;
            let mut ring = inner.ring.lock().unwrap();
            let seq = ring.next_seq;
            ring.next_seq += 1;
            if ring.buf.len() == ring.capacity {
                ring.buf.pop_front();
                ring.dropped += 1;
            }
            ring.buf.push_back(TraceEvent {
                seq,
                at_nanos,
                kind,
                phase,
                arg,
            });
        }
    }

    /// Record a point event.
    #[inline]
    pub fn instant(&self, kind: &'static str, arg: u64) {
        self.push(kind, TracePhase::Instant, arg);
    }

    /// Open a span: records a begin event now, and an end event (with
    /// the duration as `arg`) when the returned guard drops.
    #[inline]
    pub fn begin(&self, kind: &'static str) -> Span {
        if self.inner.is_none() {
            return Span {
                tracer: Tracer::disabled(),
                kind,
                start: None,
            };
        }
        self.push(kind, TracePhase::Begin, 0);
        Span {
            tracer: self.clone(),
            kind,
            start: Some(Instant::now()),
        }
    }

    /// Copies of the buffered events (oldest first) plus the total
    /// number of events dropped by ring overwrites.
    pub fn events(&self) -> (Vec<TraceEvent>, u64) {
        match &self.inner {
            None => (Vec::new(), 0),
            Some(inner) => {
                let ring = inner.ring.lock().unwrap();
                (ring.buf.iter().copied().collect(), ring.dropped)
            }
        }
    }

    /// Dump the ring as JSON lines: one meta line (`events`, `dropped`)
    /// then one object per event. Sequence-number gaps after a nonzero
    /// `dropped` show exactly which events were overwritten.
    pub fn dump_json_lines(&self) -> String {
        let (events, dropped) = self.events();
        let mut out = format!(
            "{{\"type\":\"meta\",\"events\":{},\"dropped\":{}}}\n",
            events.len(),
            dropped
        );
        for e in &events {
            out.push_str(&format!(
                "{{\"seq\":{},\"at_ns\":{},\"kind\":\"{}\",\"phase\":\"{}\",\"arg\":{}}}\n",
                e.seq,
                e.at_nanos,
                e.kind,
                e.phase.as_str(),
                e.arg
            ));
        }
        out
    }
}

/// Span guard from [`Tracer::begin`]: records the end event (duration
/// in `arg`) when dropped or explicitly finished.
pub struct Span {
    tracer: Tracer,
    kind: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// Close the span now.
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            self.tracer.push(
                self.kind,
                TracePhase::End,
                start.elapsed().as_nanos() as u64,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_begin_and_end_pairs() {
        let t = Tracer::with_capacity(16);
        {
            let span = t.begin("submit");
            t.instant("cache_hit", 7);
            span.finish();
        }
        let (events, dropped) = t.events();
        assert_eq!(dropped, 0);
        let kinds: Vec<_> = events.iter().map(|e| (e.kind, e.phase)).collect();
        assert_eq!(
            kinds,
            vec![
                ("submit", TracePhase::Begin),
                ("cache_hit", TracePhase::Instant),
                ("submit", TracePhase::End),
            ]
        );
        assert_eq!(events[1].arg, 7);
        // Sequence numbers are gap-free, timestamps monotone.
        assert!(events.windows(2).all(|w| w[1].seq == w[0].seq + 1));
        assert!(events.windows(2).all(|w| w[1].at_nanos >= w[0].at_nanos));
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let t = Tracer::with_capacity(4);
        for i in 0..10 {
            t.instant("tick", i);
        }
        let (events, dropped) = t.events();
        assert_eq!(events.len(), 4);
        assert_eq!(dropped, 6);
        // The survivors are the newest, with their original seqs.
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        t.instant("tick", 1);
        let span = t.begin("submit");
        drop(span);
        let (events, dropped) = t.events();
        assert!(events.is_empty() && dropped == 0);
        assert_eq!(
            t.dump_json_lines(),
            "{\"type\":\"meta\",\"events\":0,\"dropped\":0}\n"
        );
    }

    #[test]
    fn dump_is_one_json_object_per_line() {
        let t = Tracer::with_capacity(8);
        t.instant("tick", 3);
        let dump = t.dump_json_lines();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"dropped\":0"));
        assert!(lines[1].contains("\"kind\":\"tick\""));
        assert!(lines[1].contains("\"phase\":\"instant\""));
    }
}
