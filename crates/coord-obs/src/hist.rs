//! Log-bucketed latency histograms with a lock-free record path.
//!
//! Values (nanoseconds by convention) land in power-of-two buckets:
//! bucket `k` holds `[2^(k−1), 2^k)`, so 64 buckets cover the full
//! `u64` range with ≤ 2× relative quantile error — plenty for latency
//! monitoring, and recording stays four relaxed atomic RMWs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Number of power-of-two buckets (the full `u64` range).
pub const BUCKETS: usize = 64;

struct HistInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistInner {
    fn default() -> Self {
        HistInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A lock-free log-bucketed histogram handle. Clones share storage.
/// A disabled handle (from [`Registry::disabled`]) holds none:
/// recording is a single branch.
///
/// [`Registry::disabled`]: crate::Registry::disabled
#[derive(Clone, Default)]
pub struct Histogram {
    inner: Option<Arc<HistInner>>,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(_) => write!(f, "Histogram({:?})", self.snapshot()),
            None => write!(f, "Histogram(disabled)"),
        }
    }
}

/// Bucket index for a value: its bit length, clamped to the top bucket.
#[inline]
fn bucket_of(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(BUCKETS - 1)
}

impl Histogram {
    /// A live histogram with its own storage.
    pub fn enabled() -> Self {
        Histogram {
            inner: Some(Arc::new(HistInner::default())),
        }
    }

    /// A no-op handle: `record` is one branch, `start` reads no clock.
    pub fn disabled() -> Self {
        Histogram { inner: None }
    }

    /// Whether this handle records anywhere.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record one value. Lock-free; relaxed ordering (monitoring does
    /// not need cross-counter consistency).
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(inner) = &self.inner {
            inner.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
            inner.count.fetch_add(1, Ordering::Relaxed);
            inner.sum.fetch_add(value, Ordering::Relaxed);
            inner.max.fetch_max(value, Ordering::Relaxed);
        }
    }

    /// Record a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos() as u64);
    }

    /// Start timing a section; the timer records on [`HistTimer::stop`]
    /// or drop. Disabled handles skip the clock read entirely.
    #[inline]
    pub fn start(&self) -> HistTimer<'_> {
        HistTimer {
            hist: self,
            start: self.inner.as_ref().map(|_| Instant::now()),
        }
    }

    /// A point-in-time copy (zeroed for disabled handles).
    pub fn snapshot(&self) -> HistogramSnapshot {
        match &self.inner {
            None => HistogramSnapshot::default(),
            Some(inner) => HistogramSnapshot {
                count: inner.count.load(Ordering::Relaxed),
                sum: inner.sum.load(Ordering::Relaxed),
                max: inner.max.load(Ordering::Relaxed),
                buckets: inner
                    .buckets
                    .iter()
                    .map(|b| b.load(Ordering::Relaxed))
                    .collect(),
            },
        }
    }
}

/// Guard returned by [`Histogram::start`]: records the elapsed
/// nanoseconds into the histogram when stopped or dropped.
pub struct HistTimer<'a> {
    hist: &'a Histogram,
    start: Option<Instant>,
}

impl HistTimer<'_> {
    /// Stop now and record, returning the elapsed nanoseconds
    /// (0 when the histogram is disabled).
    pub fn stop(mut self) -> u64 {
        self.finish()
    }

    fn finish(&mut self) -> u64 {
        match self.start.take() {
            None => 0,
            Some(start) => {
                let nanos = start.elapsed().as_nanos() as u64;
                self.hist.record(nanos);
                nanos
            }
        }
    }
}

impl Drop for HistTimer<'_> {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Plain-data copy of a [`Histogram`] at one instant.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Per-bucket counts; bucket `k` holds values in `[2^(k−1), 2^k)`.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Inclusive upper bound of bucket `k`.
    pub fn bucket_upper(k: usize) -> u64 {
        if k >= BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << k) - 1
        }
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Quantile estimate: the upper bound of the first bucket whose
    /// cumulative count reaches `q · count`, clamped to the observed
    /// max (so `quantile(1.0) == max`). `q` is clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper(k).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_bit_lengths() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn records_count_sum_max_and_quantiles() {
        let h = Histogram::enabled();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1106);
        assert_eq!(s.max, 1000);
        // p50 falls in the bucket holding 2 and 3 (upper bound 3).
        assert_eq!(s.p50(), 3);
        // Top quantiles clamp to the observed max.
        assert_eq!(s.quantile(1.0), 1000);
        assert!(s.p99() <= 1000);
        assert!((s.mean() - 221.2).abs() < 1e-9);
    }

    #[test]
    fn quantile_error_is_bounded_by_bucket_width() {
        let h = Histogram::enabled();
        for _ in 0..100 {
            h.record(700);
        }
        let s = h.snapshot();
        // 700 lands in [512, 1024); the estimate is clamped to max.
        assert_eq!(s.p50(), 700);
        assert_eq!(s.p99(), 700);
    }

    #[test]
    fn disabled_histogram_is_inert() {
        let h = Histogram::disabled();
        h.record(42);
        let t = h.start();
        assert_eq!(t.stop(), 0);
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.5), 0);
    }

    #[test]
    fn timer_records_on_stop_and_on_drop() {
        let h = Histogram::enabled();
        let nanos = h.start().stop();
        assert!(h.snapshot().count == 1 && nanos == h.snapshot().sum);
        {
            let _t = h.start();
        }
        assert_eq!(h.snapshot().count, 2);
    }

    #[test]
    // Exact zero: an empty histogram's mean is computed as 0.0, not near-0.
    #[allow(clippy::float_cmp)]
    fn empty_snapshot_quantiles_are_zero() {
        let s = Histogram::enabled().snapshot();
        assert_eq!((s.p50(), s.p99(), s.max), (0, 0, 0));
        assert_eq!(s.mean(), 0.0);
    }
}
