//! Trace analysis: reconstruct per-request span trees from the ring and
//! attribute each trace's wall time to the stack's phases.
//!
//! The ring ([`crate::Tracer`]) stores a flat interleaving of events
//! from every thread. [`TraceAnalyzer`] groups them by `trace_id`,
//! re-nests each trace's begin/end pairs into [`SpanNode`] trees
//! (per-thread stacks — span guards nest strictly on a thread), and
//! computes a [`LatencyBreakdown`] per trace: where the root span's
//! wall time went, split into lock-wait / evaluate / db-probe / memo /
//! wal-append / wal-sync / other. Nested phases are accounted
//! *exclusively* (a storage probe's nanos are subtracted from the
//! enclosing evaluate span; a WAL fsync's from its append), so for a
//! complete trace the seven phases sum to exactly the root span's wall
//! nanos — and never more.
//!
//! An `end` event whose `begin` was overwritten by ring overflow is an
//! **orphaned end**: still a real span closure (its `arg` carries the
//! duration), counted explicitly rather than silently skewing the
//! trees.

use crate::trace::{TraceEvent, TracePhase, Tracer};
use std::collections::BTreeMap;

/// One reconstructed span: a begin/end pair with everything that nested
/// inside it on the same thread.
#[derive(Clone, Debug)]
pub struct SpanNode {
    /// Span kind (`submit`, `evaluate`, `wal_append`, …).
    pub kind: &'static str,
    /// Dense ordinal of the thread that recorded the span.
    pub thread: u64,
    /// Begin timestamp, nanoseconds since the tracer's epoch.
    pub begin_nanos: u64,
    /// Span duration in nanoseconds (0 when still unclosed).
    pub dur_nanos: u64,
    /// Whether the end event was observed (`false`: in flight, or the
    /// end lies beyond the captured window).
    pub closed: bool,
    /// Spans that began and ended inside this one, oldest first.
    pub children: Vec<SpanNode>,
}

/// Count the `end` events in `events` whose matching `begin` is absent
/// — the ring-overwrite signature surfaced in the dump's meta line.
pub fn orphaned_end_count(events: &[TraceEvent]) -> u64 {
    let mut stacks: BTreeMap<(u64, u64), Vec<&'static str>> = BTreeMap::new();
    let mut orphans = 0u64;
    for e in events {
        let key = (e.trace_id, e.thread);
        match e.phase {
            TracePhase::Begin => stacks.entry(key).or_default().push(e.kind),
            TracePhase::End => {
                let stack = stacks.entry(key).or_default();
                if stack.last() == Some(&e.kind) {
                    stack.pop();
                } else {
                    orphans += 1;
                }
            }
            TracePhase::Instant => {}
        }
    }
    orphans
}

/// Where one trace's wall time went, in nanoseconds. Phases are
/// exclusive (see the module docs); `critical_path_nanos` is the root
/// span's wall time — on a synchronous submit the root span *is* the
/// critical path.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencyBreakdown {
    /// Time blocked on contended shard locks (`lock_wait` instants).
    pub lock_wait: u64,
    /// Closure evaluation, excluding the probe and memo time inside it.
    pub evaluate: u64,
    /// Database `find_one`/`find_all` probe time (`db_probe` instants).
    pub db_probe: u64,
    /// Closure-cache lookup time (`cache_hit`/`cache_miss` instants).
    pub memo: u64,
    /// WAL append time, excluding the fsync inside it.
    pub wal_append: u64,
    /// WAL fsync time (`wal_sync` instants).
    pub wal_sync: u64,
    /// Root-span time not claimed by any phase above (routing,
    /// migrations, snapshot rotations, commit bookkeeping).
    pub other: u64,
    /// The root span's wall nanos (0 when the root never completed in
    /// the captured window).
    pub critical_path_nanos: u64,
}

/// The phase names, in [`LatencyBreakdown::phases`] order.
pub const PHASES: [&str; 7] = [
    "lock_wait",
    "evaluate",
    "db_probe",
    "memo",
    "wal_append",
    "wal_sync",
    "other",
];

impl LatencyBreakdown {
    /// `(name, nanos)` for every phase, in [`PHASES`] order.
    pub fn phases(&self) -> [(&'static str, u64); 7] {
        [
            ("lock_wait", self.lock_wait),
            ("evaluate", self.evaluate),
            ("db_probe", self.db_probe),
            ("memo", self.memo),
            ("wal_append", self.wal_append),
            ("wal_sync", self.wal_sync),
            ("other", self.other),
        ]
    }

    /// Sum of all phases — equal to `critical_path_nanos` for a
    /// complete trace, and never more.
    pub fn phase_sum(&self) -> u64 {
        self.phases().iter().map(|(_, v)| v).sum()
    }
}

/// One trace's reconstruction: its span trees and latency breakdown.
#[derive(Clone, Debug)]
pub struct TraceSummary {
    /// The trace's id (always nonzero here; id-0 events are aggregated
    /// separately).
    pub trace_id: u64,
    /// Top-level spans, oldest first (one — the root — for a normal
    /// submit; more if the root's begin was overwritten).
    pub roots: Vec<SpanNode>,
    /// Wall-time attribution for this trace.
    pub breakdown: LatencyBreakdown,
    /// Whether the trace's first event is its root span's begin *and*
    /// that span closed in the window — i.e. the breakdown's
    /// critical path is trustworthy.
    pub complete: bool,
    /// End events of this trace whose begin was overwritten.
    pub orphaned_ends: u64,
    /// Number of this trace's events seen in the window.
    pub events: usize,
}

/// Per-trace open-span bookkeeping during the single reconstruction
/// pass.
#[derive(Default)]
struct TraceBuild {
    roots: Vec<SpanNode>,
    stacks: BTreeMap<u64, Vec<SpanNode>>,
    span_nanos: BTreeMap<&'static str, u64>,
    instant_nanos: BTreeMap<&'static str, u64>,
    first_is_begin: Option<(&'static str, u64)>,
    root_closed_nanos: Option<u64>,
    orphaned_ends: u64,
    events: usize,
}

/// Reconstructs per-trace span trees and latency breakdowns from a
/// tracer's ring (or any event slice). See the module docs.
pub struct TraceAnalyzer {
    traces: Vec<TraceSummary>,
    /// Orphaned ends across *all* events, id-0 included (matches the
    /// dump meta line).
    pub orphaned_ends: u64,
    /// Events the ring overwrote before this analysis.
    pub dropped: u64,
    /// Events carrying trace id 0 (unattributed background work).
    pub unattributed_events: usize,
}

impl TraceAnalyzer {
    /// Analyze a tracer's current ring contents.
    pub fn from_tracer(tracer: &Tracer) -> Self {
        let (events, dropped) = tracer.events();
        Self::from_events(&events, dropped)
    }

    /// Analyze an explicit event window (e.g. a captured
    /// [`crate::SlowTrace`]'s events), `dropped` as reported alongside.
    pub fn from_events(events: &[TraceEvent], dropped: u64) -> Self {
        let mut builds: BTreeMap<u64, TraceBuild> = BTreeMap::new();
        let mut unattributed = 0usize;
        for e in events {
            if e.trace_id == 0 {
                unattributed += 1;
                continue;
            }
            let b = builds.entry(e.trace_id).or_default();
            b.events += 1;
            if b.first_is_begin.is_none() && b.events == 1 && e.phase == TracePhase::Begin {
                b.first_is_begin = Some((e.kind, e.seq));
            }
            match e.phase {
                TracePhase::Begin => b.stacks.entry(e.thread).or_default().push(SpanNode {
                    kind: e.kind,
                    thread: e.thread,
                    begin_nanos: e.at_nanos,
                    dur_nanos: 0,
                    closed: false,
                    children: Vec::new(),
                }),
                TracePhase::End => {
                    *b.span_nanos.entry(e.kind).or_default() += e.arg;
                    let stack = b.stacks.entry(e.thread).or_default();
                    if stack.last().is_some_and(|s| s.kind == e.kind) {
                        let mut span = stack.pop().expect("non-empty stack");
                        span.dur_nanos = e.arg;
                        span.closed = true;
                        let depth0 = stack.is_empty();
                        if depth0 && b.roots.is_empty() && b.first_is_begin.is_some() {
                            b.root_closed_nanos = Some(e.arg);
                        }
                        match stack.last_mut() {
                            Some(parent) => parent.children.push(span),
                            None => b.roots.push(span),
                        }
                    } else {
                        // The begin was overwritten: a real closure with
                        // a known duration but no known nesting.
                        b.orphaned_ends += 1;
                    }
                }
                TracePhase::Instant => {
                    *b.instant_nanos.entry(e.kind).or_default() += e.arg;
                }
            }
        }

        let mut traces = Vec::with_capacity(builds.len());
        let mut orphaned_total = 0u64;
        for (trace_id, mut b) in builds {
            orphaned_total += b.orphaned_ends;
            // Unclosed spans (in flight at snapshot) surface as nodes
            // too, so the tree shows where the trace currently is.
            for stack in std::mem::take(&mut b.stacks).into_values() {
                for span in stack.into_iter().rev() {
                    b.roots.push(span);
                }
            }
            let complete = b.root_closed_nanos.is_some() && b.orphaned_ends == 0;
            let breakdown = Self::breakdown(&b, complete);
            traces.push(TraceSummary {
                trace_id,
                roots: b.roots,
                breakdown,
                complete,
                orphaned_ends: b.orphaned_ends,
                events: b.events,
            });
        }
        // Orphans among id-0 events count in the global total too.
        let id0: Vec<TraceEvent> = events.iter().filter(|e| e.trace_id == 0).copied().collect();
        orphaned_total += orphaned_end_count(&id0);
        TraceAnalyzer {
            traces,
            orphaned_ends: orphaned_total,
            dropped,
            unattributed_events: unattributed,
        }
    }

    fn breakdown(b: &TraceBuild, complete: bool) -> LatencyBreakdown {
        let instant = |kind: &str| b.instant_nanos.get(kind).copied().unwrap_or(0);
        let span = |kind: &str| b.span_nanos.get(kind).copied().unwrap_or(0);
        let lock_wait = instant("lock_wait");
        let db_probe = instant("db_probe");
        let memo = instant("cache_hit") + instant("cache_miss");
        let wal_sync = instant("wal_sync");
        let evaluate = span("evaluate").saturating_sub(db_probe + memo);
        let wal_append = span("wal_append").saturating_sub(wal_sync);
        let critical_path_nanos = if complete {
            b.root_closed_nanos.unwrap_or(0)
        } else {
            0
        };
        let accounted = lock_wait + evaluate + db_probe + memo + wal_append + wal_sync;
        let other = critical_path_nanos.saturating_sub(accounted);
        LatencyBreakdown {
            lock_wait,
            evaluate,
            db_probe,
            memo,
            wal_append,
            wal_sync,
            other,
            critical_path_nanos,
        }
    }

    /// Every reconstructed trace, ascending by id.
    pub fn traces(&self) -> &[TraceSummary] {
        &self.traces
    }

    /// One trace by id.
    pub fn trace(&self, trace_id: u64) -> Option<&TraceSummary> {
        self.traces.iter().find(|t| t.trace_id == trace_id)
    }

    /// The top-`k` slowest *complete* traces, slowest first (ties by
    /// ascending id, so the report is deterministic).
    pub fn slowest(&self, k: usize) -> Vec<&TraceSummary> {
        let mut complete: Vec<&TraceSummary> = self.traces.iter().filter(|t| t.complete).collect();
        complete.sort_by_key(|t| {
            (
                std::cmp::Reverse(t.breakdown.critical_path_nanos),
                t.trace_id,
            )
        });
        complete.truncate(k);
        complete
    }

    /// `(phase, p50, p99)` nanos across all complete traces, in
    /// [`PHASES`] order plus a final `critical_path` row. Empty when no
    /// trace completed.
    pub fn phase_percentiles(&self) -> Vec<(&'static str, u64, u64)> {
        let complete: Vec<&LatencyBreakdown> = self
            .traces
            .iter()
            .filter(|t| t.complete)
            .map(|t| &t.breakdown)
            .collect();
        if complete.is_empty() {
            return Vec::new();
        }
        let mut rows = Vec::with_capacity(PHASES.len() + 1);
        for (i, name) in PHASES.iter().enumerate() {
            let mut vals: Vec<u64> = complete.iter().map(|b| b.phases()[i].1).collect();
            vals.sort_unstable();
            rows.push((*name, percentile(&vals, 50), percentile(&vals, 99)));
        }
        let mut vals: Vec<u64> = complete.iter().map(|b| b.critical_path_nanos).collect();
        vals.sort_unstable();
        rows.push((
            "critical_path",
            percentile(&vals, 50),
            percentile(&vals, 99),
        ));
        rows
    }

    /// The trace report as one JSON object — per-phase p50/p99 across
    /// complete traces plus the top-`top_k` slow-trace breakdowns —
    /// rendered alongside [`crate::ObsSnapshot::to_json`] so one scrape
    /// carries both the aggregates and the attribution.
    pub fn to_json(&self, top_k: usize) -> String {
        let complete = self.traces.iter().filter(|t| t.complete).count();
        let mut out = format!(
            "{{\"type\":\"trace_report\",\"traces\":{},\"complete\":{},\
             \"unattributed_events\":{},\"orphaned_ends\":{},\"dropped\":{},\"phases\":{{",
            self.traces.len(),
            complete,
            self.unattributed_events,
            self.orphaned_ends,
            self.dropped,
        );
        for (i, (name, p50, p99)) in self.phase_percentiles().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{{\"p50\":{p50},\"p99\":{p99}}}"));
        }
        out.push_str("},\"slowest\":[");
        for (i, t) in self.slowest(top_k).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let b = &t.breakdown;
            out.push_str(&format!(
                "{{\"trace_id\":{},\"critical_path_ns\":{}",
                t.trace_id, b.critical_path_nanos
            ));
            for (name, v) in b.phases() {
                out.push_str(&format!(",\"{name}\":{v}"));
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn percentile(sorted: &[u64], p: u64) -> u64 {
    debug_assert!(!sorted.is_empty());
    // Nearest-rank on the sorted values; p in [0, 100].
    let idx = (p * (sorted.len() as u64 - 1) + 50) / 100;
    sorted[idx as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceCtx;

    /// Synthetic event helper.
    fn ev(seq: u64, kind: &'static str, phase: TracePhase, arg: u64, trace: u64) -> TraceEvent {
        TraceEvent {
            seq,
            at_nanos: seq * 10,
            kind,
            phase,
            arg,
            trace_id: trace,
            thread: 1,
        }
    }

    #[test]
    fn breakdown_attributes_nested_phases_exclusively() {
        // submit[1000] { lock_wait(50) evaluate[400] { db_probe(100)
        // cache_miss(20) } wal_append[300] { wal_sync(200) } }
        let events = vec![
            ev(0, "submit", TracePhase::Begin, 0, 1),
            ev(1, "lock_wait", TracePhase::Instant, 50, 1),
            ev(2, "evaluate", TracePhase::Begin, 0, 1),
            ev(3, "db_probe", TracePhase::Instant, 100, 1),
            ev(4, "cache_miss", TracePhase::Instant, 20, 1),
            ev(5, "evaluate", TracePhase::End, 400, 1),
            ev(6, "wal_append", TracePhase::Begin, 0, 1),
            ev(7, "wal_sync", TracePhase::Instant, 200, 1),
            ev(8, "wal_append", TracePhase::End, 300, 1),
            ev(9, "submit", TracePhase::End, 1000, 1),
        ];
        let a = TraceAnalyzer::from_events(&events, 0);
        assert_eq!(a.traces().len(), 1);
        let t = a.trace(1).unwrap();
        assert!(t.complete);
        let b = &t.breakdown;
        assert_eq!(b.lock_wait, 50);
        assert_eq!(b.db_probe, 100);
        assert_eq!(b.memo, 20);
        assert_eq!(b.evaluate, 400 - 120);
        assert_eq!(b.wal_sync, 200);
        assert_eq!(b.wal_append, 300 - 200);
        assert_eq!(b.critical_path_nanos, 1000);
        assert_eq!(b.other, 1000 - 50 - 280 - 100 - 20 - 100 - 200);
        assert_eq!(b.phase_sum(), 1000, "phases sum to the root wall time");
        // The span tree nests evaluate and wal_append under submit.
        assert_eq!(t.roots.len(), 1);
        let root = &t.roots[0];
        assert_eq!(root.kind, "submit");
        let child_kinds: Vec<_> = root.children.iter().map(|c| c.kind).collect();
        assert_eq!(child_kinds, vec!["evaluate", "wal_append"]);
    }

    #[test]
    fn interleaved_traces_untangle_by_id() {
        let mut events = vec![
            ev(0, "submit", TracePhase::Begin, 0, 1),
            ev(1, "submit", TracePhase::Begin, 0, 2),
            ev(2, "evaluate", TracePhase::Begin, 0, 2),
            ev(3, "evaluate", TracePhase::End, 70, 2),
            ev(4, "submit", TracePhase::End, 500, 1),
            ev(5, "submit", TracePhase::End, 900, 2),
        ];
        // Different threads so the per-thread stacks don't collide.
        for e in &mut events {
            e.thread = e.trace_id;
        }
        let a = TraceAnalyzer::from_events(&events, 0);
        assert_eq!(a.traces().len(), 2);
        assert_eq!(a.trace(1).unwrap().breakdown.critical_path_nanos, 500);
        assert_eq!(a.trace(2).unwrap().breakdown.critical_path_nanos, 900);
        assert_eq!(a.trace(2).unwrap().breakdown.evaluate, 70);
        let slowest = a.slowest(1);
        assert_eq!(slowest[0].trace_id, 2);
    }

    #[test]
    fn orphaned_ends_are_counted_not_treed() {
        // The begin of trace 1's submit was overwritten; its end
        // survives with a valid duration.
        let events = vec![
            ev(10, "submit", TracePhase::End, 800, 1),
            ev(11, "submit", TracePhase::Begin, 0, 2),
            ev(12, "submit", TracePhase::End, 300, 2),
        ];
        let a = TraceAnalyzer::from_events(&events, 10);
        assert_eq!(a.orphaned_ends, 1);
        assert_eq!(orphaned_end_count(&events), 1);
        let t1 = a.trace(1).unwrap();
        assert!(!t1.complete);
        assert_eq!(t1.orphaned_ends, 1);
        assert_eq!(t1.breakdown.critical_path_nanos, 0, "no trusted root");
        assert!(a.trace(2).unwrap().complete);
        assert_eq!(a.dropped, 10);
    }

    #[test]
    fn live_ticket_roundtrip_through_analyzer() {
        let tracer = Tracer::with_capacity(64);
        for _ in 0..3 {
            let ticket = tracer.ticket("submit");
            let ctx = ticket.ctx();
            tracer.instant_in(ctx, "lock_wait", 5);
            let span = tracer.begin_in(ctx, "evaluate");
            drop(span);
        }
        let a = TraceAnalyzer::from_tracer(&tracer);
        assert_eq!(a.traces().len(), 3);
        for t in a.traces() {
            assert!(t.complete);
            let b = &t.breakdown;
            assert_eq!(b.lock_wait, 5);
            assert!(b.critical_path_nanos > 0);
            assert!(b.phase_sum() <= b.critical_path_nanos.max(b.phase_sum()));
            assert_eq!(b.phase_sum(), b.critical_path_nanos);
        }
        let json = a.to_json(2);
        assert!(json.starts_with("{\"type\":\"trace_report\""));
        assert!(json.contains("\"critical_path\""));
        assert!(json.contains("\"slowest\":[{"));
    }

    #[test]
    fn unclosed_spans_surface_as_open_nodes() {
        let events = vec![
            ev(0, "submit", TracePhase::Begin, 0, 1),
            ev(1, "evaluate", TracePhase::Begin, 0, 1),
        ];
        let a = TraceAnalyzer::from_events(&events, 0);
        let t = a.trace(1).unwrap();
        assert!(!t.complete);
        assert_eq!(t.roots.len(), 2, "both open spans surface");
        assert!(t.roots.iter().all(|r| !r.closed));
    }

    #[test]
    fn current_ctx_does_not_leak_into_analysis() {
        // A stray enter() without a tracer still scopes correctly.
        let scope = TraceCtx(42).enter();
        drop(scope);
        assert_eq!(TraceCtx::current(), TraceCtx::NONE);
    }
}
