//! The metrics registry: named counters, gauges, and histograms, plus
//! the shared tracer. One registry spans a whole engine stack — the
//! durable sharded engine threads a single handle through its shards,
//! WAL store, and closure cache, so one [`Registry::snapshot`] shows a
//! submit's full journey.

use crate::hist::{Histogram, HistogramSnapshot};
use crate::trace::{TraceCtx, Tracer, DEFAULT_CAPACITY};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A lock-free monotone counter. Always live — creation is independent
/// of any registry, and registration only makes it visible to
/// snapshots. Clones share the value.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` (relaxed).
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (relaxed).
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A lock-free last-value gauge. Clones share the value.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    value: Arc<AtomicU64>,
}

impl Gauge {
    /// A fresh zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the value (relaxed).
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add one (relaxed) — for up/down gauges like in-flight counts.
    #[inline]
    pub fn incr(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtract one (relaxed). Saturation is the caller's problem: an
    /// unmatched `decr` wraps, exactly like an unmatched lock release.
    #[inline]
    pub fn decr(&self) {
        self.value.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current value (relaxed).
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

struct RegistryInner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    tracer: Tracer,
}

/// Handle to one metrics registry. Clones share state; a disabled
/// handle hands out inert histograms/tracers and empty snapshots, so
/// instrumented code runs at near-zero cost without any flag checks of
/// its own (see the crate docs for the full overhead model).
#[derive(Clone)]
pub struct Registry {
    inner: Option<Arc<RegistryInner>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(_) => write!(f, "Registry(enabled)"),
            None => write!(f, "Registry(disabled)"),
        }
    }
}

impl Default for Registry {
    /// Enabled, with the default trace capacity.
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An enabled registry with a [`DEFAULT_CAPACITY`]-event trace ring.
    pub fn new() -> Self {
        Self::with_trace_capacity(DEFAULT_CAPACITY)
    }

    /// An enabled registry with an explicit trace-ring capacity.
    pub fn with_trace_capacity(capacity: usize) -> Self {
        Registry {
            inner: Some(Arc::new(RegistryInner {
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                tracer: Tracer::with_capacity(capacity),
            })),
        }
    }

    /// A disabled registry: histograms and tracer are inert, snapshots
    /// empty. Counters handed out still count (they cost one atomic
    /// either way) but are not retained.
    pub fn disabled() -> Self {
        Registry { inner: None }
    }

    /// Whether this registry retains and exports anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Get or create the counter registered under `name`.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            None => Counter::new(),
            Some(inner) => inner
                .counters
                .lock()
                .unwrap()
                .entry(name.to_string())
                .or_default()
                .clone(),
        }
    }

    /// Register an existing counter under `name` (the pattern the
    /// engine's always-on metrics use: the counter lives in the engine
    /// struct, the registry only exports it). Replaces any previous
    /// registration under the same name. No-op when disabled.
    pub fn register_counter(&self, name: &str, counter: &Counter) {
        if let Some(inner) = &self.inner {
            inner
                .counters
                .lock()
                .unwrap()
                .insert(name.to_string(), counter.clone());
        }
    }

    /// Get or create the gauge registered under `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            None => Gauge::new(),
            Some(inner) => inner
                .gauges
                .lock()
                .unwrap()
                .entry(name.to_string())
                .or_default()
                .clone(),
        }
    }

    /// Get or create the histogram registered under `name`. Disabled
    /// registries hand out inert handles.
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.inner {
            None => Histogram::disabled(),
            Some(inner) => inner
                .histograms
                .lock()
                .unwrap()
                .entry(name.to_string())
                .or_insert_with(Histogram::enabled)
                .clone(),
        }
    }

    /// The registry's shared tracer (inert when disabled).
    pub fn tracer(&self) -> Tracer {
        match &self.inner {
            None => Tracer::disabled(),
            Some(inner) => inner.tracer.clone(),
        }
    }

    /// Allocate one request-scoped [`TraceCtx`] from the registry's
    /// tracer — the per-submit id every attributed event carries.
    /// Disabled registries hand out [`TraceCtx::NONE`].
    pub fn trace_ctx(&self) -> TraceCtx {
        match &self.inner {
            None => TraceCtx::NONE,
            Some(inner) => inner.tracer.alloc_ctx(),
        }
    }

    /// Arm the tracer's slow-query flight recorder (see
    /// [`Tracer::set_slow_query_log`]). No-op when disabled.
    pub fn set_slow_query_log(&self, threshold_nanos: u64, capacity: usize) {
        if let Some(inner) = &self.inner {
            inner.tracer.set_slow_query_log(threshold_nanos, capacity);
        }
    }

    /// A point-in-time copy of every registered instrument, sorted by
    /// name. Cold path: locks the registration maps, never a recorder.
    pub fn snapshot(&self) -> ObsSnapshot {
        match &self.inner {
            None => ObsSnapshot::default(),
            Some(inner) => ObsSnapshot {
                counters: inner
                    .counters
                    .lock()
                    .unwrap()
                    .iter()
                    .map(|(k, v)| (k.clone(), v.get()))
                    .collect(),
                gauges: inner
                    .gauges
                    .lock()
                    .unwrap()
                    .iter()
                    .map(|(k, v)| (k.clone(), v.get()))
                    .collect(),
                histograms: inner
                    .histograms
                    .lock()
                    .unwrap()
                    .iter()
                    .map(|(k, v)| (k.clone(), v.snapshot()))
                    .collect(),
            },
        }
    }
}

/// Plain-data copy of a [`Registry`] at one instant (name-sorted).
#[derive(Clone, Debug, Default)]
pub struct ObsSnapshot {
    /// `(name, value)` for every registered counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every registered gauge.
    pub gauges: Vec<(String, u64)>,
    /// `(name, snapshot)` for every registered histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl ObsSnapshot {
    /// The counter registered under `name`, if any.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The gauge registered under `name`, if any.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The histogram registered under `name`, if any.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// `hits / (hits + misses)` over two counters, if both are present
    /// and at least one lookup happened.
    pub fn hit_rate(&self, hits: &str, misses: &str) -> Option<f64> {
        let (h, m) = (self.counter(hits)?, self.counter(misses)?);
        if h + m == 0 {
            None
        } else {
            Some(h as f64 / (h + m) as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_state_across_clones_and_lookups() {
        let r = Registry::new();
        let a = r.counter("submits");
        let b = r.counter("submits");
        a.add(2);
        b.incr();
        assert_eq!(r.snapshot().counter("submits"), Some(3));
    }

    #[test]
    fn register_counter_exports_an_external_counter() {
        let r = Registry::new();
        let c = Counter::new();
        c.add(5);
        r.register_counter("engine_submits", &c);
        c.add(1);
        assert_eq!(r.snapshot().counter("engine_submits"), Some(6));
    }

    #[test]
    fn disabled_registry_counts_but_exports_nothing() {
        let r = Registry::disabled();
        let c = r.counter("x");
        c.add(9);
        assert_eq!(c.get(), 9);
        let h = r.histogram("lat");
        h.record(5);
        assert!(!h.is_enabled());
        assert!(!r.tracer().is_enabled());
        let snap = r.snapshot();
        assert!(snap.counters.is_empty() && snap.histograms.is_empty());
    }

    #[test]
    fn snapshot_is_name_sorted() {
        let r = Registry::new();
        r.counter("b").incr();
        r.counter("a").incr();
        let names: Vec<_> = r
            .snapshot()
            .counters
            .iter()
            .map(|(n, _)| n.clone())
            .collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn gauges_and_hit_rate() {
        let r = Registry::new();
        r.gauge("epoch").set(3);
        r.counter("hits").add(3);
        r.counter("misses").add(1);
        let snap = r.snapshot();
        assert_eq!(snap.gauge("epoch"), Some(3));
        assert_eq!(snap.hit_rate("hits", "misses"), Some(0.75));
        assert_eq!(snap.hit_rate("hits", "absent"), None);
    }
}
