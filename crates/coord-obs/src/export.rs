//! Exporters: [`ObsSnapshot`] → JSON and Prometheus text exposition.

use crate::hist::HistogramSnapshot;
use crate::registry::ObsSnapshot;

/// Escape a string for a JSON string literal (RFC 8259 §7).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Sanitize a metric name for Prometheus (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

fn hist_json(h: &HistogramSnapshot) -> String {
    let mut buckets = String::from("[");
    for (k, &c) in h.buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if buckets.len() > 1 {
            buckets.push(',');
        }
        buckets.push_str(&format!("[{},{}]", HistogramSnapshot::bucket_upper(k), c));
    }
    buckets.push(']');
    format!(
        "{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\
         \"mean\":{},\"buckets\":{}}}",
        h.count,
        h.sum,
        h.max,
        h.p50(),
        h.p90(),
        h.p99(),
        h.mean(),
        buckets
    )
}

impl ObsSnapshot {
    /// One JSON object: `counters` and `gauges` as name→value maps,
    /// `histograms` as name→`{count,sum,max,p50,p90,p99,mean,buckets}`
    /// with `buckets` listing only non-empty `[upper_bound, count]`
    /// pairs. Hand-rolled (serde is unavailable offline); names are
    /// escaped per RFC 8259.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape_json(name), v));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape_json(name), v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape_json(name), hist_json(h)));
        }
        out.push_str("}}");
        out
    }

    /// Prometheus text exposition format (version 0.0.4): counters and
    /// gauges as single samples, histograms as cumulative `_bucket{le=}`
    /// series plus `_sum` and `_count`. Only non-empty buckets are
    /// emitted (plus the mandatory `+Inf`).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
        }
        for (name, h) in &self.histograms {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cumulative = 0u64;
            for (k, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                cumulative += c;
                out.push_str(&format!(
                    "{n}_bucket{{le=\"{}\"}} {cumulative}\n",
                    HistogramSnapshot::bucket_upper(k)
                ));
            }
            out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum, h.count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample() -> ObsSnapshot {
        let r = Registry::new();
        r.counter("engine_submits").add(7);
        r.gauge("store_epoch").set(2);
        let h = r.histogram("submit_latency_nanos");
        h.record(100);
        h.record(200);
        h.record(90_000);
        r.snapshot()
    }

    #[test]
    fn json_export_carries_quantiles_and_buckets() {
        let json = sample().to_json();
        assert!(json.contains("\"engine_submits\":7"));
        assert!(json.contains("\"store_epoch\":2"));
        assert!(json.contains("\"submit_latency_nanos\":{\"count\":3"));
        assert!(json.contains("\"p99\":"));
        assert!(json.contains("\"buckets\":[["));
        // Only non-empty buckets are listed: three values, ≤ 3 pairs.
        let buckets = json.split("\"buckets\":").nth(1).unwrap();
        assert!(buckets.matches('[').count() <= 4);
    }

    #[test]
    fn prometheus_export_is_cumulative_with_inf() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE engine_submits counter"));
        assert!(text.contains("engine_submits 7"));
        assert!(text.contains("# TYPE store_epoch gauge"));
        assert!(text.contains("# TYPE submit_latency_nanos histogram"));
        assert!(text.contains("submit_latency_nanos_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("submit_latency_nanos_count 3"));
        // Cumulative counts end at the total.
        let last_bucket = text
            .lines()
            .rfind(|l| l.contains("_bucket{le=") && !l.contains("+Inf"))
            .unwrap();
        assert!(last_bucket.ends_with(" 3"));
    }

    #[test]
    fn prometheus_names_are_sanitized() {
        assert_eq!(prom_name("a-b.c"), "a_b_c");
        assert_eq!(prom_name("9lives"), "_9lives");
    }

    #[test]
    fn empty_snapshot_exports_cleanly() {
        let snap = ObsSnapshot::default();
        assert_eq!(
            snap.to_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
        assert_eq!(snap.to_prometheus(), "");
    }
}
