//! Property tests for the graph substrate against naive references.
//!
//! The reference implementations below use the index-pair form of the
//! reachability matrix throughout; iterator adapters are used wherever
//! a loop touches only one row.

use coord_graph::reach::{count_simple_paths, reachable_from, weakly_connected_components};
use coord_graph::{condensation, tarjan_scc, topological_order, DiGraph, NodeId};
use proptest::prelude::*;
use std::collections::HashSet;

#[derive(Clone, Debug)]
struct GraphSpec {
    n: usize,
    edges: Vec<(usize, usize)>,
}

fn graph_strategy(max_n: usize) -> impl Strategy<Value = GraphSpec> {
    (1..max_n).prop_flat_map(|n| {
        prop::collection::vec((0..n, 0..n), 0..(2 * n))
            .prop_map(move |edges| GraphSpec { n, edges })
    })
}

fn build(spec: &GraphSpec) -> DiGraph<usize> {
    let mut g = DiGraph::new();
    for i in 0..spec.n {
        g.add_node(i);
    }
    for &(u, v) in &spec.edges {
        g.add_edge(NodeId(u), NodeId(v), ());
    }
    g
}

/// Floyd–Warshall reachability (reference).
fn fw_reach(spec: &GraphSpec) -> Vec<Vec<bool>> {
    let n = spec.n;
    let mut r = vec![vec![false; n]; n];
    for (i, row) in r.iter_mut().enumerate() {
        row[i] = true;
    }
    for &(u, v) in &spec.edges {
        r[u][v] = true;
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                if r[i][k] && r[k][j] {
                    r[i][j] = true;
                }
            }
        }
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn reachable_from_matches_floyd_warshall(spec in graph_strategy(12)) {
        let g = build(&spec);
        let r = fw_reach(&spec);
        for (start, row) in r.iter().enumerate() {
            let got: HashSet<usize> = reachable_from(&g, NodeId(start))
                .into_iter()
                .map(NodeId::index)
                .collect();
            let want: HashSet<usize> =
                (0..spec.n).filter(|&j| row[j]).collect();
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn scc_partition_and_condensation_dag(spec in graph_strategy(12)) {
        let g = build(&spec);
        let comps = tarjan_scc(&g);
        // Components partition the nodes.
        let mut seen = vec![false; spec.n];
        for comp in &comps {
            for node in comp {
                prop_assert!(!seen[node.index()], "node in two components");
                seen[node.index()] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));

        // The condensation is acyclic and respects reverse-topo ids.
        let cond = condensation(&g);
        prop_assert!(topological_order(&cond.dag).is_some());
        for e in cond.dag.edge_ids() {
            let (u, v) = cond.dag.endpoints(e);
            prop_assert!(v.index() < u.index());
        }

        // Mutual reachability characterizes same-component membership.
        let r = fw_reach(&spec);
        for (u, row) in r.iter().enumerate() {
            for (v, &fwd) in row.iter().enumerate() {
                let same = cond.component_of(NodeId(u)) == cond.component_of(NodeId(v));
                prop_assert_eq!(same, fwd && r[v][u], "nodes {} {}", u, v);
            }
        }
    }

    #[test]
    fn weak_components_match_union_find(spec in graph_strategy(14)) {
        let g = build(&spec);
        // Union-find reference over undirected edges.
        let mut parent: Vec<usize> = (0..spec.n).collect();
        fn find(p: &mut Vec<usize>, x: usize) -> usize {
            if p[x] != x {
                let r = find(p, p[x]);
                p[x] = r;
            }
            p[x]
        }
        for &(u, v) in &spec.edges {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru != rv {
                parent[ru] = rv;
            }
        }
        let comps = weakly_connected_components(&g);
        for comp in &comps {
            let root = find(&mut parent, comp[0].index());
            for node in comp {
                prop_assert_eq!(find(&mut parent, node.index()), root);
            }
        }
        // Count matches the number of distinct roots.
        let roots: HashSet<usize> =
            (0..spec.n).map(|x| find(&mut parent, x)).collect();
        prop_assert_eq!(comps.len(), roots.len());
    }

    #[test]
    fn simple_path_count_zero_iff_unreachable(spec in graph_strategy(9)) {
        let g = build(&spec);
        let r = fw_reach(&spec);
        for (u, row) in r.iter().enumerate() {
            for (v, &reach) in row.iter().enumerate() {
                if u == v {
                    continue;
                }
                let paths = count_simple_paths(&g, NodeId(u), NodeId(v), 5);
                prop_assert_eq!(paths > 0, reach, "{} -> {}", u, v);
            }
        }
    }
}
