//! Topological ordering (Kahn's algorithm).

use crate::digraph::{DiGraph, NodeId};
use std::collections::VecDeque;

/// A topological order of a DAG: every edge `u → v` has `u` before `v`.
///
/// Returns `None` if the graph contains a cycle.
pub fn topological_order<N, E>(g: &DiGraph<N, E>) -> Option<Vec<NodeId>> {
    let n = g.node_count();
    let mut in_deg: Vec<usize> = (0..n).map(|v| g.in_degree(NodeId(v))).collect();
    let mut queue: VecDeque<usize> = (0..n).filter(|&v| in_deg[v] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop_front() {
        order.push(NodeId(v));
        for w in g.successors(NodeId(v)) {
            in_deg[w.index()] -= 1;
            if in_deg[w.index()] == 0 {
                queue.push_back(w.index());
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// A reverse topological order: every edge `u → v` has `v` before `u`,
/// i.e. successors are processed before their predecessors — the order in
/// which the SCC Coordination Algorithm visits the components graph.
pub fn reverse_topological_order<N, E>(g: &DiGraph<N, E>) -> Option<Vec<NodeId>> {
    topological_order(g).map(|mut order| {
        order.reverse();
        order
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> DiGraph<()> {
        let mut g = DiGraph::new();
        for _ in 0..n {
            g.add_node(());
        }
        for i in 0..n.saturating_sub(1) {
            g.add_edge(NodeId(i), NodeId(i + 1), ());
        }
        g
    }

    #[test]
    fn chain_order() {
        let g = chain(5);
        let order = topological_order(&g).unwrap();
        assert_eq!(order, (0..5).map(NodeId).collect::<Vec<_>>());
        let rev = reverse_topological_order(&g).unwrap();
        assert_eq!(rev, (0..5).rev().map(NodeId).collect::<Vec<_>>());
    }

    #[test]
    fn cycle_detected() {
        let mut g = chain(3);
        g.add_edge(NodeId(2), NodeId(0), ());
        assert!(topological_order(&g).is_none());
        assert!(reverse_topological_order(&g).is_none());
    }

    #[test]
    fn empty_graph() {
        let g: DiGraph<()> = DiGraph::new();
        assert_eq!(topological_order(&g).unwrap(), Vec::<NodeId>::new());
    }

    #[test]
    fn order_respects_all_edges() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..30 {
            let n = rng.random_range(1..20);
            let mut g: DiGraph<()> = DiGraph::new();
            for _ in 0..n {
                g.add_node(());
            }
            // Random DAG: edges only from smaller to larger index.
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.random_bool(0.3) {
                        g.add_edge(NodeId(u), NodeId(v), ());
                    }
                }
            }
            let order = topological_order(&g).expect("random DAG is acyclic");
            let pos: Vec<usize> = {
                let mut p = vec![0; n];
                for (i, node) in order.iter().enumerate() {
                    p[node.index()] = i;
                }
                p
            };
            for e in g.edge_ids() {
                let (u, v) = g.endpoints(e);
                assert!(pos[u.index()] < pos[v.index()]);
            }
        }
    }
}
