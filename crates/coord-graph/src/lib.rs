//! # coord-graph — directed graph algorithms
//!
//! The JGraphT substitute for the coordination system: compact directed
//! graphs with the exact operations the paper's algorithms need —
//!
//! * [`DiGraph`]: adjacency-list directed graph (parallel edges allowed,
//!   as in the *extended* coordination graph of Section 2.3),
//! * [`scc::tarjan_scc`]: **iterative** Tarjan strongly-connected
//!   components (iterative so the 1000-node graphs of Figure 6 and the
//!   82k-node stress graphs don't overflow the stack),
//! * [`condense::condensation`]: the components graph `G'` of Section 4,
//! * [`topo::topological_order`] / [`topo::reverse_topological_order`]:
//!   Kahn's algorithm over the (acyclic) components graph,
//! * [`reach`]: DFS reachability, closures `R(q)`, weakly connected
//!   components, and simple-path counting (for the single-connectedness
//!   check of Definition 6),
//! * [`unionfind::UnionFind`]: disjoint-set union — the incremental
//!   weakly-connected-component index used by the online coordination
//!   service,
//! * [`index`]: the shared atom-pattern index — tokens bucketed by
//!   (relation, first-argument constant) — that both the batch
//!   algorithms (`coord-core`) and the online service (`coord-engine`)
//!   use to enumerate unification candidates in near-linear time,
//! * [`dot`]: Graphviz export used by the examples to render the paper's
//!   Figures 2, 3, and 9.

#![forbid(unsafe_code)]

pub mod condense;
pub mod digraph;
pub mod dot;
pub mod index;
pub mod reach;
pub mod scc;
pub mod topo;
pub mod unionfind;

pub use condense::{condensation, Condensation};
pub use digraph::{DiGraph, EdgeId, NodeId};
pub use index::{keys_related, AtomIndex, KeyPattern, PatternIndex, Polarity};
pub use scc::tarjan_scc;
pub use topo::{reverse_topological_order, topological_order};
pub use unionfind::UnionFind;
