//! Reachability, closures, weakly connected components, simple paths.

use crate::digraph::{DiGraph, NodeId};
use std::collections::VecDeque;

/// All nodes reachable from `start` (including `start`), via BFS.
///
/// For a query `q` in the coordination graph this computes the closure
/// `R(q)` of Section 4: the set of queries in SCCs reachable from `q`'s
/// SCC — precisely the candidate coordinating sets among which the SCC
/// Coordination Algorithm picks a maximum.
pub fn reachable_from<N, E>(g: &DiGraph<N, E>, start: NodeId) -> Vec<NodeId> {
    let mut visited = vec![false; g.node_count()];
    let mut queue = VecDeque::from([start]);
    visited[start.index()] = true;
    let mut out = Vec::new();
    while let Some(v) = queue.pop_front() {
        out.push(v);
        for w in g.successors(v) {
            if !visited[w.index()] {
                visited[w.index()] = true;
                queue.push_back(w);
            }
        }
    }
    out
}

/// Weakly connected components: partitions nodes ignoring edge direction.
///
/// The Youtopia evaluation loop dispatches each arriving query to its
/// weakly connected component of the coordination graph.
pub fn weakly_connected_components<N, E>(g: &DiGraph<N, E>) -> Vec<Vec<NodeId>> {
    let n = g.node_count();
    let mut comp = vec![usize::MAX; n];
    let mut comps: Vec<Vec<NodeId>> = Vec::new();
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        let ci = comps.len();
        let mut members = Vec::new();
        let mut queue = VecDeque::from([start]);
        comp[start] = ci;
        while let Some(v) = queue.pop_front() {
            members.push(NodeId(v));
            let nv = NodeId(v);
            for w in g.successors(nv).chain(g.predecessors(nv)) {
                if comp[w.index()] == usize::MAX {
                    comp[w.index()] = ci;
                    queue.push_back(w.index());
                }
            }
        }
        comps.push(members);
    }
    comps
}

/// Count simple paths (no repeated *nodes*) from `from` to `to`, giving up
/// once the count exceeds `cap`. Used by the single-connectedness check
/// (Definition 6 asks for at most one simple path between every pair), so
/// `cap = 1` suffices there.
pub fn count_simple_paths<N, E>(g: &DiGraph<N, E>, from: NodeId, to: NodeId, cap: usize) -> usize {
    let mut visited = vec![false; g.node_count()];
    let mut count = 0usize;
    dfs_paths(g, from, to, &mut visited, &mut count, cap);
    count
}

fn dfs_paths<N, E>(
    g: &DiGraph<N, E>,
    v: NodeId,
    to: NodeId,
    visited: &mut [bool],
    count: &mut usize,
    cap: usize,
) {
    if *count > cap {
        return;
    }
    if v == to {
        *count += 1;
        return;
    }
    visited[v.index()] = true;
    for w in g.successors(v) {
        if !visited[w.index()] {
            dfs_paths(g, w, to, visited, count, cap);
            if *count > cap {
                break;
            }
        }
    }
    visited[v.index()] = false;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn diamond() -> DiGraph<()> {
        // 0 → 1 → 3, 0 → 2 → 3
        let mut g = DiGraph::new();
        for _ in 0..4 {
            g.add_node(());
        }
        g.add_edge(NodeId(0), NodeId(1), ());
        g.add_edge(NodeId(0), NodeId(2), ());
        g.add_edge(NodeId(1), NodeId(3), ());
        g.add_edge(NodeId(2), NodeId(3), ());
        g
    }

    #[test]
    fn reachable_closure() {
        let g = diamond();
        let r: HashSet<usize> = reachable_from(&g, NodeId(0))
            .into_iter()
            .map(NodeId::index)
            .collect();
        assert_eq!(r, HashSet::from([0, 1, 2, 3]));
        let r1: HashSet<usize> = reachable_from(&g, NodeId(1))
            .into_iter()
            .map(NodeId::index)
            .collect();
        assert_eq!(r1, HashSet::from([1, 3]));
    }

    #[test]
    fn weak_components_ignore_direction() {
        let mut g = diamond();
        // Island: 4, 5 connected by a directed edge.
        g.add_node(());
        g.add_node(());
        g.add_edge(NodeId(5), NodeId(4), ());
        let comps = weakly_connected_components(&g);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].len(), 4);
        assert_eq!(comps[1].len(), 2);
    }

    #[test]
    fn simple_path_counting() {
        let g = diamond();
        assert_eq!(count_simple_paths(&g, NodeId(0), NodeId(3), 10), 2);
        assert_eq!(count_simple_paths(&g, NodeId(1), NodeId(2), 10), 0);
        assert_eq!(count_simple_paths(&g, NodeId(0), NodeId(0), 10), 1);
    }

    #[test]
    fn simple_path_cap_short_circuits() {
        let g = diamond();
        // With cap 1 we only need to know "more than one": returns 2 and
        // stops.
        assert!(count_simple_paths(&g, NodeId(0), NodeId(3), 1) > 1);
    }

    #[test]
    fn cycle_paths_are_simple() {
        // 0 → 1 → 2 → 0: from 0 to 2 exactly one simple path.
        let mut g: DiGraph<()> = DiGraph::new();
        for _ in 0..3 {
            g.add_node(());
        }
        g.add_edge(NodeId(0), NodeId(1), ());
        g.add_edge(NodeId(1), NodeId(2), ());
        g.add_edge(NodeId(2), NodeId(0), ());
        assert_eq!(count_simple_paths(&g, NodeId(0), NodeId(2), 10), 1);
    }
}
