//! Adjacency-list directed graphs.

use std::fmt;

/// Index of a node in a [`DiGraph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Index of an edge in a [`DiGraph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub usize);

impl EdgeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[derive(Clone, Debug)]
struct Edge<E> {
    from: NodeId,
    to: NodeId,
    weight: E,
}

/// A directed graph with node weights `N` and edge weights `E`.
///
/// Parallel edges and self-loops are allowed — the extended coordination
/// graph of the paper is a directed *multigraph* whose edges are labelled
/// with (postcondition atom, head atom) pairs.
#[derive(Clone, Debug, Default)]
pub struct DiGraph<N, E = ()> {
    nodes: Vec<N>,
    edges: Vec<Edge<E>>,
    /// Outgoing edge ids per node.
    out_edges: Vec<Vec<EdgeId>>,
    /// Incoming edge ids per node.
    in_edges: Vec<Vec<EdgeId>>,
}

impl<N, E> DiGraph<N, E> {
    /// An empty graph.
    pub fn new() -> Self {
        DiGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
            out_edges: Vec::new(),
            in_edges: Vec::new(),
        }
    }

    /// An empty graph with reserved node capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        DiGraph {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            out_edges: Vec::with_capacity(nodes),
            in_edges: Vec::with_capacity(nodes),
        }
    }

    /// Add a node, returning its id.
    pub fn add_node(&mut self, weight: N) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(weight);
        self.out_edges.push(Vec::new());
        self.in_edges.push(Vec::new());
        id
    }

    /// Add a directed edge `from → to`, returning its id.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, weight: E) -> EdgeId {
        assert!(from.0 < self.nodes.len(), "edge source out of bounds");
        assert!(to.0 < self.nodes.len(), "edge target out of bounds");
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge { from, to, weight });
        self.out_edges[from.0].push(id);
        self.in_edges[to.0].push(id);
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Node weight.
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.0]
    }

    /// Mutable node weight.
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id.0]
    }

    /// Edge weight.
    pub fn edge(&self, id: EdgeId) -> &E {
        &self.edges[id.0].weight
    }

    /// The (source, target) endpoints of an edge.
    pub fn endpoints(&self, id: EdgeId) -> (NodeId, NodeId) {
        let e = &self.edges[id.0];
        (e.from, e.to)
    }

    /// Iterate over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Iterate over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len()).map(EdgeId)
    }

    /// Outgoing edges of `node`.
    pub fn out_edges(&self, node: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.out_edges[node.0].iter().copied()
    }

    /// Incoming edges of `node`.
    pub fn in_edges(&self, node: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.in_edges[node.0].iter().copied()
    }

    /// Successor nodes of `node` (with multiplicity for parallel edges).
    pub fn successors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_edges[node.0].iter().map(|e| self.edges[e.0].to)
    }

    /// Predecessor nodes of `node` (with multiplicity).
    pub fn predecessors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.in_edges[node.0].iter().map(|e| self.edges[e.0].from)
    }

    /// Out-degree of `node`.
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out_edges[node.0].len()
    }

    /// In-degree of `node`.
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.in_edges[node.0].len()
    }

    /// Whether an edge `from → to` exists (ignoring weights).
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.out_edges[from.0]
            .iter()
            .any(|e| self.edges[e.0].to == to)
    }

    /// All node weights.
    pub fn node_weights(&self) -> impl Iterator<Item = &N> {
        self.nodes.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph<&'static str> {
        // a → b → d, a → c → d
        let mut g = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b, ());
        g.add_edge(a, c, ());
        g.add_edge(b, d, ());
        g.add_edge(c, d, ());
        g
    }

    #[test]
    fn counts() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn degrees() {
        let g = diamond();
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.in_degree(NodeId(0)), 0);
        assert_eq!(g.in_degree(NodeId(3)), 2);
        assert_eq!(g.out_degree(NodeId(3)), 0);
    }

    #[test]
    fn successors_and_predecessors() {
        let g = diamond();
        let succ: Vec<_> = g.successors(NodeId(0)).collect();
        assert_eq!(succ, vec![NodeId(1), NodeId(2)]);
        let pred: Vec<_> = g.predecessors(NodeId(3)).collect();
        assert_eq!(pred, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn parallel_edges_and_self_loops() {
        let mut g: DiGraph<(), u32> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1);
        g.add_edge(a, b, 2);
        g.add_edge(a, a, 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.out_degree(a), 3);
        assert_eq!(g.successors(a).filter(|&n| n == b).count(), 2);
        assert!(g.has_edge(a, a));
    }

    #[test]
    fn edge_weights_and_endpoints() {
        let mut g: DiGraph<&str, &str> = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let e = g.add_edge(a, b, "lbl");
        assert_eq!(*g.edge(e), "lbl");
        assert_eq!(g.endpoints(e), (a, b));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn edge_to_missing_node_panics() {
        let mut g: DiGraph<()> = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, NodeId(5), ());
    }

    #[test]
    fn node_weights_iteration() {
        let g = diamond();
        let ws: Vec<_> = g.node_weights().copied().collect();
        assert_eq!(ws, vec!["a", "b", "c", "d"]);
    }
}
