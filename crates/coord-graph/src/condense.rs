//! Condensation: the components graph `G'` of Section 4.

use crate::digraph::{DiGraph, NodeId};
use crate::scc::tarjan_scc;
use std::collections::HashSet;

/// The condensation of a directed graph: one node per strongly connected
/// component, with an edge `S1 → S2` whenever some `u ∈ S1`, `v ∈ S2` has
/// an edge `(u, v)` in the original graph. The condensation is always a
/// DAG.
#[derive(Clone, Debug)]
pub struct Condensation {
    /// The components DAG; node weights are component indices into
    /// [`Condensation::components`].
    pub dag: DiGraph<usize>,
    /// Original nodes of each component, indexed by component id.
    pub components: Vec<Vec<NodeId>>,
    /// Component id of each original node.
    pub component_of: Vec<usize>,
}

impl Condensation {
    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether the original graph was empty.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// The component id containing an original node.
    pub fn component_of(&self, node: NodeId) -> usize {
        self.component_of[node.index()]
    }

    /// The original nodes of component `c`.
    pub fn members(&self, c: usize) -> &[NodeId] {
        &self.components[c]
    }
}

/// Compute the condensation of `g`.
///
/// Component ids follow Tarjan output order, i.e. **reverse topological
/// order**: successors of a component always have *smaller* ids. The SCC
/// Coordination Algorithm exploits this by processing components in id
/// order.
pub fn condensation<N, E>(g: &DiGraph<N, E>) -> Condensation {
    let components = tarjan_scc(g);
    let mut component_of = vec![usize::MAX; g.node_count()];
    for (ci, comp) in components.iter().enumerate() {
        for node in comp {
            component_of[node.index()] = ci;
        }
    }

    let mut dag: DiGraph<usize> = DiGraph::with_capacity(components.len(), components.len());
    for ci in 0..components.len() {
        dag.add_node(ci);
    }
    let mut seen: HashSet<(usize, usize)> = HashSet::new();
    for e in g.edge_ids() {
        let (u, v) = g.endpoints(e);
        let (cu, cv) = (component_of[u.index()], component_of[v.index()]);
        if cu != cv && seen.insert((cu, cv)) {
            dag.add_edge(NodeId(cu), NodeId(cv), ());
        }
    }

    Condensation {
        dag,
        components,
        component_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn condensation_of_two_cycles() {
        // 0 ↔ 1 → 2 ↔ 3
        let mut g: DiGraph<()> = DiGraph::new();
        for _ in 0..4 {
            g.add_node(());
        }
        g.add_edge(NodeId(0), NodeId(1), ());
        g.add_edge(NodeId(1), NodeId(0), ());
        g.add_edge(NodeId(1), NodeId(2), ());
        g.add_edge(NodeId(2), NodeId(3), ());
        g.add_edge(NodeId(3), NodeId(2), ());
        let c = condensation(&g);
        assert_eq!(c.len(), 2);
        assert_eq!(c.dag.edge_count(), 1);
        // Reverse topo ids: sink component {2,3} is component 0.
        assert_eq!(c.component_of(NodeId(2)), 0);
        assert_eq!(c.component_of(NodeId(0)), 1);
        assert!(c.dag.has_edge(NodeId(1), NodeId(0)));
    }

    #[test]
    fn parallel_cross_edges_are_collapsed() {
        let mut g: DiGraph<()> = DiGraph::new();
        for _ in 0..2 {
            g.add_node(());
        }
        g.add_edge(NodeId(0), NodeId(1), ());
        g.add_edge(NodeId(0), NodeId(1), ());
        let c = condensation(&g);
        assert_eq!(c.len(), 2);
        assert_eq!(c.dag.edge_count(), 1);
    }

    #[test]
    fn dag_property_successors_have_smaller_ids() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..30 {
            let n = rng.random_range(1..15);
            let mut g: DiGraph<()> = DiGraph::new();
            for _ in 0..n {
                g.add_node(());
            }
            for u in 0..n {
                for v in 0..n {
                    if rng.random_bool(0.2) {
                        g.add_edge(NodeId(u), NodeId(v), ());
                    }
                }
            }
            let c = condensation(&g);
            for e in c.dag.edge_ids() {
                let (from, to) = c.dag.endpoints(e);
                assert!(
                    to.index() < from.index(),
                    "condensation edge must point to a smaller (earlier) id"
                );
            }
        }
    }

    #[test]
    fn members_partition_the_nodes() {
        let mut g: DiGraph<()> = DiGraph::new();
        for _ in 0..5 {
            g.add_node(());
        }
        g.add_edge(NodeId(0), NodeId(1), ());
        g.add_edge(NodeId(1), NodeId(0), ());
        let c = condensation(&g);
        let total: usize = (0..c.len()).map(|i| c.members(i).len()).sum();
        assert_eq!(total, 5);
    }
}
