//! The shared atom-pattern index: tokens bucketed by
//! (relation, coordination-attribute constant).
//!
//! Both halves of the system enumerate unification candidates the same
//! way — most entangled workloads write answer atoms as `R(user, tuple)`
//! with a constant first argument, so bucketing atoms by (relation, first
//! argument) turns all-pairs unifiability scans into near-linear lookups:
//!
//! * the **batch** algorithms (`coord-core`) index the head atoms of a
//!   query set once per run and look up each postcondition against it
//!   (graph construction, the safety check, preprocessing),
//! * the **online** service (`coord-engine`) keeps a two-sided
//!   [`AtomIndex`] of heads *and* postconditions alive across submits,
//!   so a new query unifies only against candidate partners.
//!
//! A key pattern `(relation, Some(c))` indexes an atom whose first
//! argument is the constant `c`; `(relation, None)` indexes an atom whose
//! first argument is a variable (or which has no arguments) and therefore
//! matches every bucket of its relation. Candidate discovery is
//! conservative: it may propose partners whose atoms do not actually
//! unify position-by-position — callers confirm with a full positional
//! check — which only ever makes candidate sets *larger* (never hides a
//! true match), so correctness is preserved while the work drops from
//! O(n²) pairs to O(n·k) bucket hits (`k` = bucket width).

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// A key pattern: relation plus the first-argument constant, or `None`
/// for a variable/zero-arity first argument (matches every constant).
pub type KeyPattern<R, C> = (R, Option<C>);

/// Whether two key patterns can refer to the same atoms: equal relation,
/// and either constant is a wildcard or they are the same constant. This
/// is the (symmetric) routing relation used by the sharded engine — two
/// queries whose patterns are related must live on the same shard.
pub fn keys_related<R: Eq, C: Eq>(a: &KeyPattern<R, C>, b: &KeyPattern<R, C>) -> bool {
    a.0 == b.0 && (a.1.is_none() || b.1.is_none() || a.1 == b.1)
}

/// Which side of the coordination edge an atom sits on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Polarity {
    /// Head atoms: what the query *produces*.
    Provides,
    /// Postcondition atoms: what the query *requires*.
    Requires,
}

/// One-sided pattern index: relation → first-arg constant → tokens.
///
/// The token type `T` is whatever the caller uses to name an indexed
/// atom: the online engine uses slab slots (`usize`), the batch
/// algorithms use `(query, head position)` pairs.
///
/// A relation's buckets are kept in a `BTreeMap` (hence the `C: Ord`
/// bound) so wildcard lookups enumerate candidates in a *deterministic*
/// order — the batch sweeps' reproducibility guarantees (identical
/// candidate order and identical instrumented unify-call counts across
/// runs, sequential or parallel) depend on it.
#[derive(Clone, Debug)]
pub struct PatternIndex<R, C, T> {
    buckets: HashMap<R, BTreeMap<Option<C>, Vec<T>>>,
}

impl<R: Clone + Eq + Hash, C: Clone + Ord, T: Copy + PartialEq> Default for PatternIndex<R, C, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<R: Clone + Eq + Hash, C: Clone + Ord, T: Copy + PartialEq> PatternIndex<R, C, T> {
    /// An empty index.
    pub fn new() -> Self {
        PatternIndex {
            buckets: HashMap::new(),
        }
    }

    /// Index `token` under `key`.
    pub fn insert(&mut self, token: T, key: &KeyPattern<R, C>) {
        self.buckets
            .entry(key.0.clone())
            .or_default()
            .entry(key.1.clone())
            .or_default()
            .push(token);
    }

    /// Un-index one occurrence of `token` under `key` (inverse of
    /// [`PatternIndex::insert`]); empty buckets are pruned.
    pub fn remove(&mut self, token: T, key: &KeyPattern<R, C>) {
        if let Some(rel) = self.buckets.get_mut(&key.0) {
            if let Some(bucket) = rel.get_mut(&key.1) {
                if let Some(pos) = bucket.iter().position(|&t| t == token) {
                    bucket.swap_remove(pos);
                }
                if bucket.is_empty() {
                    rel.remove(&key.1);
                }
            }
            if rel.is_empty() {
                self.buckets.remove(&key.0);
            }
        }
    }

    /// Tokens whose indexed atoms may unify with an atom of pattern
    /// `key`; appends to `out` and returns the number of candidates
    /// examined (the figure the instrumented unify counters aggregate).
    pub fn candidates_into(&self, key: &KeyPattern<R, C>, out: &mut Vec<T>) -> u64 {
        let Some(rel) = self.buckets.get(&key.0) else {
            return 0;
        };
        let mut examined = 0u64;
        match &key.1 {
            Some(c) => {
                for k in [Some(c.clone()), None] {
                    if let Some(bucket) = rel.get(&k) {
                        examined += bucket.len() as u64;
                        out.extend_from_slice(bucket);
                    }
                }
            }
            None => {
                // A wildcard first argument matches every bucket of the
                // relation (in deterministic key order: the wildcard
                // bucket first, then constants ascending).
                for bucket in rel.values() {
                    examined += bucket.len() as u64;
                    out.extend_from_slice(bucket);
                }
            }
        }
        examined
    }
}

/// The two-sided persistent index over all pending queries' head and
/// postcondition atoms, used by the online coordination service.
#[derive(Clone, Debug)]
pub struct AtomIndex<R, C> {
    provides: PatternIndex<R, C, usize>,
    requires: PatternIndex<R, C, usize>,
}

impl<R: Clone + Eq + Hash, C: Clone + Ord> Default for AtomIndex<R, C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<R: Clone + Eq + Hash, C: Clone + Ord> AtomIndex<R, C> {
    /// An empty index.
    pub fn new() -> Self {
        AtomIndex {
            provides: PatternIndex::new(),
            requires: PatternIndex::new(),
        }
    }

    /// Index one key pattern of `token`.
    pub fn insert(&mut self, token: usize, polarity: Polarity, key: &KeyPattern<R, C>) {
        match polarity {
            Polarity::Provides => self.provides.insert(token, key),
            Polarity::Requires => self.requires.insert(token, key),
        }
    }

    /// Remove one key pattern of `token` (inverse of [`AtomIndex::insert`]).
    pub fn remove(&mut self, token: usize, polarity: Polarity, key: &KeyPattern<R, C>) {
        match polarity {
            Polarity::Provides => self.provides.remove(token, key),
            Polarity::Requires => self.requires.remove(token, key),
        }
    }

    /// Candidate partner tokens for a query with the given provided and
    /// required key patterns: existing *requirers* matching a provided
    /// key, plus existing *providers* matching a required key. Returns
    /// `(deduplicated tokens, candidate pairs examined)`.
    pub fn candidates(
        &self,
        provides: &[KeyPattern<R, C>],
        requires: &[KeyPattern<R, C>],
    ) -> (Vec<usize>, u64) {
        let mut out = Vec::new();
        let mut examined = 0u64;
        for key in provides {
            examined += self.requires.candidates_into(key, &mut out);
        }
        for key in requires {
            examined += self.provides.candidates_into(key, &mut out);
        }
        out.sort_unstable();
        out.dedup();
        (out, examined)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Key = KeyPattern<&'static str, i64>;

    fn key(rel: &'static str, c: Option<i64>) -> Key {
        (rel, c)
    }

    #[test]
    fn exact_constant_buckets_link() {
        let mut idx: AtomIndex<&str, i64> = AtomIndex::new();
        // Token 0 provides R(7, ·); token 1 requires R(7, ·); token 2
        // requires R(8, ·).
        idx.insert(0, Polarity::Provides, &key("R", Some(7)));
        idx.insert(1, Polarity::Requires, &key("R", Some(7)));
        idx.insert(2, Polarity::Requires, &key("R", Some(8)));

        // A new query providing R(7, ·) finds only the matching requirer.
        let (cands, examined) = idx.candidates(&[key("R", Some(7))], &[]);
        assert_eq!(cands, vec![1]);
        assert_eq!(examined, 1);

        // A new query requiring R(7, ·) finds the provider.
        let (cands, _) = idx.candidates(&[], &[key("R", Some(7))]);
        assert_eq!(cands, vec![0]);
    }

    #[test]
    fn wildcard_matches_every_bucket_of_the_relation() {
        let mut idx: AtomIndex<&str, i64> = AtomIndex::new();
        idx.insert(0, Polarity::Provides, &key("R", Some(1)));
        idx.insert(1, Polarity::Provides, &key("R", Some(2)));
        idx.insert(2, Polarity::Provides, &key("S", Some(1)));

        // Requiring R with a wildcard first argument hits both R buckets
        // but not S.
        let (cands, _) = idx.candidates(&[], &[key("R", None)]);
        assert_eq!(cands, vec![0, 1]);

        // A wildcard *provider* is found by exact-constant requirers.
        idx.insert(3, Polarity::Provides, &key("R", None));
        let (cands, _) = idx.candidates(&[], &[key("R", Some(1))]);
        assert_eq!(cands, vec![0, 3]);
    }

    #[test]
    fn remove_unindexes_and_prunes_empty_buckets() {
        let mut idx: AtomIndex<&str, i64> = AtomIndex::new();
        idx.insert(0, Polarity::Provides, &key("R", Some(1)));
        idx.remove(0, Polarity::Provides, &key("R", Some(1)));
        let (cands, examined) = idx.candidates(&[], &[key("R", Some(1))]);
        assert!(cands.is_empty());
        assert_eq!(examined, 0);
    }

    #[test]
    fn relatedness_is_symmetric_and_wildcard_aware() {
        assert!(keys_related(&key("R", Some(1)), &key("R", Some(1))));
        assert!(!keys_related(&key("R", Some(1)), &key("R", Some(2))));
        assert!(!keys_related(&key("R", Some(1)), &key("S", Some(1))));
        assert!(keys_related(&key("R", None), &key("R", Some(2))));
        assert!(keys_related(&key("R", Some(2)), &key("R", None)));
        assert!(keys_related(&key("R", None), &key("R", None)));
    }

    #[test]
    fn candidates_deduplicate_multi_key_matches() {
        let mut idx: AtomIndex<&str, i64> = AtomIndex::new();
        // Token 0 both provides and requires R(1, ·): a new query doing
        // the same matches it twice but reports it once.
        idx.insert(0, Polarity::Provides, &key("R", Some(1)));
        idx.insert(0, Polarity::Requires, &key("R", Some(1)));
        let (cands, examined) = idx.candidates(&[key("R", Some(1))], &[key("R", Some(1))]);
        assert_eq!(cands, vec![0]);
        assert_eq!(examined, 2);
    }

    #[test]
    fn pattern_index_supports_structured_tokens() {
        // The batch algorithms index (query, head position) pairs.
        let mut idx: PatternIndex<&str, i64, (u32, u32)> = PatternIndex::new();
        idx.insert((0, 0), &key("R", Some(5)));
        idx.insert((0, 1), &key("R", None));
        idx.insert((1, 0), &key("R", Some(6)));

        let mut out = Vec::new();
        let examined = idx.candidates_into(&key("R", Some(5)), &mut out);
        assert_eq!(out, vec![(0, 0), (0, 1)]);
        assert_eq!(examined, 2);

        // Wildcard lookups examine every bucket of the relation.
        out.clear();
        let examined = idx.candidates_into(&key("R", None), &mut out);
        assert_eq!(examined, 3);

        idx.remove((0, 1), &key("R", None));
        out.clear();
        let examined = idx.candidates_into(&key("R", Some(6)), &mut out);
        assert_eq!(out, vec![(1, 0)]);
        assert_eq!(examined, 1);
    }
}
