//! Graphviz (DOT) export, used by the examples to render the paper's
//! coordination-graph figures.

use crate::digraph::DiGraph;

/// Render `g` in Graphviz DOT syntax. Node and edge labels are produced by
/// the given closures.
pub fn to_dot<N, E>(
    g: &DiGraph<N, E>,
    name: &str,
    node_label: impl Fn(&N) -> String,
    edge_label: impl Fn(&E) -> Option<String>,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("digraph {name} {{\n"));
    for v in g.node_ids() {
        out.push_str(&format!(
            "  n{} [label=\"{}\"];\n",
            v.index(),
            escape(&node_label(g.node(v)))
        ));
    }
    for e in g.edge_ids() {
        let (u, v) = g.endpoints(e);
        match edge_label(g.edge(e)) {
            Some(lbl) => out.push_str(&format!(
                "  n{} -> n{} [label=\"{}\"];\n",
                u.index(),
                v.index(),
                escape(&lbl)
            )),
            None => out.push_str(&format!("  n{} -> n{};\n", u.index(), v.index())),
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::NodeId;

    #[test]
    fn renders_nodes_and_edges() {
        let mut g: DiGraph<&str, &str> = DiGraph::new();
        let a = g.add_node("qC");
        let b = g.add_node("qG");
        g.add_edge(a, b, "R");
        let dot = to_dot(&g, "G", std::string::ToString::to_string, |e| {
            Some(e.to_string())
        });
        assert!(dot.contains("digraph G {"));
        assert!(dot.contains("n0 [label=\"qC\"]"));
        assert!(dot.contains("n0 -> n1 [label=\"R\"]"));
    }

    #[test]
    fn unlabeled_edges() {
        let mut g: DiGraph<u32> = DiGraph::new();
        let a = g.add_node(1);
        g.add_edge(a, a, ());
        let dot = to_dot(&g, "G", std::string::ToString::to_string, |()| None);
        assert!(dot.contains("n0 -> n0;"));
        let _ = NodeId(0);
    }

    #[test]
    fn escapes_quotes() {
        let mut g: DiGraph<&str> = DiGraph::new();
        g.add_node("say \"hi\"");
        let dot = to_dot(&g, "G", std::string::ToString::to_string, |()| None);
        assert!(dot.contains("say \\\"hi\\\""));
    }
}
