//! Strongly connected components (iterative Tarjan).

use crate::digraph::{DiGraph, NodeId};

/// Compute the strongly connected components of `g` with Tarjan's
/// algorithm, implemented iteratively with an explicit DFS stack so that
/// long chains (e.g. the list workloads of Figure 4) cannot overflow the
/// call stack.
///
/// Components are returned in **reverse topological order** of the
/// condensation: if component `A` has an edge to component `B`, then `B`
/// appears before `A` in the result. (This is the natural output order of
/// Tarjan's algorithm and exactly the processing order the SCC
/// Coordination Algorithm needs.)
pub fn tarjan_scc<N, E>(g: &DiGraph<N, E>) -> Vec<Vec<NodeId>> {
    let n = g.node_count();
    const UNVISITED: usize = usize::MAX;

    // Materialize successor lists once: the DFS loop below revisits each
    // frame once per child, and recomputing successors there would make
    // high-degree nodes quadratic.
    let succ: Vec<Vec<usize>> = (0..n)
        .map(|v| {
            g.successors(NodeId(v))
                .map(super::digraph::NodeId::index)
                .collect()
        })
        .collect();

    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components: Vec<Vec<NodeId>> = Vec::new();

    // Explicit DFS frame: (node, iterator position into its successors).
    let mut call_stack: Vec<(usize, usize)> = Vec::new();

    for start in 0..n {
        if index[start] != UNVISITED {
            continue;
        }
        call_stack.push((start, 0));
        index[start] = next_index;
        lowlink[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;

        while let Some(&mut (v, ref mut child_pos)) = call_stack.last_mut() {
            let out = &succ[v];
            if *child_pos < out.len() {
                let w = out[*child_pos];
                *child_pos += 1;
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack invariant");
                        on_stack[w] = false;
                        comp.push(NodeId(w));
                        if w == v {
                            break;
                        }
                    }
                    components.push(comp);
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn comp_sets(comps: &[Vec<NodeId>]) -> Vec<HashSet<usize>> {
        comps
            .iter()
            .map(|c| c.iter().map(|n| n.index()).collect())
            .collect()
    }

    #[test]
    fn single_node_no_edges() {
        let mut g: DiGraph<()> = DiGraph::new();
        g.add_node(());
        let comps = tarjan_scc(&g);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0], vec![NodeId(0)]);
    }

    #[test]
    fn two_cycles_and_a_bridge() {
        // 0 ↔ 1 → 2 ↔ 3
        let mut g: DiGraph<()> = DiGraph::new();
        for _ in 0..4 {
            g.add_node(());
        }
        g.add_edge(NodeId(0), NodeId(1), ());
        g.add_edge(NodeId(1), NodeId(0), ());
        g.add_edge(NodeId(1), NodeId(2), ());
        g.add_edge(NodeId(2), NodeId(3), ());
        g.add_edge(NodeId(3), NodeId(2), ());
        let comps = comp_sets(&tarjan_scc(&g));
        assert_eq!(comps.len(), 2);
        // Reverse topological: {2,3} (the sink) comes first.
        assert_eq!(comps[0], HashSet::from([2, 3]));
        assert_eq!(comps[1], HashSet::from([0, 1]));
    }

    #[test]
    fn dag_gives_singletons_in_reverse_topo_order() {
        // 0 → 1 → 2
        let mut g: DiGraph<()> = DiGraph::new();
        for _ in 0..3 {
            g.add_node(());
        }
        g.add_edge(NodeId(0), NodeId(1), ());
        g.add_edge(NodeId(1), NodeId(2), ());
        let comps = tarjan_scc(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![NodeId(2)]);
        assert_eq!(comps[1], vec![NodeId(1)]);
        assert_eq!(comps[2], vec![NodeId(0)]);
    }

    #[test]
    fn self_loop_is_a_component() {
        let mut g: DiGraph<()> = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, a, ());
        let comps = tarjan_scc(&g);
        assert_eq!(comps.len(), 1);
    }

    #[test]
    fn full_cycle_is_one_component() {
        let mut g: DiGraph<()> = DiGraph::new();
        let n = 100;
        for _ in 0..n {
            g.add_node(());
        }
        for i in 0..n {
            g.add_edge(NodeId(i), NodeId((i + 1) % n), ());
        }
        let comps = tarjan_scc(&g);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), n);
    }

    #[test]
    fn long_chain_does_not_overflow() {
        // 200k-node chain: a recursive Tarjan would blow the stack here.
        let mut g: DiGraph<()> = DiGraph::new();
        let n = 200_000;
        for _ in 0..n {
            g.add_node(());
        }
        for i in 0..n - 1 {
            g.add_edge(NodeId(i), NodeId(i + 1), ());
        }
        let comps = tarjan_scc(&g);
        assert_eq!(comps.len(), n);
    }

    #[test]
    fn matches_naive_reachability_on_small_graphs() {
        // Cross-check Tarjan against the O(n^3) definition: u,v in the same
        // SCC iff u reaches v and v reaches u.
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(42);
        for _case in 0..50 {
            let n = rng.random_range(1..9);
            let mut g: DiGraph<()> = DiGraph::new();
            for _ in 0..n {
                g.add_node(());
            }
            for u in 0..n {
                for v in 0..n {
                    if u != v && rng.random_bool(0.25) {
                        g.add_edge(NodeId(u), NodeId(v), ());
                    }
                }
            }
            // Floyd–Warshall reachability.
            let mut reach = vec![vec![false; n]; n];
            for (u, row) in reach.iter_mut().enumerate() {
                row[u] = true;
                for v in g.successors(NodeId(u)) {
                    row[v.index()] = true;
                }
            }
            for k in 0..n {
                for i in 0..n {
                    for j in 0..n {
                        if reach[i][k] && reach[k][j] {
                            reach[i][j] = true;
                        }
                    }
                }
            }
            let comps = tarjan_scc(&g);
            // Build a component-id map.
            let mut comp_of = vec![usize::MAX; n];
            for (ci, comp) in comps.iter().enumerate() {
                for node in comp {
                    comp_of[node.index()] = ci;
                }
            }
            for u in 0..n {
                for v in 0..n {
                    let same = reach[u][v] && reach[v][u];
                    assert_eq!(
                        comp_of[u] == comp_of[v],
                        same,
                        "nodes {u},{v} disagree (n={n})"
                    );
                }
            }
        }
    }
}
