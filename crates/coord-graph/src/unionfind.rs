//! Disjoint-set union (union-find) with path compression and union by
//! rank — the incremental counterpart of [`crate::reach::
//! weakly_connected_components`].
//!
//! The online coordination service maintains the weakly connected
//! components of the coordination graph *incrementally*: a submitted
//! query becomes a fresh singleton and is unioned with every candidate
//! partner, instead of recomputing all components from scratch. Union-find
//! cannot delete elements, so retirement resets exactly the surviving
//! members of an affected component to singletons (sound because every
//! parent pointer stays within its component) and re-links them locally.

/// A disjoint-set forest over dense `usize` elements.
#[derive(Clone, Debug, Default)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// A forest of `n` singleton sets `0..n`.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    /// Number of elements (not sets).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the forest has no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Append one new singleton element, returning its id.
    pub fn push(&mut self) -> usize {
        let id = self.parent.len();
        self.parent.push(id);
        self.rank.push(0);
        id
    }

    /// Ensure element `id` exists (appending singletons as needed).
    pub fn ensure(&mut self, id: usize) {
        while self.parent.len() <= id {
            self.push();
        }
    }

    /// Representative of the set containing `x`, with path compression.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Second pass: point every node on the path at the root.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Representative without compression (no `&mut` needed).
    pub fn find_immutable(&self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        root
    }

    /// Merge the sets containing `a` and `b`. Returns the surviving root,
    /// or `None` if they were already in the same set.
    pub fn union(&mut self, a: usize, b: usize) -> Option<usize> {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return None;
        }
        let (winner, loser) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[loser] = winner;
        if self.rank[winner] == self.rank[loser] {
            self.rank[winner] += 1;
        }
        Some(winner)
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Reset each element of `elems` to its own singleton set.
    ///
    /// Sound only when `elems` is closed under parent pointers — e.g. the
    /// complete membership of one or more sets. The coordination engine
    /// uses this on retirement: it resets *all* remaining members of an
    /// affected component and re-links them through the atom index.
    pub fn reset(&mut self, elems: &[usize]) {
        for &e in elems {
            self.parent[e] = e;
            self.rank[e] = 0;
        }
    }

    /// Group all elements by representative: `(root, members)` pairs.
    pub fn sets(&mut self) -> Vec<(usize, Vec<usize>)> {
        use std::collections::HashMap;
        let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
        for x in 0..self.parent.len() {
            let r = self.find(x);
            groups.entry(r).or_default().push(x);
        }
        let mut out: Vec<(usize, Vec<usize>)> = groups.into_iter().collect();
        out.sort_unstable_by_key(|(r, _)| *r);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_unions() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.len(), 5);
        assert!(!uf.connected(0, 1));
        assert!(uf.union(0, 1).is_some());
        assert!(uf.union(1, 2).is_some());
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        // Re-union of the same set is a no-op.
        assert!(uf.union(0, 2).is_none());
    }

    #[test]
    fn push_appends_singletons() {
        let mut uf = UnionFind::new(0);
        let a = uf.push();
        let b = uf.push();
        assert_eq!((a, b), (0, 1));
        assert!(!uf.connected(a, b));
        uf.union(a, b);
        assert!(uf.connected(a, b));
    }

    #[test]
    fn ensure_extends() {
        let mut uf = UnionFind::new(1);
        uf.ensure(4);
        assert_eq!(uf.len(), 5);
        assert!(!uf.connected(0, 4));
    }

    #[test]
    fn find_immutable_agrees_with_find() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 1);
        uf.union(2, 3);
        uf.union(1, 3);
        for x in 0..4 {
            assert_eq!(uf.find_immutable(x), uf.find(x));
        }
    }

    #[test]
    fn reset_splits_a_whole_component() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(3, 4);
        // Reset the whole {0,1,2} component.
        uf.reset(&[0, 1, 2]);
        assert!(!uf.connected(0, 1));
        assert!(!uf.connected(1, 2));
        // The untouched component survives.
        assert!(uf.connected(3, 4));
        // Re-link a subset.
        uf.union(0, 2);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 1));
    }

    #[test]
    fn sets_partition_all_elements() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 4);
        uf.union(1, 2);
        let sets = uf.sets();
        assert_eq!(sets.len(), 3);
        let total: usize = sets.iter().map(|(_, m)| m.len()).sum();
        assert_eq!(total, 5);
        for (root, members) in &sets {
            assert!(members.contains(root));
        }
    }

    #[test]
    fn deep_chain_compresses() {
        // Union a long chain, then find from the tail: path compression
        // must leave every node pointing near the root.
        let mut uf = UnionFind::new(1000);
        for i in 0..999 {
            uf.union(i, i + 1);
        }
        let root = uf.find(999);
        assert_eq!(uf.find(0), root);
    }
}
