//! Measurement utilities shared by the criterion benches and the
//! `reproduce` binary.

use std::time::{Duration, Instant};

/// One measured point of a figure's series.
#[derive(Clone, Debug)]
pub struct MeasuredPoint {
    /// The x-axis value (number of queries, table size, ...).
    pub x: u64,
    /// Mean wall-clock time per run, in milliseconds.
    pub mean_ms: f64,
    /// Number of runs averaged.
    pub runs: u32,
}

/// A named series of measured points (one figure line).
#[derive(Clone, Debug)]
pub struct Series {
    pub name: String,
    pub points: Vec<MeasuredPoint>,
}

impl Series {
    /// An empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Record a point.
    pub fn push(&mut self, x: u64, mean_ms: f64, runs: u32) {
        self.points.push(MeasuredPoint { x, mean_ms, runs });
    }

    /// Render the series as an aligned text table (the form the
    /// `reproduce` binary prints and EXPERIMENTS.md records).
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "## {}\n{:>10}  {:>12}  {:>6}\n",
            self.name, "x", "mean_ms", "runs"
        );
        for p in &self.points {
            out.push_str(&format!(
                "{:>10}  {:>12.3}  {:>6}\n",
                p.x, p.mean_ms, p.runs
            ));
        }
        out
    }

    /// Render the series as a JSON object. Hand-rolled (serde is
    /// unavailable offline): numbers are emitted via Rust's `Display`
    /// (`f64` prints as a valid JSON number for all finite values) and
    /// the name is escaped per RFC 8259.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"name\":\"");
        out.push_str(&escape_json(&self.name));
        out.push_str("\",\"points\":[");
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"x\":{},\"mean_ms\":{},\"runs\":{}}}",
                p.x, p.mean_ms, p.runs
            ));
        }
        out.push_str("]}");
        out
    }

    /// Least-squares slope of `mean_ms` against `x` — used to sanity-check
    /// the paper's "grows linearly" claims.
    pub fn slope(&self) -> f64 {
        let n = self.points.len() as f64;
        if n < 2.0 {
            return 0.0;
        }
        let sx: f64 = self.points.iter().map(|p| p.x as f64).sum();
        let sy: f64 = self.points.iter().map(|p| p.mean_ms).sum();
        let sxx: f64 = self.points.iter().map(|p| (p.x as f64).powi(2)).sum();
        let sxy: f64 = self.points.iter().map(|p| p.x as f64 * p.mean_ms).sum();
        (n * sxy - sx * sy) / (n * sxx - sx * sx)
    }
}

/// Render several series as one JSON array (the `reproduce --json`
/// output).
pub fn series_to_json(series: &[Series]) -> String {
    let mut out = String::from("[");
    for (i, s) in series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&s.to_json());
    }
    out.push(']');
    out
}

/// Escape a string for a JSON string literal (RFC 8259 §7): quote,
/// backslash, and control characters.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Run `f` `runs` times and return the mean wall-clock duration.
pub fn measure<T>(runs: u32, mut f: impl FnMut() -> T) -> Duration {
    assert!(runs > 0);
    let start = Instant::now();
    for _ in 0..runs {
        std::hint::black_box(f());
    }
    start.elapsed() / runs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_mean() {
        let d = measure(4, || std::thread::sleep(Duration::from_millis(1)));
        assert!(d >= Duration::from_millis(1));
        assert!(d < Duration::from_millis(50));
    }

    #[test]
    fn series_table_and_slope() {
        let mut s = Series::new("fig");
        s.push(10, 1.0, 3);
        s.push(20, 2.0, 3);
        s.push(30, 3.0, 3);
        let t = s.to_table();
        assert!(t.contains("## fig"));
        assert!((s.slope() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn series_to_json_is_well_formed() {
        let mut s = Series::new("Figure 4 — list");
        s.push(10, 1.5, 3);
        s.push(20, 2.25, 3);
        assert_eq!(
            s.to_json(),
            "{\"name\":\"Figure 4 — list\",\"points\":[\
             {\"x\":10,\"mean_ms\":1.5,\"runs\":3},\
             {\"x\":20,\"mean_ms\":2.25,\"runs\":3}]}"
        );
        let empty = Series::new("empty");
        assert_eq!(empty.to_json(), "{\"name\":\"empty\",\"points\":[]}");
    }

    #[test]
    fn json_escapes_special_characters() {
        let s = Series::new("a \"quoted\"\\name\nwith\tcontrols\u{1}");
        let json = s.to_json();
        assert!(json.contains("a \\\"quoted\\\"\\\\name\\nwith\\tcontrols\\u0001"));
    }

    #[test]
    fn series_array_joins_objects() {
        let a = Series::new("a");
        let b = Series::new("b");
        let json = series_to_json(&[a, b]);
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert_eq!(json.matches("\"name\"").count(), 2);
        assert_eq!(series_to_json(&[]), "[]");
    }
}
