//! Measurement utilities shared by the criterion benches and the
//! `reproduce` binary.

use std::time::{Duration, Instant};

/// One measured point of a figure's series.
#[derive(Clone, Debug)]
pub struct MeasuredPoint {
    /// The x-axis value (number of queries, table size, ...).
    pub x: u64,
    /// Mean wall-clock time per run, in milliseconds.
    pub mean_ms: f64,
    /// Number of runs averaged.
    pub runs: u32,
}

/// A named series of measured points (one figure line).
#[derive(Clone, Debug)]
pub struct Series {
    pub name: String,
    pub points: Vec<MeasuredPoint>,
}

impl Series {
    /// An empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Record a point.
    pub fn push(&mut self, x: u64, mean_ms: f64, runs: u32) {
        self.points.push(MeasuredPoint { x, mean_ms, runs });
    }

    /// Render the series as an aligned text table (the form the
    /// `reproduce` binary prints and EXPERIMENTS.md records).
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "## {}\n{:>10}  {:>12}  {:>6}\n",
            self.name, "x", "mean_ms", "runs"
        );
        for p in &self.points {
            out.push_str(&format!(
                "{:>10}  {:>12.3}  {:>6}\n",
                p.x, p.mean_ms, p.runs
            ));
        }
        out
    }

    /// Least-squares slope of `mean_ms` against `x` — used to sanity-check
    /// the paper's "grows linearly" claims.
    pub fn slope(&self) -> f64 {
        let n = self.points.len() as f64;
        if n < 2.0 {
            return 0.0;
        }
        let sx: f64 = self.points.iter().map(|p| p.x as f64).sum();
        let sy: f64 = self.points.iter().map(|p| p.mean_ms).sum();
        let sxx: f64 = self.points.iter().map(|p| (p.x as f64).powi(2)).sum();
        let sxy: f64 = self.points.iter().map(|p| p.x as f64 * p.mean_ms).sum();
        (n * sxy - sx * sy) / (n * sxx - sx * sx)
    }
}

/// Run `f` `runs` times and return the mean wall-clock duration.
pub fn measure<T>(runs: u32, mut f: impl FnMut() -> T) -> Duration {
    assert!(runs > 0);
    let start = Instant::now();
    for _ in 0..runs {
        std::hint::black_box(f());
    }
    start.elapsed() / runs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_mean() {
        let d = measure(4, || std::thread::sleep(Duration::from_millis(1)));
        assert!(d >= Duration::from_millis(1));
        assert!(d < Duration::from_millis(50));
    }

    #[test]
    fn series_table_and_slope() {
        let mut s = Series::new("fig");
        s.push(10, 1.0, 3);
        s.push(20, 2.0, 3);
        s.push(30, 3.0, 3);
        let t = s.to_table();
        assert!(t.contains("## fig"));
        assert!((s.slope() - 0.1).abs() < 1e-9);
    }
}
