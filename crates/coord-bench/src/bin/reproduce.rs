//! Regenerate every figure of the paper's Section 6 evaluation as text
//! series (the data recorded in EXPERIMENTS.md).
//!
//! Usage: `cargo run --release -p coord-bench --bin reproduce
//! [--quick] [--json] [--only <section>]`
//!
//! `--quick` shrinks repetition counts for a fast smoke run. `--json`
//! emits every series as one machine-readable JSON array on stdout
//! instead of the aligned text tables. `--only <section>` runs a single
//! section (`fig4` … `fig8`, `hardness`, `shard_skew`, `differential`,
//! `observability`, `trace`, `storage`) — CI uses `--only shard_skew
//! --json`, `--only differential --json`, `--only observability
//! --json`, `--only trace --json`, and `--only storage --json` to emit
//! the `BENCH_shard_skew.json`, `BENCH_differential.json`,
//! `BENCH_observability.json`, `BENCH_trace.json`, and
//! `BENCH_storage.json` trajectory artifacts.

use coord_bench::{drive_phase1, measure, series_to_json, Series};
use coord_core::bruteforce;
use coord_core::consistent::ConsistentCoordinator;
use coord_core::engine::{CoordinationEngine, Placement, RebalanceConfig, SharedEngine};
use coord_core::persist::DurableSharedEngine;
use coord_core::scc::{preprocess, SccCoordinator};
use coord_core::ClosureCache;
use coord_db::BackendKind;
use coord_gen::social::SLASHDOT_ROWS;
use coord_gen::workloads::{
    activity_chain_queries, activity_db, fig4_queries, fig5_queries, fig7_instance, fig8_instance,
    pool_db, unsat_cycle_with_spokes, zipf_chain_workload,
};
use coord_sat::{dpll_solve, random_3sat, reduction1};
use coord_store::temp::TempDir;
use coord_store::{DurabilityOptions, SyncPolicy};
use rand::prelude::*;

/// Collects every measured series; prints tables as it goes unless the
/// run asked for JSON, in which case one array is emitted at the end.
struct Report {
    json: bool,
    only: Option<String>,
    series: Vec<Series>,
}

impl Report {
    /// Whether `--only` (if given) selects this section.
    fn wants(&self, section: &str) -> bool {
        self.only.as_deref().is_none_or(|only| only == section)
    }

    fn add(&mut self, series: Series) {
        if !self.json {
            print!("{}", series.to_table());
        }
        self.series.push(series);
    }

    /// A commentary line (slope, paper expectation); suppressed in JSON
    /// mode to keep stdout parseable.
    fn note(&self, msg: std::fmt::Arguments<'_>) {
        if !self.json {
            println!("{msg}");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let only = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| args.get(i + 1).cloned());
    const SECTIONS: &[&str] = &[
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "hardness",
        "shard_skew",
        "differential",
        "observability",
        "trace",
        "storage",
    ];
    if let Some(section) = &only {
        // A typo must fail loudly, not upload an empty artifact.
        if !SECTIONS.contains(&section.as_str()) {
            eprintln!("unknown --only section `{section}`; expected one of {SECTIONS:?}");
            std::process::exit(2);
        }
    }
    let runs: u32 = if quick { 2 } else { 10 };

    let mut report = Report {
        json,
        only,
        series: Vec::new(),
    };
    report.note(format_args!(
        "Reproducing the evaluation of \"The Complexity of Social Coordination\"\n\
         (VLDB 2012). One table per paper figure; times are means over {runs} runs.\n"
    ));

    if report.wants("fig4") {
        fig4(runs, quick, &mut report);
    }
    if report.wants("fig5") {
        fig5(runs, quick, &mut report);
    }
    if report.wants("fig6") {
        fig6(if quick { 1 } else { 3 }, quick, &mut report);
    }
    if report.wants("fig7") {
        fig7(runs, quick, &mut report);
    }
    if report.wants("fig8") {
        fig8(runs, quick, &mut report);
    }
    if report.wants("hardness") {
        hardness(quick, &mut report);
    }
    if report.wants("shard_skew") {
        shard_skew(quick, &mut report);
    }
    if report.wants("differential") {
        differential(quick, &mut report);
    }
    if report.wants("observability") {
        observability(quick, &mut report);
    }
    if report.wants("trace") {
        trace(quick, &mut report);
    }
    if report.wants("storage") {
        storage(quick, &mut report);
    }

    if json {
        println!("{}", series_to_json(&report.series));
    }
}

/// Figure 4: SCC algorithm, list structure, Slashdot-sized pool.
fn fig4(runs: u32, quick: bool, report: &mut Report) {
    let rows = if quick { 5_000 } else { SLASHDOT_ROWS };
    let db = pool_db(rows);
    let mut series = Series::new(format!(
        "Figure 4 — SCC algorithm, list structure ({rows}-row table)"
    ));
    for n in [10, 20, 40, 60, 80, 100] {
        let queries = fig4_queries(n);
        let d = measure(runs, || {
            let out = SccCoordinator::new(&db).run(&queries).unwrap();
            assert_eq!(out.best().unwrap().len(), n);
        });
        series.push(n as u64, d.as_secs_f64() * 1e3, runs);
    }
    let slope = series.slope();
    report.add(series);
    report.note(format_args!(
        "slope ≈ {slope:.4} ms/query (paper: linear growth)\n"
    ));
}

/// Figure 5: SCC algorithm, scale-free structure, averaged over 10 seeds.
fn fig5(runs: u32, quick: bool, report: &mut Report) {
    let rows = if quick { 5_000 } else { SLASHDOT_ROWS };
    let db = pool_db(rows);
    let mut series = Series::new(format!(
        "Figure 5 — SCC algorithm, scale-free structure ({rows}-row table, 10 seeds)"
    ));
    for n in [10, 20, 40, 60, 80, 100] {
        let workloads: Vec<_> = (0..10u64)
            .map(|seed| fig5_queries(n, 2, &mut StdRng::seed_from_u64(seed)))
            .collect();
        let d = measure(runs, || {
            for queries in &workloads {
                let out = SccCoordinator::new(&db).run(queries).unwrap();
                assert!(out.best().is_some());
            }
        });
        // Report the per-graph mean, matching the paper's averaging.
        series.push(n as u64, d.as_secs_f64() * 1e3 / 10.0, runs * 10);
    }
    let slope = series.slope();
    report.add(series);
    report.note(format_args!(
        "slope ≈ {slope:.4} ms/query (paper: linear, faster than Figure 4)\n"
    ));
}

/// Figure 6: graph construction + preprocessing only, 100–1000 queries.
fn fig6(runs: u32, quick: bool, report: &mut Report) {
    let db = pool_db(1_000);
    let sizes: &[usize] = if quick {
        &[100, 400, 1000]
    } else {
        &[100, 200, 400, 600, 800, 1000]
    };
    let mut series = Series::new("Figure 6 — graph processing time, scale-free (10 seeds)");
    for &n in sizes {
        let workloads: Vec<_> = (0..10u64)
            .map(|seed| fig5_queries(n, 2, &mut StdRng::seed_from_u64(seed)))
            .collect();
        let d = measure(runs, || {
            for queries in &workloads {
                let pre = preprocess(&db, queries).unwrap();
                assert!(!pre.cond.is_empty());
            }
        });
        series.push(n as u64, d.as_secs_f64() * 1e3 / 10.0, runs * 10);
    }
    report.add(series);
    report.note(format_args!("(paper: negligible, grows very slowly)\n"));
}

/// Figure 7: Consistent algorithm vs number of option values.
fn fig7(runs: u32, quick: bool, report: &mut Report) {
    let sizes: &[usize] = if quick {
        &[100, 400, 1000]
    } else {
        &[100, 200, 400, 600, 800, 1000]
    };
    let mut series =
        Series::new("Figure 7 — Consistent algorithm vs #values (50 queries, complete friends)");
    for &rows in sizes {
        let (db, config, queries) = fig7_instance(50, rows);
        let coordinator = ConsistentCoordinator::new(&db, config).unwrap();
        let d = measure(runs, || {
            let out = coordinator.run(&queries).unwrap();
            assert_eq!(out.stats.values_considered, rows);
        });
        series.push(rows as u64, d.as_secs_f64() * 1e3, runs);
    }
    let slope = series.slope();
    report.add(series);
    report.note(format_args!(
        "slope ≈ {slope:.4} ms/value (paper: linear growth)\n"
    ));
}

/// Figure 8: Consistent algorithm vs number of queries.
fn fig8(runs: u32, quick: bool, report: &mut Report) {
    let sizes: &[usize] = if quick {
        &[10, 50, 100]
    } else {
        &[10, 20, 40, 60, 80, 100]
    };
    let mut series =
        Series::new("Figure 8 — Consistent algorithm vs #queries (100-tuple flights table)");
    for &n in sizes {
        let (db, config, queries) = fig8_instance(n, 100);
        let coordinator = ConsistentCoordinator::new(&db, config).unwrap();
        let d = measure(runs, || {
            let out = coordinator.run(&queries).unwrap();
            assert_eq!(out.best.as_ref().map(|s| s.members.len()), Some(n));
        });
        series.push(n as u64, d.as_secs_f64() * 1e3, runs);
    }
    let slope = series.slope();
    report.add(series);
    report.note(format_args!(
        "slope ≈ {slope:.4} ms/query (paper: linear growth)\n"
    ));
}

/// Section 3 (extra experiment): the hardness separation — DPLL vs
/// exhaustive entangled search on the Theorem 1 reduction.
fn hardness(quick: bool, report: &mut Report) {
    let max_vars = if quick { 3 } else { 5 };
    let mut dpll_series = Series::new("Hardness — DPLL on random 3SAT");
    let mut bf_series =
        Series::new("Hardness — brute-force entangled search on the Theorem 1 reduction");
    for n_vars in 2..=max_vars {
        let formulas: Vec<_> = (0..4u64)
            .map(|seed| random_3sat(n_vars, n_vars + 1, &mut StdRng::seed_from_u64(seed)))
            .collect();
        let d1 = measure(3, || {
            formulas.iter().filter(|f| dpll_solve(f).is_some()).count()
        });
        dpll_series.push(n_vars as u64, d1.as_secs_f64() * 1e3 / 4.0, 12);

        let reductions: Vec<_> = formulas.iter().map(reduction1::reduce).collect();
        let agreement: Vec<bool> = formulas
            .iter()
            .zip(&reductions)
            .map(|(f, r)| {
                let sat = dpll_solve(f).is_some();
                let ent = bruteforce::any_coordinating_set(&r.db, &r.queries)
                    .unwrap()
                    .best
                    .is_some();
                sat == ent
            })
            .collect();
        assert!(
            agreement.iter().all(|&a| a),
            "reduction must agree with DPLL"
        );
        let d2 = measure(3, || {
            reductions
                .iter()
                .filter(|r| {
                    bruteforce::any_coordinating_set(&r.db, &r.queries)
                        .unwrap()
                        .best
                        .is_some()
                })
                .count()
        });
        bf_series.push(n_vars as u64, d2.as_secs_f64() * 1e3 / 4.0, 12);
    }
    report.add(dpll_series);
    report.add(bf_series);
    report.note(format_args!(
        "(Theorem 1: the entangled side grows exponentially; DPLL stays flat)"
    ));
}

/// Extra experiment (engine scaling): shard skew under a Zipf keystone
/// workload — the hottest shard's share of evaluation work over the
/// steady-state second half of phase 1, size-blind round-robin
/// placement vs the adaptive rebalancer. Values are percentages (the
/// balanced share on 4 shards is 25%), so the series doubles as the
/// perf-trajectory record the CI `BENCH_shard_skew.json` step captures.
fn shard_skew(quick: bool, report: &mut Report) {
    const SHARDS: usize = 4;
    const REBALANCE_EVERY: usize = 32;
    let cases: &[(usize, usize)] = if quick {
        &[(48, 24)]
    } else {
        &[(32, 16), (48, 24), (96, 40)]
    };
    let config = RebalanceConfig {
        skew_threshold: 0.3,
        min_window_load: 24,
        max_moves: 8,
    };
    let mut baseline_series = Series::new(format!(
        "Shard skew — hottest-shard eval share %, round-robin baseline ({SHARDS} shards)"
    ));
    let mut rebalanced_series = Series::new(format!(
        "Shard skew — hottest-shard eval share %, with rebalancer ({SHARDS} shards)"
    ));
    for &(groups, k) in cases {
        let db = pool_db(100 * groups + k + 2);
        let w = zipf_chain_workload(groups, k, 42);
        let n = w.phase1.len();
        // Same driver as the `shard_skew` bench gate, so the trajectory
        // figure and the CI assertion cannot drift apart.
        let run = |rebalance_every: Option<usize>| -> f64 {
            let engine = SharedEngine::with_config(&db, SHARDS, Placement::RoundRobin, config);
            100.0 * drive_phase1(&engine, &w.phase1, rebalance_every).hottest_share
        };
        baseline_series.push(n as u64, run(None), 1);
        rebalanced_series.push(n as u64, run(Some(REBALANCE_EVERY)), 1);
    }
    report.add(baseline_series);
    report.add(rebalanced_series);
    report.note(format_args!(
        "(adaptive rebalancing: lower is better; {:.0}% is perfectly balanced)",
        100.0 / SHARDS as f64
    ));
}

/// Extra experiment (differential closure evaluation): grounding-work
/// operations vs n on the list workload, memoized delta joins vs
/// from-scratch re-evaluation. From-scratch pays Σ|closure| ≈ n²/2;
/// differential pays ~2n − 1. Counter-based (deterministic on a 1-CPU
/// runner), asserted while measuring, and emitted as the CI
/// `BENCH_differential.json` trajectory artifact.
fn differential(quick: bool, report: &mut Report) {
    let db = pool_db(1_000);
    let sizes: &[usize] = if quick {
        &[20, 60, 100]
    } else {
        &[10, 20, 40, 60, 80, 100]
    };
    let mut diff_series =
        Series::new("Differential — grounding work on the list workload, memoized delta joins");
    let mut scratch_series =
        Series::new("Differential — grounding work on the list workload, from-scratch baseline");
    let mut hit_rate_series =
        Series::new("Differential — closure-cache hit rate % on a warm second run");
    let work_at = |n: usize, scratch: bool| -> u64 {
        let coordinator = SccCoordinator::new(&db);
        let coordinator = if scratch {
            coordinator.with_from_scratch_evaluation()
        } else {
            coordinator
        };
        let out = coordinator.run(&fig4_queries(n)).unwrap();
        // Both evaluation modes must produce byte-identical answers.
        assert_eq!(out.found.len(), n);
        assert_eq!(out.best().unwrap().len(), n);
        out.stats.ground_work
    };
    // Cache-hit-rate trajectory: run each workload cold then warm on a
    // shared ClosureCache; the warm run's hit rate is what a steady-state
    // online engine sees when a repeat query arrives.
    let hit_rate_at = |n: usize| -> f64 {
        let cache = std::sync::Arc::new(ClosureCache::with_capacity(4096));
        let queries = fig4_queries(n);
        for _ in 0..2 {
            let out = SccCoordinator::new(&db)
                .with_closure_cache(std::sync::Arc::clone(&cache))
                .run(&queries)
                .unwrap();
            assert_eq!(out.best().unwrap().len(), n);
        }
        let stats = cache.stats();
        assert!(stats.hits > 0, "warm run must hit the closure cache");
        100.0 * stats.hits as f64 / (stats.hits + stats.misses) as f64
    };
    let mut last = (0u64, 0u64);
    for &n in sizes {
        let diff = work_at(n, false);
        let scratch = work_at(n, true);
        diff_series.push(n as u64, diff as f64, 1);
        scratch_series.push(n as u64, scratch as f64, 1);
        hit_rate_series.push(n as u64, hit_rate_at(n), 2);
        last = (diff, scratch);
    }
    // The same gate the ablation bench asserts: ≥ 10× saving at n = 100.
    let (diff, scratch) = last;
    assert!(
        diff * 10 <= scratch,
        "differential grounding work {diff} not ≥ 10× below from-scratch {scratch}"
    );
    report.add(diff_series);
    report.add(scratch_series);
    report.add(hit_rate_series);
    report.note(format_args!(
        "(differential evaluation: ~2n−1 operations vs Σ|closure| ≈ n²/2 from scratch; \
         {:.1}× saving at n = {})",
        scratch as f64 / diff as f64,
        sizes.last().unwrap(),
    ));
}

/// Extra experiment (observability): one live `DurableSharedEngine` run
/// over the list workload with per-record fsyncs, reported entirely from
/// a single `obs::Registry::snapshot()` — submit-latency percentiles,
/// WAL sync percentiles, and the closure cache's memo hit rate. Emitted
/// as the CI `BENCH_observability.json` artifact; the ≤5% overhead gate
/// itself lives in the `online_throughput` bench.
fn observability(quick: bool, report: &mut Report) {
    let rows = if quick { 2_000 } else { 5_000 };
    let n = if quick { 60 } else { 100 };
    let db = pool_db(rows);
    let dir = TempDir::new("reproduce-obs");
    let options = DurabilityOptions {
        sync: SyncPolicy::EveryRecord,
        snapshot_every: Some(32),
    };
    let engine = DurableSharedEngine::open_with(&db, dir.path(), 4, options).unwrap();
    // The list chain coordinates in full on the last submit, exercising
    // delivery, WAL appends/syncs, and snapshot rotations…
    for q in fig4_queries(n) {
        engine.submit(q).unwrap();
    }
    // …then an unsatisfiable contending cycle plus spokes exercises the
    // closure cache: the cycle's failed verdict is cached once, and every
    // spoke arrival re-confronts the engine with the same closure — a hit.
    let (cycle, spokes) = unsat_cycle_with_spokes(8, 12);
    let extra = (cycle.len() + spokes.len()) as u64;
    for q in cycle.into_iter().chain(spokes) {
        engine.submit(q).unwrap();
    }
    let snap = engine.obs().snapshot();

    let submit = snap
        .histogram("engine_submit_nanos")
        .expect("submit histogram present");
    assert_eq!(
        submit.count,
        n as u64 + extra,
        "every submit must land in the latency histogram"
    );
    let mut submit_series = Series::new(
        "Observability — submit latency percentiles, ns (durable engine, list workload)",
    );
    for (q, v) in [(50, submit.p50()), (90, submit.p90()), (99, submit.p99())] {
        submit_series.push(q, v as f64, submit.count as u32);
    }
    report.add(submit_series);

    let sync = snap
        .histogram("wal_sync_nanos")
        .expect("WAL sync histogram present");
    assert!(sync.count > 0, "EveryRecord policy must record syncs");
    let mut sync_series =
        Series::new("Observability — WAL fsync latency percentiles, ns (EveryRecord policy)");
    for (q, v) in [(50, sync.p50()), (90, sync.p90()), (99, sync.p99())] {
        sync_series.push(q, v as f64, sync.count as u32);
    }
    report.add(sync_series);

    let hit_rate = snap
        .hit_rate("memo_hits", "memo_misses")
        .expect("memo counters present");
    assert!(
        hit_rate > 0.0,
        "re-evaluated failed cycle closure must hit the memo"
    );
    let mut memo_series =
        Series::new("Observability — closure-cache memo hit rate % (live pending component)");
    memo_series.push(n as u64, 100.0 * hit_rate, 1);
    report.add(memo_series);

    report.note(format_args!(
        "(one registry snapshot covers {} submits, {} WAL syncs, {} snapshot rotations, \
         memo hit rate {:.1}%)",
        submit.count,
        sync.count,
        snap.counter("store_snapshots_taken").unwrap_or(0),
        100.0 * hit_rate,
    ));
    // A taste of the trace ring: the first few span events of the run.
    if !report.json {
        let dump = engine.obs().tracer().dump_json_lines();
        for line in dump.lines().take(4) {
            println!("trace> {line}");
        }
        println!();
    }
}

/// Extra experiment (request-scoped tracing): contending submitter
/// threads drive the unsat-cycle-with-spokes workload into one durable
/// engine while every layer stamps its trace-ring events with the
/// submitting request's trace id; `TraceAnalyzer` then attributes each
/// request's wall time across lock-wait / evaluate / db-probe / memo /
/// wal-append / wal-sync / other. Emitted as the CI `BENCH_trace.json`
/// artifact, asserting while measuring that the books balance — every
/// complete trace's phase sum equals its root span's wall nanos, and
/// never exceeds it — and that a deliberately ring-overflowing sub-run
/// still retains every over-threshold trace in the slow-query log.
fn trace(quick: bool, report: &mut Report) {
    use coord_obs::{Registry as ObsRegistry, TraceAnalyzer, PHASES};

    let rows = if quick { 2_000 } else { 5_000 };
    let cycle_len = if quick { 6 } else { 8 };
    let spoke_count = if quick { 24 } else { 60 };
    const THREADS: usize = 4;

    let db = pool_db(rows);
    let dir = TempDir::new("reproduce-trace");
    let options = DurabilityOptions {
        sync: SyncPolicy::EveryRecord,
        snapshot_every: Some(64),
    };
    let obs = ObsRegistry::new();
    let engine =
        DurableSharedEngine::open_with_obs(&db, dir.path(), 4, options, obs.clone()).unwrap();

    // The unsatisfiable cycle establishes one hot pending component…
    let (cycle, spokes) = unsat_cycle_with_spokes(cycle_len, spoke_count);
    let total = (cycle.len() + spokes.len()) as u64;
    for q in cycle {
        engine.submit(q).unwrap();
    }
    // …then the spokes race in from contending submitters, every one
    // re-confronting that component's shard: lock-wait, evaluation,
    // probes, memo hits, and WAL appends all interleave in the ring,
    // each event stamped with its submitter's trace id.
    std::thread::scope(|s| {
        for chunk in spokes.chunks(spoke_count.div_ceil(THREADS)) {
            let engine = &engine;
            s.spawn(move || {
                for q in chunk.iter().cloned() {
                    engine.submit(q).unwrap();
                }
            });
        }
    });

    let analyzer = TraceAnalyzer::from_tracer(&obs.tracer());
    let mut complete = 0u32;
    for t in analyzer.traces() {
        if t.complete {
            complete += 1;
            assert_eq!(
                t.breakdown.phase_sum(),
                t.breakdown.critical_path_nanos,
                "complete trace {}: phases must sum to the root span's wall nanos",
                t.trace_id
            );
        } else if t.breakdown.critical_path_nanos > 0 {
            assert!(
                t.breakdown.phase_sum() <= t.breakdown.critical_path_nanos,
                "trace {}: phase sum exceeds measured submit wall time",
                t.trace_id
            );
        }
    }
    assert!(
        complete > 0,
        "the default ring must capture complete traces"
    );

    // Per-phase p50/p99 across complete traces; the series name spells
    // out the x-axis (phase index) so the JSON artifact is
    // self-describing.
    let pct = analyzer.phase_percentiles();
    let axis = format!("[{}, critical_path]", PHASES.join(", "));
    let mut p50 = Series::new(format!("Tracing — per-phase p50 ns, x = phase {axis}"));
    let mut p99 = Series::new(format!("Tracing — per-phase p99 ns, x = phase {axis}"));
    for (i, (_, lo, hi)) in pct.iter().enumerate() {
        p50.push(i as u64, *lo as f64, complete);
        p99.push(i as u64, *hi as f64, complete);
    }
    report.add(p50);
    report.add(p99);
    for (name, lo, hi) in &pct {
        report.note(format_args!("  {name:>14}: p50 {lo:>9} ns  p99 {hi:>9} ns"));
    }
    report.note(format_args!(
        "({} traces reconstructed, {complete} complete, {} unattributed events, \
         {} orphaned ends, {} dropped)",
        analyzer.traces().len(),
        analyzer.unattributed_events,
        analyzer.orphaned_ends,
        analyzer.dropped,
    ));

    // Flight-recorder sub-run: a 64-event ring overflows many times
    // over, yet with a 1ns threshold (every root qualifies) the
    // slow-query log must still retain every submitted trace.
    let obs = ObsRegistry::with_trace_capacity(64);
    obs.set_slow_query_log(1, total as usize + 8);
    let dir = TempDir::new("reproduce-trace-slow");
    let engine = DurableSharedEngine::open_with_obs(
        &db,
        dir.path(),
        4,
        DurabilityOptions {
            sync: SyncPolicy::EveryRecord,
            snapshot_every: Some(64),
        },
        obs.clone(),
    )
    .unwrap();
    let (cycle, spokes) = unsat_cycle_with_spokes(cycle_len, spoke_count);
    for q in cycle.into_iter().chain(spokes) {
        engine.submit(q).unwrap();
    }
    let (_, ring_dropped) = obs.tracer().events();
    assert!(
        ring_dropped > 0,
        "the 64-event ring must overflow during {total} submits"
    );
    let (recorded, discarded) = obs.tracer().slow_trace_counts();
    assert_eq!(
        (recorded, discarded),
        (total, 0),
        "slow-query log must retain every over-threshold trace despite ring overflow"
    );
    report.note(format_args!(
        "(flight recorder: {recorded} slow traces retained across a ring that \
         dropped {ring_dropped} events)"
    ));
}

/// Extra experiment (storage backends): per-submit database probe work
/// (rows scanned + ground membership probes) on the 60-query activity
/// chain as the table grows 100× to 10⁶ rows, one series per backend.
/// Counter-based (deterministic on a 1-CPU runner), asserted while
/// measuring — the composite backend must stay flat (≤ 2×) where
/// single-column indexing pays √N — and emitted as the CI
/// `BENCH_storage.json` trajectory artifact.
fn storage(quick: bool, report: &mut Report) {
    const CHAIN: usize = 60;
    let sizes: &[usize] = if quick {
        &[10_000, 1_000_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    let mut growths = Vec::new();
    for kind in BackendKind::ALL {
        let mut series = Series::new(format!(
            "Storage — per-submit probe work, {} backend ({CHAIN}-query activity chain)",
            kind.name()
        ));
        let mut per_size = Vec::new();
        for &rows in sizes {
            // One backend × size in memory at a time: the 10⁶-row table
            // with its per-column hash indexes dominates the run's
            // footprint.
            let db = activity_db(rows, kind);
            let queries = activity_chain_queries(CHAIN, rows);
            // Advise composite patterns exactly as batch coordination
            // does; the other backends ignore the hint.
            preprocess(&db, &queries).unwrap();
            db.stats().reset();
            let mut engine = CoordinationEngine::new(&db);
            for q in queries {
                engine.submit(q).unwrap();
            }
            assert_eq!(engine.pending().len(), 0, "chain must fully coordinate");
            let per_submit = db.stats().probe_work() as f64 / CHAIN as f64;
            series.push(rows as u64, per_submit, 1);
            per_size.push(per_submit);
        }
        let growth = per_size[per_size.len() - 1] / per_size[0].max(1.0);
        if kind == BackendKind::Composite {
            // The same flat-cost gate the `storage` bench asserts.
            assert!(
                growth <= 2.0,
                "composite per-submit probe work grew {growth:.2}× across a 100× table"
            );
        }
        growths.push((kind.name(), growth));
        report.add(series);
    }
    report.note(format_args!(
        "(probe-work growth across 100× rows: {}; composite indexes keep \
         per-submit coordination cost flat)",
        growths
            .iter()
            .map(|(name, g)| format!("{name} {g:.2}×"))
            .collect::<Vec<_>>()
            .join(", "),
    ));
}
