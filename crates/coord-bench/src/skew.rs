//! Shared driver for the shard-skew experiments: the `shard_skew`
//! bench and the `reproduce --only shard_skew` trajectory section run
//! the **same** phase-1 methodology through this module, so the two
//! figures cannot drift apart.

use coord_core::engine::{SharedEngine, SubmitResult};
use coord_core::EntangledQuery;

/// What one phase-1 drive observed.
pub struct SkewRun {
    /// Hottest shard's share of the evaluation work accumulated over
    /// the steady-state **second half** of phase 1 (1/shards would be
    /// perfectly balanced).
    pub hottest_share: f64,
    /// Component groups moved by the rebalancer (0 when disabled).
    pub groups_moved: usize,
    /// Pending queries those groups contained.
    pub queries_moved: usize,
}

/// Per-shard cumulative evaluation-work counters.
pub fn eval_counts(engine: &SharedEngine<'_>) -> Vec<u64> {
    engine
        .shard_stats()
        .iter()
        .map(|s| s.eval_queries)
        .collect()
}

/// Hottest shard's share of the evaluation work accumulated between
/// two [`eval_counts`] snapshots.
pub fn hottest_share(before: &[u64], after: &[u64]) -> f64 {
    let deltas: Vec<u64> = after
        .iter()
        .zip(before)
        .map(|(a, b)| a.saturating_sub(*b))
        .collect();
    let total: u64 = deltas.iter().sum();
    deltas.iter().copied().max().unwrap_or(0) as f64 / total.max(1) as f64
}

/// Drive phase 1 of a skew workload: submit every query in order
/// (asserting nothing coordinates — the keystones are withheld) and,
/// when `rebalance_every` is set, run a rebalance pass at that cadence.
/// The hottest-shard share is measured over the second half, after the
/// skew has emerged and the rebalancer has had windows to react.
pub fn drive_phase1(
    engine: &SharedEngine<'_>,
    phase1: &[EntangledQuery],
    rebalance_every: Option<usize>,
) -> SkewRun {
    drive_phase1_observed(engine, phase1, rebalance_every, |_, _| {})
}

/// [`drive_phase1`] with a per-submit observation hook (e.g. the
/// `shard_skew` bench cross-checks every outcome against a sequential
/// twin) — same methodology, so the observed run and the plain run
/// measure identically.
pub fn drive_phase1_observed(
    engine: &SharedEngine<'_>,
    phase1: &[EntangledQuery],
    rebalance_every: Option<usize>,
    mut observe: impl FnMut(&EntangledQuery, &SubmitResult),
) -> SkewRun {
    let mut groups_moved = 0usize;
    let mut queries_moved = 0usize;
    let mut at_midpoint: Vec<u64> = Vec::new();
    for (i, q) in phase1.iter().enumerate() {
        if i == phase1.len() / 2 {
            at_midpoint = eval_counts(engine);
        }
        let r = engine.submit(q.clone()).unwrap();
        assert!(!r.coordinated(), "phase 1 must stay pending");
        observe(q, &r);
        if let Some(every) = rebalance_every {
            if (i + 1) % every == 0 {
                let report = engine.rebalance();
                groups_moved += report.groups_moved;
                queries_moved += report.queries_moved;
            }
        }
    }
    SkewRun {
        hottest_share: hottest_share(&at_midpoint, &eval_counts(engine)),
        groups_moved,
        queries_moved,
    }
}
