//! # coord-bench — experiment harness
//!
//! Shared measurement utilities for the benchmark targets and the
//! `reproduce` binary that regenerates every figure of the paper's
//! Section 6 evaluation.

#![forbid(unsafe_code)]

pub mod harness;
pub mod skew;

pub use harness::{measure, series_to_json, MeasuredPoint, Series};
pub use skew::{drive_phase1, SkewRun};
