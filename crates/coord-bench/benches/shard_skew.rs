//! Shard rebalancing under skew: the adaptive rebalancer against
//! size-blind placement, on a Zipf keystone workload.
//!
//! Workload: `G` open partner chains whose sizes follow a Zipf law with
//! exponent ½ (`n_g = K / √(g+1)`) — one hot group, a heavy tail —
//! arriving randomly interleaved (intra-group order preserved). Each
//! chain's keystone is withheld, so phase 1 builds a steady pending set
//! whose per-component evaluation cost is quadratic in the component
//! size: exactly the skew that pins one shard while the others idle.
//! Phase 2 releases the keystones and every group must coordinate.
//!
//! The bench *asserts the rebalancing analysis while it measures*:
//!
//! * **skew exists**: with round-robin placement and no rebalancing,
//!   the hottest shard's share of evaluation work clearly exceeds the
//!   balanced share (1/shards);
//! * **the rebalancer reduces it**: the same workload with periodic
//!   `rebalance()` passes moves component groups off the hot shard and
//!   the hottest share drops by a measurable margin;
//! * **results stay identical**: the rebalanced engine's answers match
//!   the sequential engine submit by submit, and both end phase 2 with
//!   an empty pending set.

use coord_bench::skew::{drive_phase1, drive_phase1_observed};
use coord_core::engine::{
    CoordinationEngine, Placement, QueryAnswer, RebalanceConfig, SharedEngine,
};
use coord_gen::workloads::{pool_db, zipf_chain_workload, zipf_sizes};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const SHARDS: usize = 4;
const REBALANCE_EVERY: usize = 32;

fn rebalance_config() -> RebalanceConfig {
    RebalanceConfig {
        skew_threshold: 0.3,
        min_window_load: 24,
        max_moves: 8,
    }
}

fn sorted(mut answers: Vec<QueryAnswer>) -> Vec<QueryAnswer> {
    answers.sort_by(|a, b| a.query.cmp(&b.query));
    answers
}

fn bench_shard_skew(c: &mut Criterion) {
    let quick = std::env::args().any(|a| a == "--quick");
    let cases: &[(usize, usize)] = if quick {
        &[(48, 24)]
    } else {
        &[(48, 24), (96, 40)]
    };
    let samples = if quick { 2 } else { 3 };

    let mut group = c.benchmark_group("shard_skew");
    group.sample_size(samples);

    for &(groups, k) in cases {
        let n: usize = zipf_sizes(groups, k).iter().sum();
        let db = pool_db(100 * groups + k + 2);
        let w = zipf_chain_workload(groups, k, 42);
        assert_eq!(w.phase1.len(), n);

        group.bench_with_input(BenchmarkId::new("baseline", n), &w, |b, w| {
            b.iter(|| {
                let engine = SharedEngine::with_config(
                    &db,
                    SHARDS,
                    Placement::RoundRobin,
                    rebalance_config(),
                );
                let run = drive_phase1(&engine, &w.phase1, None);
                assert_eq!(engine.pending_count(), n);
                run.hottest_share
            });
        });

        group.bench_with_input(BenchmarkId::new("rebalanced", n), &w, |b, w| {
            b.iter(|| {
                let engine = SharedEngine::with_config(
                    &db,
                    SHARDS,
                    Placement::RoundRobin,
                    rebalance_config(),
                );
                let run = drive_phase1(&engine, &w.phase1, Some(REBALANCE_EVERY));
                assert_eq!(engine.pending_count(), n);
                run.hottest_share
            });
        });

        // ── Assert-while-measuring: the skew analysis ────────────────
        //
        // 1. Size-blind placement concentrates the Zipf head: the
        //    hottest shard's work share sits well above the balanced
        //    1/SHARDS.
        let baseline =
            SharedEngine::with_config(&db, SHARDS, Placement::RoundRobin, rebalance_config());
        let baseline_share = drive_phase1(&baseline, &w.phase1, None).hottest_share;
        assert!(
            baseline_share > 1.0 / SHARDS as f64 + 0.05,
            "no skew to correct at n = {n}: hottest share {baseline_share:.3}"
        );

        // 2. The rebalancer moves victim groups and the hottest shard's
        //    share drops — while every answer stays byte-identical to
        //    the sequential engine, submit by submit.
        let rebalanced =
            SharedEngine::with_config(&db, SHARDS, Placement::RoundRobin, rebalance_config());
        let mut sequential = CoordinationEngine::new(&db);
        // Same shared driver as the measured runs and the reproduce
        // trajectory, with a per-submit cross-check against the
        // sequential twin.
        let run = drive_phase1_observed(&rebalanced, &w.phase1, Some(REBALANCE_EVERY), |q, a| {
            let b = sequential.submit(q.clone()).unwrap();
            assert!(!a.coordinated() && !b.coordinated());
        });
        let (rebalanced_share, moved, rerouted) =
            (run.hottest_share, run.groups_moved, run.queries_moved);
        assert!(moved >= 1, "rebalancer never moved a group at n = {n}");
        assert!(
            rebalanced_share < baseline_share - 0.05,
            "hottest-shard share did not drop at n = {n}: \
             baseline {baseline_share:.3} vs rebalanced {rebalanced_share:.3}"
        );

        // 3. Phase 2: every keystone closes its group with identical
        //    answers on both engines; nothing is left pending.
        for (g, keystone) in w.keystones.iter().enumerate() {
            let a = rebalanced.submit(keystone.clone()).unwrap();
            let b = sequential.submit(keystone.clone()).unwrap();
            assert!(a.coordinated(), "group {g} lost by rebalancing");
            assert_eq!(a.answers.len(), w.sizes[g] + 1);
            assert_eq!(sorted(a.answers), sorted(b.answers), "group {g} diverged");
        }
        assert_eq!(rebalanced.pending_count(), 0);
        assert_eq!(rebalanced.pending_count(), sequential.pending().len());

        println!(
            "shard_skew/analysis/{n}: hottest-shard eval share {baseline_share:.3} → \
             {rebalanced_share:.3} ({moved} groups moved, {rerouted} queries rerouted, \
             {} backoffs), results ≡ sequential",
            rebalanced.metrics().migration_backoffs,
        );
    }
    group.finish();
}

criterion_group!(benches, bench_shard_skew);
criterion_main!(benches);
