//! Figure 5: SCC Coordination Algorithm processing time on scale-free
//! coordination structures. As in the paper, each point averages over 10
//! randomly generated Barabási–Albert graphs of the same size; the paper
//! reports linear growth, faster than the list structure of Figure 4.

use coord_core::scc::SccCoordinator;
use coord_gen::social::SLASHDOT_ROWS;
use coord_gen::workloads::{fig5_queries, pool_db};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;

fn bench_fig5(c: &mut Criterion) {
    let db = pool_db(SLASHDOT_ROWS);
    let mut group = c.benchmark_group("fig5_scale_free");
    group.sample_size(20);
    for n in [10, 25, 50, 75, 100] {
        // Ten random graphs per size, as in the paper's averaging.
        let workloads: Vec<_> = (0..10u64)
            .map(|seed| fig5_queries(n, 2, &mut StdRng::seed_from_u64(seed)))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &workloads, |b, ws| {
            b.iter(|| {
                let mut total = 0usize;
                for queries in ws {
                    let out = SccCoordinator::new(&db).run(queries).unwrap();
                    total += out.best().map_or(0, coord_core::FoundSet::len);
                }
                total
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
